# Empty dependencies file for fca_triadic_test.
# This may be replaced when dependencies are built.
