file(REMOVE_RECURSE
  "CMakeFiles/fca_triadic_test.dir/fca_triadic_test.cc.o"
  "CMakeFiles/fca_triadic_test.dir/fca_triadic_test.cc.o.d"
  "fca_triadic_test"
  "fca_triadic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fca_triadic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
