# Empty dependencies file for timeline_test.
# This may be replaced when dependencies are built.
