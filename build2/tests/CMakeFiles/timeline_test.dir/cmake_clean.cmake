file(REMOVE_RECURSE
  "CMakeFiles/timeline_test.dir/timeline_test.cc.o"
  "CMakeFiles/timeline_test.dir/timeline_test.cc.o.d"
  "timeline_test"
  "timeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
