file(REMOVE_RECURSE
  "CMakeFiles/index_wand_test.dir/index_wand_test.cc.o"
  "CMakeFiles/index_wand_test.dir/index_wand_test.cc.o.d"
  "index_wand_test"
  "index_wand_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_wand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
