# Empty dependencies file for index_wand_test.
# This may be replaced when dependencies are built.
