# Empty compiler generated dependencies file for serve_reporter_test.
# This may be replaced when dependencies are built.
