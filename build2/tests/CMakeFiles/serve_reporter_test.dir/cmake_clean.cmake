file(REMOVE_RECURSE
  "CMakeFiles/serve_reporter_test.dir/serve_reporter_test.cc.o"
  "CMakeFiles/serve_reporter_test.dir/serve_reporter_test.cc.o.d"
  "serve_reporter_test"
  "serve_reporter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_reporter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
