# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for text_analyzer_param_test.
