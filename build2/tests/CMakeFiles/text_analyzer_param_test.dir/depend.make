# Empty dependencies file for text_analyzer_param_test.
# This may be replaced when dependencies are built.
