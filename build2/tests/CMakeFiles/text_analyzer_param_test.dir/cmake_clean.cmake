file(REMOVE_RECURSE
  "CMakeFiles/text_analyzer_param_test.dir/text_analyzer_param_test.cc.o"
  "CMakeFiles/text_analyzer_param_test.dir/text_analyzer_param_test.cc.o.d"
  "text_analyzer_param_test"
  "text_analyzer_param_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_analyzer_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
