# Empty dependencies file for core_trending_test.
# This may be replaced when dependencies are built.
