file(REMOVE_RECURSE
  "CMakeFiles/core_trending_test.dir/core_trending_test.cc.o"
  "CMakeFiles/core_trending_test.dir/core_trending_test.cc.o.d"
  "core_trending_test"
  "core_trending_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trending_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
