# Empty dependencies file for core_engine_edge_test.
# This may be replaced when dependencies are built.
