file(REMOVE_RECURSE
  "CMakeFiles/wal_cursor_test.dir/wal_cursor_test.cc.o"
  "CMakeFiles/wal_cursor_test.dir/wal_cursor_test.cc.o.d"
  "wal_cursor_test"
  "wal_cursor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_cursor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
