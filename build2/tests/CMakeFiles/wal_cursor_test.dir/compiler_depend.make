# Empty compiler generated dependencies file for wal_cursor_test.
# This may be replaced when dependencies are built.
