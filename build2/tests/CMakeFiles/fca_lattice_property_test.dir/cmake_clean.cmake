file(REMOVE_RECURSE
  "CMakeFiles/fca_lattice_property_test.dir/fca_lattice_property_test.cc.o"
  "CMakeFiles/fca_lattice_property_test.dir/fca_lattice_property_test.cc.o.d"
  "fca_lattice_property_test"
  "fca_lattice_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fca_lattice_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
