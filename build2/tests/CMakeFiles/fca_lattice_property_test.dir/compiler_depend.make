# Empty compiler generated dependencies file for fca_lattice_property_test.
# This may be replaced when dependencies are built.
