file(REMOVE_RECURSE
  "CMakeFiles/text_tokenizer_test.dir/text_tokenizer_test.cc.o"
  "CMakeFiles/text_tokenizer_test.dir/text_tokenizer_test.cc.o.d"
  "text_tokenizer_test"
  "text_tokenizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_tokenizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
