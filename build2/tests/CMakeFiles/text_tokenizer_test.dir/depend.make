# Empty dependencies file for text_tokenizer_test.
# This may be replaced when dependencies are built.
