# Empty dependencies file for common_status_test.
# This may be replaced when dependencies are built.
