file(REMOVE_RECURSE
  "CMakeFiles/common_status_test.dir/common_status_test.cc.o"
  "CMakeFiles/common_status_test.dir/common_status_test.cc.o.d"
  "common_status_test"
  "common_status_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
