file(REMOVE_RECURSE
  "CMakeFiles/testkit_differential_test.dir/testkit_differential_test.cc.o"
  "CMakeFiles/testkit_differential_test.dir/testkit_differential_test.cc.o.d"
  "testkit_differential_test"
  "testkit_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testkit_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
