# Empty compiler generated dependencies file for testkit_differential_test.
# This may be replaced when dependencies are built.
