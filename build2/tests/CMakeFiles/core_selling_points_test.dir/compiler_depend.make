# Empty compiler generated dependencies file for core_selling_points_test.
# This may be replaced when dependencies are built.
