file(REMOVE_RECURSE
  "CMakeFiles/core_selling_points_test.dir/core_selling_points_test.cc.o"
  "CMakeFiles/core_selling_points_test.dir/core_selling_points_test.cc.o.d"
  "core_selling_points_test"
  "core_selling_points_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_selling_points_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
