file(REMOVE_RECURSE
  "CMakeFiles/fca_dyadic_test.dir/fca_dyadic_test.cc.o"
  "CMakeFiles/fca_dyadic_test.dir/fca_dyadic_test.cc.o.d"
  "fca_dyadic_test"
  "fca_dyadic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fca_dyadic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
