# Empty dependencies file for fca_dyadic_test.
# This may be replaced when dependencies are built.
