file(REMOVE_RECURSE
  "CMakeFiles/eval_ab_test.dir/eval_ab_test.cc.o"
  "CMakeFiles/eval_ab_test.dir/eval_ab_test.cc.o.d"
  "eval_ab_test"
  "eval_ab_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_ab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
