# Empty compiler generated dependencies file for eval_ab_test.
# This may be replaced when dependencies are built.
