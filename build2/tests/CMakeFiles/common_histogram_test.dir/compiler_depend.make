# Empty compiler generated dependencies file for common_histogram_test.
# This may be replaced when dependencies are built.
