file(REMOVE_RECURSE
  "CMakeFiles/common_histogram_test.dir/common_histogram_test.cc.o"
  "CMakeFiles/common_histogram_test.dir/common_histogram_test.cc.o.d"
  "common_histogram_test"
  "common_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
