file(REMOVE_RECURSE
  "CMakeFiles/testkit_minimizer_test.dir/testkit_minimizer_test.cc.o"
  "CMakeFiles/testkit_minimizer_test.dir/testkit_minimizer_test.cc.o.d"
  "testkit_minimizer_test"
  "testkit_minimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testkit_minimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
