# Empty dependencies file for testkit_minimizer_test.
# This may be replaced when dependencies are built.
