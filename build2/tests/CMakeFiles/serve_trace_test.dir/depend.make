# Empty dependencies file for serve_trace_test.
# This may be replaced when dependencies are built.
