file(REMOVE_RECURSE
  "CMakeFiles/serve_trace_test.dir/serve_trace_test.cc.o"
  "CMakeFiles/serve_trace_test.dir/serve_trace_test.cc.o.d"
  "serve_trace_test"
  "serve_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
