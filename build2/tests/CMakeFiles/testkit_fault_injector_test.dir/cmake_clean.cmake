file(REMOVE_RECURSE
  "CMakeFiles/testkit_fault_injector_test.dir/testkit_fault_injector_test.cc.o"
  "CMakeFiles/testkit_fault_injector_test.dir/testkit_fault_injector_test.cc.o.d"
  "testkit_fault_injector_test"
  "testkit_fault_injector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testkit_fault_injector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
