# Empty compiler generated dependencies file for testkit_fault_injector_test.
# This may be replaced when dependencies are built.
