# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for testkit_fault_injector_test.
