file(REMOVE_RECURSE
  "CMakeFiles/core_tfca_test.dir/core_tfca_test.cc.o"
  "CMakeFiles/core_tfca_test.dir/core_tfca_test.cc.o.d"
  "core_tfca_test"
  "core_tfca_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tfca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
