# Empty dependencies file for core_tfca_test.
# This may be replaced when dependencies are built.
