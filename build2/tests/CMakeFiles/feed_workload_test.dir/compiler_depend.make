# Empty compiler generated dependencies file for feed_workload_test.
# This may be replaced when dependencies are built.
