file(REMOVE_RECURSE
  "CMakeFiles/feed_workload_test.dir/feed_workload_test.cc.o"
  "CMakeFiles/feed_workload_test.dir/feed_workload_test.cc.o.d"
  "feed_workload_test"
  "feed_workload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_workload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
