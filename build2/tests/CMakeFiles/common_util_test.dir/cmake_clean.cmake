file(REMOVE_RECURSE
  "CMakeFiles/common_util_test.dir/common_util_test.cc.o"
  "CMakeFiles/common_util_test.dir/common_util_test.cc.o.d"
  "common_util_test"
  "common_util_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
