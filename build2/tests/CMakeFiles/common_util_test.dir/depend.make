# Empty dependencies file for common_util_test.
# This may be replaced when dependencies are built.
