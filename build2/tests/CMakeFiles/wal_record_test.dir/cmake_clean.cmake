file(REMOVE_RECURSE
  "CMakeFiles/wal_record_test.dir/wal_record_test.cc.o"
  "CMakeFiles/wal_record_test.dir/wal_record_test.cc.o.d"
  "wal_record_test"
  "wal_record_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
