# Empty compiler generated dependencies file for wal_record_test.
# This may be replaced when dependencies are built.
