file(REMOVE_RECURSE
  "CMakeFiles/common_random_test.dir/common_random_test.cc.o"
  "CMakeFiles/common_random_test.dir/common_random_test.cc.o.d"
  "common_random_test"
  "common_random_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
