# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for common_random_test.
