# Empty compiler generated dependencies file for common_random_test.
# This may be replaced when dependencies are built.
