file(REMOVE_RECURSE
  "CMakeFiles/core_expansion_test.dir/core_expansion_test.cc.o"
  "CMakeFiles/core_expansion_test.dir/core_expansion_test.cc.o.d"
  "core_expansion_test"
  "core_expansion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_expansion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
