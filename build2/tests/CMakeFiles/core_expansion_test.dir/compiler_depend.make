# Empty compiler generated dependencies file for core_expansion_test.
# This may be replaced when dependencies are built.
