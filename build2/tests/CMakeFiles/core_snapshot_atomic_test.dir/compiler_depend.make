# Empty compiler generated dependencies file for core_snapshot_atomic_test.
# This may be replaced when dependencies are built.
