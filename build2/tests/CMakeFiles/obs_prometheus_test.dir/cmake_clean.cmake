file(REMOVE_RECURSE
  "CMakeFiles/obs_prometheus_test.dir/obs_prometheus_test.cc.o"
  "CMakeFiles/obs_prometheus_test.dir/obs_prometheus_test.cc.o.d"
  "obs_prometheus_test"
  "obs_prometheus_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_prometheus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
