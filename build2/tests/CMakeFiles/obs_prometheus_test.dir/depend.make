# Empty dependencies file for obs_prometheus_test.
# This may be replaced when dependencies are built.
