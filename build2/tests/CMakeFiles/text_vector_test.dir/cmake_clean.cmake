file(REMOVE_RECURSE
  "CMakeFiles/text_vector_test.dir/text_vector_test.cc.o"
  "CMakeFiles/text_vector_test.dir/text_vector_test.cc.o.d"
  "text_vector_test"
  "text_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
