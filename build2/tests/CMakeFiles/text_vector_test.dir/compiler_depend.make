# Empty compiler generated dependencies file for text_vector_test.
# This may be replaced when dependencies are built.
