# Empty compiler generated dependencies file for serve_replica_test.
# This may be replaced when dependencies are built.
