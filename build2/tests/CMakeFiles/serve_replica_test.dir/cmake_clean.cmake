file(REMOVE_RECURSE
  "CMakeFiles/serve_replica_test.dir/serve_replica_test.cc.o"
  "CMakeFiles/serve_replica_test.dir/serve_replica_test.cc.o.d"
  "serve_replica_test"
  "serve_replica_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
