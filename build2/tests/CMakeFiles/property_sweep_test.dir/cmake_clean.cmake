file(REMOVE_RECURSE
  "CMakeFiles/property_sweep_test.dir/property_sweep_test.cc.o"
  "CMakeFiles/property_sweep_test.dir/property_sweep_test.cc.o.d"
  "property_sweep_test"
  "property_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
