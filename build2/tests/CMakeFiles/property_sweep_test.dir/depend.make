# Empty dependencies file for property_sweep_test.
# This may be replaced when dependencies are built.
