file(REMOVE_RECURSE
  "CMakeFiles/obs_trace_test.dir/obs_trace_test.cc.o"
  "CMakeFiles/obs_trace_test.dir/obs_trace_test.cc.o.d"
  "obs_trace_test"
  "obs_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
