# Empty dependencies file for obs_trace_test.
# This may be replaced when dependencies are built.
