file(REMOVE_RECURSE
  "CMakeFiles/integration_test.dir/integration_test.cc.o"
  "CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  "integration_test"
  "integration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
