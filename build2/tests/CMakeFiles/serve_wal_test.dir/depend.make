# Empty dependencies file for serve_wal_test.
# This may be replaced when dependencies are built.
