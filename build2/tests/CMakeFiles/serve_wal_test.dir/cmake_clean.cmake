file(REMOVE_RECURSE
  "CMakeFiles/serve_wal_test.dir/serve_wal_test.cc.o"
  "CMakeFiles/serve_wal_test.dir/serve_wal_test.cc.o.d"
  "serve_wal_test"
  "serve_wal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_wal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
