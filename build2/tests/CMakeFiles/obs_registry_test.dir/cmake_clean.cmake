file(REMOVE_RECURSE
  "CMakeFiles/obs_registry_test.dir/obs_registry_test.cc.o"
  "CMakeFiles/obs_registry_test.dir/obs_registry_test.cc.o.d"
  "obs_registry_test"
  "obs_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
