# Empty compiler generated dependencies file for obs_registry_test.
# This may be replaced when dependencies are built.
