# Empty compiler generated dependencies file for fca_bitset_test.
# This may be replaced when dependencies are built.
