file(REMOVE_RECURSE
  "CMakeFiles/fca_bitset_test.dir/fca_bitset_test.cc.o"
  "CMakeFiles/fca_bitset_test.dir/fca_bitset_test.cc.o.d"
  "fca_bitset_test"
  "fca_bitset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fca_bitset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
