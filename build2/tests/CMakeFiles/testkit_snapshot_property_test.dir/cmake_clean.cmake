file(REMOVE_RECURSE
  "CMakeFiles/testkit_snapshot_property_test.dir/testkit_snapshot_property_test.cc.o"
  "CMakeFiles/testkit_snapshot_property_test.dir/testkit_snapshot_property_test.cc.o.d"
  "testkit_snapshot_property_test"
  "testkit_snapshot_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testkit_snapshot_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
