# Empty compiler generated dependencies file for testkit_snapshot_property_test.
# This may be replaced when dependencies are built.
