# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for testkit_snapshot_property_test.
