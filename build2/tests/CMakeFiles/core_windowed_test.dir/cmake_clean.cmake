file(REMOVE_RECURSE
  "CMakeFiles/core_windowed_test.dir/core_windowed_test.cc.o"
  "CMakeFiles/core_windowed_test.dir/core_windowed_test.cc.o.d"
  "core_windowed_test"
  "core_windowed_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_windowed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
