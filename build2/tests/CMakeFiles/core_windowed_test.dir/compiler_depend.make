# Empty compiler generated dependencies file for core_windowed_test.
# This may be replaced when dependencies are built.
