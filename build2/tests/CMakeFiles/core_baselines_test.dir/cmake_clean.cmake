file(REMOVE_RECURSE
  "CMakeFiles/core_baselines_test.dir/core_baselines_test.cc.o"
  "CMakeFiles/core_baselines_test.dir/core_baselines_test.cc.o.d"
  "core_baselines_test"
  "core_baselines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
