# Empty compiler generated dependencies file for core_baselines_test.
# This may be replaced when dependencies are built.
