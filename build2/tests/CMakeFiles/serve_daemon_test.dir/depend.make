# Empty dependencies file for serve_daemon_test.
# This may be replaced when dependencies are built.
