file(REMOVE_RECURSE
  "CMakeFiles/serve_daemon_test.dir/serve_daemon_test.cc.o"
  "CMakeFiles/serve_daemon_test.dir/serve_daemon_test.cc.o.d"
  "serve_daemon_test"
  "serve_daemon_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_daemon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
