# Empty dependencies file for feed_replayer_test.
# This may be replaced when dependencies are built.
