file(REMOVE_RECURSE
  "CMakeFiles/feed_replayer_test.dir/feed_replayer_test.cc.o"
  "CMakeFiles/feed_replayer_test.dir/feed_replayer_test.cc.o.d"
  "feed_replayer_test"
  "feed_replayer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feed_replayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
