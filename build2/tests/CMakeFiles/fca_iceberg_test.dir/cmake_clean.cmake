file(REMOVE_RECURSE
  "CMakeFiles/fca_iceberg_test.dir/fca_iceberg_test.cc.o"
  "CMakeFiles/fca_iceberg_test.dir/fca_iceberg_test.cc.o.d"
  "fca_iceberg_test"
  "fca_iceberg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fca_iceberg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
