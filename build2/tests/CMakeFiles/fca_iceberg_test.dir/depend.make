# Empty dependencies file for fca_iceberg_test.
# This may be replaced when dependencies are built.
