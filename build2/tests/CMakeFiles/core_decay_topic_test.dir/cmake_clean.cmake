file(REMOVE_RECURSE
  "CMakeFiles/core_decay_topic_test.dir/core_decay_topic_test.cc.o"
  "CMakeFiles/core_decay_topic_test.dir/core_decay_topic_test.cc.o.d"
  "core_decay_topic_test"
  "core_decay_topic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_decay_topic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
