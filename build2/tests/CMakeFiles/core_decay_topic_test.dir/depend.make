# Empty dependencies file for core_decay_topic_test.
# This may be replaced when dependencies are built.
