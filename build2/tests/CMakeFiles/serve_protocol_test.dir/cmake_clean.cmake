file(REMOVE_RECURSE
  "CMakeFiles/serve_protocol_test.dir/serve_protocol_test.cc.o"
  "CMakeFiles/serve_protocol_test.dir/serve_protocol_test.cc.o.d"
  "serve_protocol_test"
  "serve_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serve_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
