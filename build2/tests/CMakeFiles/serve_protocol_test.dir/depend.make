# Empty dependencies file for serve_protocol_test.
# This may be replaced when dependencies are built.
