# Empty dependencies file for core_sharded_test.
# This may be replaced when dependencies are built.
