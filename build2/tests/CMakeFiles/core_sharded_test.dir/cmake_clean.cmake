file(REMOVE_RECURSE
  "CMakeFiles/core_sharded_test.dir/core_sharded_test.cc.o"
  "CMakeFiles/core_sharded_test.dir/core_sharded_test.cc.o.d"
  "core_sharded_test"
  "core_sharded_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sharded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
