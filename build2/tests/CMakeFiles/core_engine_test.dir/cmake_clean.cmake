file(REMOVE_RECURSE
  "CMakeFiles/core_engine_test.dir/core_engine_test.cc.o"
  "CMakeFiles/core_engine_test.dir/core_engine_test.cc.o.d"
  "core_engine_test"
  "core_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
