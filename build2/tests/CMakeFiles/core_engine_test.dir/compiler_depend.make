# Empty compiler generated dependencies file for core_engine_test.
# This may be replaced when dependencies are built.
