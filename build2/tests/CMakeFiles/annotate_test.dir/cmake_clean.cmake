file(REMOVE_RECURSE
  "CMakeFiles/annotate_test.dir/annotate_test.cc.o"
  "CMakeFiles/annotate_test.dir/annotate_test.cc.o.d"
  "annotate_test"
  "annotate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
