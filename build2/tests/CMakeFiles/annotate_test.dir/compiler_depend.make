# Empty compiler generated dependencies file for annotate_test.
# This may be replaced when dependencies are built.
