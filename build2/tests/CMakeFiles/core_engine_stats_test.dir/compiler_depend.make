# Empty compiler generated dependencies file for core_engine_stats_test.
# This may be replaced when dependencies are built.
