# Empty compiler generated dependencies file for wal_crash_differential_test.
# This may be replaced when dependencies are built.
