file(REMOVE_RECURSE
  "CMakeFiles/wal_crash_differential_test.dir/wal_crash_differential_test.cc.o"
  "CMakeFiles/wal_crash_differential_test.dir/wal_crash_differential_test.cc.o.d"
  "wal_crash_differential_test"
  "wal_crash_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_crash_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
