file(REMOVE_RECURSE
  "CMakeFiles/profile_test.dir/profile_test.cc.o"
  "CMakeFiles/profile_test.dir/profile_test.cc.o.d"
  "profile_test"
  "profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
