# Empty dependencies file for profile_test.
# This may be replaced when dependencies are built.
