file(REMOVE_RECURSE
  "CMakeFiles/fca_implications_test.dir/fca_implications_test.cc.o"
  "CMakeFiles/fca_implications_test.dir/fca_implications_test.cc.o.d"
  "fca_implications_test"
  "fca_implications_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fca_implications_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
