# Empty dependencies file for fca_implications_test.
# This may be replaced when dependencies are built.
