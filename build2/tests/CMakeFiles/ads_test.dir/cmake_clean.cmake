file(REMOVE_RECURSE
  "CMakeFiles/ads_test.dir/ads_test.cc.o"
  "CMakeFiles/ads_test.dir/ads_test.cc.o.d"
  "ads_test"
  "ads_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
