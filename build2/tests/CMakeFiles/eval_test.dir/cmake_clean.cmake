file(REMOVE_RECURSE
  "CMakeFiles/eval_test.dir/eval_test.cc.o"
  "CMakeFiles/eval_test.dir/eval_test.cc.o.d"
  "eval_test"
  "eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
