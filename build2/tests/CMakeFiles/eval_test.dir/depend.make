# Empty dependencies file for eval_test.
# This may be replaced when dependencies are built.
