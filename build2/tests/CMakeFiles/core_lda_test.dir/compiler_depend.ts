# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_lda_test.
