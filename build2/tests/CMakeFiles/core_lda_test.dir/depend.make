# Empty dependencies file for core_lda_test.
# This may be replaced when dependencies are built.
