file(REMOVE_RECURSE
  "CMakeFiles/core_lda_test.dir/core_lda_test.cc.o"
  "CMakeFiles/core_lda_test.dir/core_lda_test.cc.o.d"
  "core_lda_test"
  "core_lda_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_lda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
