# Empty dependencies file for index_test.
# This may be replaced when dependencies are built.
