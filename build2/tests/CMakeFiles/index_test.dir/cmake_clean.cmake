file(REMOVE_RECURSE
  "CMakeFiles/index_test.dir/index_test.cc.o"
  "CMakeFiles/index_test.dir/index_test.cc.o.d"
  "index_test"
  "index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
