file(REMOVE_RECURSE
  "CMakeFiles/geo_test.dir/geo_test.cc.o"
  "CMakeFiles/geo_test.dir/geo_test.cc.o.d"
  "geo_test"
  "geo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
