# Empty compiler generated dependencies file for geo_test.
# This may be replaced when dependencies are built.
