# Empty dependencies file for core_semantic_test.
# This may be replaced when dependencies are built.
