file(REMOVE_RECURSE
  "CMakeFiles/core_semantic_test.dir/core_semantic_test.cc.o"
  "CMakeFiles/core_semantic_test.dir/core_semantic_test.cc.o.d"
  "core_semantic_test"
  "core_semantic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_semantic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
