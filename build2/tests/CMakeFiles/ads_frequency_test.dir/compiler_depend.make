# Empty compiler generated dependencies file for ads_frequency_test.
# This may be replaced when dependencies are built.
