file(REMOVE_RECURSE
  "CMakeFiles/ads_frequency_test.dir/ads_frequency_test.cc.o"
  "CMakeFiles/ads_frequency_test.dir/ads_frequency_test.cc.o.d"
  "ads_frequency_test"
  "ads_frequency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ads_frequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
