file(REMOVE_RECURSE
  "CMakeFiles/text_stemmer_test.dir/text_stemmer_test.cc.o"
  "CMakeFiles/text_stemmer_test.dir/text_stemmer_test.cc.o.d"
  "text_stemmer_test"
  "text_stemmer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_stemmer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
