# Empty compiler generated dependencies file for text_stemmer_test.
# This may be replaced when dependencies are built.
