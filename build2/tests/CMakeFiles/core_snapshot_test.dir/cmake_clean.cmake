file(REMOVE_RECURSE
  "CMakeFiles/core_snapshot_test.dir/core_snapshot_test.cc.o"
  "CMakeFiles/core_snapshot_test.dir/core_snapshot_test.cc.o.d"
  "core_snapshot_test"
  "core_snapshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
