# Empty dependencies file for io_test.
# This may be replaced when dependencies are built.
