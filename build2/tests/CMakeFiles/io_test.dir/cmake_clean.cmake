file(REMOVE_RECURSE
  "CMakeFiles/io_test.dir/io_test.cc.o"
  "CMakeFiles/io_test.dir/io_test.cc.o.d"
  "io_test"
  "io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
