file(REMOVE_RECURSE
  "CMakeFiles/fca_stability_test.dir/fca_stability_test.cc.o"
  "CMakeFiles/fca_stability_test.dir/fca_stability_test.cc.o.d"
  "fca_stability_test"
  "fca_stability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fca_stability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
