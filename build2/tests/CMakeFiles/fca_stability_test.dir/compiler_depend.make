# Empty compiler generated dependencies file for fca_stability_test.
# This may be replaced when dependencies are built.
