file(REMOVE_RECURSE
  "CMakeFiles/replica_promotion_differential_test.dir/replica_promotion_differential_test.cc.o"
  "CMakeFiles/replica_promotion_differential_test.dir/replica_promotion_differential_test.cc.o.d"
  "replica_promotion_differential_test"
  "replica_promotion_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_promotion_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
