# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for replica_promotion_differential_test.
