# Empty compiler generated dependencies file for replica_promotion_differential_test.
# This may be replaced when dependencies are built.
