# Empty dependencies file for wal_log_test.
# This may be replaced when dependencies are built.
