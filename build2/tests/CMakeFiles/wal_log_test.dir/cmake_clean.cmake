file(REMOVE_RECURSE
  "CMakeFiles/wal_log_test.dir/wal_log_test.cc.o"
  "CMakeFiles/wal_log_test.dir/wal_log_test.cc.o.d"
  "wal_log_test"
  "wal_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
