# Empty compiler generated dependencies file for wal_recovery_test.
# This may be replaced when dependencies are built.
