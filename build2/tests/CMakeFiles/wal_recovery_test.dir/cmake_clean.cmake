file(REMOVE_RECURSE
  "CMakeFiles/wal_recovery_test.dir/wal_recovery_test.cc.o"
  "CMakeFiles/wal_recovery_test.dir/wal_recovery_test.cc.o.d"
  "wal_recovery_test"
  "wal_recovery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wal_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
