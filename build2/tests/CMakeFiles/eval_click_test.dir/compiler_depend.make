# Empty compiler generated dependencies file for eval_click_test.
# This may be replaced when dependencies are built.
