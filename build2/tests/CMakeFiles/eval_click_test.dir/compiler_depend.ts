# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for eval_click_test.
