file(REMOVE_RECURSE
  "CMakeFiles/eval_click_test.dir/eval_click_test.cc.o"
  "CMakeFiles/eval_click_test.dir/eval_click_test.cc.o.d"
  "eval_click_test"
  "eval_click_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_click_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
