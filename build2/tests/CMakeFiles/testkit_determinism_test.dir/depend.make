# Empty dependencies file for testkit_determinism_test.
# This may be replaced when dependencies are built.
