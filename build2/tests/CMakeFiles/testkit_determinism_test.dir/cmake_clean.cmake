file(REMOVE_RECURSE
  "CMakeFiles/testkit_determinism_test.dir/testkit_determinism_test.cc.o"
  "CMakeFiles/testkit_determinism_test.dir/testkit_determinism_test.cc.o.d"
  "testkit_determinism_test"
  "testkit_determinism_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testkit_determinism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
