# Empty compiler generated dependencies file for bench_expansion.
# This may be replaced when dependencies are built.
