file(REMOVE_RECURSE
  "CMakeFiles/bench_expansion.dir/bench_expansion.cc.o"
  "CMakeFiles/bench_expansion.dir/bench_expansion.cc.o.d"
  "bench_expansion"
  "bench_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
