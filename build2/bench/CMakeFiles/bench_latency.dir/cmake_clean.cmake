file(REMOVE_RECURSE
  "CMakeFiles/bench_latency.dir/bench_latency.cc.o"
  "CMakeFiles/bench_latency.dir/bench_latency.cc.o.d"
  "bench_latency"
  "bench_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
