# Empty compiler generated dependencies file for bench_latency.
# This may be replaced when dependencies are built.
