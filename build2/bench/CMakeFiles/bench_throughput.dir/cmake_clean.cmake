file(REMOVE_RECURSE
  "CMakeFiles/bench_throughput.dir/bench_throughput.cc.o"
  "CMakeFiles/bench_throughput.dir/bench_throughput.cc.o.d"
  "bench_throughput"
  "bench_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
