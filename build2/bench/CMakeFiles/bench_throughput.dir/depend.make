# Empty dependencies file for bench_throughput.
# This may be replaced when dependencies are built.
