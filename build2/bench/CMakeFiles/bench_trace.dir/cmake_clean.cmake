file(REMOVE_RECURSE
  "CMakeFiles/bench_trace.dir/bench_trace.cc.o"
  "CMakeFiles/bench_trace.dir/bench_trace.cc.o.d"
  "bench_trace"
  "bench_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
