# Empty compiler generated dependencies file for bench_trace.
# This may be replaced when dependencies are built.
