# Empty compiler generated dependencies file for bench_windowed.
# This may be replaced when dependencies are built.
