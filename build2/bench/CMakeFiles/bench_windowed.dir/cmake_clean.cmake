file(REMOVE_RECURSE
  "CMakeFiles/bench_windowed.dir/bench_windowed.cc.o"
  "CMakeFiles/bench_windowed.dir/bench_windowed.cc.o.d"
  "bench_windowed"
  "bench_windowed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_windowed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
