# Empty compiler generated dependencies file for bench_ablation.
# This may be replaced when dependencies are built.
