file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation.dir/bench_ablation.cc.o"
  "CMakeFiles/bench_ablation.dir/bench_ablation.cc.o.d"
  "bench_ablation"
  "bench_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
