# Empty dependencies file for bench_case_study.
# This may be replaced when dependencies are built.
