file(REMOVE_RECURSE
  "CMakeFiles/bench_case_study.dir/bench_case_study.cc.o"
  "CMakeFiles/bench_case_study.dir/bench_case_study.cc.o.d"
  "bench_case_study"
  "bench_case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
