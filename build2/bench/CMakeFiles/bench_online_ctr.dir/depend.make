# Empty dependencies file for bench_online_ctr.
# This may be replaced when dependencies are built.
