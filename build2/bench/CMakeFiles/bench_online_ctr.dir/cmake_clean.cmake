file(REMOVE_RECURSE
  "CMakeFiles/bench_online_ctr.dir/bench_online_ctr.cc.o"
  "CMakeFiles/bench_online_ctr.dir/bench_online_ctr.cc.o.d"
  "bench_online_ctr"
  "bench_online_ctr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_online_ctr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
