file(REMOVE_RECURSE
  "CMakeFiles/bench_strategies.dir/bench_strategies.cc.o"
  "CMakeFiles/bench_strategies.dir/bench_strategies.cc.o.d"
  "bench_strategies"
  "bench_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
