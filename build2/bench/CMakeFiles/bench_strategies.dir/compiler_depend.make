# Empty compiler generated dependencies file for bench_strategies.
# This may be replaced when dependencies are built.
