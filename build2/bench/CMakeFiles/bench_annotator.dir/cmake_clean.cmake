file(REMOVE_RECURSE
  "CMakeFiles/bench_annotator.dir/bench_annotator.cc.o"
  "CMakeFiles/bench_annotator.dir/bench_annotator.cc.o.d"
  "bench_annotator"
  "bench_annotator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annotator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
