# Empty dependencies file for bench_annotator.
# This may be replaced when dependencies are built.
