# Empty compiler generated dependencies file for bench_sharding.
# This may be replaced when dependencies are built.
