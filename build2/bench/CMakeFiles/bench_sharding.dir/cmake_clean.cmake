file(REMOVE_RECURSE
  "CMakeFiles/bench_sharding.dir/bench_sharding.cc.o"
  "CMakeFiles/bench_sharding.dir/bench_sharding.cc.o.d"
  "bench_sharding"
  "bench_sharding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sharding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
