file(REMOVE_RECURSE
  "CMakeFiles/bench_update_churn.dir/bench_update_churn.cc.o"
  "CMakeFiles/bench_update_churn.dir/bench_update_churn.cc.o.d"
  "bench_update_churn"
  "bench_update_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
