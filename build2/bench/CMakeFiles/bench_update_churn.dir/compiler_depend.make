# Empty compiler generated dependencies file for bench_update_churn.
# This may be replaced when dependencies are built.
