file(REMOVE_RECURSE
  "CMakeFiles/bench_window.dir/bench_window.cc.o"
  "CMakeFiles/bench_window.dir/bench_window.cc.o.d"
  "bench_window"
  "bench_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
