# Empty dependencies file for bench_window.
# This may be replaced when dependencies are built.
