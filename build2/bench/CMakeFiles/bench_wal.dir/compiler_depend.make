# Empty compiler generated dependencies file for bench_wal.
# This may be replaced when dependencies are built.
