file(REMOVE_RECURSE
  "CMakeFiles/bench_wal.dir/bench_wal.cc.o"
  "CMakeFiles/bench_wal.dir/bench_wal.cc.o.d"
  "bench_wal"
  "bench_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
