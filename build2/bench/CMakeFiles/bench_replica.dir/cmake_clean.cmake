file(REMOVE_RECURSE
  "CMakeFiles/bench_replica.dir/bench_replica.cc.o"
  "CMakeFiles/bench_replica.dir/bench_replica.cc.o.d"
  "bench_replica"
  "bench_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
