# Empty compiler generated dependencies file for bench_replica.
# This may be replaced when dependencies are built.
