# Empty compiler generated dependencies file for bench_scalability.
# This may be replaced when dependencies are built.
