file(REMOVE_RECURSE
  "CMakeFiles/bench_scalability.dir/bench_scalability.cc.o"
  "CMakeFiles/bench_scalability.dir/bench_scalability.cc.o.d"
  "bench_scalability"
  "bench_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
