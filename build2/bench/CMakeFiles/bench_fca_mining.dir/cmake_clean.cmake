file(REMOVE_RECURSE
  "CMakeFiles/bench_fca_mining.dir/bench_fca_mining.cc.o"
  "CMakeFiles/bench_fca_mining.dir/bench_fca_mining.cc.o.d"
  "bench_fca_mining"
  "bench_fca_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fca_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
