# Empty dependencies file for bench_fca_mining.
# This may be replaced when dependencies are built.
