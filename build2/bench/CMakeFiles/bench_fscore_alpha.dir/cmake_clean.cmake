file(REMOVE_RECURSE
  "CMakeFiles/bench_fscore_alpha.dir/bench_fscore_alpha.cc.o"
  "CMakeFiles/bench_fscore_alpha.dir/bench_fscore_alpha.cc.o.d"
  "bench_fscore_alpha"
  "bench_fscore_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fscore_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
