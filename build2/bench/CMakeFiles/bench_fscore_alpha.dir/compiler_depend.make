# Empty compiler generated dependencies file for bench_fscore_alpha.
# This may be replaced when dependencies are built.
