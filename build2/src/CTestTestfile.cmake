# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
