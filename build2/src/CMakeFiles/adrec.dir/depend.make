# Empty dependencies file for adrec.
# This may be replaced when dependencies are built.
