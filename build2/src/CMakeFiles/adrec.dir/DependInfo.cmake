
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ads/ad_store.cc" "src/CMakeFiles/adrec.dir/ads/ad_store.cc.o" "gcc" "src/CMakeFiles/adrec.dir/ads/ad_store.cc.o.d"
  "/root/repo/src/ads/frequency_cap.cc" "src/CMakeFiles/adrec.dir/ads/frequency_cap.cc.o" "gcc" "src/CMakeFiles/adrec.dir/ads/frequency_cap.cc.o.d"
  "/root/repo/src/annotate/annotator.cc" "src/CMakeFiles/adrec.dir/annotate/annotator.cc.o" "gcc" "src/CMakeFiles/adrec.dir/annotate/annotator.cc.o.d"
  "/root/repo/src/annotate/kb_io.cc" "src/CMakeFiles/adrec.dir/annotate/kb_io.cc.o" "gcc" "src/CMakeFiles/adrec.dir/annotate/kb_io.cc.o.d"
  "/root/repo/src/annotate/knowledge_base.cc" "src/CMakeFiles/adrec.dir/annotate/knowledge_base.cc.o" "gcc" "src/CMakeFiles/adrec.dir/annotate/knowledge_base.cc.o.d"
  "/root/repo/src/common/fs_util.cc" "src/CMakeFiles/adrec.dir/common/fs_util.cc.o" "gcc" "src/CMakeFiles/adrec.dir/common/fs_util.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/adrec.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/adrec.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/adrec.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/adrec.dir/common/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/adrec.dir/common/random.cc.o" "gcc" "src/CMakeFiles/adrec.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/adrec.dir/common/status.cc.o" "gcc" "src/CMakeFiles/adrec.dir/common/status.cc.o.d"
  "/root/repo/src/common/string_util.cc" "src/CMakeFiles/adrec.dir/common/string_util.cc.o" "gcc" "src/CMakeFiles/adrec.dir/common/string_util.cc.o.d"
  "/root/repo/src/common/table_writer.cc" "src/CMakeFiles/adrec.dir/common/table_writer.cc.o" "gcc" "src/CMakeFiles/adrec.dir/common/table_writer.cc.o.d"
  "/root/repo/src/core/baselines.cc" "src/CMakeFiles/adrec.dir/core/baselines.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/baselines.cc.o.d"
  "/root/repo/src/core/decay_topic_model.cc" "src/CMakeFiles/adrec.dir/core/decay_topic_model.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/decay_topic_model.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/adrec.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/engine.cc.o.d"
  "/root/repo/src/core/lda.cc" "src/CMakeFiles/adrec.dir/core/lda.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/lda.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/CMakeFiles/adrec.dir/core/recommender.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/recommender.cc.o.d"
  "/root/repo/src/core/selling_points.cc" "src/CMakeFiles/adrec.dir/core/selling_points.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/selling_points.cc.o.d"
  "/root/repo/src/core/semantic.cc" "src/CMakeFiles/adrec.dir/core/semantic.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/semantic.cc.o.d"
  "/root/repo/src/core/sharded_engine.cc" "src/CMakeFiles/adrec.dir/core/sharded_engine.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/sharded_engine.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/adrec.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/tfca.cc" "src/CMakeFiles/adrec.dir/core/tfca.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/tfca.cc.o.d"
  "/root/repo/src/core/trending.cc" "src/CMakeFiles/adrec.dir/core/trending.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/trending.cc.o.d"
  "/root/repo/src/core/windowed_analyzer.cc" "src/CMakeFiles/adrec.dir/core/windowed_analyzer.cc.o" "gcc" "src/CMakeFiles/adrec.dir/core/windowed_analyzer.cc.o.d"
  "/root/repo/src/eval/ab_test.cc" "src/CMakeFiles/adrec.dir/eval/ab_test.cc.o" "gcc" "src/CMakeFiles/adrec.dir/eval/ab_test.cc.o.d"
  "/root/repo/src/eval/click_model.cc" "src/CMakeFiles/adrec.dir/eval/click_model.cc.o" "gcc" "src/CMakeFiles/adrec.dir/eval/click_model.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/adrec.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/adrec.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/adrec.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/adrec.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/oracle.cc" "src/CMakeFiles/adrec.dir/eval/oracle.cc.o" "gcc" "src/CMakeFiles/adrec.dir/eval/oracle.cc.o.d"
  "/root/repo/src/fca/bitset.cc" "src/CMakeFiles/adrec.dir/fca/bitset.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/bitset.cc.o.d"
  "/root/repo/src/fca/formal_context.cc" "src/CMakeFiles/adrec.dir/fca/formal_context.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/formal_context.cc.o.d"
  "/root/repo/src/fca/fuzzy_context.cc" "src/CMakeFiles/adrec.dir/fca/fuzzy_context.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/fuzzy_context.cc.o.d"
  "/root/repo/src/fca/fuzzy_triadic.cc" "src/CMakeFiles/adrec.dir/fca/fuzzy_triadic.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/fuzzy_triadic.cc.o.d"
  "/root/repo/src/fca/implications.cc" "src/CMakeFiles/adrec.dir/fca/implications.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/implications.cc.o.d"
  "/root/repo/src/fca/lattice.cc" "src/CMakeFiles/adrec.dir/fca/lattice.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/lattice.cc.o.d"
  "/root/repo/src/fca/stability.cc" "src/CMakeFiles/adrec.dir/fca/stability.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/stability.cc.o.d"
  "/root/repo/src/fca/triadic_context.cc" "src/CMakeFiles/adrec.dir/fca/triadic_context.cc.o" "gcc" "src/CMakeFiles/adrec.dir/fca/triadic_context.cc.o.d"
  "/root/repo/src/feed/stream_replayer.cc" "src/CMakeFiles/adrec.dir/feed/stream_replayer.cc.o" "gcc" "src/CMakeFiles/adrec.dir/feed/stream_replayer.cc.o.d"
  "/root/repo/src/feed/trace_io.cc" "src/CMakeFiles/adrec.dir/feed/trace_io.cc.o" "gcc" "src/CMakeFiles/adrec.dir/feed/trace_io.cc.o.d"
  "/root/repo/src/feed/workload.cc" "src/CMakeFiles/adrec.dir/feed/workload.cc.o" "gcc" "src/CMakeFiles/adrec.dir/feed/workload.cc.o.d"
  "/root/repo/src/geo/geohash.cc" "src/CMakeFiles/adrec.dir/geo/geohash.cc.o" "gcc" "src/CMakeFiles/adrec.dir/geo/geohash.cc.o.d"
  "/root/repo/src/geo/grid_index.cc" "src/CMakeFiles/adrec.dir/geo/grid_index.cc.o" "gcc" "src/CMakeFiles/adrec.dir/geo/grid_index.cc.o.d"
  "/root/repo/src/geo/places.cc" "src/CMakeFiles/adrec.dir/geo/places.cc.o" "gcc" "src/CMakeFiles/adrec.dir/geo/places.cc.o.d"
  "/root/repo/src/geo/point.cc" "src/CMakeFiles/adrec.dir/geo/point.cc.o" "gcc" "src/CMakeFiles/adrec.dir/geo/point.cc.o.d"
  "/root/repo/src/index/ad_index.cc" "src/CMakeFiles/adrec.dir/index/ad_index.cc.o" "gcc" "src/CMakeFiles/adrec.dir/index/ad_index.cc.o.d"
  "/root/repo/src/index/wand_index.cc" "src/CMakeFiles/adrec.dir/index/wand_index.cc.o" "gcc" "src/CMakeFiles/adrec.dir/index/wand_index.cc.o.d"
  "/root/repo/src/obs/metrics.cc" "src/CMakeFiles/adrec.dir/obs/metrics.cc.o" "gcc" "src/CMakeFiles/adrec.dir/obs/metrics.cc.o.d"
  "/root/repo/src/obs/stats_export.cc" "src/CMakeFiles/adrec.dir/obs/stats_export.cc.o" "gcc" "src/CMakeFiles/adrec.dir/obs/stats_export.cc.o.d"
  "/root/repo/src/obs/trace.cc" "src/CMakeFiles/adrec.dir/obs/trace.cc.o" "gcc" "src/CMakeFiles/adrec.dir/obs/trace.cc.o.d"
  "/root/repo/src/profile/user_profile.cc" "src/CMakeFiles/adrec.dir/profile/user_profile.cc.o" "gcc" "src/CMakeFiles/adrec.dir/profile/user_profile.cc.o.d"
  "/root/repo/src/replica/follower.cc" "src/CMakeFiles/adrec.dir/replica/follower.cc.o" "gcc" "src/CMakeFiles/adrec.dir/replica/follower.cc.o.d"
  "/root/repo/src/serve/client.cc" "src/CMakeFiles/adrec.dir/serve/client.cc.o" "gcc" "src/CMakeFiles/adrec.dir/serve/client.cc.o.d"
  "/root/repo/src/serve/protocol.cc" "src/CMakeFiles/adrec.dir/serve/protocol.cc.o" "gcc" "src/CMakeFiles/adrec.dir/serve/protocol.cc.o.d"
  "/root/repo/src/serve/reporter.cc" "src/CMakeFiles/adrec.dir/serve/reporter.cc.o" "gcc" "src/CMakeFiles/adrec.dir/serve/reporter.cc.o.d"
  "/root/repo/src/serve/server.cc" "src/CMakeFiles/adrec.dir/serve/server.cc.o" "gcc" "src/CMakeFiles/adrec.dir/serve/server.cc.o.d"
  "/root/repo/src/testkit/differential.cc" "src/CMakeFiles/adrec.dir/testkit/differential.cc.o" "gcc" "src/CMakeFiles/adrec.dir/testkit/differential.cc.o.d"
  "/root/repo/src/testkit/fault_injector.cc" "src/CMakeFiles/adrec.dir/testkit/fault_injector.cc.o" "gcc" "src/CMakeFiles/adrec.dir/testkit/fault_injector.cc.o.d"
  "/root/repo/src/testkit/minimizer.cc" "src/CMakeFiles/adrec.dir/testkit/minimizer.cc.o" "gcc" "src/CMakeFiles/adrec.dir/testkit/minimizer.cc.o.d"
  "/root/repo/src/text/analyzer.cc" "src/CMakeFiles/adrec.dir/text/analyzer.cc.o" "gcc" "src/CMakeFiles/adrec.dir/text/analyzer.cc.o.d"
  "/root/repo/src/text/porter_stemmer.cc" "src/CMakeFiles/adrec.dir/text/porter_stemmer.cc.o" "gcc" "src/CMakeFiles/adrec.dir/text/porter_stemmer.cc.o.d"
  "/root/repo/src/text/sparse_vector.cc" "src/CMakeFiles/adrec.dir/text/sparse_vector.cc.o" "gcc" "src/CMakeFiles/adrec.dir/text/sparse_vector.cc.o.d"
  "/root/repo/src/text/stopwords.cc" "src/CMakeFiles/adrec.dir/text/stopwords.cc.o" "gcc" "src/CMakeFiles/adrec.dir/text/stopwords.cc.o.d"
  "/root/repo/src/text/tfidf.cc" "src/CMakeFiles/adrec.dir/text/tfidf.cc.o" "gcc" "src/CMakeFiles/adrec.dir/text/tfidf.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/CMakeFiles/adrec.dir/text/tokenizer.cc.o" "gcc" "src/CMakeFiles/adrec.dir/text/tokenizer.cc.o.d"
  "/root/repo/src/text/vocabulary.cc" "src/CMakeFiles/adrec.dir/text/vocabulary.cc.o" "gcc" "src/CMakeFiles/adrec.dir/text/vocabulary.cc.o.d"
  "/root/repo/src/timeline/time_slots.cc" "src/CMakeFiles/adrec.dir/timeline/time_slots.cc.o" "gcc" "src/CMakeFiles/adrec.dir/timeline/time_slots.cc.o.d"
  "/root/repo/src/wal/checkpoint.cc" "src/CMakeFiles/adrec.dir/wal/checkpoint.cc.o" "gcc" "src/CMakeFiles/adrec.dir/wal/checkpoint.cc.o.d"
  "/root/repo/src/wal/record.cc" "src/CMakeFiles/adrec.dir/wal/record.cc.o" "gcc" "src/CMakeFiles/adrec.dir/wal/record.cc.o.d"
  "/root/repo/src/wal/wal.cc" "src/CMakeFiles/adrec.dir/wal/wal.cc.o" "gcc" "src/CMakeFiles/adrec.dir/wal/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
