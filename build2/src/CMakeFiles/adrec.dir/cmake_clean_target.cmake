file(REMOVE_RECURSE
  "libadrec.a"
)
