file(REMOVE_RECURSE
  "CMakeFiles/streaming_ads.dir/streaming_ads.cpp.o"
  "CMakeFiles/streaming_ads.dir/streaming_ads.cpp.o.d"
  "streaming_ads"
  "streaming_ads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_ads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
