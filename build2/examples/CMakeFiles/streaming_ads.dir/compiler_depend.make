# Empty compiler generated dependencies file for streaming_ads.
# This may be replaced when dependencies are built.
