# Empty dependencies file for adrec_client.
# This may be replaced when dependencies are built.
