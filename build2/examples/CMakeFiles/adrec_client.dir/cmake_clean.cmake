file(REMOVE_RECURSE
  "CMakeFiles/adrec_client.dir/adrec_client.cpp.o"
  "CMakeFiles/adrec_client.dir/adrec_client.cpp.o.d"
  "adrec_client"
  "adrec_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrec_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
