# Empty compiler generated dependencies file for audience_insights.
# This may be replaced when dependencies are built.
