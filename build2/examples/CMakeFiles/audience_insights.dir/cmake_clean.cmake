file(REMOVE_RECURSE
  "CMakeFiles/audience_insights.dir/audience_insights.cpp.o"
  "CMakeFiles/audience_insights.dir/audience_insights.cpp.o.d"
  "audience_insights"
  "audience_insights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audience_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
