file(REMOVE_RECURSE
  "CMakeFiles/adrecd.dir/adrecd.cpp.o"
  "CMakeFiles/adrecd.dir/adrecd.cpp.o.d"
  "adrecd"
  "adrecd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrecd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
