# Empty compiler generated dependencies file for adrecd.
# This may be replaced when dependencies are built.
