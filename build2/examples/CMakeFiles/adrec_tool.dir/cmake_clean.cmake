file(REMOVE_RECURSE
  "CMakeFiles/adrec_tool.dir/adrec_tool.cpp.o"
  "CMakeFiles/adrec_tool.dir/adrec_tool.cpp.o.d"
  "adrec_tool"
  "adrec_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adrec_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
