# Empty compiler generated dependencies file for adrec_tool.
# This may be replaced when dependencies are built.
