# Empty compiler generated dependencies file for trend_monitor.
# This may be replaced when dependencies are built.
