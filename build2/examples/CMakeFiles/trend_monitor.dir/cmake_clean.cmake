file(REMOVE_RECURSE
  "CMakeFiles/trend_monitor.dir/trend_monitor.cpp.o"
  "CMakeFiles/trend_monitor.dir/trend_monitor.cpp.o.d"
  "trend_monitor"
  "trend_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trend_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
