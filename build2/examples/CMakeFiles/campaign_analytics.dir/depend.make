# Empty dependencies file for campaign_analytics.
# This may be replaced when dependencies are built.
