file(REMOVE_RECURSE
  "CMakeFiles/campaign_analytics.dir/campaign_analytics.cpp.o"
  "CMakeFiles/campaign_analytics.dir/campaign_analytics.cpp.o.d"
  "campaign_analytics"
  "campaign_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campaign_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
