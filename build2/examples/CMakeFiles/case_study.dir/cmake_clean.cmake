file(REMOVE_RECURSE
  "CMakeFiles/case_study.dir/case_study.cpp.o"
  "CMakeFiles/case_study.dir/case_study.cpp.o.d"
  "case_study"
  "case_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
