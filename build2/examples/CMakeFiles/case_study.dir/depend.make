# Empty dependencies file for case_study.
# This may be replaced when dependencies are built.
