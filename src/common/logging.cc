#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace adrec {

namespace {

// Read on every log site from any shard thread, written by SetLogLevel;
// atomic so concurrent readers/writers are race-free.
std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return g_min_level.load(std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    // One fwrite per line: concurrent shard threads may interleave whole
    // lines, but never characters within a line.
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
  }
}

}  // namespace internal
}  // namespace adrec
