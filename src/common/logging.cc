#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace adrec {

namespace {

LogLevel g_min_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }

LogLevel GetLogLevel() { return g_min_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

}  // namespace internal
}  // namespace adrec
