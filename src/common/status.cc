#include "common/status.h"

namespace adrec {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace adrec
