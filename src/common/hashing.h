#ifndef ADREC_COMMON_HASHING_H_
#define ADREC_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>

namespace adrec {

/// splitmix64 finisher — cheap, well-mixed; the one integer mixer used
/// across the codebase (cache keys, shard routing, random streams share
/// the same constants on purpose: one audited bit-mixer, not three).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Content hash of an arbitrary byte string, built by chaining Mix64
/// over 8-byte little-endian words (tail bytes are zero-padded and the
/// length is folded in last, so "a" and "a\0" hash differently). Used
/// where a *stable on-disk fingerprint* is needed — delta-checkpoint
/// manifests record one per snapshot file — so the function must never
/// change across versions; it shares Mix64's audited constants rather
/// than introducing a second mixer.
inline uint64_t HashBytes(const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0x8445D61A4E774912ull;  // arbitrary non-zero seed
  size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    uint64_t w = 0;
    for (size_t b = 0; b < 8; ++b) {
      w |= static_cast<uint64_t>(p[i + b]) << (8 * b);
    }
    h = Mix64(h ^ w);
  }
  uint64_t tail = 0;
  for (size_t b = 0; i + b < len; ++b) {
    tail |= static_cast<uint64_t>(p[i + b]) << (8 * b);
  }
  h = Mix64(h ^ tail);
  return Mix64(h ^ static_cast<uint64_t>(len));
}

/// Fibonacci-hash partitioning of a 32-bit id over `num_shards` buckets.
/// Spreads sequential ids evenly; deterministic across processes, so a
/// restarted or replicated deployment routes identically.
inline size_t ShardOfId(uint32_t id, size_t num_shards) {
  const uint64_t h = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>(h >> 32) % num_shards;
}

}  // namespace adrec

#endif  // ADREC_COMMON_HASHING_H_
