#ifndef ADREC_COMMON_HASHING_H_
#define ADREC_COMMON_HASHING_H_

#include <cstddef>
#include <cstdint>

namespace adrec {

/// splitmix64 finisher — cheap, well-mixed; the one integer mixer used
/// across the codebase (cache keys, shard routing, random streams share
/// the same constants on purpose: one audited bit-mixer, not three).
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Fibonacci-hash partitioning of a 32-bit id over `num_shards` buckets.
/// Spreads sequential ids evenly; deterministic across processes, so a
/// restarted or replicated deployment routes identically.
inline size_t ShardOfId(uint32_t id, size_t num_shards) {
  const uint64_t h = static_cast<uint64_t>(id) * 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>(h >> 32) % num_shards;
}

}  // namespace adrec

#endif  // ADREC_COMMON_HASHING_H_
