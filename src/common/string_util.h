#ifndef ADREC_COMMON_STRING_UTIL_H_
#define ADREC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace adrec {

/// Splits `input` on `delim`, optionally dropping empty pieces.
std::vector<std::string_view> SplitString(std::string_view input, char delim,
                                          bool keep_empty = false);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// ASCII lowercase copy.
std::string ToLowerAscii(std::string_view s);

/// True iff `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace adrec

#endif  // ADREC_COMMON_STRING_UTIL_H_
