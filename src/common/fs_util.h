#ifndef ADREC_COMMON_FS_UTIL_H_
#define ADREC_COMMON_FS_UTIL_H_

#include <string>

#include "common/status.h"

namespace adrec {

/// Durability primitives shared by the snapshot writer and the WAL.
/// std::ofstream can flush to the kernel but cannot fsync; these helpers
/// provide the missing "and make it survive power loss" step.

/// fsync(2) on `path` (opened read-only). The file must exist.
Status FsyncFile(const std::string& path);

/// fsync(2) on the directory itself — required after rename/create/unlink
/// for the directory entry to be durable (POSIX leaves metadata ordering
/// undefined otherwise).
Status FsyncDir(const std::string& dir);

/// rename(2) with Status reporting; atomic within one filesystem.
Status RenamePath(const std::string& from, const std::string& to);

}  // namespace adrec

#endif  // ADREC_COMMON_FS_UTIL_H_
