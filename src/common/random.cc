#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace adrec {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : state_) word = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling: discard the biased tail of the 64-bit range.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

double Rng::NextExponential(double rate) {
  double u = NextDouble();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

ZipfSampler::ZipfSampler(size_t n, double s) {
  cdf_.resize(n == 0 ? 1 : n);
  double total = 0.0;
  for (size_t k = 0; k < cdf_.size(); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& v : cdf_) v /= total;
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

double ZipfSampler::Pmf(size_t k) const {
  if (k >= cdf_.size()) return 0.0;
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

std::vector<size_t> RandomPermutation(size_t n, Rng& rng) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), size_t{0});
  for (size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  return perm;
}

}  // namespace adrec
