#ifndef ADREC_COMMON_HISTOGRAM_H_
#define ADREC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adrec {

/// A log-bucketed histogram for latency/size measurements: O(1) record,
/// approximate quantiles without retaining samples. Buckets grow
/// geometrically (factor ~2^(1/4)), giving <= ~19% quantile error —
/// plenty for benchmark reporting while bounding memory for multi-million
/// sample runs.
class Histogram {
 public:
  Histogram();

  /// Records one non-negative value (negative values clamp to 0).
  void Record(double value);

  /// Number of recorded values.
  size_t count() const { return count_; }

  /// Sum and mean of recorded values.
  double sum() const { return sum_; }
  double Mean() const;

  /// Smallest/largest recorded value (0 when empty).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Approximate quantile q in [0, 1] (upper bound of the bucket holding
  /// the q-th sample). 0 when empty.
  double Quantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..." summary line.
  std::string Summary() const;

  /// Merges another histogram into this one. Empty operands are inert:
  /// merging an empty histogram changes nothing, and merging into an
  /// empty one adopts the other's min/max rather than absorbing the
  /// empty-state 0 sentinel.
  void Merge(const Histogram& other);

  /// Drops all recorded samples (periodic stats-reporting windows).
  void Reset();

 private:
  size_t BucketOf(double value) const;
  double BucketUpper(size_t bucket) const;

  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace adrec

#endif  // ADREC_COMMON_HISTOGRAM_H_
