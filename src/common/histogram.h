#ifndef ADREC_COMMON_HISTOGRAM_H_
#define ADREC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adrec {

/// One bucket of a Histogram's distribution: the bucket's inclusive upper
/// value bound and the number of samples that landed in it.
struct HistogramBucket {
  double upper = 0.0;
  uint64_t count = 0;
};

/// A log-bucketed histogram for latency/size measurements: O(1) record,
/// approximate quantiles without retaining samples. Buckets grow
/// geometrically (factor ~2^(1/4)), giving <= ~19% quantile error —
/// plenty for benchmark reporting while bounding memory for multi-million
/// sample runs.
class Histogram {
 public:
  Histogram();

  /// Records one non-negative value (negative values clamp to 0).
  void Record(double value);

  /// Number of recorded values.
  size_t count() const { return count_; }

  /// Sum and mean of recorded values.
  double sum() const { return sum_; }
  double Mean() const;

  /// Smallest/largest recorded value (0 when empty).
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Approximate quantile q in [0, 1] (upper bound of the bucket holding
  /// the q-th sample). 0 when empty.
  double Quantile(double q) const;

  /// "count=... mean=... p50=... p95=... p99=... max=..." summary line.
  std::string Summary() const;

  /// Merges another histogram into this one. Empty operands are inert:
  /// merging an empty histogram changes nothing, and merging into an
  /// empty one adopts the other's min/max rather than absorbing the
  /// empty-state 0 sentinel.
  void Merge(const Histogram& other);

  /// Drops all recorded samples (periodic stats-reporting windows).
  void Reset();

  /// The non-empty buckets in ascending bound order. Cumulative
  /// ("le"-style) exposition is derived by the caller (obs Prometheus
  /// exporter).
  std::vector<HistogramBucket> NonZeroBuckets() const;

  /// The distribution recorded since `earlier` was copied from this
  /// histogram: bucket-wise subtraction of the strictly-older snapshot
  /// (buckets only grow, so every delta is non-negative). The windowed
  /// half of periodic delta reporting — cumulative histograms stay
  /// intact, no Reset required. min/max of the window are approximated
  /// by the changed buckets' bounds. Passing a snapshot that is not an
  /// ancestor of this histogram clamps instead of underflowing.
  Histogram DeltaSince(const Histogram& earlier) const;

 private:
  size_t BucketOf(double value) const;
  double BucketUpper(size_t bucket) const;

  std::vector<uint64_t> buckets_;
  size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace adrec

#endif  // ADREC_COMMON_HISTOGRAM_H_
