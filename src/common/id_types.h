#ifndef ADREC_COMMON_ID_TYPES_H_
#define ADREC_COMMON_ID_TYPES_H_

#include <cstdint>
#include <functional>

namespace adrec {

/// Strongly-typed integer id. Tag makes UserId, AdId, ... distinct types so
/// they cannot be swapped accidentally at call sites, at zero runtime cost.
template <typename Tag>
struct TypedId {
  /// Sentinel for "no id".
  static constexpr uint32_t kInvalidValue = UINT32_MAX;

  uint32_t value = kInvalidValue;

  constexpr TypedId() = default;
  constexpr explicit TypedId(uint32_t v) : value(v) {}

  /// True iff this id holds a real value.
  constexpr bool valid() const { return value != kInvalidValue; }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value < b.value;
  }
};

struct UserIdTag {};
struct LocationIdTag {};
struct TopicIdTag {};
struct AdIdTag {};
struct SlotIdTag {};
struct CampaignIdTag {};

/// A user (tweet author / ad audience member).
using UserId = TypedId<UserIdTag>;
/// A named check-in location.
using LocationId = TypedId<LocationIdTag>;
/// An interned knowledge-base URI (topic).
using TopicId = TypedId<TopicIdTag>;
/// An advertisement.
using AdId = TypedId<AdIdTag>;
/// A discretised time slot (index into a TimeSlotScheme).
using SlotId = TypedId<SlotIdTag>;
/// An advertising campaign (owns ads and a budget).
using CampaignId = TypedId<CampaignIdTag>;

}  // namespace adrec

namespace std {

template <typename Tag>
struct hash<adrec::TypedId<Tag>> {
  size_t operator()(adrec::TypedId<Tag> id) const noexcept {
    // Fibonacci hashing spreads sequential ids across buckets.
    return static_cast<size_t>(id.value) * 0x9E3779B97F4A7C15ull >> 32;
  }
};

}  // namespace std

#endif  // ADREC_COMMON_ID_TYPES_H_
