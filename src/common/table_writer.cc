#include "common/table_writer.h"

#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec {

TableWriter::TableWriter(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  ADREC_CHECK(cells.size() == columns_.size());
  rows_.push_back(std::move(cells));
}

void TableWriter::AddNumericRow(const std::vector<double>& values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    cells.push_back(StringFormat("%.*f", precision, v));
  }
  AddRow(std::move(cells));
}

std::string TableWriter::ToText() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out = "== " + title_ + " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(columns_);
  std::string rule;
  for (size_t c = 0; c < columns_.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  out += rule + '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

std::string TableWriter::ToCsv() const {
  std::string out;
  auto sanitize = [](std::string cell) {
    for (char& ch : cell) {
      if (ch == ',') ch = ';';
    }
    return cell;
  };
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (c != 0) out += ',';
    out += sanitize(columns_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c != 0) out += ',';
      out += sanitize(row[c]);
    }
    out += '\n';
  }
  return out;
}

void TableWriter::Print() const { std::fputs(ToText().c_str(), stdout); }

}  // namespace adrec
