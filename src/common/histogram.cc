#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace adrec {

namespace {
// Geometric bucket growth factor: 2^(1/4).
const double kGrowth = std::pow(2.0, 0.25);
const double kLogGrowth = std::log(kGrowth);
// Bucket 0 holds [0, kFirstUpper).
constexpr double kFirstUpper = 1e-3;
}  // namespace

Histogram::Histogram() : buckets_(1, 0) {}

size_t Histogram::BucketOf(double value) const {
  if (value < kFirstUpper) return 0;
  return 1 + static_cast<size_t>(std::log(value / kFirstUpper) / kLogGrowth);
}

double Histogram::BucketUpper(size_t bucket) const {
  if (bucket == 0) return kFirstUpper;
  return kFirstUpper * std::pow(kGrowth, static_cast<double>(bucket));
}

void Histogram::Record(double value) {
  if (value < 0.0) value = 0.0;
  const size_t bucket = BucketOf(value);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  ++buckets_[bucket];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = static_cast<uint64_t>(
      q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      return std::min(BucketUpper(b), max_);
    }
  }
  return max_;
}

std::string Histogram::Summary() const {
  return StringFormat(
      "count=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f", count_,
      Mean(), Quantile(0.5), Quantile(0.95), Quantile(0.99), max());
}

void Histogram::Reset() {
  buckets_.assign(1, 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

std::vector<HistogramBucket> Histogram::NonZeroBuckets() const {
  std::vector<HistogramBucket> out;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] > 0) out.push_back({BucketUpper(b), buckets_[b]});
  }
  return out;
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  Histogram delta;
  delta.buckets_.assign(buckets_.size(), 0);
  size_t first_nonzero = SIZE_MAX;
  size_t last_nonzero = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    const uint64_t before =
        b < earlier.buckets_.size() ? earlier.buckets_[b] : 0;
    if (buckets_[b] <= before) continue;  // clamp non-ancestor snapshots
    delta.buckets_[b] = buckets_[b] - before;
    delta.count_ += delta.buckets_[b];
    if (first_nonzero == SIZE_MAX) first_nonzero = b;
    last_nonzero = b;
  }
  if (delta.count_ == 0) {
    delta.buckets_.assign(1, 0);
    return delta;
  }
  delta.sum_ = sum_ > earlier.sum_ ? sum_ - earlier.sum_ : 0.0;
  // Window extrema from the changed buckets: lower bound of the first,
  // upper bound of the last (capped by the cumulative max).
  delta.min_ = first_nonzero == 0 ? 0.0 : BucketUpper(first_nonzero - 1);
  delta.max_ = std::min(BucketUpper(last_nonzero), max_);
  return delta;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace adrec
