#ifndef ADREC_COMMON_STATUS_H_
#define ADREC_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace adrec {

/// Error categories used across the library. The library never throws;
/// all fallible operations return a Status or a Result<T> (RocksDB/Arrow
/// idiom), so callers must inspect the outcome explicitly.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kInternal = 7,
  kUnimplemented = 8,
  kIoError = 9,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation.
///
/// The OK status carries no message and is trivially copyable in practice
/// (empty string). Error statuses carry a code plus a context message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers mirroring the StatusCode enumerators.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The context message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "<Code>: <message>" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T: the return type of fallible functions
/// that produce a value.
///
/// Result is cheap to move and deliberately minimal: `ok()`, `status()`,
/// `value()` (requires ok) and `ValueOr(fallback)`.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status: `return Status::NotFound(..)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status: OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; must only be called when ok().
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// The contained value, or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;  // OK when value_ is set.
  std::optional<T> value_;
};

}  // namespace adrec

/// Propagates an error status to the caller: `ADREC_RETURN_NOT_OK(DoIt());`.
#define ADREC_RETURN_NOT_OK(expr)                 \
  do {                                            \
    ::adrec::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // ADREC_COMMON_STATUS_H_
