#ifndef ADREC_COMMON_TABLE_WRITER_H_
#define ADREC_COMMON_TABLE_WRITER_H_

#include <string>
#include <vector>

namespace adrec {

/// Accumulates rows and renders an aligned, human-readable table (the
/// format every bench binary prints for its paper table/figure) plus a CSV
/// form suitable for plotting.
class TableWriter {
 public:
  /// Creates a table titled `title` with the given column headers.
  TableWriter(std::string title, std::vector<std::string> columns);

  /// Appends a row; the cell count must equal the column count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats each double with `precision` decimals.
  void AddNumericRow(const std::vector<double>& values, int precision = 3);

  /// Renders the aligned text table.
  std::string ToText() const;

  /// Renders RFC-4180-ish CSV (no quoting of embedded commas needed for our
  /// data, but commas in cells are replaced by ';').
  std::string ToCsv() const;

  /// Prints ToText() to stdout.
  void Print() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adrec

#endif  // ADREC_COMMON_TABLE_WRITER_H_
