#ifndef ADREC_COMMON_LOGGING_H_
#define ADREC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace adrec {

/// Log severities, in increasing order.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum severity; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink: accumulates the message and emits it (with level
/// prefix, to stderr) on destruction. Used via the ADREC_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace adrec

/// Usage: ADREC_LOG(kInfo) << "built lattice with " << n << " concepts";
#define ADREC_LOG(severity)                                              \
  ::adrec::internal::LogMessage(::adrec::LogLevel::severity, __FILE__,   \
                                __LINE__)                                \
      .stream()

/// Fatal invariant check: prints the failed condition and aborts. Used for
/// programmer errors only (never for data-dependent conditions, which
/// return Status).
#define ADREC_CHECK(cond)                                                   \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ADREC_LOG(kError) << "CHECK failed: " #cond;                          \
      ::abort();                                                            \
    }                                                                       \
  } while (false)

#endif  // ADREC_COMMON_LOGGING_H_
