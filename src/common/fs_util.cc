#include "common/fs_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace adrec {

namespace {

Status FsyncAt(const std::string& path, int open_flags) {
  const int fd = ::open(path.c_str(), open_flags);
  if (fd < 0) {
    return Status::IoError(
        StringFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IoError(
        StringFormat("fsync %s: %s", path.c_str(), std::strerror(saved)));
  }
  return Status::OK();
}

}  // namespace

Status FsyncFile(const std::string& path) {
  return FsyncAt(path, O_RDONLY | O_CLOEXEC);
}

Status FsyncDir(const std::string& dir) {
  return FsyncAt(dir, O_RDONLY | O_DIRECTORY | O_CLOEXEC);
}

Status RenamePath(const std::string& from, const std::string& to) {
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError(StringFormat("rename %s -> %s: %s", from.c_str(),
                                        to.c_str(), std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace adrec
