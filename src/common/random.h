#ifndef ADREC_COMMON_RANDOM_H_
#define ADREC_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adrec {

/// SplitMix64: used to seed the main generator from a single 64-bit seed.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64-bit output.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256**: the library's deterministic PRNG. All synthetic workloads
/// are reproducible from a single seed, which the experiment harness pins.
class Rng {
 public:
  /// Seeds the four-word state via SplitMix64.
  explicit Rng(uint64_t seed = 0x5DEECE66Dull);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Standard normal via Box-Muller transform.
  double NextGaussian();

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double NextExponential(double rate);

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

/// Samples ranks from a Zipf distribution over {0, .., n-1} with skew s,
/// i.e. P(k) proportional to 1/(k+1)^s. Precomputes the CDF once; each
/// sample is a binary search (O(log n)). Used for topic and user popularity
/// in synthetic social streams, whose heavy tails are the property the
/// high-speed experiments exercise.
class ZipfSampler {
 public:
  /// Builds the CDF for n items with exponent s >= 0 (s = 0 is uniform).
  ZipfSampler(size_t n, double s);

  /// Draws one rank in [0, n).
  size_t Sample(Rng& rng) const;

  /// Number of items.
  size_t size() const { return cdf_.size(); }

  /// Probability mass of rank k.
  double Pmf(size_t k) const;

 private:
  std::vector<double> cdf_;
};

/// Returns a random permutation of {0..n-1} (Fisher-Yates).
std::vector<size_t> RandomPermutation(size_t n, Rng& rng);

}  // namespace adrec

#endif  // ADREC_COMMON_RANDOM_H_
