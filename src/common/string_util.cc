#include "common/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace adrec {

std::vector<std::string_view> SplitString(std::string_view input, char delim,
                                          bool keep_empty) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start <= input.size()) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) pos = input.size();
    std::string_view piece = input.substr(start, pos - start);
    if (keep_empty || !piece.empty()) out.push_back(piece);
    if (pos == input.size()) break;
    start = pos + 1;
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
           c == '\v';
  };
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StringFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace adrec
