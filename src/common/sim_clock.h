#ifndef ADREC_COMMON_SIM_CLOCK_H_
#define ADREC_COMMON_SIM_CLOCK_H_

#include <cstdint>

namespace adrec {

/// Timestamps are seconds since an arbitrary epoch (the start of the
/// simulated trace). 64-bit signed so arithmetic on differences is safe.
using Timestamp = int64_t;

/// Duration in seconds.
using DurationSec = int64_t;

constexpr DurationSec kSecondsPerMinute = 60;
constexpr DurationSec kSecondsPerHour = 3600;
constexpr DurationSec kSecondsPerDay = 86400;

/// A manually-advanced clock. All streaming components read time from a
/// SimClock so experiments replay identically regardless of wall-clock
/// speed; benchmarks advance it from event timestamps.
class SimClock {
 public:
  /// Starts at time 0 unless given an epoch.
  explicit SimClock(Timestamp start = 0) : now_(start) {}

  /// Current simulated time.
  Timestamp Now() const { return now_; }

  /// Moves time forward by `delta` seconds (negative deltas are ignored:
  /// simulated time is monotone).
  void Advance(DurationSec delta) {
    if (delta > 0) now_ += delta;
  }

  /// Jumps to `t` if `t` is later than now (monotone).
  void AdvanceTo(Timestamp t) {
    if (t > now_) now_ = t;
  }

 private:
  Timestamp now_;
};

/// Second-of-day in [0, 86400) for a timestamp.
inline int64_t SecondOfDay(Timestamp t) {
  int64_t s = t % kSecondsPerDay;
  if (s < 0) s += kSecondsPerDay;
  return s;
}

/// Day index (floor division) for a timestamp.
inline int64_t DayIndex(Timestamp t) {
  int64_t d = t / kSecondsPerDay;
  if (t % kSecondsPerDay < 0) --d;
  return d;
}

}  // namespace adrec

#endif  // ADREC_COMMON_SIM_CLOCK_H_
