#ifndef ADREC_EVAL_CLICK_MODEL_H_
#define ADREC_EVAL_CLICK_MODEL_H_

#include "common/random.h"
#include "feed/workload.h"

namespace adrec::eval {

/// Click-model parameters.
struct ClickModelOptions {
  /// Click probability when the ad matches the user's true interests AND
  /// the user frequents a target location in the current slot.
  double ctr_relevant = 0.12;
  /// Click probability when only the topical condition holds.
  double ctr_topical = 0.04;
  /// Click probability for irrelevant impressions.
  double ctr_irrelevant = 0.005;
  uint64_t seed = 7;
};

/// A position-less probabilistic click model over the generator's ground
/// truth: users click relevant ads at `ctr_relevant`, merely-topical ads
/// at `ctr_topical`, and anything else at `ctr_irrelevant`. Drives the
/// online serving experiment (E14): a policy that places context-matched
/// ads earns clicks at the relevant rate.
class ClickModel {
 public:
  ClickModel(const feed::Workload* workload, ClickModelOptions options = {});

  /// Relevance tier of showing `ad_index` to `user` at `time`:
  /// 2 = relevant (topical + co-located in slot), 1 = topical only,
  /// 0 = irrelevant.
  int RelevanceTier(UserId user, size_t ad_index, Timestamp time) const;

  /// Samples a click for one impression (deterministic stream per model).
  bool SampleClick(UserId user, size_t ad_index, Timestamp time);

  /// The click probability of an impression (no sampling).
  double ClickProbability(UserId user, size_t ad_index, Timestamp time) const;

 private:
  const feed::Workload* workload_;  // not owned
  ClickModelOptions options_;
  Rng rng_;
};

}  // namespace adrec::eval

#endif  // ADREC_EVAL_CLICK_MODEL_H_
