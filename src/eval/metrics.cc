#include "eval/metrics.h"

#include <unordered_set>

namespace adrec::eval {

Prf ComputePrf(const std::vector<UserId>& predicted,
               const std::vector<UserId>& relevant) {
  Prf out;
  std::unordered_set<uint32_t> predicted_set;
  for (UserId u : predicted) predicted_set.insert(u.value);
  std::unordered_set<uint32_t> relevant_set;
  for (UserId u : relevant) relevant_set.insert(u.value);
  out.predicted = predicted_set.size();
  out.relevant = relevant_set.size();
  for (uint32_t u : predicted_set) {
    if (relevant_set.count(u)) ++out.hits;
  }
  if (out.predicted == 0 && out.relevant == 0) {
    out.precision = out.recall = out.f_score = 1.0;
    return out;
  }
  out.precision = out.predicted == 0
                      ? 0.0
                      : static_cast<double>(out.hits) / out.predicted;
  out.recall = out.relevant == 0
                   ? 0.0
                   : static_cast<double>(out.hits) / out.relevant;
  const double denom = out.precision + out.recall;
  out.f_score = denom == 0.0 ? 0.0 : 2.0 * out.precision * out.recall / denom;
  return out;
}

Prf MacroAverage(const std::vector<Prf>& results) {
  Prf avg;
  if (results.empty()) return avg;
  for (const Prf& r : results) {
    avg.precision += r.precision;
    avg.recall += r.recall;
    avg.f_score += r.f_score;
    avg.predicted += r.predicted;
    avg.relevant += r.relevant;
    avg.hits += r.hits;
  }
  const double n = static_cast<double>(results.size());
  avg.precision /= n;
  avg.recall /= n;
  avg.f_score /= n;
  return avg;
}

}  // namespace adrec::eval
