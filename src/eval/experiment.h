#ifndef ADREC_EVAL_EXPERIMENT_H_
#define ADREC_EVAL_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "core/baselines.h"
#include "core/engine.h"
#include "eval/metrics.h"
#include "eval/oracle.h"
#include "feed/workload.h"

namespace adrec::eval {

/// A generated workload plus an engine that has ingested all of it — the
/// starting state of every quality experiment.
struct ExperimentSetup {
  feed::Workload workload;
  std::unique_ptr<core::RecommendationEngine> engine;
};

/// Generates the workload and streams every tweet, check-in and ad into a
/// fresh engine (no analysis run yet).
ExperimentSetup BuildExperiment(const feed::WorkloadOptions& options,
                                const core::EngineOptions& engine_options = {});

/// Predicted user set of `strategy` for (ad_index, slot). For the triadic
/// strategy the engine's current analysis is used (caller runs
/// RunAnalysis(alpha) first); `lda` is required only for kLdaLite.
std::vector<UserId> PredictUsers(core::StrategyKind strategy,
                                 const ExperimentSetup& setup,
                                 size_t ad_index, SlotId slot,
                                 const core::BaselineOptions& options,
                                 const core::LdaStrategy* lda = nullptr);

/// One point of the α sweep.
struct AlphaPoint {
  double alpha = 0.0;
  Prf prf;
};

/// E1/E2: macro-averaged P/R/F over the workload's ads in `slot`, for each
/// α. Only (ad, slot) pairs the ad actually targets participate. Runs
/// engine->RunAnalysis(alpha) per point (the location side is α-invariant,
/// matching the paper's remark).
std::vector<AlphaPoint> RunAlphaSweep(ExperimentSetup& setup,
                                      const GroundTruthOracle& oracle,
                                      SlotId slot,
                                      const std::vector<double>& alphas);

/// E8/E12: macro-averaged quality of one strategy across all targeted
/// (ad, slot) pairs of the daytime slots.
Prf EvaluateStrategy(core::StrategyKind strategy, ExperimentSetup& setup,
                     const GroundTruthOracle& oracle,
                     const core::BaselineOptions& options,
                     const core::LdaStrategy* lda = nullptr);

}  // namespace adrec::eval

#endif  // ADREC_EVAL_EXPERIMENT_H_
