#include "eval/experiment.h"

#include <algorithm>

#include "common/logging.h"
#include "core/recommender.h"

namespace adrec::eval {

ExperimentSetup BuildExperiment(const feed::WorkloadOptions& options,
                                const core::EngineOptions& engine_options) {
  ExperimentSetup setup;
  setup.workload = feed::GenerateWorkload(options);
  setup.engine = std::make_unique<core::RecommendationEngine>(
      setup.workload.kb, setup.workload.slots, engine_options);
  for (const feed::Ad& ad : setup.workload.ads) {
    ADREC_CHECK(setup.engine->InsertAd(ad).ok());
  }
  for (const feed::FeedEvent& event : setup.workload.MergedEvents()) {
    setup.engine->OnEvent(event);
  }
  return setup;
}

std::vector<UserId> PredictUsers(core::StrategyKind strategy,
                                 const ExperimentSetup& setup,
                                 size_t ad_index, SlotId slot,
                                 const core::BaselineOptions& options,
                                 const core::LdaStrategy* lda) {
  ADREC_CHECK(ad_index < setup.workload.ads.size());
  const feed::Ad& ad = setup.workload.ads[ad_index];
  const core::RecommendationEngine& engine = *setup.engine;
  core::AdContext ctx = engine.semantic().ProcessAd(ad);
  // The evaluation asks about one specific slot.
  ctx.slots = {slot};

  switch (strategy) {
    case core::StrategyKind::kTriadic: {
      core::MatchResult match =
          core::MatchAd(engine.analysis(), ctx, core::MatchOptions{});
      std::vector<UserId> out;
      for (const core::MatchedUser& mu : match.users) out.push_back(mu.user);
      return out;
    }
    case core::StrategyKind::kContentOnly:
      return core::ContentOnlyPredict(engine, ctx, options);
    case core::StrategyKind::kLocationOnly:
      return core::LocationOnlyPredict(engine, ctx, options);
    case core::StrategyKind::kPopularity:
      return core::PopularityPredict(engine, options);
    case core::StrategyKind::kLdaLite: {
      ADREC_CHECK(lda != nullptr);
      return lda->Predict(ad.copy, options.lda_threshold);
    }
  }
  return {};
}

namespace {

/// All (ad, slot) pairs the ads actually target within `slot` (or all
/// slots when slot is invalid), as ad indices.
std::vector<size_t> TargetedAds(const feed::Workload& workload, SlotId slot) {
  std::vector<size_t> out;
  for (size_t a = 0; a < workload.ads.size(); ++a) {
    const auto& targets = workload.ads[a].target_slots;
    if (targets.empty() ||
        std::find(targets.begin(), targets.end(), slot) != targets.end()) {
      out.push_back(a);
    }
  }
  return out;
}

}  // namespace

std::vector<AlphaPoint> RunAlphaSweep(ExperimentSetup& setup,
                                      const GroundTruthOracle& oracle,
                                      SlotId slot,
                                      const std::vector<double>& alphas) {
  std::vector<AlphaPoint> out;
  const std::vector<size_t> ads = TargetedAds(setup.workload, slot);
  core::BaselineOptions unused;
  for (double alpha : alphas) {
    ADREC_CHECK(setup.engine->RunAnalysis(alpha).ok());
    std::vector<Prf> per_ad;
    for (size_t a : ads) {
      const std::vector<UserId> predicted = PredictUsers(
          core::StrategyKind::kTriadic, setup, a, slot, unused);
      per_ad.push_back(ComputePrf(predicted, oracle.RelevantUsers(a, slot)));
    }
    AlphaPoint point;
    point.alpha = alpha;
    point.prf = MacroAverage(per_ad);
    out.push_back(point);
  }
  return out;
}

Prf EvaluateStrategy(core::StrategyKind strategy, ExperimentSetup& setup,
                     const GroundTruthOracle& oracle,
                     const core::BaselineOptions& options,
                     const core::LdaStrategy* lda) {
  std::vector<Prf> per_pair;
  // Daytime slots of the paper scheme: slot1 (1) and slot2 (2).
  for (uint32_t s : {1u, 2u}) {
    const SlotId slot(s);
    for (size_t a : TargetedAds(setup.workload, slot)) {
      const std::vector<UserId> predicted =
          PredictUsers(strategy, setup, a, slot, options, lda);
      per_pair.push_back(
          ComputePrf(predicted, oracle.RelevantUsers(a, slot)));
    }
  }
  return MacroAverage(per_pair);
}

}  // namespace adrec::eval
