#ifndef ADREC_EVAL_METRICS_H_
#define ADREC_EVAL_METRICS_H_

#include <vector>

#include "common/id_types.h"

namespace adrec::eval {

/// Set-retrieval quality numbers (Eqs. 7-9 of the methodology).
struct Prf {
  double precision = 0.0;
  double recall = 0.0;
  double f_score = 0.0;
  size_t predicted = 0;  ///< |Ũ|
  size_t relevant = 0;   ///< |U*|
  size_t hits = 0;       ///< |U* ∩ Ũ|
};

/// Computes precision/recall/F-score of a predicted user set against the
/// relevant set. Conventions: empty-predicted yields precision 0 (and
/// recall 0 unless relevant is also empty); if both sets are empty the
/// result is a perfect 1/1/1 (the system correctly said "nobody").
Prf ComputePrf(const std::vector<UserId>& predicted,
               const std::vector<UserId>& relevant);

/// Arithmetic mean over per-ad results (macro average, the convention for
/// small ad inventories).
Prf MacroAverage(const std::vector<Prf>& results);

}  // namespace adrec::eval

#endif  // ADREC_EVAL_METRICS_H_
