#include "eval/ab_test.h"

#include <cmath>

namespace adrec::eval {

namespace {

/// Standard normal CDF via erfc.
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

AbResult TwoProportionZTest(const ArmStats& a, const ArmStats& b) {
  AbResult out;
  out.ctr_a = a.Ctr();
  out.ctr_b = b.Ctr();
  out.lift = out.ctr_a == 0.0 ? 0.0 : (out.ctr_b - out.ctr_a) / out.ctr_a;
  out.p_value = 1.0;
  if (a.impressions == 0 || b.impressions == 0) return out;

  const double na = static_cast<double>(a.impressions);
  const double nb = static_cast<double>(b.impressions);
  const double pooled =
      (static_cast<double>(a.clicks) + static_cast<double>(b.clicks)) /
      (na + nb);
  const double var = pooled * (1.0 - pooled) * (1.0 / na + 1.0 / nb);
  if (var <= 0.0) return out;

  out.z = (out.ctr_b - out.ctr_a) / std::sqrt(var);
  out.p_value = 2.0 * (1.0 - NormalCdf(std::abs(out.z)));
  out.significant_95 = out.p_value < 0.05;
  return out;
}

}  // namespace adrec::eval
