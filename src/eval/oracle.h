#ifndef ADREC_EVAL_ORACLE_H_
#define ADREC_EVAL_ORACLE_H_

#include <vector>

#include "common/random.h"
#include "feed/workload.h"

namespace adrec::eval {

/// Oracle knobs.
struct OracleOptions {
  /// Probability of flipping each user's relevance label (simulates
  /// imperfect human annotators; 0 = exact truth).
  double label_noise = 0.0;
  uint64_t noise_seed = 99;
};

/// Plays the role of the paper's domain experts: given an ad and a time
/// slot, produces U* — the users genuinely interested in the ad there and
/// then. Because the workload generator samples tweets *from* user
/// interests and check-ins *from* user mobility, relevance is decidable
/// exactly:
///   u ∈ U*(a, t)  ⇔  interests(u) ∩ topics(a) ≠ ∅
///                  ∧ frequented(u, t) ∩ locations(a) ≠ ∅
///                  ∧ t ∈ slots(a)  (when the ad is slot-targeted).
class GroundTruthOracle {
 public:
  explicit GroundTruthOracle(const feed::Workload* workload,
                             OracleOptions options = {});

  /// U* for (ad_index, slot).
  std::vector<UserId> RelevantUsers(size_t ad_index, SlotId slot) const;

  /// Users topically interested in the ad, ignoring location and time
  /// (the oracle for content-only ablations).
  std::vector<UserId> TopicallyInterested(size_t ad_index) const;

 private:
  bool FlipNoise(uint32_t user, size_t ad_index, SlotId slot) const;

  const feed::Workload* workload_;  // not owned
  OracleOptions options_;
};

}  // namespace adrec::eval

#endif  // ADREC_EVAL_ORACLE_H_
