#include "eval/oracle.h"

#include <algorithm>

#include "common/logging.h"

namespace adrec::eval {

GroundTruthOracle::GroundTruthOracle(const feed::Workload* workload,
                                     OracleOptions options)
    : workload_(workload), options_(options) {
  ADREC_CHECK(workload != nullptr);
}

bool GroundTruthOracle::FlipNoise(uint32_t user, size_t ad_index,
                                  SlotId slot) const {
  if (options_.label_noise <= 0.0) return false;
  // Deterministic per-(user, ad, slot) noise: hash into a seeded stream.
  Rng rng(options_.noise_seed ^ (static_cast<uint64_t>(user) << 32) ^
          (static_cast<uint64_t>(ad_index) << 8) ^ slot.value);
  return rng.NextBool(options_.label_noise);
}

std::vector<UserId> GroundTruthOracle::RelevantUsers(size_t ad_index,
                                                     SlotId slot) const {
  ADREC_CHECK(ad_index < workload_->ads.size());
  const feed::Ad& ad = workload_->ads[ad_index];
  const std::vector<TopicId>& ad_topics = workload_->ad_topics[ad_index];

  // Slot-targeted ads are relevant to nobody outside their slots.
  if (!ad.target_slots.empty() &&
      std::find(ad.target_slots.begin(), ad.target_slots.end(), slot) ==
          ad.target_slots.end()) {
    return {};
  }

  std::vector<UserId> out;
  for (size_t u = 0; u < workload_->truth.size(); ++u) {
    const feed::UserTruth& truth = workload_->truth[u];
    bool topical = false;
    for (TopicId t : truth.interests) {
      if (std::find(ad_topics.begin(), ad_topics.end(), t) !=
          ad_topics.end()) {
        topical = true;
        break;
      }
    }
    bool located = false;
    if (slot.value < truth.frequented.size()) {
      for (LocationId m : truth.frequented[slot.value]) {
        if (std::find(ad.target_locations.begin(), ad.target_locations.end(),
                      m) != ad.target_locations.end()) {
          located = true;
          break;
        }
      }
    }
    bool relevant = topical && located;
    if (FlipNoise(static_cast<uint32_t>(u), ad_index, slot)) {
      relevant = !relevant;
    }
    if (relevant) out.push_back(UserId(static_cast<uint32_t>(u)));
  }
  return out;
}

std::vector<UserId> GroundTruthOracle::TopicallyInterested(
    size_t ad_index) const {
  ADREC_CHECK(ad_index < workload_->ads.size());
  const std::vector<TopicId>& ad_topics = workload_->ad_topics[ad_index];
  std::vector<UserId> out;
  for (size_t u = 0; u < workload_->truth.size(); ++u) {
    for (TopicId t : workload_->truth[u].interests) {
      if (std::find(ad_topics.begin(), ad_topics.end(), t) !=
          ad_topics.end()) {
        out.push_back(UserId(static_cast<uint32_t>(u)));
        break;
      }
    }
  }
  return out;
}

}  // namespace adrec::eval
