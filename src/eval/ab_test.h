#ifndef ADREC_EVAL_AB_TEST_H_
#define ADREC_EVAL_AB_TEST_H_

#include <cstddef>

namespace adrec::eval {

/// Outcome counts of one experiment arm.
struct ArmStats {
  size_t impressions = 0;
  size_t clicks = 0;

  double Ctr() const {
    return impressions == 0
               ? 0.0
               : static_cast<double>(clicks) /
                     static_cast<double>(impressions);
  }
};

/// Result of a two-proportion z-test between arms.
struct AbResult {
  double ctr_a = 0.0;
  double ctr_b = 0.0;
  double lift = 0.0;     ///< (ctr_b - ctr_a) / ctr_a; 0 when ctr_a == 0
  double z = 0.0;        ///< z statistic (b vs a)
  double p_value = 0.0;  ///< two-sided
  bool significant_95 = false;
};

/// Two-proportion z-test: is arm B's CTR different from arm A's? Uses the
/// pooled-variance normal approximation, adequate for the impression
/// volumes the serving simulations produce. Degenerate inputs (an empty
/// arm, or zero pooled variance) return z = 0, p = 1.
AbResult TwoProportionZTest(const ArmStats& a, const ArmStats& b);

}  // namespace adrec::eval

#endif  // ADREC_EVAL_AB_TEST_H_
