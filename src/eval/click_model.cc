#include "eval/click_model.h"

#include <algorithm>

#include "common/logging.h"

namespace adrec::eval {

ClickModel::ClickModel(const feed::Workload* workload,
                       ClickModelOptions options)
    : workload_(workload), options_(options), rng_(options.seed) {
  ADREC_CHECK(workload != nullptr);
}

int ClickModel::RelevanceTier(UserId user, size_t ad_index,
                              Timestamp time) const {
  ADREC_CHECK(ad_index < workload_->ads.size());
  ADREC_CHECK(user.value < workload_->truth.size());
  const feed::UserTruth& truth = workload_->truth[user.value];
  const std::vector<TopicId>& ad_topics = workload_->ad_topics[ad_index];

  bool topical = false;
  for (TopicId t : truth.interests) {
    if (std::find(ad_topics.begin(), ad_topics.end(), t) != ad_topics.end()) {
      topical = true;
      break;
    }
  }
  if (!topical) return 0;

  const SlotId slot = workload_->slots.SlotOf(time);
  const feed::Ad& ad = workload_->ads[ad_index];
  if (slot.value < truth.frequented.size()) {
    for (LocationId m : truth.frequented[slot.value]) {
      if (std::find(ad.target_locations.begin(), ad.target_locations.end(),
                    m) != ad.target_locations.end()) {
        return 2;
      }
    }
  }
  return 1;
}

double ClickModel::ClickProbability(UserId user, size_t ad_index,
                                    Timestamp time) const {
  switch (RelevanceTier(user, ad_index, time)) {
    case 2:
      return options_.ctr_relevant;
    case 1:
      return options_.ctr_topical;
    default:
      return options_.ctr_irrelevant;
  }
}

bool ClickModel::SampleClick(UserId user, size_t ad_index, Timestamp time) {
  return rng_.NextBool(ClickProbability(user, ad_index, time));
}

}  // namespace adrec::eval
