#ifndef ADREC_OBS_STATS_EXPORT_H_
#define ADREC_OBS_STATS_EXPORT_H_

#include <map>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace adrec::obs {

/// Summary statistics of one timer distribution — what the exporters
/// print per timer (the histogram buckets themselves stay internal).
struct TimerStat {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// An export-ready view of a MetricsSnapshot: plain numbers only, so it
/// round-trips losslessly through the JSON form.
struct StatsReport {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> timers;
};

/// Collapses a snapshot's histograms into quantile summaries.
StatsReport BuildReport(const MetricsSnapshot& snapshot);

/// Human-readable export: one aligned table per metric kind (rendered
/// with common/table_writer). `title` heads the timer table.
std::string ExportText(const StatsReport& report,
                       const std::string& title = "metrics");

/// Machine-readable export:
///   {"counters":{...},"gauges":{...},
///    "timers":{"name":{"count":..,"mean":..,"p50":..,...},...}}
/// Deterministic key order (reports use ordered maps).
std::string ExportJson(const StatsReport& report);

/// Parses the output of ExportJson back into a report (the round-trip
/// used by `adrec_tool stats` self-check and bench tooling). Accepts
/// only the restricted JSON subset ExportJson emits.
Result<StatsReport> ParseJson(const std::string& json);

}  // namespace adrec::obs

#endif  // ADREC_OBS_STATS_EXPORT_H_
