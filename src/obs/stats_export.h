#ifndef ADREC_OBS_STATS_EXPORT_H_
#define ADREC_OBS_STATS_EXPORT_H_

#include <map>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace adrec::obs {

/// Summary statistics of one timer distribution — what the exporters
/// print per timer (the histogram buckets themselves stay internal).
struct TimerStat {
  uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// An export-ready view of a MetricsSnapshot: plain numbers only, so it
/// round-trips losslessly through the JSON form.
struct StatsReport {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> timers;
};

/// Collapses a snapshot's histograms into quantile summaries.
StatsReport BuildReport(const MetricsSnapshot& snapshot);

/// Human-readable export: one aligned table per metric kind (rendered
/// with common/table_writer). `title` heads the timer table.
std::string ExportText(const StatsReport& report,
                       const std::string& title = "metrics");

/// Machine-readable export:
///   {"counters":{...},"gauges":{...},
///    "timers":{"name":{"count":..,"mean":..,"p50":..,...},...}}
/// Deterministic key order (reports use ordered maps).
std::string ExportJson(const StatsReport& report);

/// Parses the output of ExportJson back into a report (the round-trip
/// used by `adrec_tool stats` self-check and bench tooling). Accepts
/// only the restricted JSON subset ExportJson emits.
Result<StatsReport> ParseJson(const std::string& json);

/// Prometheus text exposition (format version 0.0.4) of a full snapshot —
/// the scrape payload served by the daemon's `metrics` command and
/// `adrec_tool stats --format=prometheus`. Takes the snapshot (not the
/// report) because histograms are exposed with their buckets.
///
/// Mapping rules:
///  * names: dots become underscores under an `adrec_` namespace prefix
///    (`serve.bytes_in` → `adrec_serve_bytes_in`);
///  * counters get the `_total` suffix and TYPE `counter`;
///  * gauges are emitted verbatim with TYPE `gauge`;
///  * timers become TYPE `histogram` with cumulative `_bucket{le="..."}`
///    series over the non-empty log buckets plus `+Inf`, `_sum` and
///    `_count`;
///  * unit suffixes are converted to Prometheus base units: a `_us` or
///    `_ms` timer is renamed `_seconds` and its bounds/sum are scaled.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

}  // namespace adrec::obs

#endif  // ADREC_OBS_STATS_EXPORT_H_
