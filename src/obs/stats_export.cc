#include "obs/stats_export.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"
#include "common/table_writer.h"

namespace adrec::obs {

namespace {

TimerStat SummarizeHistogram(const Histogram& h) {
  TimerStat stat;
  stat.count = h.count();
  stat.mean = h.Mean();
  stat.p50 = h.Quantile(0.50);
  stat.p95 = h.Quantile(0.95);
  stat.p99 = h.Quantile(0.99);
  stat.min = h.min();
  stat.max = h.max();
  return stat;
}

// %.17g prints doubles with enough digits to round-trip exactly.
std::string JsonNumber(double v) { return StringFormat("%.17g", v); }

void AppendQuoted(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

/// Minimal recursive-descent parser for the subset ExportJson emits:
/// objects whose values are numbers or nested objects of numbers.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<std::string> ParseString() {
    SkipSpace();
    if (!Consume('"')) return Fail("expected '\"'");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out.push_back(c);
    }
    if (!Consume('"')) return Fail("unterminated string");
    return out;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return Fail("expected number");
    pos_ += static_cast<size_t>(end - start);
    return v;
  }

  Status Fail(const std::string& what) {
    return Status::InvalidArgument(
        StringFormat("stats json: %s at offset %zu", what.c_str(), pos_));
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

/// Parses {"key": number, ...} into `out` via `emit(key, value)`.
template <typename Emit>
Status ParseNumberObject(JsonCursor* cur, const Emit& emit) {
  if (!cur->Consume('{')) return cur->Fail("expected '{'");
  if (cur->Consume('}')) return Status::OK();
  do {
    auto key = cur->ParseString();
    ADREC_RETURN_NOT_OK(key.status());
    if (!cur->Consume(':')) return cur->Fail("expected ':'");
    auto value = cur->ParseNumber();
    ADREC_RETURN_NOT_OK(value.status());
    emit(key.value(), value.value());
  } while (cur->Consume(','));
  if (!cur->Consume('}')) return cur->Fail("expected '}'");
  return Status::OK();
}

}  // namespace

StatsReport BuildReport(const MetricsSnapshot& snapshot) {
  StatsReport report;
  report.counters = snapshot.counters;
  report.gauges = snapshot.gauges;
  for (const auto& [name, hist] : snapshot.timers) {
    report.timers.emplace(name, SummarizeHistogram(hist));
  }
  return report;
}

std::string ExportText(const StatsReport& report, const std::string& title) {
  std::string out;
  if (!report.counters.empty() || !report.gauges.empty()) {
    TableWriter counters(title + " — counters", {"name", "value"});
    for (const auto& [name, value] : report.counters) {
      counters.AddRow({name, StringFormat("%llu",
                                          static_cast<unsigned long long>(
                                              value))});
    }
    for (const auto& [name, value] : report.gauges) {
      counters.AddRow({name, StringFormat("%.3f", value)});
    }
    out += counters.ToText();
    out += "\n";
  }
  if (!report.timers.empty()) {
    TableWriter timers(
        title + " — stage timings (us)",
        {"stage", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, t] : report.timers) {
      timers.AddRow({name,
                     StringFormat("%llu",
                                  static_cast<unsigned long long>(t.count)),
                     StringFormat("%.1f", t.mean),
                     StringFormat("%.1f", t.p50),
                     StringFormat("%.1f", t.p95),
                     StringFormat("%.1f", t.p99),
                     StringFormat("%.1f", t.max)});
    }
    out += timers.ToText();
  }
  return out;
}

std::string ExportJson(const StatsReport& report) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : report.counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendQuoted(&out, name);
    out += StringFormat(":%llu", static_cast<unsigned long long>(value));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : report.gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendQuoted(&out, name);
    out.push_back(':');
    out += JsonNumber(value);
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : report.timers) {
    if (!first) out.push_back(',');
    first = false;
    AppendQuoted(&out, name);
    out += StringFormat(":{\"count\":%llu,\"mean\":%s,\"p50\":%s,"
                        "\"p95\":%s,\"p99\":%s,\"min\":%s,\"max\":%s}",
                        static_cast<unsigned long long>(t.count),
                        JsonNumber(t.mean).c_str(), JsonNumber(t.p50).c_str(),
                        JsonNumber(t.p95).c_str(), JsonNumber(t.p99).c_str(),
                        JsonNumber(t.min).c_str(), JsonNumber(t.max).c_str());
  }
  out += "}}";
  return out;
}

namespace {

/// `engine.topk_us` → `adrec_engine_topk` + scale 1e-6 (seconds), etc.
struct PromName {
  std::string name;
  double scale = 1.0;  // multiplier into Prometheus base units
  bool is_duration = false;
};

PromName PrometheusName(const std::string& raw) {
  PromName out;
  std::string base = raw;
  if (EndsWith(base, "_us")) {
    base.resize(base.size() - 3);
    out.scale = 1e-6;
    out.is_duration = true;
  } else if (EndsWith(base, "_ms")) {
    base.resize(base.size() - 3);
    out.scale = 1e-3;
    out.is_duration = true;
  }
  out.name = "adrec_";
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.name.push_back(ok ? c : '_');
  }
  if (out.is_duration) out.name += "_seconds";
  return out;
}

// Shortest-exact float form for bucket bounds and sums.
std::string PromNumber(double v) { return StringFormat("%.9g", v); }

}  // namespace

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [raw, value] : snapshot.counters) {
    const PromName p = PrometheusName(raw);
    out += "# TYPE " + p.name + "_total counter\n";
    out += p.name + StringFormat("_total %llu\n",
                                 static_cast<unsigned long long>(value));
  }
  for (const auto& [raw, value] : snapshot.gauges) {
    // Gauges keep their unit suffix (`replica.lag_ms` ->
    // `adrec_replica_lag_ms`): the `_us`/`_ms` -> `_seconds` rewrite is
    // a histogram-bucket rescale, and a renamed-but-unscaled gauge would
    // lie about its unit.
    std::string name = "adrec_";
    for (char c : raw) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      name.push_back(ok ? c : '_');
    }
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + PromNumber(value) + "\n";
  }
  for (const auto& [raw, hist] : snapshot.timers) {
    const PromName p = PrometheusName(raw);
    out += "# TYPE " + p.name + " histogram\n";
    uint64_t cumulative = 0;
    for (const HistogramBucket& b : hist.NonZeroBuckets()) {
      cumulative += b.count;
      out += p.name + "_bucket{le=\"" + PromNumber(b.upper * p.scale) +
             StringFormat("\"} %llu\n",
                          static_cast<unsigned long long>(cumulative));
    }
    out += p.name + StringFormat("_bucket{le=\"+Inf\"} %llu\n",
                                 static_cast<unsigned long long>(
                                     hist.count()));
    out += p.name + "_sum " + PromNumber(hist.sum() * p.scale) + "\n";
    out += p.name + StringFormat("_count %llu\n",
                                 static_cast<unsigned long long>(
                                     hist.count()));
  }
  return out;
}

Result<StatsReport> ParseJson(const std::string& json) {
  StatsReport report;
  JsonCursor cur(json);
  if (!cur.Consume('{')) return cur.Fail("expected '{'");
  do {
    auto section = cur.ParseString();
    ADREC_RETURN_NOT_OK(section.status());
    if (!cur.Consume(':')) return cur.Fail("expected ':'");
    if (section.value() == "counters") {
      ADREC_RETURN_NOT_OK(ParseNumberObject(
          &cur, [&](const std::string& k, double v) {
            report.counters[k] = static_cast<uint64_t>(v);
          }));
    } else if (section.value() == "gauges") {
      ADREC_RETURN_NOT_OK(ParseNumberObject(
          &cur,
          [&](const std::string& k, double v) { report.gauges[k] = v; }));
    } else if (section.value() == "timers") {
      if (!cur.Consume('{')) return cur.Fail("expected '{'");
      if (!cur.Consume('}')) {
        do {
          auto name = cur.ParseString();
          ADREC_RETURN_NOT_OK(name.status());
          if (!cur.Consume(':')) return cur.Fail("expected ':'");
          TimerStat t;
          ADREC_RETURN_NOT_OK(ParseNumberObject(
              &cur, [&](const std::string& k, double v) {
                if (k == "count") t.count = static_cast<uint64_t>(v);
                else if (k == "mean") t.mean = v;
                else if (k == "p50") t.p50 = v;
                else if (k == "p95") t.p95 = v;
                else if (k == "p99") t.p99 = v;
                else if (k == "min") t.min = v;
                else if (k == "max") t.max = v;
              }));
          report.timers[name.value()] = t;
        } while (cur.Consume(','));
        if (!cur.Consume('}')) return cur.Fail("expected '}'");
      }
    } else {
      return cur.Fail("unknown section '" + section.value() + "'");
    }
  } while (cur.Consume(','));
  if (!cur.Consume('}')) return cur.Fail("expected '}'");
  if (!cur.AtEnd()) return cur.Fail("trailing data");
  return report;
}

}  // namespace adrec::obs
