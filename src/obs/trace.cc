#include "obs/trace.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/string_util.h"

namespace adrec::obs {

namespace {

/// Copies a (possibly truncated) view into a fixed NUL-terminated buffer.
void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

thread_local TraceBuilder* g_active_trace = nullptr;

// Span timing reads the clock on every StartSpan/EndSpan — six times on
// a typical request — so its cost is the floor of the whole tracer. On
// x86 an invariant-TSC read is ~8ns against ~30ns for the steady_clock
// vDSO call; ticks are converted to nanoseconds through a scale
// calibrated once against the steady clock (a 1ms sleep window: ±0.1%,
// irrelevant for forensic timings). Everything outside this block keeps
// std::chrono, so non-x86 builds just run on steady_clock.
#if defined(__x86_64__) || defined(__i386__)
inline uint64_t FastTicks() { return __builtin_ia32_rdtsc(); }
double NsPerTick() {
  static const double scale = [] {
    const auto s0 = std::chrono::steady_clock::now();
    const uint64_t t0 = FastTicks();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const uint64_t t1 = FastTicks();
    const auto s1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(s1 - s0)
            .count());
    return t1 > t0 ? ns / static_cast<double>(t1 - t0) : 1.0;
  }();
  return scale;
}
#else
inline uint64_t FastTicks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
double NsPerTick() { return 1.0; }
#endif

}  // namespace

std::string_view TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kOk:
      return "ok";
    case TraceOutcome::kError:
      return "error";
    case TraceOutcome::kShed:
      return "shed";
    case TraceOutcome::kReadonly:
      return "readonly";
  }
  return "unknown";
}

TraceBuilder* ActiveTrace() { return g_active_trace; }
void SetActiveTrace(TraceBuilder* builder) { g_active_trace = builder; }

// --- TraceBuilder ---

void TraceBuilder::ClearRecord() {
  rec_.trace_id = 0;
  rec_.wall_start_us = 0;
  rec_.dur_ns = 0;
  rec_.num_spans = 0;
  rec_.spans_dropped = 0;
  rec_.outcome = TraceOutcome::kOk;
  rec_.worker = 0;
  rec_.reason[0] = '\0';
  rec_.detail[0] = '\0';
  open_depth_ = 0;
  closed_ = false;
}

void TraceBuilder::Start(uint64_t trace_id, std::string_view detail) {
  ClearRecord();
  rec_.trace_id = trace_id;
  // If the process never built a collector, calibration lands here —
  // before t0 is stamped, so it never inflates this trace's spans.
  (void)NsPerTick();
  t0_ = std::chrono::steady_clock::now();
  t0_ticks_ = FastTicks();
  // Wall time is derived from the steady clock through a process-wide
  // anchor taken once: a second kernel clock read per request would buy
  // only immunity to wall-clock steps (NTP), which forensic timestamps
  // don't need.
  static const int64_t wall_minus_steady_us = [] {
    const auto wall = std::chrono::system_clock::now();
    const auto steady = std::chrono::steady_clock::now();
    return std::chrono::duration_cast<std::chrono::microseconds>(
               wall.time_since_epoch())
               .count() -
           std::chrono::duration_cast<std::chrono::microseconds>(
               steady.time_since_epoch())
               .count();
  }();
  rec_.wall_start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          t0_.time_since_epoch())
          .count() +
      wall_minus_steady_us;
  CopyTruncated(rec_.detail, kTraceDetailBytes, detail);
}

uint64_t TraceBuilder::NowRelNs() const {
  const uint64_t now = FastTicks();
  // A TSC not synchronized across cores could read "before" t0; clamp
  // rather than wrap to a ~585-year duration.
  if (now <= t0_ticks_) return 0;
  return static_cast<uint64_t>(static_cast<double>(now - t0_ticks_) *
                               NsPerTick());
}

uint32_t TraceBuilder::StartSpan(const char* name) {
  if (rec_.trace_id == 0) return 0;
  if (rec_.num_spans >= kTraceMaxSpans) {
    ++rec_.spans_dropped;
    return 0;
  }
  const uint32_t idx = rec_.num_spans++;
  SpanRecord& span = rec_.spans[idx];
  span.name = name;
  span.parent = open_depth_ > 0 ? open_stack_[open_depth_ - 1] : 0;
  span.start_ns = NowRelNs();
  span.dur_ns = 0;
  const uint32_t token = idx + 1;
  open_stack_[open_depth_++] = token;
  return token;
}

void TraceBuilder::EndSpan(uint32_t token) {
  if (token == 0 || rec_.trace_id == 0) return;
  SpanRecord& span = rec_.spans[token - 1];
  const uint64_t now = NowRelNs();
  span.dur_ns = now >= span.start_ns ? now - span.start_ns : 0;
  // Pop through the token: tolerates a mismatched (already-popped) end.
  uint32_t depth = open_depth_;
  while (depth > 0) {
    if (open_stack_[--depth] == token) {
      open_depth_ = depth;
      return;
    }
  }
}

uint32_t TraceBuilder::AddSpan(const char* name,
                               std::chrono::steady_clock::time_point start,
                               std::chrono::steady_clock::time_point end,
                               uint32_t parent) {
  if (rec_.trace_id == 0) return 0;
  if (rec_.num_spans >= kTraceMaxSpans) {
    ++rec_.spans_dropped;
    return 0;
  }
  const uint32_t idx = rec_.num_spans++;
  SpanRecord& span = rec_.spans[idx];
  span.name = name;
  // Like StartSpan, an unparented measured span lands under the
  // innermost open span (the analysis sub-phases belong inside the
  // dispatch span that is live while they are added); explicit parents
  // override.
  span.parent = parent != 0 ? parent
               : open_depth_ > 0 ? open_stack_[open_depth_ - 1]
                                 : 0;
  // Clamp at the trace root: a shared interval (the commit wave) may
  // technically begin a hair before a late-wave trace started.
  const auto rel_start = start > t0_ ? start - t0_ : t0_ - t0_;
  span.start_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(rel_start)
          .count());
  span.dur_ns =
      end > start
          ? static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(end -
                                                                     start)
                    .count())
          : 0;
  return idx + 1;
}

void TraceBuilder::SetReason(std::string_view reason) {
  CopyTruncated(rec_.reason, kTraceReasonBytes, reason);
}

void TraceBuilder::Close() {
  if (rec_.trace_id == 0 || closed_) return;
  closed_ = true;
  // Close any span left open (a probe that never unwound — should not
  // happen, but a half-open span must not export a zero duration that
  // reads as "instant") before stamping the root, so every span end fits
  // inside the root duration.
  while (open_depth_ > 0) EndSpan(open_stack_[open_depth_ - 1]);
  rec_.dur_ns = NowRelNs();
  for (uint32_t i = 0; i < rec_.num_spans; ++i) {
    SpanRecord& span = rec_.spans[i];
    if (span.start_ns > rec_.dur_ns) span.start_ns = rec_.dur_ns;
    if (span.start_ns + span.dur_ns > rec_.dur_ns) {
      span.dur_ns = rec_.dur_ns - span.start_ns;
    }
  }
}

void TraceBuilder::Reset() { ClearRecord(); }

// --- TraceRing ---

TraceRing::TraceRing(size_t slots) : nslots_(slots) {
  if (nslots_ > 0) slots_ = std::make_unique<Slot[]>(nslots_);
}

void TraceRing::Add(const TraceRecord& rec) {
  if (nslots_ == 0) return;
  // Stage the record as whole words (the tail of the last word is
  // zero-padded) so publication is plain relaxed stores.
  uint64_t staged[kWordsPerSlot] = {};
  std::memcpy(staged, &rec, sizeof(rec));

  const uint64_t ticket = tickets_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % nslots_];
  uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    // Another writer holds this slot (the ring lapped itself inside one
    // publication window). Never wait on the hot path: drop the record.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  for (size_t w = 0; w < kWordsPerSlot; ++w) {
    slot.words[w].store(staged[w], std::memory_order_relaxed);
  }
  slot.seq.store(seq + 2, std::memory_order_release);
}

std::vector<TraceRecord> TraceRing::Snapshot() const {
  std::vector<TraceRecord> out;
  if (nslots_ == 0) return out;
  out.reserve(nslots_);
  uint64_t staged[kWordsPerSlot];
  for (size_t i = 0; i < nslots_; ++i) {
    const Slot& slot = slots_[i];
    // Optimistic read, bounded retries: a slot being rewritten right now
    // is simply skipped — the recorder favours the writer.
    for (int attempt = 0; attempt < 3; ++attempt) {
      const uint64_t before = slot.seq.load(std::memory_order_acquire);
      if (before < 2 || (before & 1) != 0) break;  // never written / busy
      // Acquire word loads keep the seq recheck below from being
      // reordered ahead of any of them — the fence-free seqlock reader
      // (an acquire *fence* here trips GCC's -Wtsan: TSan does not
      // instrument fences). On x86 an acquire load is a plain load, and
      // this is the cold dump path anyway.
      for (size_t w = 0; w < kWordsPerSlot; ++w) {
        staged[w] = slot.words[w].load(std::memory_order_acquire);
      }
      if (slot.seq.load(std::memory_order_relaxed) != before) continue;
      TraceRecord rec;
      std::memcpy(&rec, staged, sizeof(rec));
      if (rec.trace_id != 0) out.push_back(rec);
      break;
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.trace_id < b.trace_id;
            });
  return out;
}

// --- TraceCollector ---

TraceCollector::TraceCollector(TraceCollectorOptions options)
    : options_(options),
      ring_(options.ring_slots),
      slow_(options.ring_slots > 0 ? options.slow_slots : 0),
      ctr_started_(metrics_.GetCounter("trace.traces_started")),
      ctr_sampled_(metrics_.GetCounter("trace.traces_sampled")),
      ctr_discarded_(metrics_.GetCounter("trace.traces_discarded")),
      ctr_pinned_slow_(metrics_.GetCounter("trace.traces_pinned_slow")),
      ctr_pinned_error_(metrics_.GetCounter("trace.traces_pinned_error")),
      ctr_ring_dropped_(metrics_.GetCounter("trace.ring_dropped")) {
  // Pay the one-time fast-clock calibration (~1ms) at construction —
  // daemon startup — never inside a request.
  if (enabled()) (void)NsPerTick();
}

uint64_t TraceCollector::NextTraceId() {
  // traces_started is folded from next_id_ lazily in metrics() — one
  // atomic RMW here instead of two.
  return next_id_.fetch_add(1, std::memory_order_relaxed);
}

void TraceCollector::Finish(TraceBuilder* builder) {
  if (builder == nullptr || !builder->active()) return;
  builder->Close();
  const TraceRecord& rec = builder->record();
  const double dur_us = static_cast<double>(rec.dur_ns) / 1000.0;
  if (rec.outcome != TraceOutcome::kOk) {
    ring_.Add(rec);
    slow_.Add(rec);
    ctr_pinned_error_->Inc();
  } else if (dur_us >= options_.slow_us) {
    ring_.Add(rec);
    slow_.Add(rec);
    ctr_pinned_slow_->Inc();
  } else if (options_.sample_every <= 1 ||
             rec.trace_id % options_.sample_every == 0) {
    // The trace id doubles as the sampling tick: ids are already dense
    // and monotone, so id % N == 0 is the same 1-in-N without another
    // shared atomic on the hot path.
    ring_.Add(rec);
    ctr_sampled_->Inc();
  } else {
    ctr_discarded_->Inc();
  }
  builder->Reset();
}

const MetricRegistry& TraceCollector::metrics() const {
  // Hot-path-free counters surface lazily: fold the ring collision
  // counters and the id allocator in on read.
  const uint64_t dropped = ring_.dropped() + slow_.dropped();
  const uint64_t seen = ctr_ring_dropped_->value();
  if (dropped > seen) ctr_ring_dropped_->Inc(dropped - seen);
  const uint64_t started = next_id_.load(std::memory_order_relaxed) - 1;
  const uint64_t started_seen = ctr_started_->value();
  if (started > started_seen) ctr_started_->Inc(started - started_seen);
  return metrics_;
}

// --- TraceBuilderPool ---

std::unique_ptr<TraceBuilder> TraceBuilderPool::Acquire() {
  if (free_.empty()) return std::make_unique<TraceBuilder>();
  std::unique_ptr<TraceBuilder> builder = std::move(free_.back());
  free_.pop_back();
  return builder;
}

void TraceBuilderPool::Release(std::unique_ptr<TraceBuilder> builder) {
  if (builder == nullptr) return;
  builder->Reset();
  free_.push_back(std::move(builder));
}

// --- Exporters ---

namespace {

double UsFromNs(uint64_t ns) { return static_cast<double>(ns) / 1000.0; }

/// JSON string escaping per RFC 8259 (control chars, quote, backslash).
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringFormat("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
}

/// First whitespace/tab-delimited token of the request line — the verb,
/// used as the root event name in Chrome output.
std::string_view RootName(const TraceRecord& rec) {
  const std::string_view detail(rec.detail);
  if (detail.empty()) return "request";
  const size_t cut = detail.find_first_of("\t ");
  return cut == std::string_view::npos ? detail : detail.substr(0, cut);
}

void SanitizeInto(std::string* out, std::string_view s) {
  for (const char c : s) {
    out->push_back(c == '\t' || c == '\n' || c == '\r' ? ' ' : c);
  }
}

}  // namespace

std::string ExportTracesTsv(const std::vector<TraceRecord>& traces) {
  std::string out;
  for (const TraceRecord& rec : traces) {
    out += StringFormat("TRACE\t%llu\t%lld\t%.1f\t",
                        static_cast<unsigned long long>(rec.trace_id),
                        static_cast<long long>(rec.wall_start_us),
                        UsFromNs(rec.dur_ns));
    out += TraceOutcomeName(rec.outcome);
    out += StringFormat("\t%u\t%u\t", rec.num_spans, rec.worker);
    if (rec.reason[0] == '\0') {
      out += '-';
    } else {
      SanitizeInto(&out, rec.reason);
    }
    // The detail is the raw request line — tabs and all — so it rides
    // last, where embedded tabs cannot shift earlier columns.
    out += '\t';
    out += rec.detail;
    out += '\n';
    for (uint32_t i = 0; i < rec.num_spans; ++i) {
      const SpanRecord& span = rec.spans[i];
      out += StringFormat("SPAN\t%llu\t%u\t%u\t%s\t%.1f\t%.1f\n",
                          static_cast<unsigned long long>(rec.trace_id),
                          i + 1, span.parent,
                          span.name != nullptr ? span.name : "?",
                          UsFromNs(span.start_ns), UsFromNs(span.dur_ns));
    }
  }
  return out;
}

std::string ExportTracesChrome(const std::vector<TraceRecord>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& rec : traces) {
    const double base_us = static_cast<double>(rec.wall_start_us);
    if (!first) out += ',';
    first = false;
    // Root event: the whole request, one tid per trace so Perfetto
    // renders each request as its own track.
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, RootName(rec));
    out += StringFormat(
        "\",\"cat\":\"adrec\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"worker\":%u,\"outcome\":\"",
        static_cast<unsigned long long>(rec.trace_id), base_us,
        UsFromNs(rec.dur_ns), rec.worker);
    AppendJsonEscaped(&out, TraceOutcomeName(rec.outcome));
    out += "\",\"detail\":\"";
    AppendJsonEscaped(&out, rec.detail);
    if (rec.reason[0] != '\0') {
      out += "\",\"reason\":\"";
      AppendJsonEscaped(&out, rec.reason);
    }
    out += "\"}}";
    for (uint32_t i = 0; i < rec.num_spans; ++i) {
      const SpanRecord& span = rec.spans[i];
      out += ",{\"name\":\"";
      AppendJsonEscaped(&out,
                        span.name != nullptr ? span.name : "?");
      out += StringFormat(
          "\",\"cat\":\"adrec\",\"ph\":\"X\",\"pid\":1,\"tid\":%llu,"
          "\"ts\":%.3f,\"dur\":%.3f}",
          static_cast<unsigned long long>(rec.trace_id),
          base_us + UsFromNs(span.start_ns), UsFromNs(span.dur_ns));
    }
  }
  out += "]}";
  return out;
}

std::string FormatTraceTree(const TraceRecord& rec) {
  std::string out = StringFormat(
      "trace %llu  %.1fus  ", static_cast<unsigned long long>(rec.trace_id),
      UsFromNs(rec.dur_ns));
  out += TraceOutcomeName(rec.outcome);
  if (rec.reason[0] != '\0') {
    out += "  (";
    out += rec.reason;
    out += ')';
  }
  out += "  ";
  SanitizeInto(&out, rec.detail);
  out += '\n';
  // Children in record order under their parents: spans are appended in
  // start order, so a simple recursive walk renders the tree.
  struct Walker {
    const TraceRecord& rec;
    std::string* out;
    void Emit(uint32_t parent, int depth) {
      for (uint32_t i = 0; i < rec.num_spans; ++i) {
        if (rec.spans[i].parent != parent) continue;
        for (int d = 0; d < depth; ++d) *out += "  ";
        *out += StringFormat("- %s  %.1fus  @%.1fus\n",
                             rec.spans[i].name != nullptr ? rec.spans[i].name
                                                          : "?",
                             UsFromNs(rec.spans[i].dur_ns),
                             UsFromNs(rec.spans[i].start_ns));
        Emit(i + 1, depth + 1);
      }
    }
  };
  Walker{rec, &out}.Emit(0, 1);
  if (rec.spans_dropped > 0) {
    out += StringFormat("  (%u spans dropped)\n", rec.spans_dropped);
  }
  return out;
}

}  // namespace adrec::obs
