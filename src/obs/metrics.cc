#include "obs/metrics.h"

namespace adrec::obs {

namespace {

template <typename T>
T* FindOrCreate(std::map<std::string, std::unique_ptr<T>>* metrics,
                std::string_view name) {
  auto it = metrics->find(std::string(name));
  if (it == metrics->end()) {
    it = metrics->emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&counters_, name);
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&gauges_, name);
}

Timer* MetricRegistry::GetTimer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(&timers_, name);
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, timer] : timers_) {
    snap.timers.emplace(name, timer->Snapshot());
  }
  return snap;
}

void MetricRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, timer] : timers_) timer->Reset();
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] += value;
  for (const auto& [name, hist] : other.timers) timers[name].Merge(hist);
}

}  // namespace adrec::obs
