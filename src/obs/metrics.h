#ifndef ADREC_OBS_METRICS_H_
#define ADREC_OBS_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace adrec::obs {

/// A monotonically increasing event counter. Increment is a single relaxed
/// atomic add — cheap enough for the per-event hot path and exact under
/// concurrent writers (sharded deployments).
class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time value (last analysis' lattice size, current window
/// length, ...). Set overwrites; Add accumulates.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // std::atomic<double>::fetch_add only exists since C++20 for
    // floating-point; use it directly.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A latency/size distribution: a Histogram behind a mutex. The lock is
/// uncontended in the single-writer engine (tens of ns) and correct under
/// sharded concurrent access; quantile reads take the same lock.
class Timer {
 public:
  /// Records one sample (conventionally microseconds for *_us timers).
  void Record(double value) {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Record(value);
  }

  /// Consistent copy of the underlying histogram.
  Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hist_.count();
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    hist_.Reset();
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

/// RAII stage timer: records elapsed wall time in microseconds into a
/// Timer on scope exit. A null timer disables the probe (and the clock
/// reads) entirely, so instrumentation can be compiled in but switched
/// off per engine.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedTimer() {
    if (timer_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    timer_->Record(
        std::chrono::duration<double, std::micro>(end - start_).count());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// A consistent point-in-time view of a registry, detached from the live
/// metrics: safe to merge, export, and ship across threads. Keys are
/// ordered so exports are deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram> timers;

  /// Merges another snapshot: counters and gauges add, timers merge
  /// bucket-wise (Histogram::Merge) — the per-shard aggregation primitive.
  void MergeFrom(const MetricsSnapshot& other);
};

/// Thread-safe registry of named metrics. Registration (Get*) takes a
/// mutex and is meant for setup paths; the returned handles are stable
/// for the registry's lifetime, so hot paths cache the pointer once and
/// update lock-free (counters/gauges) or under a short uncontended lock
/// (timers).
///
/// Naming scheme: dot-separated `<subsystem>.<metric>[_<unit>]`, e.g.
/// `engine.annotate_us`, `engine.tweets`, `tfca.topic_triconcepts`.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Finds or creates the named metric. Never returns null.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Timer* GetTimer(std::string_view name);

  /// Consistent copy of every registered metric.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric (periodic reporting windows).
  void ResetAll();

 private:
  mutable std::mutex mu_;
  // std::map gives stable node addresses (handles stay valid as the
  // registry grows) and deterministic iteration order for snapshots.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

}  // namespace adrec::obs

#endif  // ADREC_OBS_METRICS_H_
