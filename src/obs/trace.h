#ifndef ADREC_OBS_TRACE_H_
#define ADREC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"

namespace adrec::obs {

/// Request-scoped tracing and the flight recorder (DESIGN.md §13).
///
/// Every request entering the daemon (and every replica-applied frame)
/// gets a trace: a root duration plus a tree of stage spans recorded by
/// RAII probes as the request traverses serve dispatch → engine stages →
/// the WAL append/commit wave → replica apply. Spans buffer in a
/// TraceBuilder owned by the event loop (no allocation, no locks on the
/// hot path); when the request's durability barrier resolves, the
/// completed TraceRecord is pushed into fixed-size lock-free rings (the
/// flight recorder) under a tail-based retention policy: error/shed
/// traces and traces slower than a threshold are always pinned, the rest
/// are sampled 1-in-N. Readers (the `trace` / `slow` admin verbs) snapshot
/// the rings from any thread without stopping the writer.

/// Spans per trace. A request touches well under half of this (parse +
/// dispatch + 2-3 engine stages + wal append + commit wave; `analyze`
/// adds four sub-phases); overflowing spans are counted and dropped, the
/// trace itself survives.
inline constexpr size_t kTraceMaxSpans = 24;
/// Captured prefix of the request line (arguments for forensics).
inline constexpr size_t kTraceDetailBytes = 88;
/// Captured prefix of a refusal/error reason.
inline constexpr size_t kTraceReasonBytes = 48;

/// How the request ended — the tail-sampling signal. Everything except
/// kOk pins the trace into both rings.
enum class TraceOutcome : uint32_t {
  kOk = 0,
  /// CLIENT_ERROR / SERVER_ERROR (parse failure, engine failure, wal
  /// append failure).
  kError = 1,
  /// Refused with `SERVER_ERROR busy` (load shedding).
  kShed = 2,
  /// Write verb refused by a read-only follower.
  kReadonly = 3,
};

std::string_view TraceOutcomeName(TraceOutcome outcome);

/// One stage span. `name` must be a string literal (static storage): the
/// record is memcpy'd through the lock-free ring, so the pointer must
/// stay valid for the process lifetime.
struct SpanRecord {
  const char* name = nullptr;
  /// 1-based index of the parent span within the trace; 0 = child of the
  /// trace root.
  uint32_t parent = 0;
  /// Start offset from the trace root, nanoseconds.
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
};

/// One completed trace: a fixed-size POD so the flight recorder can
/// publish it with word stores instead of pointers (see TraceRing).
struct TraceRecord {
  /// Monotonically increasing per collector; 0 marks an empty ring slot.
  uint64_t trace_id = 0;
  /// Wall-clock start (microseconds since the unix epoch) — anchors the
  /// steady-clock span offsets for human output.
  int64_t wall_start_us = 0;
  /// Root duration: trace start to Finish (for write verbs that is after
  /// the commit wave — the client-observable latency).
  uint64_t dur_ns = 0;
  TraceOutcome outcome = TraceOutcome::kOk;
  uint32_t num_spans = 0;
  /// Spans dropped because the trace was full (kTraceMaxSpans).
  uint32_t spans_dropped = 0;
  /// Pool worker that served the request (DESIGN.md §16); 0 in the
  /// single-threaded server, 1-based worker id under `--workers=N`.
  uint32_t worker = 0;
  /// The request line (truncated), NUL-terminated.
  char detail[kTraceDetailBytes] = {};
  /// Refusal/error reason for outcome != kOk (truncated), NUL-terminated.
  char reason[kTraceReasonBytes] = {};
  SpanRecord spans[kTraceMaxSpans] = {};
};
static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "TraceRecord crosses the ring as raw words");

/// Accumulates one in-flight trace. Owned and driven by a single thread
/// (the event loop); the only cross-thread traffic is the final
/// TraceRecord pushed into the collector's rings.
class TraceBuilder {
 public:
  /// Arms the builder: records the clocks and captures the request line.
  void Start(uint64_t trace_id, std::string_view detail);
  bool active() const { return rec_.trace_id != 0; }
  uint64_t trace_id() const { return rec_.trace_id; }

  /// Opens a span as a child of the innermost still-open span. Returns an
  /// opaque token for EndSpan; 0 when inactive or full (EndSpan(0) is a
  /// no-op, so probes need not check).
  uint32_t StartSpan(const char* name);
  void EndSpan(uint32_t token);

  /// Records an already-measured interval (the group-commit wave, which
  /// is shared by every write of the batch and only known after the
  /// fact; analysis sub-phases timed inside the TFCA pipeline). Returns
  /// the span's token, usable as `parent` for further AddSpans. A zero
  /// `parent` nests under the innermost open span, like StartSpan.
  uint32_t AddSpan(const char* name,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end,
                   uint32_t parent = 0);

  void SetOutcome(TraceOutcome outcome) { rec_.outcome = outcome; }
  TraceOutcome outcome() const { return rec_.outcome; }
  void SetReason(std::string_view reason);
  /// Stamps the serving pool worker (1-based; 0 = single-threaded).
  void SetWorker(uint32_t worker) { rec_.worker = worker; }

  /// Stamps the root duration (idempotent close; the collector calls it).
  void Close();
  const TraceRecord& record() const { return rec_; }
  /// Disarms and clears, making the builder reusable.
  void Reset();

 private:
  uint64_t NowRelNs() const;
  /// Clears only the logical fields (ids, counts, terminators) — every
  /// reader is bounded by num_spans and the C-string terminators, so
  /// zeroing the whole ~1KB record three times per request (Start,
  /// Finish, pool Release) would be pure memset tax on the hot path.
  void ClearRecord();

  TraceRecord rec_{};
  std::chrono::steady_clock::time_point t0_{};
  /// Start in fast-clock ticks (TSC on x86; see NowRelNs) — the span
  /// clock. t0_ stays the anchor for AddSpan's external time_points.
  uint64_t t0_ticks_ = 0;
  /// Tokens of currently-open spans, innermost last (parent chain).
  uint32_t open_stack_[kTraceMaxSpans] = {};
  uint32_t open_depth_ = 0;
  bool closed_ = false;
};

/// The builder the current thread is tracing into, or nullptr. Lets deep
/// layers (engine stages) attach spans without threading a context
/// through every signature: the dispatcher sets it for the duration of
/// the request, stage probes read it. Costs one TLS load when tracing is
/// off.
TraceBuilder* ActiveTrace();
void SetActiveTrace(TraceBuilder* builder);

/// Scoped ActiveTrace set/restore (restores the previous builder, so
/// nested scopes — replica apply inside an event loop wave — compose).
class ScopedActiveTrace {
 public:
  explicit ScopedActiveTrace(TraceBuilder* builder) : prev_(ActiveTrace()) {
    SetActiveTrace(builder);
  }
  ~ScopedActiveTrace() { SetActiveTrace(prev_); }
  ScopedActiveTrace(const ScopedActiveTrace&) = delete;
  ScopedActiveTrace& operator=(const ScopedActiveTrace&) = delete;

 private:
  TraceBuilder* prev_;
};

/// RAII span on the calling thread's active trace. `name` must be a
/// string literal. Free when no trace is active (one TLS load, no clock).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : builder_(ActiveTrace()) {
    if (builder_ != nullptr) token_ = builder_->StartSpan(name);
  }
  ~TraceSpan() {
    if (builder_ != nullptr) builder_->EndSpan(token_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuilder* builder_;
  uint32_t token_ = 0;
};

/// Combined stage probe: a ScopedTimer (aggregate histogram, disabled by
/// a null timer) plus a TraceSpan (this request's trace, disabled when
/// none is active). The engine's stage instrumentation uses this so one
/// declaration feeds both views.
class StageSpan {
 public:
  StageSpan(Timer* timer, const char* name) : timer_(timer), span_(name) {}

 private:
  ScopedTimer timer_;
  TraceSpan span_;
};

/// A fixed-size lock-free MPSC+reader ring of TraceRecords: the flight
/// recorder's storage. Writers claim slots round-robin with one atomic
/// ticket and publish the record as relaxed word stores bracketed by a
/// per-slot seqlock (odd = mid-write); readers snapshot optimistically
/// and discard slots whose sequence moved. A writer that catches a slot
/// mid-write (the ring lapped itself under extreme load) drops the
/// record rather than wait — losing one trace beats stalling the event
/// loop. Capacity 0 disables the ring entirely.
class TraceRing {
 public:
  explicit TraceRing(size_t slots);

  bool enabled() const { return nslots_ > 0; }
  size_t capacity() const { return nslots_; }

  /// Publishes a copy of `rec`. Lock-free, wait-free, ~a memcpy.
  void Add(const TraceRecord& rec);

  /// Consistent copies of every valid slot, ascending trace_id (oldest
  /// first). Safe from any thread, concurrent with writers.
  std::vector<TraceRecord> Snapshot() const;

  /// Records dropped on writer collision (ring lapped mid-write).
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kWordsPerSlot =
      (sizeof(TraceRecord) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  struct Slot {
    /// Seqlock: even = stable, odd = write in progress. Starts 0; a slot
    /// is valid once it reaches 2.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kWordsPerSlot] = {};
  };

  size_t nslots_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> tickets_{0};
  mutable std::atomic<uint64_t> dropped_{0};
};

struct TraceCollectorOptions {
  /// Slots in the recent-traces ring; 0 disables tracing entirely (the
  /// dispatcher skips building traces — the "compiled in, ring disabled"
  /// baseline of bench_trace).
  size_t ring_slots = 512;
  /// Slots in the slow/error ring (the `slow` verb's log).
  size_t slow_slots = 128;
  /// Tail-based pin threshold: a trace at least this slow (microseconds)
  /// is retained in both rings regardless of sampling.
  double slow_us = 10'000.0;
  /// Of the OK-and-fast traces, keep 1 in this many (<= 1 keeps all).
  /// Error/shed/readonly and slow traces are always kept.
  uint64_t sample_every = 16;
};

/// Owns the flight-recorder rings and the tail-based retention policy.
/// Thread-safe: id allocation and Finish are lock-free, snapshots are
/// concurrent-safe.
///
/// Exported metrics (`trace.*`, via metrics()): traces_started,
/// traces_sampled, traces_discarded, traces_pinned_slow,
/// traces_pinned_error counters; ring_dropped counter (writer
/// collisions).
class TraceCollector {
 public:
  explicit TraceCollector(TraceCollectorOptions options = {});

  /// False when ring_slots == 0: callers skip trace construction.
  bool enabled() const { return ring_.enabled(); }
  const TraceCollectorOptions& options() const { return options_; }

  uint64_t NextTraceId();

  /// Closes the builder's trace and applies retention: outcome != kOk →
  /// pinned into both rings; dur >= slow_us → pinned into both rings;
  /// else sampled 1-in-sample_every into the recent ring. Resets the
  /// builder for reuse. No-op on an inactive builder.
  void Finish(TraceBuilder* builder);

  std::vector<TraceRecord> Recent() const { return ring_.Snapshot(); }
  std::vector<TraceRecord> Slow() const { return slow_.Snapshot(); }

  const MetricRegistry& metrics() const;

 private:
  const TraceCollectorOptions options_;
  TraceRing ring_;
  TraceRing slow_;
  std::atomic<uint64_t> next_id_{1};

  MetricRegistry metrics_;
  Counter* ctr_started_;
  Counter* ctr_sampled_;
  Counter* ctr_discarded_;
  Counter* ctr_pinned_slow_;
  Counter* ctr_pinned_error_;
  Counter* ctr_ring_dropped_;
};

/// A reusable pool of TraceBuilders for a single-threaded owner: the
/// event loop keeps several traces in flight (one per write verb of a
/// wave awaiting the commit barrier) and recycles the ~1KB builders
/// instead of allocating per request.
class TraceBuilderPool {
 public:
  std::unique_ptr<TraceBuilder> Acquire();
  /// Returns a builder (reset) to the pool.
  void Release(std::unique_ptr<TraceBuilder> builder);

 private:
  std::vector<std::unique_ptr<TraceBuilder>> free_;
};

/// TSV export, one trace per record group:
///   TRACE <id> <wall_start_us> <dur_us> <outcome> <spans> <worker> <reason>
///         <detail>
///   SPAN <id> <index> <parent> <name> <start_us> <dur_us>
/// Fields are TAB-separated; <detail> is the trailing field (it may
/// itself contain tabs — it is the raw request line); <reason> has tabs
/// replaced and is `-` when empty; <worker> is the pool worker id (0 =
/// single-threaded server).
std::string ExportTracesTsv(const std::vector<TraceRecord>& traces);

/// Chrome trace-event JSON ("X" complete events, one tid per trace),
/// loadable in Perfetto / chrome://tracing. Span offsets are anchored at
/// each trace's wall_start_us so concurrent requests line up on one
/// timeline.
std::string ExportTracesChrome(const std::vector<TraceRecord>& traces);

/// Human-readable rendering of one trace: an indented span tree with
/// durations (adrec_tool's pretty printer; tests use it for goldens).
std::string FormatTraceTree(const TraceRecord& rec);

}  // namespace adrec::obs

#endif  // ADREC_OBS_TRACE_H_
