#include "core/sharded_engine.h"

#include "obs/trace.h"

#include <algorithm>
#include <thread>

#include "common/hashing.h"
#include "common/logging.h"

namespace adrec::core {

ShardedEngine::ShardedEngine(std::shared_ptr<annotate::KnowledgeBase> kb,
                             timeline::TimeSlotScheme slots,
                             size_t num_shards, EngineOptions options) {
  ADREC_CHECK(num_shards > 0);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(
        std::make_unique<RecommendationEngine>(kb, slots, options));
  }
}

size_t ShardedEngine::ShardOf(UserId user) const {
  return ShardOfId(user.value, shards_.size());
}

void ShardedEngine::OnTweet(const feed::Tweet& tweet) {
  shards_[ShardOf(tweet.user)]->OnTweet(tweet);
}

void ShardedEngine::OnCheckIn(const feed::CheckIn& check_in) {
  shards_[ShardOf(check_in.user)]->OnCheckIn(check_in);
}

void ShardedEngine::OnEvent(const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
      OnTweet(event.tweet);
      break;
    case feed::EventKind::kCheckIn:
      OnCheckIn(event.check_in);
      break;
    case feed::EventKind::kAdInsert:
      (void)InsertAd(event.ad);
      break;
    case feed::EventKind::kAdDelete:
      (void)RemoveAd(event.ad_id);
      break;
  }
}

void ShardedEngine::ReplayForAnalysis(const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
      shards_[ShardOf(event.tweet.user)]->ReplayForAnalysis(event);
      break;
    case feed::EventKind::kCheckIn:
      shards_[ShardOf(event.check_in.user)]->ReplayForAnalysis(event);
      break;
    case feed::EventKind::kAdInsert:
    case feed::EventKind::kAdDelete:
      break;  // inventory is snapshot state, never replayed
  }
}

void ShardedEngine::ApplyToShard(size_t shard,
                                 const feed::FeedEvent& event) {
  ADREC_CHECK(shard < shards_.size());
  switch (event.kind) {
    case feed::EventKind::kTweet:
      ADREC_CHECK(ShardOf(event.tweet.user) == shard);
      shards_[shard]->OnTweet(event.tweet);
      break;
    case feed::EventKind::kCheckIn:
      ADREC_CHECK(ShardOf(event.check_in.user) == shard);
      shards_[shard]->OnCheckIn(event.check_in);
      break;
    case feed::EventKind::kAdInsert:
      (void)shards_[shard]->InsertAd(event.ad);
      break;
    case feed::EventKind::kAdDelete:
      (void)shards_[shard]->RemoveAd(event.ad_id);
      break;
  }
}

void ShardedEngine::ReplayForAnalysisShard(size_t shard,
                                           const feed::FeedEvent& event) {
  ADREC_CHECK(shard < shards_.size());
  switch (event.kind) {
    case feed::EventKind::kTweet:
      ADREC_CHECK(ShardOf(event.tweet.user) == shard);
      shards_[shard]->ReplayForAnalysis(event);
      break;
    case feed::EventKind::kCheckIn:
      ADREC_CHECK(ShardOf(event.check_in.user) == shard);
      shards_[shard]->ReplayForAnalysis(event);
      break;
    case feed::EventKind::kAdInsert:
    case feed::EventKind::kAdDelete:
      break;  // inventory is snapshot state, never replayed
  }
}

Status ShardedEngine::InsertAdOnShard(size_t shard, const feed::Ad& ad) {
  ADREC_CHECK(shard < shards_.size());
  return shards_[shard]->InsertAd(ad);
}

Status ShardedEngine::RemoveAdOnShard(size_t shard, AdId id) {
  ADREC_CHECK(shard < shards_.size());
  return shards_[shard]->RemoveAd(id);
}

Status ShardedEngine::RunAnalysisOnShard(size_t shard, double alpha) {
  ADREC_CHECK(shard < shards_.size());
  return alpha < 0 ? shards_[shard]->RunAnalysis()
                   : shards_[shard]->RunAnalysis(alpha);
}

Result<MatchResult> ShardedEngine::RecommendUsersOnShard(size_t shard,
                                                         AdId id) const {
  ADREC_CHECK(shard < shards_.size());
  return shards_[shard]->RecommendUsers(id);
}

MatchResult ShardedEngine::MergeMatches(std::vector<MatchResult> parts) {
  MatchResult merged;
  for (MatchResult& part : parts) {
    for (MatchedUser& mu : part.users) {
      merged.users.push_back(mu);
    }
    merged.location_candidates += part.location_candidates;
    merged.topic_candidates += part.topic_candidates;
  }
  std::sort(merged.users.begin(), merged.users.end(),
            [](const MatchedUser& a, const MatchedUser& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user.value < b.user.value;
            });
  return merged;
}

Status ShardedEngine::InsertAd(const feed::Ad& ad) {
  for (auto& shard : shards_) {
    ADREC_RETURN_NOT_OK(shard->InsertAd(ad));
  }
  return Status::OK();
}

Status ShardedEngine::RemoveAd(AdId id) {
  for (auto& shard : shards_) {
    ADREC_RETURN_NOT_OK(shard->RemoveAd(id));
  }
  return Status::OK();
}

Status ShardedEngine::RunAnalysis(double alpha) {
  std::vector<Status> results(shards_.size());
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  // The caller's request trace rides into shard 0's worker (the shards
  // run the same phases in parallel, so shard 0 is representative; one
  // shard only, because a TraceBuilder has a single writer). Safe: the
  // caller blocks in join() for the worker's whole lifetime.
  obs::TraceBuilder* trace = obs::ActiveTrace();
  for (size_t s = 0; s < shards_.size(); ++s) {
    workers.emplace_back([this, s, alpha, &results, trace] {
      obs::ScopedActiveTrace active(s == 0 ? trace : nullptr);
      results[s] = shards_[s]->RunAnalysis(alpha);
    });
  }
  for (std::thread& w : workers) w.join();
  for (const Status& st : results) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Status ShardedEngine::RunAnalysis() {
  std::vector<Status> results(shards_.size());
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  obs::TraceBuilder* trace = obs::ActiveTrace();
  for (size_t s = 0; s < shards_.size(); ++s) {
    workers.emplace_back([this, s, &results, trace] {
      obs::ScopedActiveTrace active(s == 0 ? trace : nullptr);
      results[s] = shards_[s]->RunAnalysis();
    });
  }
  for (std::thread& w : workers) w.join();
  for (const Status& st : results) {
    if (!st.ok()) return st;
  }
  return Status::OK();
}

Result<MatchResult> ShardedEngine::RecommendUsers(AdId id) const {
  std::vector<MatchResult> parts;
  parts.reserve(shards_.size());
  for (const auto& shard : shards_) {
    Result<MatchResult> r = shard->RecommendUsers(id);
    if (!r.ok()) return r.status();
    parts.push_back(std::move(r).value());
  }
  return MergeMatches(std::move(parts));
}

EngineStats ShardedEngine::Stats() const {
  EngineStats merged;
  for (const auto& shard : shards_) merged.Merge(shard->Stats());
  return merged;
}

obs::MetricsSnapshot ShardedEngine::MergedMetrics() const {
  obs::MetricsSnapshot merged;
  for (const auto& shard : shards_) {
    merged.MergeFrom(shard->metrics().Snapshot());
  }
  return merged;
}

std::vector<index::ScoredAd> ShardedEngine::TopKAdsForTweet(
    const feed::Tweet& tweet, size_t k) {
  return shards_[ShardOf(tweet.user)]->TopKAdsForTweet(tweet, k);
}

TopkContext ShardedEngine::TopkContextFor(const feed::Tweet& tweet) const {
  return shards_[ShardOf(tweet.user)]->TopkContextFor(tweet);
}

bool ShardedEngine::ChargeCachedTopK(const feed::Tweet& tweet,
                                     const std::vector<AdId>& ads) {
  return shards_[ShardOf(tweet.user)]->ChargeCachedTopK(tweet, ads);
}

}  // namespace adrec::core
