#ifndef ADREC_CORE_SNAPSHOT_H_
#define ADREC_CORE_SNAPSHOT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/engine.h"

namespace adrec::core {

/// Engine-state snapshots for restart recovery. A snapshot captures the
/// *cumulative* state that cannot be rebuilt from a bounded replay:
///  * user profiles (decayed interests + per-slot visit masses),
///  * users' current locations,
///  * the ad inventory with served-impression counters.
/// The TFCA analysis window is deliberately NOT part of a snapshot — it
/// is bounded by design (E9b/E16), so the recovery procedure is
/// snapshot-restore + replay of the last window of the event log
/// (written with feed::WriteTrace).
///
/// On-disk layout under `dir`:
///   snapshot_profiles.tsv   P/I/V/L records (see .cc)
///   snapshot_ads.tsv        feed::WriteAds format
///   snapshot_impressions.tsv  "M <ad> <served>" records
///   snapshot_freqcap.tsv    "F <user> <ad> <t;t;...>" frequency-cap
///                           histories (optional for older snapshots)
///   snapshot_manifest.tsv   "S <file> <bytes>" integrity manifest —
///                           written (and renamed into place) LAST;
///                           loads verify the recorded sizes exactly
///
/// Saves are atomic per file: each file is staged as `<name>.tmp`,
/// fsynced and renamed; a crash mid-save never leaves a torn file under
/// a final name, and a crash between renames is caught at load time by
/// the manifest size check.
///
/// All files are emitted in canonical (sorted) order with `%.17g` float
/// precision, so (a) identical engine state yields byte-identical files
/// and (b) save→load round-trips doubles exactly. The recovery procedure
/// after LoadEngineSnapshot is to replay the last window of the event log
/// through RecommendationEngine::ReplayForAnalysis (window-only replay)
/// and then RunAnalysis — after which the restored engine is
/// indistinguishable from one that never restarted (testkit asserts
/// exactly this).

/// One snapshot file, fully materialized in memory. `name` is the
/// basename it would carry on disk (e.g. "snapshot_ads.tsv").
struct SnapshotFile {
  std::string name;
  std::string contents;
};

/// Serializes the engine's snapshot into in-memory files — byte-for-byte
/// what SaveEngineSnapshot would write, in write order with the
/// integrity manifest last. Callers that want to diff, hash, or persist
/// selectively (the delta-checkpoint path) use this; SaveEngineSnapshot
/// is implemented on top of it.
Result<std::vector<SnapshotFile>> SerializeEngineSnapshot(
    const RecommendationEngine& engine);

/// Persists serialized snapshot files into `dir` (created if needed)
/// with the atomic-save protocol: every file staged as `<name>.tmp`,
/// fsynced and renamed, the manifest renamed LAST, directory fsynced.
/// `files` must be in SerializeEngineSnapshot order (manifest last).
Status WriteSnapshotFiles(const std::string& dir,
                          const std::vector<SnapshotFile>& files);

/// Writes the engine's snapshot into `dir` (created if needed).
Status SaveEngineSnapshot(const RecommendationEngine& engine,
                          const std::string& dir);

/// Restores a snapshot into a fresh engine (same KB and slot scheme as at
/// save time; the caller guarantees that). Fails without partial effects
/// on unreadable/malformed files... (files are loaded before mutation).
Status LoadEngineSnapshot(const std::string& dir,
                          RecommendationEngine* engine);

}  // namespace adrec::core

#endif  // ADREC_CORE_SNAPSHOT_H_
