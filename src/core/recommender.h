#ifndef ADREC_CORE_RECOMMENDER_H_
#define ADREC_CORE_RECOMMENDER_H_

#include <vector>

#include "core/semantic.h"
#include "core/tfca.h"

namespace adrec::core {

/// One matched user with its ranking evidence.
struct MatchedUser {
  UserId user;
  /// Number of topic communities (over the ad's URIs) containing the user.
  int topic_support = 0;
  /// Number of location communities (over the ad's m*) containing the user.
  int location_support = 0;
  /// Ranking score: topic_support + location_support.
  double score = 0.0;

  friend bool operator==(const MatchedUser&, const MatchedUser&) = default;
};

/// The result of matching one ad against the analysed window.
struct MatchResult {
  /// Users in both the U-C match and the U-L match, ranked by descending
  /// score (ties by ascending user id) — the join ⋈_u of the model.
  std::vector<MatchedUser> users;
  /// Sizes of the two sides before the join (diagnostics).
  size_t location_candidates = 0;
  size_t topic_candidates = 0;
};

/// Options of the matching phase.
struct MatchOptions {
  /// Minimum annotation score for an ad URI to participate in the U-C
  /// match (very weak annotations only add noise).
  double min_topic_score = 0.1;
  /// When true (default), a community only counts if its slot set
  /// intersects the ad's target slots t* (ads with empty t* match any
  /// slot). This is the "in a specific time" part of the model.
  bool filter_by_slot = true;
  /// Communities with stability below this are ignored (only effective
  /// when the analysis ran with compute_stability; otherwise every
  /// community reports stability 1.0).
  double min_community_stability = 0.0;
};

/// Audience-expansion configuration.
struct ExpandOptions {
  /// α-cut used to build the (users × topics) context the implications
  /// are mined from.
  double alpha = 0.45;
  /// Weight given to implied topics added to the ad context.
  double implied_weight = 0.3;
  /// When true, only *exact* implications (the Duquenne–Guigues stem
  /// base, singleton-to-short premises) fire. Exact rules barely exist on
  /// noisy social windows, so the default mines partial association
  /// rules with the thresholds below.
  bool exact_only = false;
  /// Implications whose premise is larger than this are ignored (long
  /// premises are rarely-firing noise on small windows). Exact mode only.
  size_t max_premise = 2;
  /// Association-rule thresholds (partial mode). Deliberately strict:
  /// loose thresholds connect every popular topic to every other and the
  /// expansion degenerates to "everyone topical".
  size_t min_support = 5;
  double min_confidence = 0.85;
  /// A (user, topic) incidence in the rule-mining context requires this
  /// many qualifying tweets; one-off mentions are noise, not interest.
  size_t min_mentions = 3;
  /// ... and this share of the user's qualifying tweets (window-length
  /// independent noise guard).
  double min_mention_fraction = 0.08;
  /// Safety cap for the stem-base enumeration.
  size_t max_concepts = 1u << 16;
};

/// Audience expansion: mines the Duquenne–Guigues implication basis of
/// the window's (users × topics) context and closes the ad's topic set
/// under it — "everyone tweeting about running shoes also tweets about
/// marathons, so the marathon communities are eligible too". Implied
/// topics are added with `implied_weight`; existing weights are kept.
/// Returns the input unchanged on miner failure (expansion is best-effort).
AdContext ExpandAdTopics(const TimeAwareConceptAnalysis& analysis,
                         const AdContext& ad,
                         const ExpandOptions& options = {});

/// Macro-phase 3: the ads recommendation model. Computes
///   TC_m*  = ∪ Comm(H, m*)        (U-L matching, Eq. 3)
///   TC_URI = ∪ Comm(TFC, uri∈P)   (U-C matching, Eq. 4)
///   result = TC_URI ⋈_u TC_m*      (matching/join, Eq. 5)
/// and ranks the joined users by how many communities support them.
MatchResult MatchAd(const TimeAwareConceptAnalysis& analysis,
                    const AdContext& ad, const MatchOptions& options = {});

}  // namespace adrec::core

#endif  // ADREC_CORE_RECOMMENDER_H_
