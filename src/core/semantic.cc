#include "core/semantic.h"

namespace adrec::core {

SemanticRepresentation::SemanticRepresentation(
    const annotate::KnowledgeBase* kb, annotate::AnnotatorOptions options)
    : annotator_(kb, options) {}

AnnotatedTweet SemanticRepresentation::ProcessTweet(
    const feed::Tweet& tweet) const {
  AnnotatedTweet out;
  out.user = tweet.user;
  out.time = tweet.time;
  out.annotations = annotator_.Annotate(tweet.text);
  return out;
}

AdContext SemanticRepresentation::ProcessAd(const feed::Ad& ad) const {
  AdContext out;
  out.id = ad.id;
  out.locations = ad.target_locations;
  out.slots = ad.target_slots;
  out.bid = ad.bid;
  std::vector<text::SparseEntry> entries;
  for (const annotate::Annotation& a : annotator_.Annotate(ad.copy)) {
    entries.push_back({a.topic.value, a.score});
  }
  out.topics = text::SparseVector::FromUnsorted(std::move(entries));
  return out;
}

}  // namespace adrec::core
