#include "core/selling_points.h"

#include <algorithm>
#include <unordered_set>

namespace adrec::core {

std::vector<SellingPoint> DiscoverSellingPoints(
    const TimeAwareConceptAnalysis& analysis,
    const annotate::KnowledgeBase& kb, const std::vector<UserId>& users,
    const SellingPointOptions& options) {
  const fca::FormalContext ctx = analysis.BuildUserTopicContext(
      options.alpha, options.min_mentions, options.min_mention_fraction);
  if (ctx.num_objects() == 0 || users.empty()) return {};

  // Map the target users onto the analysis's dense object indices.
  std::unordered_set<uint32_t> target_raw;
  for (UserId u : users) target_raw.insert(u.value);
  fca::Bitset target(ctx.num_objects());
  const std::vector<UserId>& known = analysis.known_users();
  for (size_t dense = 0; dense < known.size(); ++dense) {
    if (target_raw.count(known[dense].value)) target.Set(dense);
  }
  const double target_count = static_cast<double>(target.Count());
  const double population = static_cast<double>(ctx.num_objects());
  if (target_count == 0.0) return {};

  std::vector<SellingPoint> out;
  for (uint32_t topic = 0; topic < ctx.num_attributes(); ++topic) {
    const fca::Bitset& holders = ctx.Column(topic);
    const size_t support = And(holders, target).Count();
    if (support < options.min_support) continue;
    const double target_rate = (static_cast<double>(support) +
                                options.smoothing) /
                               (target_count + 2.0 * options.smoothing);
    const double base_rate =
        (static_cast<double>(holders.Count()) + options.smoothing) /
        (population + 2.0 * options.smoothing);
    const double lift = target_rate / base_rate;
    if (lift < options.min_lift) continue;
    SellingPoint point;
    point.topic = TopicId(topic);
    if (topic < kb.size()) {
      point.uri = kb.entity(TopicId(topic)).uri;
      point.label = kb.entity(TopicId(topic)).label;
    }
    point.lift = lift;
    point.support = support;
    out.push_back(std::move(point));
  }
  std::sort(out.begin(), out.end(),
            [](const SellingPoint& a, const SellingPoint& b) {
              if (a.lift != b.lift) return a.lift > b.lift;
              return a.topic.value < b.topic.value;
            });
  if (out.size() > options.max_points) out.resize(options.max_points);
  return out;
}

}  // namespace adrec::core
