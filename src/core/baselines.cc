#include "core/baselines.h"

#include <algorithm>
#include <unordered_map>

namespace adrec::core {

std::string StrategyName(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kTriadic:
      return "triadic";
    case StrategyKind::kContentOnly:
      return "content-only";
    case StrategyKind::kLocationOnly:
      return "location-only";
    case StrategyKind::kPopularity:
      return "popularity";
    case StrategyKind::kLdaLite:
      return "lda-lite";
  }
  return "?";
}

std::vector<UserId> ContentOnlyPredict(const RecommendationEngine& engine,
                                       const AdContext& ad,
                                       const BaselineOptions& options) {
  std::vector<UserId> out;
  for (UserId user : engine.profiles().KnownUsers()) {
    const text::SparseVector interests =
        engine.profiles().InterestsAt(user, options.now);
    if (interests.Dot(ad.topics) >= options.content_threshold) {
      out.push_back(user);
    }
  }
  return out;
}

std::vector<UserId> LocationOnlyPredict(const RecommendationEngine& engine,
                                        const AdContext& ad,
                                        const BaselineOptions& options) {
  // Slots to consider: the ad's targets, or every slot when untargeted.
  std::vector<SlotId> slots = ad.slots;
  if (slots.empty()) {
    for (size_t s = 0; s < engine.slots().size(); ++s) {
      slots.push_back(SlotId(static_cast<uint32_t>(s)));
    }
  }
  std::vector<UserId> out;
  for (UserId user : engine.profiles().KnownUsers()) {
    bool hit = false;
    for (LocationId m : ad.locations) {
      for (SlotId s : slots) {
        if (engine.profiles().VisitMass(user, s, m) >=
            options.min_visit_mass) {
          hit = true;
          break;
        }
      }
      if (hit) break;
    }
    if (hit) out.push_back(user);
  }
  return out;
}

std::vector<UserId> PopularityPredict(const RecommendationEngine& engine,
                                      const BaselineOptions& options) {
  struct Activity {
    UserId user;
    double mass;
  };
  std::vector<Activity> activities;
  for (UserId user : engine.profiles().KnownUsers()) {
    activities.push_back(
        Activity{user, engine.profiles().InterestsAt(user, options.now).Norm()});
  }
  std::sort(activities.begin(), activities.end(),
            [](const Activity& a, const Activity& b) {
              if (a.mass != b.mass) return a.mass > b.mass;
              return a.user.value < b.user.value;
            });
  const size_t keep = std::max<size_t>(
      1, static_cast<size_t>(options.popularity_fraction *
                             static_cast<double>(activities.size())));
  std::vector<UserId> out;
  for (size_t i = 0; i < std::min(keep, activities.size()); ++i) {
    out.push_back(activities[i].user);
  }
  return out;
}

Result<LdaStrategy> LdaStrategy::Train(const std::vector<feed::Tweet>& tweets,
                                       text::Analyzer* analyzer,
                                       const LdaOptions& options) {
  if (analyzer == nullptr) {
    return Status::InvalidArgument("analyzer must not be null");
  }
  // One document per user: the concatenation of all their tweets.
  std::unordered_map<uint32_t, size_t> row_of;
  LdaStrategy strategy;
  strategy.analyzer_ = analyzer;
  std::vector<std::vector<uint32_t>> docs;
  for (const feed::Tweet& t : tweets) {
    auto it = row_of.find(t.user.value);
    if (it == row_of.end()) {
      it = row_of.emplace(t.user.value, docs.size()).first;
      docs.emplace_back();
      strategy.users_.push_back(t.user);
    }
    for (text::TermId term : analyzer->Analyze(t.text)) {
      docs[it->second].push_back(term);
    }
  }
  if (docs.empty()) {
    return Status::InvalidArgument("no tweets to train on");
  }
  Result<LdaModel> model =
      LdaModel::Train(docs, analyzer->vocabulary().size(), options);
  if (!model.ok()) return model.status();
  strategy.model_ = std::move(model).value();
  return strategy;
}

std::vector<UserId> LdaStrategy::Predict(const std::string& ad_copy,
                                         double threshold) const {
  const std::vector<text::TermId> terms = analyzer_->AnalyzeReadOnly(ad_copy);
  std::vector<uint32_t> doc(terms.begin(), terms.end());
  const std::vector<double> ad_dist = model_.Infer(doc);
  std::vector<UserId> out;
  for (size_t row = 0; row < users_.size(); ++row) {
    const double sim =
        LdaModel::Similarity(model_.DocTopicDistribution(row), ad_dist);
    if (sim >= threshold) out.push_back(users_[row]);
  }
  return out;
}

}  // namespace adrec::core
