#ifndef ADREC_CORE_BASELINES_H_
#define ADREC_CORE_BASELINES_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/lda.h"
#include "feed/types.h"

namespace adrec::core {

/// The recommendation strategies the evaluation compares (E8/E12). The
/// triadic strategy is the paper's model; the others are the ablations and
/// the named topic-model comparator.
enum class StrategyKind {
  kTriadic,       ///< full model: U-L ⋈ U-C with time filtering
  kContentOnly,   ///< topical profile overlap, no location/time
  kLocationOnly,  ///< co-location in the target slots, no topics
  kPopularity,    ///< most active users regardless of context
  kLdaLite,       ///< LDA topic-mixture similarity (future-work comparator)
};

/// Printable strategy name.
std::string StrategyName(StrategyKind kind);

/// Baseline knobs.
struct BaselineOptions {
  /// ContentOnly: minimum profile-vs-ad topic dot product.
  double content_threshold = 0.05;
  /// LocationOnly: minimum decayed visit mass at a target location.
  double min_visit_mass = 1e-6;
  /// Popularity: fraction of known users to return (most active first).
  double popularity_fraction = 0.25;
  /// LdaLite: minimum mixture cosine similarity.
  double lda_threshold = 0.6;
  /// Evaluation timestamp for decayed quantities.
  Timestamp now = 0;
};

/// ContentOnly: users whose decayed interests overlap the ad's topics.
std::vector<UserId> ContentOnlyPredict(const RecommendationEngine& engine,
                                       const AdContext& ad,
                                       const BaselineOptions& options);

/// LocationOnly: users with check-in mass at any target location during
/// any target slot (all slots when untargeted).
std::vector<UserId> LocationOnlyPredict(const RecommendationEngine& engine,
                                        const AdContext& ad,
                                        const BaselineOptions& options);

/// Popularity: the most active known users (interest-mass proxy).
std::vector<UserId> PopularityPredict(const RecommendationEngine& engine,
                                      const BaselineOptions& options);

/// The LDA baseline: trained once on per-user documents, then queried per
/// ad. Ignores location and time by construction.
class LdaStrategy {
 public:
  /// Trains on the users' tweets. `analyzer` must be the workload's
  /// analyzer (shared vocabulary).
  static Result<LdaStrategy> Train(const std::vector<feed::Tweet>& tweets,
                                   text::Analyzer* analyzer,
                                   const LdaOptions& options = {});

  /// Users whose topic mixture is similar to the ad copy's mixture.
  std::vector<UserId> Predict(const std::string& ad_copy,
                              double threshold) const;

  const LdaModel& model() const { return model_; }

 private:
  LdaStrategy() = default;

  text::Analyzer* analyzer_ = nullptr;  // not owned
  LdaModel model_;
  std::vector<UserId> users_;  // row -> user of the training documents
};

}  // namespace adrec::core

#endif  // ADREC_CORE_BASELINES_H_
