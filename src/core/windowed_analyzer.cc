#include "core/windowed_analyzer.h"

namespace adrec::core {

WindowedAnalyzer::WindowedAnalyzer(const timeline::TimeSlotScheme* slots,
                                   size_t num_topics,
                                   WindowedOptions options)
    : options_(options), tfca_(slots, num_topics) {}

void WindowedAnalyzer::OnTweet(const AnnotatedTweet& tweet) {
  tweets_.push_back(tweet);
}

void WindowedAnalyzer::OnCheckIn(const feed::CheckIn& check_in) {
  checkins_.push_back(check_in);
}

void WindowedAnalyzer::Evict(Timestamp now) {
  const Timestamp horizon = now - options_.window;
  while (!tweets_.empty() && tweets_.front().time < horizon) {
    tweets_.pop_front();
  }
  while (!checkins_.empty() && checkins_.front().time < horizon) {
    checkins_.pop_front();
  }
}

Status WindowedAnalyzer::Refresh(Timestamp now) {
  Evict(now);
  tfca_.Reset();
  for (const AnnotatedTweet& t : tweets_) tfca_.AddTweet(t);
  for (const feed::CheckIn& c : checkins_) tfca_.AddCheckIn(c);
  TfcaOptions opts;
  opts.alpha = options_.alpha;
  opts.max_concepts = options_.max_concepts;
  ADREC_RETURN_NOT_OK(tfca_.Analyze(opts));
  last_refresh_ = now;
  ++refresh_count_;
  return Status::OK();
}

Result<bool> WindowedAnalyzer::MaybeRefresh(Timestamp now) {
  if (last_refresh_ != INT64_MIN &&
      now - last_refresh_ < options_.refresh_every) {
    return false;
  }
  ADREC_RETURN_NOT_OK(Refresh(now));
  return true;
}

}  // namespace adrec::core
