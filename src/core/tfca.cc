#include "core/tfca.h"

#include <chrono>

#include "common/logging.h"
#include "fca/stability.h"

namespace adrec::core {

TimeAwareConceptAnalysis::TimeAwareConceptAnalysis(
    const timeline::TimeSlotScheme* slots, size_t num_topics)
    : slots_(slots), num_topics_(num_topics) {
  ADREC_CHECK(slots != nullptr);
}

size_t TimeAwareConceptAnalysis::DenseUser(UserId user) {
  auto it = user_index_.find(user.value);
  if (it != user_index_.end()) return it->second;
  const size_t idx = user_ids_.size();
  user_index_.emplace(user.value, idx);
  user_ids_.push_back(user);
  return idx;
}

size_t TimeAwareConceptAnalysis::DenseLocation(LocationId loc) {
  auto it = location_index_.find(loc.value);
  if (it != location_index_.end()) return it->second;
  const size_t idx = location_ids_.size();
  location_index_.emplace(loc.value, idx);
  location_ids_.push_back(loc);
  return idx;
}

void TimeAwareConceptAnalysis::AddCheckIn(const feed::CheckIn& check_in) {
  CheckInCell cell;
  cell.user = static_cast<uint32_t>(DenseUser(check_in.user));
  cell.location = static_cast<uint32_t>(DenseLocation(check_in.location));
  cell.slot = slots_->SlotOf(check_in.time).value;
  checkin_cells_.push_back(cell);
}

void TimeAwareConceptAnalysis::AddTweet(const AnnotatedTweet& tweet) {
  const uint32_t user = static_cast<uint32_t>(DenseUser(tweet.user));
  const uint32_t slot = slots_->SlotOf(tweet.time).value;
  for (const annotate::Annotation& a : tweet.annotations) {
    if (a.topic.value >= num_topics_) continue;  // unknown topic: skip
    tweet_cells_.push_back(TweetCell{user, a.topic.value, slot, a.score});
  }
}

void TimeAwareConceptAnalysis::Reset() {
  user_index_.clear();
  user_ids_.clear();
  location_index_.clear();
  location_ids_.clear();
  checkin_cells_.clear();
  tweet_cells_.clear();
  location_communities_.clear();
  topic_communities_.clear();
  stats_ = {};
}

Status TimeAwareConceptAnalysis::Analyze(const TfcaOptions& options) {
  if (options.alpha < 0.0 || options.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  location_communities_.clear();
  topic_communities_.clear();
  stats_ = {};
  stats_.users = user_ids_.size();
  stats_.locations = location_ids_.size();
  stats_.topics = num_topics_;
  phase_timings_ = {};

  const size_t num_users = user_ids_.size();
  const size_t num_slots = slots_->size();
  fca::EnumerateOptions mine_opts;
  mine_opts.max_concepts = options.max_concepts;

  using Clock = std::chrono::steady_clock;
  auto span_ms = [](Clock::time_point from) {
    return std::chrono::duration<double, std::milli>(Clock::now() - from)
        .count();
  };

  auto decode = [&](const fca::TriConcept& tc,
                    const fca::TriadicContext& from) {
    Community c;
    for (uint32_t u : tc.objects.ToVector()) c.users.push_back(user_ids_[u]);
    for (uint32_t s : tc.conditions.ToVector()) c.slots.push_back(SlotId(s));
    if (options.compute_stability) {
      c.stability = fca::TriConceptStability(from, tc);
    }
    return c;
  };

  // --- Location context H = (U, M, T, I). ---
  if (!checkin_cells_.empty()) {
    auto t0 = Clock::now();
    fca::TriadicContext h(num_users, location_ids_.size(), num_slots);
    for (const CheckInCell& cell : checkin_cells_) {
      h.Set(cell.user, cell.location, cell.slot);
    }
    stats_.checkin_incidences = h.IncidenceCount();
    phase_timings_.build_context_ms += span_ms(t0);
    t0 = Clock::now();
    Result<std::vector<fca::TriConcept>> mined =
        fca::MineTriConcepts(h, mine_opts);
    phase_timings_.trias_location_ms = span_ms(t0);
    if (!mined.ok()) return mined.status();
    stats_.location_triconcepts = mined.value().size();
    // File the m-triadic concepts (singleton attribute sets) under their
    // location — Algorithm 1's Comm(H, m) for every m at once.
    t0 = Clock::now();
    for (const fca::TriConcept& tc : mined.value()) {
      if (tc.attributes.Count() != 1 || tc.objects.Empty()) continue;
      const uint32_t dense_loc = tc.attributes.ToVector()[0];
      location_communities_[location_ids_[dense_loc].value].push_back(
          decode(tc, h));
    }
    phase_timings_.decode_ms += span_ms(t0);
  }

  // --- Topic context TFC = (U, URIs, T, I), fuzzy with α-cut. ---
  if (!tweet_cells_.empty()) {
    auto t0 = Clock::now();
    fca::FuzzyTriadicContext tfc(num_users, num_topics_, num_slots);
    for (const TweetCell& cell : tweet_cells_) {
      tfc.SetDegree(cell.user, cell.topic, cell.slot, cell.score);
    }
    stats_.tweet_cells = tfc.NonZeroCount();
    const fca::TriadicContext cut = tfc.AlphaCut(options.alpha);
    phase_timings_.build_context_ms += span_ms(t0);
    t0 = Clock::now();
    Result<std::vector<fca::TriConcept>> mined =
        fca::MineTriConcepts(cut, mine_opts);
    phase_timings_.trias_topic_ms = span_ms(t0);
    if (!mined.ok()) return mined.status();
    stats_.topic_triconcepts = mined.value().size();
    t0 = Clock::now();
    for (const fca::TriConcept& tc : mined.value()) {
      if (tc.attributes.Count() != 1 || tc.objects.Empty()) continue;
      const uint32_t topic = tc.attributes.ToVector()[0];
      topic_communities_[topic].push_back(decode(tc, cut));
    }
    phase_timings_.decode_ms += span_ms(t0);
  }
  return Status::OK();
}

fca::FormalContext TimeAwareConceptAnalysis::BuildUserTopicContext(
    double alpha, size_t min_mentions, double min_fraction) const {
  std::unordered_map<uint64_t, size_t> counts;
  std::vector<size_t> user_totals(user_ids_.size(), 0);
  for (const TweetCell& cell : tweet_cells_) {
    if (cell.score >= alpha) {
      ++counts[(static_cast<uint64_t>(cell.user) << 32) | cell.topic];
      ++user_totals[cell.user];
    }
  }
  fca::FormalContext ctx(user_ids_.size(), num_topics_);
  for (const auto& [key, count] : counts) {
    const size_t user = static_cast<size_t>(key >> 32);
    if (count < min_mentions) continue;
    if (min_fraction > 0.0 &&
        static_cast<double>(count) <
            min_fraction * static_cast<double>(user_totals[user])) {
      continue;
    }
    ctx.Set(user, static_cast<size_t>(key & 0xFFFFFFFF));
  }
  return ctx;
}

const std::vector<Community>& TimeAwareConceptAnalysis::LocationCommunities(
    LocationId m) const {
  auto it = location_communities_.find(m.value);
  return it == location_communities_.end() ? empty_ : it->second;
}

const std::vector<Community>& TimeAwareConceptAnalysis::TopicCommunities(
    TopicId uri) const {
  auto it = topic_communities_.find(uri.value);
  return it == topic_communities_.end() ? empty_ : it->second;
}

}  // namespace adrec::core
