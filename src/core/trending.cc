#include "core/trending.h"

#include <algorithm>
#include <cmath>

namespace adrec::core {

TrendingDetector::TrendingDetector(TrendingOptions options)
    : options_(options) {}

void TrendingDetector::RollWindows(Timestamp now) {
  if (!started_) {
    window_start_ = (now / options_.window) * options_.window;
    started_ = true;
    return;
  }
  while (now >= window_start_ + options_.window) {
    history_.push_back(std::move(current_));
    current_ = {};
    if (history_.size() > options_.history_windows) history_.pop_front();
    window_start_ += options_.window;
  }
}

void TrendingDetector::OnTweet(const AnnotatedTweet& tweet) {
  RollWindows(tweet.time);
  for (const annotate::Annotation& a : tweet.annotations) {
    ++current_.counts[a.topic.value];
    ++current_.total;
  }
}

std::pair<double, double> TrendingDetector::Baseline(TopicId topic) const {
  if (history_.empty()) return {0.0, 0.0};
  double sum = 0.0, sumsq = 0.0;
  for (const WindowCounts& window : history_) {
    double share = 0.0;
    if (window.total > 0) {
      auto it = window.counts.find(topic.value);
      if (it != window.counts.end()) {
        share = static_cast<double>(it->second) /
                static_cast<double>(window.total);
      }
    }
    sum += share;
    sumsq += share * share;
  }
  const double n = static_cast<double>(history_.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sumsq / n - mean * mean);
  return {mean, std::sqrt(var)};
}

std::vector<TrendingTopic> TrendingDetector::Trending() const {
  std::vector<TrendingTopic> out;
  if (history_.size() < options_.min_history) return out;  // warm-up
  if (current_.total == 0) return out;
  for (const auto& [topic, count] : current_.counts) {
    if (count < options_.min_count) continue;
    const double share =
        static_cast<double>(count) / static_cast<double>(current_.total);
    const auto [mean, stddev] = Baseline(TopicId(topic));
    const double z =
        (share - mean) / std::max(stddev, options_.stddev_floor);
    if (z < options_.min_z) continue;
    TrendingTopic t;
    t.topic = TopicId(topic);
    t.current_count = count;
    t.current_share = share;
    t.baseline_share = mean;
    t.z_score = z;
    out.push_back(t);
  }
  std::sort(out.begin(), out.end(),
            [](const TrendingTopic& a, const TrendingTopic& b) {
              if (a.z_score != b.z_score) return a.z_score > b.z_score;
              return a.topic.value < b.topic.value;
            });
  return out;
}

}  // namespace adrec::core
