#ifndef ADREC_CORE_SEMANTIC_H_
#define ADREC_CORE_SEMANTIC_H_

#include <vector>

#include "annotate/annotator.h"
#include "feed/types.h"
#include "text/sparse_vector.h"

namespace adrec::core {

/// A tweet after the semantic-representation phase: the raw record plus
/// its <URI, score> pairs.
struct AnnotatedTweet {
  UserId user;
  Timestamp time = 0;
  std::vector<annotate::Annotation> annotations;
};

/// An ad after the semantic-representation phase: the advertiser context
/// (m*, t*, P) of the recommendation model, with P as a scored topic
/// vector.
struct AdContext {
  AdId id;
  text::SparseVector topics;  ///< P with annotation scores as weights
  std::vector<LocationId> locations;  ///< m*
  std::vector<SlotId> slots;          ///< t*
  double bid = 1.0;
};

/// Macro-phase 1: turns raw text (tweets, ad copy) into scored topic-URI
/// representations via the offline Spotlight-equivalent annotator.
class SemanticRepresentation {
 public:
  /// Borrows the annotator's knowledge base; must outlive this object.
  explicit SemanticRepresentation(const annotate::KnowledgeBase* kb,
                                  annotate::AnnotatorOptions options = {});

  /// Annotates one tweet.
  AnnotatedTweet ProcessTweet(const feed::Tweet& tweet) const;

  /// Annotates one ad's copy and carries over its targeting.
  AdContext ProcessAd(const feed::Ad& ad) const;

  const annotate::SpotlightAnnotator& annotator() const { return annotator_; }

 private:
  annotate::SpotlightAnnotator annotator_;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_SEMANTIC_H_
