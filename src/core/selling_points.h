#ifndef ADREC_CORE_SELLING_POINTS_H_
#define ADREC_CORE_SELLING_POINTS_H_

#include <string>
#include <vector>

#include "annotate/knowledge_base.h"
#include "core/tfca.h"

namespace adrec::core {

/// One discovered selling point: a topic over-represented in the target
/// user set relative to the whole population.
struct SellingPoint {
  TopicId topic;
  std::string uri;
  std::string label;
  /// Smoothed lift: P(topic | target users) / P(topic | all users).
  double lift = 0.0;
  /// Target users exhibiting the topic.
  size_t support = 0;
};

/// Discovery knobs.
struct SellingPointOptions {
  /// Context construction (see BuildUserTopicContext).
  double alpha = 0.45;
  size_t min_mentions = 2;
  double min_mention_fraction = 0.05;
  /// A topic must be exhibited by this many target users.
  size_t min_support = 2;
  /// Only lifts above this are interesting (1.0 = population average).
  double min_lift = 1.2;
  /// Laplace smoothing added to both rates.
  double smoothing = 0.5;
  size_t max_points = 10;
};

/// Profiles a user set against the population: which topics distinguish
/// these users? The advertiser-facing dual of the matching problem —
/// given the community an ad reaches (e.g. a MatchResult's users), what
/// should the creative talk about? Returns points sorted by descending
/// lift (ties by topic id).
std::vector<SellingPoint> DiscoverSellingPoints(
    const TimeAwareConceptAnalysis& analysis,
    const annotate::KnowledgeBase& kb, const std::vector<UserId>& users,
    const SellingPointOptions& options = {});

}  // namespace adrec::core

#endif  // ADREC_CORE_SELLING_POINTS_H_
