#ifndef ADREC_CORE_WINDOWED_ANALYZER_H_
#define ADREC_CORE_WINDOWED_ANALYZER_H_

#include <deque>

#include "common/status.h"
#include "core/tfca.h"

namespace adrec::core {

/// Windowing configuration.
struct WindowedOptions {
  /// Events older than now − window are evicted before each analysis.
  DurationSec window = 3 * kSecondsPerDay;
  /// Minimum stream-time between two analyses.
  DurationSec refresh_every = 6 * kSecondsPerHour;
  /// Membership threshold forwarded to the TFCA.
  double alpha = 0.45;
  size_t max_concepts = 1u << 20;
};

/// Continuous-operation wrapper around TimeAwareConceptAnalysis: buffers
/// the stream, evicts events that left the window, and re-mines the
/// triadic contexts on a fixed refresh cadence. This is how the engine
/// keeps concept analysis fresh on an unbounded feed — E9b shows bounded
/// windows are also a *quality* requirement, not just a cost one.
///
/// Single-writer; queries against analysis() see the last refresh.
class WindowedAnalyzer {
 public:
  WindowedAnalyzer(const timeline::TimeSlotScheme* slots, size_t num_topics,
                   WindowedOptions options = {});

  /// Buffers one annotated tweet (time must be stream-monotone within
  /// `window` slack; late events older than the window are dropped).
  void OnTweet(const AnnotatedTweet& tweet);

  /// Buffers one check-in.
  void OnCheckIn(const feed::CheckIn& check_in);

  /// Re-analyzes if at least `refresh_every` stream time has passed since
  /// the last refresh. Returns true when a refresh ran.
  Result<bool> MaybeRefresh(Timestamp now);

  /// Unconditional refresh at `now`.
  Status Refresh(Timestamp now);

  /// The analysis of the last refresh (empty before the first).
  const TimeAwareConceptAnalysis& analysis() const { return tfca_; }

  /// Buffered event counts (diagnostics).
  size_t buffered_tweets() const { return tweets_.size(); }
  size_t buffered_checkins() const { return checkins_.size(); }
  size_t refresh_count() const { return refresh_count_; }

 private:
  void Evict(Timestamp now);

  WindowedOptions options_;
  TimeAwareConceptAnalysis tfca_;
  std::deque<AnnotatedTweet> tweets_;
  std::deque<feed::CheckIn> checkins_;
  Timestamp last_refresh_ = INT64_MIN;
  size_t refresh_count_ = 0;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_WINDOWED_ANALYZER_H_
