#ifndef ADREC_CORE_ENGINE_H_
#define ADREC_CORE_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "ads/ad_store.h"
#include "ads/frequency_cap.h"
#include "annotate/knowledge_base.h"
#include "common/histogram.h"
#include "common/status.h"
#include "core/recommender.h"
#include "core/semantic.h"
#include "core/tfca.h"
#include "feed/types.h"
#include "index/ad_index.h"
#include "obs/metrics.h"
#include "postings/compressed_index.h"
#include "profile/user_profile.h"
#include "timeline/time_slots.h"

namespace adrec::core {

/// Engine configuration.
struct EngineOptions {
  /// Decay half-life of incremental user profiles.
  DurationSec profile_half_life = 7 * kSecondsPerDay;
  /// Default α for RunAnalysis when none is given.
  double alpha = 0.6;
  /// Annotator configuration.
  annotate::AnnotatorOptions annotator;
  /// Matching configuration.
  MatchOptions match;
  /// Per-(user, ad) frequency capping on the streaming path; set
  /// frequency_cap.max_impressions <= 0 to disable.
  ads::FrequencyCapOptions frequency_cap{/*max_impressions=*/5,
                                         /*window=*/kSecondsPerDay};
  /// Per-stage latency timing of the hot path. Event/impression counters
  /// stay on either way (one relaxed atomic add each); disabling only
  /// removes the steady_clock reads, which is what the instrumentation-
  /// overhead benchmark toggles.
  bool collect_stage_timings = true;
  /// Serve ad queries from the compressed posting-list inventory index
  /// (postings::CompressedAdIndex) instead of the uncompressed AdIndex.
  /// Results are byte-identical either way (DESIGN.md §15); the trade is
  /// memory footprint vs. a small query/seal overhead.
  bool compressed_index = false;
  /// Compressed-index tuning (seal threshold etc.); used only when
  /// compressed_index is true.
  postings::PostingsOptions postings;
};

/// The serving context TopKAdsForTweet would resolve for a tweet: the
/// location and slot filters its index query runs under. The topk result
/// cache keys invalidation on these attributes (DESIGN.md §14).
struct TopkContext {
  LocationId location;  // !valid() = query carries no location filter
  SlotId slot;          // !valid() = query carries no slot filter
};

/// A typed snapshot of the engine's observable state: event counters,
/// per-stage hot-path latency histograms (microseconds unless the name
/// says otherwise), and the last analysis' lattice sizes. Mergeable
/// across shards (counters add, histograms bucket-merge).
struct EngineStats {
  // Event counters.
  uint64_t tweets = 0;
  uint64_t checkins = 0;
  uint64_t ads_inserted = 0;
  uint64_t ads_removed = 0;
  uint64_t topk_queries = 0;
  uint64_t impressions_served = 0;
  uint64_t analyses_run = 0;
  // Last RunAnalysis' lattice counters (summed across shards when merged).
  uint64_t location_triconcepts = 0;
  uint64_t topic_triconcepts = 0;
  // Hot-path stage timers.
  Histogram annotate_us;
  Histogram profile_update_us;
  Histogram index_update_us;
  Histogram topk_us;
  // Batch path: the whole RunAnalysis plus its sub-phase spans (context
  // build / TRIAS over each context / concept decode — see
  // TfcaPhaseTimings), which attribute the superlinear analysis cost.
  Histogram analysis_ms;
  Histogram analysis_build_ms;
  Histogram analysis_trias_location_ms;
  Histogram analysis_trias_topic_ms;
  Histogram analysis_decode_ms;

  /// Folds another engine's stats into this one (sharded aggregation).
  void Merge(const EngineStats& other);
};

/// The full context-aware advertisement recommendation engine — the
/// library's main entry point. It wires the three macro-phases together
/// with the streaming substrate:
///
///  * feed events (tweets / check-ins / ad churn) stream in through the
///    On*/Insert*/Remove* methods; per-event work is incremental
///    (annotation, profile update, index maintenance);
///  * RunAnalysis() mines the triadic timed contexts of the accumulated
///    window (macro-phase 2);
///  * RecommendUsers() answers "who should see ad A?" via the triadic
///    matching model (macro-phase 3);
///  * TopKAdsForTweet() answers the dual streaming question "which ads
///    belong on this feed event right now?" via the inverted-index
///    matcher — the high-speed path.
///
/// Single-threaded by design (single-writer stream processing); wrap
/// externally for sharded deployments.
class RecommendationEngine {
 public:
  /// `kb` supplies topics and annotation; shared so workloads and engine
  /// can use one KB. `slots` is copied.
  RecommendationEngine(std::shared_ptr<annotate::KnowledgeBase> kb,
                       timeline::TimeSlotScheme slots,
                       EngineOptions options = {});

  // --- Streaming input. ---

  /// Ingests one tweet: annotates it, updates the author's profile, feeds
  /// the TFCA window, and remembers it as the author's latest context.
  void OnTweet(const feed::Tweet& tweet);

  /// Ingests one check-in: updates the profile, the TFCA window and the
  /// user's current location.
  void OnCheckIn(const feed::CheckIn& check_in);

  /// Dispatches any feed event.
  void OnEvent(const feed::FeedEvent& event);

  /// Inserts an ad: annotates the copy and indexes it.
  Status InsertAd(const feed::Ad& ad);

  /// Removes an ad from store and index.
  Status RemoveAd(AdId id);

  // --- Macro-phase 2/3: triadic analysis and matching. ---

  /// Mines the triadic contexts of everything ingested so far. Call after
  /// (re)filling the window or to re-cut with a different α.
  Status RunAnalysis();
  Status RunAnalysis(double alpha);

  /// Target users for a stored ad via the triadic model. Requires a prior
  /// successful RunAnalysis(); fails with FailedPrecondition otherwise.
  Result<MatchResult> RecommendUsers(AdId id) const;

  /// Same, for an un-stored ad record.
  Result<MatchResult> RecommendUsersFor(const feed::Ad& ad) const;

  // --- The high-speed streaming path. ---

  /// Top-k ads to attach to a tweet right now: the tweet is annotated,
  /// the author's decayed interests are blended in, and the query runs
  /// against the inverted index with the author's current location and
  /// the tweet's slot as filters. Budget-exhausted ads are skipped and
  /// impressions are recorded for returned ads.
  std::vector<index::ScoredAd> TopKAdsForTweet(const feed::Tweet& tweet,
                                               size_t k);

  /// The location/slot context TopKAdsForTweet would resolve for `tweet`
  /// right now — what the topk result cache stamps on an entry so ingest
  /// can compute invalidation fan-out. Read-only.
  TopkContext TopkContextFor(const feed::Tweet& tweet) const;

  /// Cache-hit bookkeeping: revalidates that every ad in `ads` is still
  /// servable to `tweet`'s author at `tweet`'s time (budget + frequency
  /// cap), then charges them exactly as TopKAdsForTweet would — budget
  /// decrement, cap record, topk/impression counters. Returns false
  /// WITHOUT charging anything if any ad fails revalidation; the caller
  /// must then drop the cached entry and recompute. This is what makes
  /// serving a cached topk reply observably identical to recomputing it
  /// (DESIGN.md §14).
  bool ChargeCachedTopK(const feed::Tweet& tweet,
                        const std::vector<AdId>& ads);

  /// Whether the per-(user, ad) frequency cap participates in serving.
  bool frequency_cap_enabled() const {
    return options_.frequency_cap.max_impressions > 0;
  }

  /// The same query answered by the exhaustive scorer (baseline for E3).
  /// Unlike TopKAdsForTweet it is read-only: no impressions are recorded,
  /// so it is safe from const contexts (e.g. a serving dispatch loop).
  std::vector<index::ScoredAd> TopKAdsForTweetExhaustive(
      const feed::Tweet& tweet, size_t k) const;

  // --- Introspection / observability. ---

  const TimeAwareConceptAnalysis& analysis() const { return tfca_; }
  const profile::UserProfileStore& profiles() const { return profiles_; }

  /// Typed snapshot of counters, stage timers and lattice sizes.
  EngineStats Stats() const;

  /// The engine's metric registry (named counters/gauges/timers under the
  /// `engine.` / `tfca.` prefixes) — the generic export surface for
  /// obs::BuildReport / ExportText / ExportJson.
  const obs::MetricRegistry& metrics() const { return metrics_; }

  /// Zeroes all metrics (periodic reporting windows). The cumulative
  /// tweets_ingested()/checkins_ingested() totals are unaffected.
  void ResetMetrics() { metrics_.ResetAll(); }

  /// Re-feeds a past event into the TFCA analysis window ONLY — profiles,
  /// counters, serving state and inventory are untouched. This is the
  /// replay half of the snapshot + bounded-replay recovery procedure
  /// (core/snapshot): after LoadEngineSnapshot, replay the last window of
  /// the event log through this method (NOT OnEvent, which would
  /// double-count the already-snapshotted profile mass), then RunAnalysis.
  /// Ad events are ignored (inventory is part of the snapshot).
  void ReplayForAnalysis(const feed::FeedEvent& event);

  // --- Snapshot support (used by core/snapshot). The TFCA window is not
  // part of a snapshot; re-ingest the recent trace after a restore to
  // rebuild concept analysis (event sourcing).
  profile::UserProfileStore* mutable_profiles() { return &profiles_; }
  ads::AdStore* mutable_ad_store() { return &store_; }
  const std::unordered_map<uint32_t, LocationId>& current_locations() const {
    return current_location_;
  }
  void RestoreCurrentLocation(UserId user, LocationId location) {
    current_location_[user.value] = location;
  }
  const ads::AdStore& ad_store() const { return store_; }
  const ads::FrequencyCapper& frequency_capper() const { return capper_; }
  ads::FrequencyCapper* mutable_frequency_capper() { return &capper_; }
  const index::AdIndex& ad_index() const { return index_; }
  /// The compressed inventory index, or nullptr when the engine runs the
  /// uncompressed AdIndex (options.compressed_index == false).
  const postings::CompressedAdIndex* compressed_index() const {
    return cindex_.get();
  }
  const timeline::TimeSlotScheme& slots() const { return slots_; }
  const SemanticRepresentation& semantic() const { return semantic_; }
  size_t tweets_ingested() const { return tweets_ingested_; }
  size_t checkins_ingested() const { return checkins_ingested_; }

  /// Monotone counter bumped by every entry point that can mutate
  /// snapshot state (ingest, inventory changes, serving-side impression
  /// charging). The delta checkpointer (wal/delta) skips re-serializing
  /// a shard whose epoch is unchanged since its last save — a spurious
  /// bump only costs a redundant serialize, a missed one would corrupt
  /// the delta chain, so mutators bump unconditionally at entry.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

 private:
  index::AdQuery BuildQuery(const feed::Tweet& tweet, size_t k) const;

  /// Publishes the index.ads / index.postings_bytes gauges for whichever
  /// inventory index is active (called after every insert/remove).
  void RefreshIndexGauges();

  /// The timer handle if stage timing is on, nullptr (no-op probe) if off.
  obs::Timer* StageTimer(obs::Timer* timer) const {
    return options_.collect_stage_timings ? timer : nullptr;
  }

  std::shared_ptr<annotate::KnowledgeBase> kb_;
  timeline::TimeSlotScheme slots_;
  EngineOptions options_;
  SemanticRepresentation semantic_;
  profile::UserProfileStore profiles_;
  TimeAwareConceptAnalysis tfca_;
  ads::AdStore store_;
  index::AdIndex index_;
  // Non-null iff options_.compressed_index: the serving index becomes the
  // compressed one and index_ stays empty (constructed in the ctor body,
  // after metrics_ is live, so it can register its postings.* handles).
  std::unique_ptr<postings::CompressedAdIndex> cindex_;
  ads::FrequencyCapper capper_;
  std::unordered_map<uint32_t, LocationId> current_location_;
  bool analysis_valid_ = false;
  size_t tweets_ingested_ = 0;
  size_t checkins_ingested_ = 0;
  uint64_t mutation_epoch_ = 0;

  // Observability: the registry plus cached handles so the hot path never
  // takes the registration lock.
  obs::MetricRegistry metrics_;
  obs::Counter* ctr_tweets_;
  obs::Counter* ctr_checkins_;
  obs::Counter* ctr_ads_inserted_;
  obs::Counter* ctr_ads_removed_;
  obs::Counter* ctr_topk_queries_;
  obs::Counter* ctr_impressions_;
  obs::Counter* ctr_analyses_;
  obs::Gauge* g_location_triconcepts_;
  obs::Gauge* g_topic_triconcepts_;
  obs::Gauge* g_index_ads_;
  obs::Gauge* g_index_postings_bytes_;
  obs::Timer* tm_annotate_;
  obs::Timer* tm_profile_update_;
  obs::Timer* tm_index_update_;
  obs::Timer* tm_topk_;
  obs::Timer* tm_analysis_ms_;
  obs::Timer* tm_analysis_build_;
  obs::Timer* tm_analysis_trias_location_;
  obs::Timer* tm_analysis_trias_topic_;
  obs::Timer* tm_analysis_decode_;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_ENGINE_H_
