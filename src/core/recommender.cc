#include "core/recommender.h"

#include <algorithm>
#include <unordered_map>

#include "fca/implications.h"

namespace adrec::core {

namespace {

/// True iff the community's slot set intersects the ad's target slots.
bool SlotsIntersect(const Community& community,
                    const std::vector<SlotId>& targets) {
  if (targets.empty()) return true;  // untargeted ads run in every slot
  for (SlotId s : community.slots) {
    for (SlotId t : targets) {
      if (s == t) return true;
    }
  }
  return false;
}

}  // namespace

AdContext ExpandAdTopics(const TimeAwareConceptAnalysis& analysis,
                         const AdContext& ad, const ExpandOptions& options) {
  const fca::FormalContext ctx = analysis.BuildUserTopicContext(
      options.alpha, options.min_mentions, options.min_mention_fraction);
  fca::Bitset support(ctx.num_attributes());
  for (const text::SparseEntry& e : ad.topics.entries()) {
    if (e.id < ctx.num_attributes() && e.weight > 0.0) support.Set(e.id);
  }

  fca::Bitset closed(ctx.num_attributes());
  if (options.exact_only) {
    fca::EnumerateOptions mine_opts;
    mine_opts.max_concepts = options.max_concepts;
    Result<std::vector<fca::Implication>> basis =
        fca::StemBase(ctx, mine_opts);
    if (!basis.ok()) return ad;
    // Keep only short-premise implications; long premises rarely fire and
    // overfit small windows.
    std::vector<fca::Implication> usable;
    for (fca::Implication& imp : basis.value()) {
      if (imp.premise.Count() >= 1 &&
          imp.premise.Count() <= options.max_premise) {
        usable.push_back(std::move(imp));
      }
    }
    closed = fca::CloseUnderImplications(usable, support);
  } else {
    const std::vector<fca::AssociationRule> rules = fca::MineAssociationRules(
        ctx, options.min_support, options.min_confidence);
    closed = fca::CloseUnderRules(rules, support);
  }

  AdContext out = ad;
  for (uint32_t topic : closed.ToVector()) {
    if (!support.Test(topic)) {
      out.topics.Add(topic, options.implied_weight);
    }
  }
  return out;
}

MatchResult MatchAd(const TimeAwareConceptAnalysis& analysis,
                    const AdContext& ad, const MatchOptions& options) {
  MatchResult result;

  // U-L matching: users of the location communities of every m*.
  std::unordered_map<uint32_t, int> location_support;
  for (LocationId m : ad.locations) {
    for (const Community& c : analysis.LocationCommunities(m)) {
      if (c.stability < options.min_community_stability) continue;
      if (options.filter_by_slot && !SlotsIntersect(c, ad.slots)) continue;
      for (UserId u : c.users) ++location_support[u.value];
    }
  }
  result.location_candidates = location_support.size();

  // U-C matching: users of the topic communities of every uri ∈ P.
  std::unordered_map<uint32_t, int> topic_support;
  for (const text::SparseEntry& e : ad.topics.entries()) {
    if (e.weight < options.min_topic_score) continue;
    for (const Community& c : analysis.TopicCommunities(TopicId(e.id))) {
      if (c.stability < options.min_community_stability) continue;
      if (options.filter_by_slot && !SlotsIntersect(c, ad.slots)) continue;
      for (UserId u : c.users) ++topic_support[u.value];
    }
  }
  result.topic_candidates = topic_support.size();

  // Join ⋈_u: users present on both sides.
  for (const auto& [user, t_support] : topic_support) {
    auto it = location_support.find(user);
    if (it == location_support.end()) continue;
    MatchedUser mu;
    mu.user = UserId(user);
    mu.topic_support = t_support;
    mu.location_support = it->second;
    mu.score = static_cast<double>(t_support + it->second);
    result.users.push_back(mu);
  }
  std::sort(result.users.begin(), result.users.end(),
            [](const MatchedUser& a, const MatchedUser& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.user.value < b.user.value;
            });
  return result;
}

}  // namespace adrec::core
