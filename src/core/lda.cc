#include "core/lda.h"

#include <cmath>

#include "common/logging.h"

namespace adrec::core {

Result<LdaModel> LdaModel::Train(
    const std::vector<std::vector<uint32_t>>& docs, size_t vocab_size,
    const LdaOptions& options) {
  if (options.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  if (vocab_size == 0) {
    return Status::InvalidArgument("vocab_size must be positive");
  }
  for (const auto& doc : docs) {
    for (uint32_t w : doc) {
      if (w >= vocab_size) {
        return Status::OutOfRange("word id beyond vocab_size");
      }
    }
  }

  LdaModel model;
  model.options_ = options;
  model.vocab_size_ = vocab_size;
  const size_t k = options.num_topics;

  Rng rng(options.seed);
  model.topic_word_.assign(k, std::vector<int32_t>(vocab_size, 0));
  model.topic_total_.assign(k, 0);
  std::vector<std::vector<int32_t>> doc_topic(docs.size(),
                                              std::vector<int32_t>(k, 0));
  std::vector<std::vector<uint8_t>> assignments(docs.size());

  // Random initialisation.
  for (size_t d = 0; d < docs.size(); ++d) {
    assignments[d].resize(docs[d].size());
    for (size_t i = 0; i < docs[d].size(); ++i) {
      const size_t z = rng.NextBounded(k);
      assignments[d][i] = static_cast<uint8_t>(z);
      ++doc_topic[d][z];
      ++model.topic_word_[z][docs[d][i]];
      ++model.topic_total_[z];
    }
  }

  // Collapsed Gibbs sweeps.
  std::vector<double> weights(k);
  const double vbeta = static_cast<double>(vocab_size) * options.beta;
  for (int iter = 0; iter < options.train_iterations; ++iter) {
    for (size_t d = 0; d < docs.size(); ++d) {
      for (size_t i = 0; i < docs[d].size(); ++i) {
        const uint32_t w = docs[d][i];
        const size_t old_z = assignments[d][i];
        --doc_topic[d][old_z];
        --model.topic_word_[old_z][w];
        --model.topic_total_[old_z];

        double total = 0.0;
        for (size_t z = 0; z < k; ++z) {
          const double p =
              (doc_topic[d][z] + options.alpha) *
              (model.topic_word_[z][w] + options.beta) /
              (static_cast<double>(model.topic_total_[z]) + vbeta);
          weights[z] = p;
          total += p;
        }
        double u = rng.NextDouble() * total;
        size_t new_z = k - 1;
        for (size_t z = 0; z < k; ++z) {
          u -= weights[z];
          if (u <= 0.0) {
            new_z = z;
            break;
          }
        }
        assignments[d][i] = static_cast<uint8_t>(new_z);
        ++doc_topic[d][new_z];
        ++model.topic_word_[new_z][w];
        ++model.topic_total_[new_z];
      }
    }
  }

  // Final document-topic distributions.
  model.doc_topic_dist_.resize(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    model.doc_topic_dist_[d].resize(k);
    const double denom =
        static_cast<double>(docs[d].size()) + static_cast<double>(k) * options.alpha;
    for (size_t z = 0; z < k; ++z) {
      model.doc_topic_dist_[d][z] = (doc_topic[d][z] + options.alpha) / denom;
    }
  }
  return model;
}

std::vector<double> LdaModel::DocTopicDistribution(size_t doc) const {
  ADREC_CHECK(doc < doc_topic_dist_.size());
  return doc_topic_dist_[doc];
}

std::vector<double> LdaModel::Infer(const std::vector<uint32_t>& doc) const {
  const size_t k = options_.num_topics;
  const double vbeta = static_cast<double>(vocab_size_) * options_.beta;
  Rng rng(options_.seed ^ 0xABCDEF);
  std::vector<int32_t> doc_topic(k, 0);
  std::vector<uint8_t> assignment(doc.size());
  std::vector<uint32_t> kept;
  kept.reserve(doc.size());
  for (uint32_t w : doc) {
    if (w < vocab_size_) kept.push_back(w);  // unseen words are dropped
  }
  assignment.resize(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    const size_t z = rng.NextBounded(k);
    assignment[i] = static_cast<uint8_t>(z);
    ++doc_topic[z];
  }
  std::vector<double> weights(k);
  for (int iter = 0; iter < options_.infer_iterations; ++iter) {
    for (size_t i = 0; i < kept.size(); ++i) {
      const uint32_t w = kept[i];
      const size_t old_z = assignment[i];
      --doc_topic[old_z];
      double total = 0.0;
      for (size_t z = 0; z < k; ++z) {
        const double p = (doc_topic[z] + options_.alpha) *
                         (topic_word_[z][w] + options_.beta) /
                         (static_cast<double>(topic_total_[z]) + vbeta);
        weights[z] = p;
        total += p;
      }
      double u = rng.NextDouble() * total;
      size_t new_z = k - 1;
      for (size_t z = 0; z < k; ++z) {
        u -= weights[z];
        if (u <= 0.0) {
          new_z = z;
          break;
        }
      }
      assignment[i] = static_cast<uint8_t>(new_z);
      ++doc_topic[new_z];
    }
  }
  std::vector<double> dist(k);
  const double denom = static_cast<double>(kept.size()) +
                       static_cast<double>(k) * options_.alpha;
  for (size_t z = 0; z < k; ++z) {
    dist[z] = (doc_topic[z] + options_.alpha) / denom;
  }
  return dist;
}

double LdaModel::TopicWordProbability(size_t topic, uint32_t word) const {
  ADREC_CHECK(topic < options_.num_topics && word < vocab_size_);
  const double vbeta = static_cast<double>(vocab_size_) * options_.beta;
  return (topic_word_[topic][word] + options_.beta) /
         (static_cast<double>(topic_total_[topic]) + vbeta);
}

double LdaModel::Similarity(const std::vector<double>& a,
                            const std::vector<double>& b) {
  ADREC_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

}  // namespace adrec::core
