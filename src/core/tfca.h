#ifndef ADREC_CORE_TFCA_H_
#define ADREC_CORE_TFCA_H_

#include <unordered_map>
#include <vector>

#include "common/id_types.h"
#include "common/status.h"
#include "core/semantic.h"
#include "fca/fuzzy_triadic.h"
#include "fca/triadic_context.h"
#include "feed/types.h"
#include "timeline/time_slots.h"

namespace adrec::core {

/// One community extracted from a triadic concept, decoded back to domain
/// ids: the users of the concept's extent and the time slots of its
/// condition set. The focus attribute (location or topic) is implied by
/// where the community is filed.
struct Community {
  std::vector<UserId> users;
  std::vector<SlotId> slots;
  /// Kuznetsov stability of the underlying triadic concept in [0,1]
  /// (1.0 when stability computation is disabled): how robust the
  /// community is to removing individual members. Noise-sensitive
  /// communities score low and can be filtered at match time.
  double stability = 1.0;
};

/// Parameters of an analysis run.
struct TfcaOptions {
  /// Membership threshold α of the topic fuzzy context (the x-axis of the
  /// F-score experiments). The location context is binary and unaffected.
  double alpha = 0.6;
  /// Safety cap forwarded to the concept miners.
  size_t max_concepts = 1u << 20;
  /// When true, every community's concept stability is computed (costs
  /// one subset enumeration or Monte-Carlo estimate per concept).
  bool compute_stability = false;
};

/// Summary counters of the last Analyze() call. Equality-comparable so
/// differential tests (testkit) can assert two independently-executed
/// engines mined identical lattices.
struct TfcaStats {
  size_t users = 0;
  size_t locations = 0;
  size_t topics = 0;
  size_t checkin_incidences = 0;
  size_t tweet_cells = 0;
  size_t location_triconcepts = 0;
  size_t topic_triconcepts = 0;

  friend bool operator==(const TfcaStats&, const TfcaStats&) = default;
};

/// Wall-clock breakdown of the last Analyze() call, in milliseconds —
/// the sub-phase spans that attribute `engine.analysis_ms` before
/// optimising it. Deliberately NOT part of TfcaStats: timings vary run
/// to run, and TfcaStats equality is the differential tests' lattice-
/// identity check.
struct TfcaPhaseTimings {
  /// Dense cells → (fuzzy) triadic contexts, including the α-cut.
  double build_context_ms = 0.0;
  /// TRIAS over the binary location context H.
  double trias_location_ms = 0.0;
  /// TRIAS over the α-cut topic context TFC.
  double trias_topic_ms = 0.0;
  /// Concepts → Community decoding and filing (incl. stability).
  double decode_ms = 0.0;
};

/// Macro-phase 2: Time-aware concept analysis. Accumulates the window's
/// check-ins and annotated tweets, then mines two triadic timed contexts:
///
///  * H  = (U, M, T, I): users × locations × slots (binary check-ins) —
///    location-based communities Comm(H, m) are the m-triadic concepts
///    (Algorithm 1 of the methodology);
///  * TFC = (U, URIs, T, I): users × topics × slots (fuzzy, α-cut) —
///    context-based communities Comm(TFC, uri) (Algorithm 2).
///
/// Conditions are the named slots of the scheme (day-of-trace aggregated):
/// "users who are at m in the morning" is the granularity the ad targeting
/// speaks.
class TimeAwareConceptAnalysis {
 public:
  /// `slots` must outlive this object; `num_topics` is the KB size.
  TimeAwareConceptAnalysis(const timeline::TimeSlotScheme* slots,
                           size_t num_topics);

  /// Feeds one check-in into the window.
  void AddCheckIn(const feed::CheckIn& check_in);

  /// Feeds one annotated tweet into the window.
  void AddTweet(const AnnotatedTweet& tweet);

  /// Drops all accumulated events and results (window restart).
  void Reset();

  /// Mines both contexts. May be called repeatedly with different α over
  /// the same accumulated window (the α sweep of E1/E2 does exactly that).
  Status Analyze(const TfcaOptions& options = {});

  /// Comm(H, m): location-based communities of `m` (empty if none).
  const std::vector<Community>& LocationCommunities(LocationId m) const;

  /// Comm(TFC, uri): context-based communities of `uri` (empty if none).
  const std::vector<Community>& TopicCommunities(TopicId uri) const;

  /// The dyadic (users × topics) context of the accumulated window at
  /// threshold `alpha`, slots aggregated — the context whose attribute
  /// implications ("whoever tweets about A also tweets about B") drive
  /// audience expansion. A (user, topic) incidence requires at least
  /// `min_mentions` qualifying tweet cells: one-off mentions are noise,
  /// not interest. Independent of Analyze().
  /// `min_fraction` additionally requires the topic to account for that
  /// share of the user's qualifying tweet cells, which keeps the filter
  /// meaningful regardless of window length.
  fca::FormalContext BuildUserTopicContext(double alpha,
                                           size_t min_mentions = 1,
                                           double min_fraction = 0.0) const;

  /// Counters of the last Analyze() run.
  const TfcaStats& stats() const { return stats_; }

  /// Sub-phase wall times of the last Analyze() run.
  const TfcaPhaseTimings& phase_timings() const { return phase_timings_; }

  /// Users seen in the window, in first-seen order.
  const std::vector<UserId>& known_users() const { return user_ids_; }

 private:
  size_t DenseUser(UserId user);
  size_t DenseLocation(LocationId loc);

  const timeline::TimeSlotScheme* slots_;  // not owned
  size_t num_topics_;

  // Dense id mapping (users and locations arrive with arbitrary ids).
  std::unordered_map<uint32_t, size_t> user_index_;
  std::vector<UserId> user_ids_;
  std::unordered_map<uint32_t, size_t> location_index_;
  std::vector<LocationId> location_ids_;

  // Accumulated window events in dense coordinates.
  struct CheckInCell {
    uint32_t user, location, slot;
  };
  struct TweetCell {
    uint32_t user, topic, slot;
    double score;
  };
  std::vector<CheckInCell> checkin_cells_;
  std::vector<TweetCell> tweet_cells_;

  // Results of the last Analyze().
  std::unordered_map<uint32_t, std::vector<Community>> location_communities_;
  std::unordered_map<uint32_t, std::vector<Community>> topic_communities_;
  std::vector<Community> empty_;
  TfcaStats stats_;
  TfcaPhaseTimings phase_timings_;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_TFCA_H_
