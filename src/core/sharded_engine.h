#ifndef ADREC_CORE_SHARDED_ENGINE_H_
#define ADREC_CORE_SHARDED_ENGINE_H_

#include <memory>
#include <vector>

#include "core/engine.h"

namespace adrec::core {

/// A user-sharded deployment of the engine: users are hash-partitioned
/// across N independent single-threaded engines; ad operations are
/// broadcast; the expensive triadic analysis runs shard-parallel with
/// std::thread.
///
/// Semantics note: concept mining is per shard, so communities spanning
/// shards are mined as their shard-local projections. A user's
/// *membership* in the match is preserved in practice (their own
/// incidences travel with them), but community extents reported by a
/// shard contain only that shard's users — the standard accuracy/scale
/// trade of user partitioning. The sharded match is the union of shard
/// matches.
class ShardedEngine {
 public:
  /// Creates `num_shards` engines sharing one knowledge base.
  ShardedEngine(std::shared_ptr<annotate::KnowledgeBase> kb,
                timeline::TimeSlotScheme slots, size_t num_shards,
                EngineOptions options = {});

  /// Routes a tweet/check-in to its owner shard; broadcasts ad ops.
  void OnEvent(const feed::FeedEvent& event);
  void OnTweet(const feed::Tweet& tweet);
  void OnCheckIn(const feed::CheckIn& check_in);
  Status InsertAd(const feed::Ad& ad);
  Status RemoveAd(AdId id);

  /// Window-only replay routed to the owner shard (same semantics as
  /// RecommendationEngine::ReplayForAnalysis; ad events are ignored).
  /// Used by snapshot + bounded-replay recovery (core/snapshot, wal).
  void ReplayForAnalysis(const feed::FeedEvent& event);

  // --- Per-shard apply, for per-shard WAL streams and worker pools
  // (wal/sharded_wal.h, serve/pool). The caller owns the routing
  // invariant: tweets/check-ins handed to shard `s` must hash there
  // (checked), while ad ops are applied to exactly the named shard —
  // the per-stream log duplicates them into every stream, so replaying
  // stream `s` into shard `s` reproduces the broadcast. ---

  /// Live-apply one event to one shard (ad statuses ignored, like
  /// OnEvent). Tweets/check-ins are checked against ShardOf.
  void ApplyToShard(size_t shard, const feed::FeedEvent& event);
  /// Window-only replay of one event into one shard (ad events ignored).
  void ReplayForAnalysisShard(size_t shard, const feed::FeedEvent& event);
  /// Inventory ops on a single shard, with the usual status surface
  /// (kAlreadyExists / kNotFound for idempotent replay tolerance).
  Status InsertAdOnShard(size_t shard, const feed::Ad& ad);
  Status RemoveAdOnShard(size_t shard, AdId id);
  /// The triadic analysis on one shard only (a pool worker runs its own
  /// shards; the fan-out replaces the std::thread spread of
  /// RunAnalysis). `alpha < 0` uses the shard's configured alpha.
  Status RunAnalysisOnShard(size_t shard, double alpha);
  /// One shard's match, un-merged (serve/pool fans these out and merges
  /// with MergeMatches).
  Result<MatchResult> RecommendUsersOnShard(size_t shard, AdId id) const;
  /// Folds per-shard matches into the canonical union ranking (score
  /// desc, user asc) — the exact merge RecommendUsers applies.
  static MatchResult MergeMatches(std::vector<MatchResult> parts);

  /// Runs the triadic analysis on every shard in parallel; the no-arg
  /// form uses each shard's configured EngineOptions::alpha.
  Status RunAnalysis(double alpha);
  Status RunAnalysis();

  /// Union of the shard matches, re-ranked (score desc, user asc).
  Result<MatchResult> RecommendUsers(AdId id) const;

  /// Routed to the author's shard.
  std::vector<index::ScoredAd> TopKAdsForTweet(const feed::Tweet& tweet,
                                               size_t k);

  /// Cache support, routed to the author's shard (budgets and frequency
  /// caps live per shard — impressions charge where the query serves).
  TopkContext TopkContextFor(const feed::Tweet& tweet) const;
  bool ChargeCachedTopK(const feed::Tweet& tweet,
                        const std::vector<AdId>& ads);
  bool frequency_cap_enabled() const {
    return shards_[0]->frequency_cap_enabled();
  }
  /// Stored ad lookup (nullptr if absent). Ad inventory is broadcast, so
  /// shard 0 is authoritative for targeting metadata.
  const ads::StoredAd* FindAd(AdId id) const {
    return shards_[0]->ad_store().Find(id);
  }

  size_t num_shards() const { return shards_.size(); }
  const RecommendationEngine& shard(size_t i) const { return *shards_[i]; }
  /// Mutable shard access for snapshot restore (core/snapshot loads each
  /// shard's files directly into its engine).
  RecommendationEngine* mutable_shard(size_t i) { return shards_[i].get(); }

  // --- Observability. ---

  /// Aggregate view: every shard's EngineStats folded together (counters
  /// add, stage histograms merge via Histogram::Merge). Per-shard stats
  /// remain reachable through shard(i).Stats().
  EngineStats Stats() const;

  /// Aggregate metric registry snapshot across shards (same merge rules),
  /// for the generic obs exporters.
  obs::MetricsSnapshot MergedMetrics() const;

  /// The shard owning a user.
  size_t ShardOf(UserId user) const;

 private:
  std::vector<std::unique_ptr<RecommendationEngine>> shards_;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_SHARDED_ENGINE_H_
