#ifndef ADREC_CORE_TRENDING_H_
#define ADREC_CORE_TRENDING_H_

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/id_types.h"
#include "common/sim_clock.h"
#include "core/semantic.h"

namespace adrec::core {

/// One trending topic with its burst evidence.
struct TrendingTopic {
  TopicId topic;
  /// Mentions in the current (foreground) window.
  size_t current_count = 0;
  /// Share of voice in the current window (mentions / all mentions).
  double current_share = 0.0;
  /// Mean share per window over the history (baseline).
  double baseline_share = 0.0;
  /// Burst z-score on shares: (current − mean) / max(stddev, floor).
  double z_score = 0.0;
};

/// Detector configuration.
struct TrendingOptions {
  /// Width of one counting window.
  DurationSec window = kSecondsPerHour;
  /// How many past windows form the baseline.
  size_t history_windows = 24;
  /// Minimum mentions in the current window before a topic can trend.
  size_t min_count = 3;
  /// Minimum z-score to report.
  double min_z = 2.0;
  /// Warm-up: no topic trends until this many windows completed (a thin
  /// baseline has stddev ~0 and would flag ordinary activity).
  size_t min_history = 6;
  /// Floor for the share stddev in the z denominator (guards topics with
  /// perfectly flat history).
  double stddev_floor = 0.02;
};

/// Burst detection over the annotated tweet stream, on *share of voice*
/// rather than absolute counts: a topic trends when its fraction of all
/// mentions departs from its per-window baseline share. Shares are
/// invariant to diurnal volume swings (afternoons are always louder than
/// nights), which absolute-count detectors misread as bursts. The
/// "high-speed news feeding" counterpart of the batch topic analysis:
/// advertisers surge bids on bursting topics.
///
/// Single-writer streaming: feed annotated tweets in time order; query at
/// any moment.
class TrendingDetector {
 public:
  explicit TrendingDetector(TrendingOptions options = {});

  /// Folds one annotated tweet in (monotone-ish time; events older than
  /// the current window are counted into it anyway).
  void OnTweet(const AnnotatedTweet& tweet);

  /// Topics trending as of the latest data, hottest first.
  std::vector<TrendingTopic> Trending() const;

  /// Baseline (mean, stddev) of a topic's per-window share of voice.
  std::pair<double, double> Baseline(TopicId topic) const;

  /// Windows completed so far (diagnostics).
  size_t completed_windows() const { return history_.size(); }

 private:
  struct WindowCounts {
    std::unordered_map<uint32_t, size_t> counts;
    size_t total = 0;
  };

  void RollWindows(Timestamp now);

  TrendingOptions options_;
  Timestamp window_start_ = 0;
  bool started_ = false;
  WindowCounts current_;
  std::deque<WindowCounts> history_;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_TRENDING_H_
