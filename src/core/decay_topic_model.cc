#include "core/decay_topic_model.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"

namespace adrec::core {

Result<WeightedLdaModel> WeightedLdaModel::Train(
    const std::vector<std::vector<Token>>& docs, size_t vocab_size,
    const DecayTopicOptions& options) {
  if (options.num_topics == 0) {
    return Status::InvalidArgument("num_topics must be positive");
  }
  if (vocab_size == 0) {
    return Status::InvalidArgument("vocab_size must be positive");
  }
  for (const auto& doc : docs) {
    for (const Token& t : doc) {
      if (t.word >= vocab_size) {
        return Status::OutOfRange("word id beyond vocab_size");
      }
      if (t.weight < 0.0) {
        return Status::InvalidArgument("token weight must be >= 0");
      }
    }
  }

  WeightedLdaModel model;
  model.options_ = options;
  model.vocab_size_ = vocab_size;
  const size_t k = options.num_topics;

  Rng rng(options.seed);
  model.topic_word_.assign(k, std::vector<double>(vocab_size, 0.0));
  model.topic_total_.assign(k, 0.0);
  std::vector<std::vector<double>> doc_topic(docs.size(),
                                             std::vector<double>(k, 0.0));
  std::vector<std::vector<uint8_t>> assignments(docs.size());
  std::vector<double> doc_mass(docs.size(), 0.0);

  for (size_t d = 0; d < docs.size(); ++d) {
    assignments[d].resize(docs[d].size());
    for (size_t i = 0; i < docs[d].size(); ++i) {
      const size_t z = rng.NextBounded(k);
      assignments[d][i] = static_cast<uint8_t>(z);
      const double w = docs[d][i].weight;
      doc_topic[d][z] += w;
      model.topic_word_[z][docs[d][i].word] += w;
      model.topic_total_[z] += w;
      doc_mass[d] += w;
    }
  }

  std::vector<double> weights(k);
  const double vbeta = static_cast<double>(vocab_size) * options.beta;
  for (int iter = 0; iter < options.train_iterations; ++iter) {
    for (size_t d = 0; d < docs.size(); ++d) {
      for (size_t i = 0; i < docs[d].size(); ++i) {
        const Token& tok = docs[d][i];
        if (tok.weight <= 0.0) continue;
        const size_t old_z = assignments[d][i];
        doc_topic[d][old_z] -= tok.weight;
        model.topic_word_[old_z][tok.word] -= tok.weight;
        model.topic_total_[old_z] -= tok.weight;

        double total = 0.0;
        for (size_t z = 0; z < k; ++z) {
          const double p = (doc_topic[d][z] + options.alpha) *
                           (model.topic_word_[z][tok.word] + options.beta) /
                           (model.topic_total_[z] + vbeta);
          weights[z] = p;
          total += p;
        }
        double u = rng.NextDouble() * total;
        size_t new_z = k - 1;
        for (size_t z = 0; z < k; ++z) {
          u -= weights[z];
          if (u <= 0.0) {
            new_z = z;
            break;
          }
        }
        assignments[d][i] = static_cast<uint8_t>(new_z);
        doc_topic[d][new_z] += tok.weight;
        model.topic_word_[new_z][tok.word] += tok.weight;
        model.topic_total_[new_z] += tok.weight;
      }
    }
  }

  model.doc_topic_dist_.resize(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    model.doc_topic_dist_[d].resize(k);
    const double denom =
        doc_mass[d] + static_cast<double>(k) * options.alpha;
    for (size_t z = 0; z < k; ++z) {
      model.doc_topic_dist_[d][z] = (doc_topic[d][z] + options.alpha) / denom;
    }
  }
  return model;
}

std::vector<double> WeightedLdaModel::DocTopicDistribution(size_t doc) const {
  ADREC_CHECK(doc < doc_topic_dist_.size());
  return doc_topic_dist_[doc];
}

std::vector<double> WeightedLdaModel::Infer(
    const std::vector<uint32_t>& doc) const {
  const size_t k = options_.num_topics;
  const double vbeta = static_cast<double>(vocab_size_) * options_.beta;
  Rng rng(options_.seed ^ 0xFEDCBA);
  std::vector<uint32_t> kept;
  for (uint32_t w : doc) {
    if (w < vocab_size_) kept.push_back(w);
  }
  std::vector<double> doc_topic(k, 0.0);
  std::vector<uint8_t> assignment(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) {
    const size_t z = rng.NextBounded(k);
    assignment[i] = static_cast<uint8_t>(z);
    doc_topic[z] += 1.0;
  }
  std::vector<double> weights(k);
  for (int iter = 0; iter < options_.infer_iterations; ++iter) {
    for (size_t i = 0; i < kept.size(); ++i) {
      const size_t old_z = assignment[i];
      doc_topic[old_z] -= 1.0;
      double total = 0.0;
      for (size_t z = 0; z < k; ++z) {
        const double p = (doc_topic[z] + options_.alpha) *
                         (topic_word_[z][kept[i]] + options_.beta) /
                         (topic_total_[z] + vbeta);
        weights[z] = p;
        total += p;
      }
      double u = rng.NextDouble() * total;
      size_t new_z = k - 1;
      for (size_t z = 0; z < k; ++z) {
        u -= weights[z];
        if (u <= 0.0) {
          new_z = z;
          break;
        }
      }
      assignment[i] = static_cast<uint8_t>(new_z);
      doc_topic[new_z] += 1.0;
    }
  }
  std::vector<double> dist(k);
  const double denom = static_cast<double>(kept.size()) +
                       static_cast<double>(k) * options_.alpha;
  for (size_t z = 0; z < k; ++z) {
    dist[z] = (doc_topic[z] + options_.alpha) / denom;
  }
  return dist;
}

double WeightedLdaModel::Similarity(const std::vector<double>& a,
                                    const std::vector<double>& b) {
  ADREC_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    na += a[i] * a[i];
    nb += b[i] * b[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

namespace {

/// Circular time-of-day distance in seconds (<= half a day).
int64_t TimeOfDayDistance(int64_t a, int64_t b) {
  int64_t d = a - b;
  if (d < 0) d = -d;
  return std::min(d, kSecondsPerDay - d);
}

}  // namespace

Result<DecayTopicStrategy> DecayTopicStrategy::TrainImpl(
    const std::vector<feed::Tweet>& tweets, text::Analyzer* analyzer,
    DecayKernel kernel, Timestamp reference, int64_t target_second,
    const DecayTopicOptions& options) {
  if (analyzer == nullptr) {
    return Status::InvalidArgument("analyzer must not be null");
  }
  DecayTopicStrategy strategy;
  strategy.analyzer_ = analyzer;
  std::unordered_map<uint32_t, size_t> row_of;
  std::vector<std::vector<WeightedLdaModel::Token>> docs;
  for (const feed::Tweet& t : tweets) {
    double w = 1.0;
    if (kernel == DecayKernel::kExponential) {
      const DurationSec age = reference - t.time;
      w = age <= 0 ? 1.0
                   : std::exp2(-static_cast<double>(age) /
                               static_cast<double>(options.half_life));
    } else {
      const int64_t d = TimeOfDayDistance(SecondOfDay(t.time), target_second);
      const double s = static_cast<double>(options.sigma);
      w = std::exp(-static_cast<double>(d) * static_cast<double>(d) /
                   (2.0 * s * s));
    }
    if (w < options.min_token_weight) continue;
    auto it = row_of.find(t.user.value);
    if (it == row_of.end()) {
      it = row_of.emplace(t.user.value, docs.size()).first;
      docs.emplace_back();
      strategy.users_.push_back(t.user);
    }
    for (text::TermId term : analyzer->Analyze(t.text)) {
      docs[it->second].push_back(WeightedLdaModel::Token{term, w});
    }
  }
  if (docs.empty()) {
    return Status::InvalidArgument("no tweets survive the kernel cutoff");
  }
  Result<WeightedLdaModel> model =
      WeightedLdaModel::Train(docs, analyzer->vocabulary().size(), options);
  if (!model.ok()) return model.status();
  strategy.model_ = std::move(model).value();
  return strategy;
}

Result<DecayTopicStrategy> DecayTopicStrategy::TrainDtm(
    const std::vector<feed::Tweet>& tweets, text::Analyzer* analyzer,
    Timestamp reference, const DecayTopicOptions& options) {
  return TrainImpl(tweets, analyzer, DecayKernel::kExponential, reference, 0,
                   options);
}

Result<DecayTopicStrategy> DecayTopicStrategy::TrainGdtm(
    const std::vector<feed::Tweet>& tweets, text::Analyzer* analyzer,
    int64_t target_second_of_day, const DecayTopicOptions& options) {
  return TrainImpl(tweets, analyzer, DecayKernel::kGaussianTimeOfDay, 0,
                   target_second_of_day, options);
}

std::vector<UserId> DecayTopicStrategy::Predict(const std::string& ad_copy,
                                                double threshold) const {
  const std::vector<text::TermId> terms = analyzer_->AnalyzeReadOnly(ad_copy);
  std::vector<uint32_t> doc(terms.begin(), terms.end());
  const std::vector<double> ad_dist = model_.Infer(doc);
  std::vector<UserId> out;
  for (size_t row = 0; row < users_.size(); ++row) {
    if (WeightedLdaModel::Similarity(model_.DocTopicDistribution(row),
                                     ad_dist) >= threshold) {
      out.push_back(users_[row]);
    }
  }
  return out;
}

}  // namespace adrec::core
