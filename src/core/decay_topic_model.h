#ifndef ADREC_CORE_DECAY_TOPIC_MODEL_H_
#define ADREC_CORE_DECAY_TOPIC_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "feed/types.h"
#include "text/analyzer.h"

namespace adrec::core {

/// Temporal weighting kernels for the decay topic models — the two
/// remaining comparators the source paper names (DTM and GDTM).
enum class DecayKernel {
  /// DTM: recency decay — weight(token) = 0.5^(age / half_life), age
  /// measured against the reference time. Old interests fade.
  kExponential,
  /// GDTM: time-of-day affinity — weight(token) =
  /// exp(-(Δ second-of-day)^2 / (2 sigma^2)) against the reference
  /// second-of-day, with wrap-around. Tweets posted near the target time
  /// of day dominate the mixture.
  kGaussianTimeOfDay,
};

/// Weighted-LDA hyper-parameters.
struct DecayTopicOptions {
  size_t num_topics = 8;
  int train_iterations = 60;
  int infer_iterations = 25;
  double alpha = 0.5;
  double beta = 0.01;
  uint64_t seed = 4321;
  /// kExponential: half-life of the recency decay.
  DurationSec half_life = 7 * kSecondsPerDay;
  /// kGaussianTimeOfDay: kernel width in seconds of time-of-day distance.
  DurationSec sigma = 3 * kSecondsPerHour;
  /// Tokens with kernel weight below this are dropped from training.
  double min_token_weight = 0.01;
};

/// A topic model over temporally *weighted* tokens: collapsed Gibbs
/// sampling with fractional counts, where each token's count is its
/// kernel weight. With all weights 1 this reduces exactly to LDA.
class WeightedLdaModel {
 public:
  /// One training token: a word id with its temporal weight.
  struct Token {
    uint32_t word;
    double weight;
  };

  /// Trains on weighted documents.
  static Result<WeightedLdaModel> Train(
      const std::vector<std::vector<Token>>& docs, size_t vocab_size,
      const DecayTopicOptions& options);

  /// Topic distribution of training document `doc`.
  std::vector<double> DocTopicDistribution(size_t doc) const;

  /// Folds in an unweighted document (weights 1) and returns its mixture.
  std::vector<double> Infer(const std::vector<uint32_t>& doc) const;

  size_t num_topics() const { return options_.num_topics; }

  /// Cosine similarity of two mixtures.
  static double Similarity(const std::vector<double>& a,
                           const std::vector<double>& b);

  /// An empty (untrained) model; placeholder before assignment from
  /// Train().
  WeightedLdaModel() = default;

 private:
  DecayTopicOptions options_;
  size_t vocab_size_ = 0;
  std::vector<std::vector<double>> topic_word_;  // fractional counts
  std::vector<double> topic_total_;
  std::vector<std::vector<double>> doc_topic_dist_;
};

/// The per-user decay-topic-model strategy: trains a WeightedLdaModel on
/// per-user documents with the chosen kernel, then matches ads by mixture
/// similarity. The GDTM variant is retrained per target slot (its kernel
/// is anchored at the slot's midpoint).
class DecayTopicStrategy {
 public:
  /// Trains with the exponential (DTM) kernel anchored at `reference`
  /// (typically the end of the trace).
  static Result<DecayTopicStrategy> TrainDtm(
      const std::vector<feed::Tweet>& tweets, text::Analyzer* analyzer,
      Timestamp reference, const DecayTopicOptions& options = {});

  /// Trains with the Gaussian time-of-day (GDTM) kernel anchored at
  /// `target_second_of_day`.
  static Result<DecayTopicStrategy> TrainGdtm(
      const std::vector<feed::Tweet>& tweets, text::Analyzer* analyzer,
      int64_t target_second_of_day, const DecayTopicOptions& options = {});

  /// Users whose mixture matches the ad copy's at >= threshold cosine.
  std::vector<UserId> Predict(const std::string& ad_copy,
                              double threshold) const;

  const WeightedLdaModel& model() const { return model_; }

 private:
  static Result<DecayTopicStrategy> TrainImpl(
      const std::vector<feed::Tweet>& tweets, text::Analyzer* analyzer,
      DecayKernel kernel, Timestamp reference, int64_t target_second,
      const DecayTopicOptions& options);

  DecayTopicStrategy() = default;

  text::Analyzer* analyzer_ = nullptr;  // not owned
  WeightedLdaModel model_;
  std::vector<UserId> users_;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_DECAY_TOPIC_MODEL_H_
