#ifndef ADREC_CORE_LDA_H_
#define ADREC_CORE_LDA_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace adrec::core {

/// LDA hyper-parameters.
struct LdaOptions {
  size_t num_topics = 8;
  int train_iterations = 60;
  int infer_iterations = 25;
  double alpha = 0.5;   ///< document-topic Dirichlet prior
  double beta = 0.01;   ///< topic-word Dirichlet prior
  uint64_t seed = 1234;
};

/// A compact latent-Dirichlet-allocation topic model trained by collapsed
/// Gibbs sampling. This is the comparator the source paper names as
/// future work (LDA / decay topic models); the evaluation uses it as the
/// topic-model baseline strategy (E12).
class LdaModel {
 public:
  /// Trains on `docs` (term-id sequences over a vocabulary of
  /// `vocab_size`). Empty documents are allowed and get the uniform prior
  /// distribution.
  static Result<LdaModel> Train(const std::vector<std::vector<uint32_t>>& docs,
                                size_t vocab_size, const LdaOptions& options);

  /// Topic distribution of training document `doc` (smoothed, sums to 1).
  std::vector<double> DocTopicDistribution(size_t doc) const;

  /// Folds in an unseen document and returns its topic distribution.
  std::vector<double> Infer(const std::vector<uint32_t>& doc) const;

  /// P(word | topic), smoothed.
  double TopicWordProbability(size_t topic, uint32_t word) const;

  size_t num_topics() const { return options_.num_topics; }
  size_t vocab_size() const { return vocab_size_; }

  /// Cosine similarity of two topic distributions (a standard matching
  /// score between a user's and an ad's mixtures).
  static double Similarity(const std::vector<double>& a,
                           const std::vector<double>& b);

  /// An empty (untrained) model; only useful as a placeholder before
  /// assignment from Train().
  LdaModel() = default;

 private:
  LdaOptions options_;
  size_t vocab_size_ = 0;
  // Counts after training: topic-word and topic totals (doc-topic kept
  // only as final distributions).
  std::vector<std::vector<int32_t>> topic_word_;  // [topic][word]
  std::vector<int64_t> topic_total_;              // [topic]
  std::vector<std::vector<double>> doc_topic_dist_;
};

}  // namespace adrec::core

#endif  // ADREC_CORE_LDA_H_
