#include "core/engine.h"

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace adrec::core {

void EngineStats::Merge(const EngineStats& other) {
  tweets += other.tweets;
  checkins += other.checkins;
  ads_inserted += other.ads_inserted;
  ads_removed += other.ads_removed;
  topk_queries += other.topk_queries;
  impressions_served += other.impressions_served;
  analyses_run += other.analyses_run;
  location_triconcepts += other.location_triconcepts;
  topic_triconcepts += other.topic_triconcepts;
  annotate_us.Merge(other.annotate_us);
  profile_update_us.Merge(other.profile_update_us);
  index_update_us.Merge(other.index_update_us);
  topk_us.Merge(other.topk_us);
  analysis_ms.Merge(other.analysis_ms);
  analysis_build_ms.Merge(other.analysis_build_ms);
  analysis_trias_location_ms.Merge(other.analysis_trias_location_ms);
  analysis_trias_topic_ms.Merge(other.analysis_trias_topic_ms);
  analysis_decode_ms.Merge(other.analysis_decode_ms);
}

RecommendationEngine::RecommendationEngine(
    std::shared_ptr<annotate::KnowledgeBase> kb,
    timeline::TimeSlotScheme slots, EngineOptions options)
    : kb_(std::move(kb)),
      slots_(std::move(slots)),
      options_(options),
      semantic_(kb_.get(), options.annotator),
      profiles_(&slots_, options.profile_half_life),
      tfca_(&slots_, kb_->size()),
      capper_(options.frequency_cap),
      ctr_tweets_(metrics_.GetCounter("engine.tweets")),
      ctr_checkins_(metrics_.GetCounter("engine.checkins")),
      ctr_ads_inserted_(metrics_.GetCounter("engine.ads_inserted")),
      ctr_ads_removed_(metrics_.GetCounter("engine.ads_removed")),
      ctr_topk_queries_(metrics_.GetCounter("engine.topk_queries")),
      ctr_impressions_(metrics_.GetCounter("engine.impressions_served")),
      ctr_analyses_(metrics_.GetCounter("engine.analyses_run")),
      g_location_triconcepts_(
          metrics_.GetGauge("tfca.location_triconcepts")),
      g_topic_triconcepts_(metrics_.GetGauge("tfca.topic_triconcepts")),
      g_index_ads_(metrics_.GetGauge("index.ads")),
      g_index_postings_bytes_(metrics_.GetGauge("index.postings_bytes")),
      tm_annotate_(metrics_.GetTimer("engine.annotate_us")),
      tm_profile_update_(metrics_.GetTimer("engine.profile_update_us")),
      tm_index_update_(metrics_.GetTimer("engine.index_update_us")),
      tm_topk_(metrics_.GetTimer("engine.topk_us")),
      tm_analysis_ms_(metrics_.GetTimer("engine.analysis_ms")),
      tm_analysis_build_(metrics_.GetTimer("engine.analysis_build_ms")),
      tm_analysis_trias_location_(
          metrics_.GetTimer("engine.analysis_trias_location_ms")),
      tm_analysis_trias_topic_(
          metrics_.GetTimer("engine.analysis_trias_topic_ms")),
      tm_analysis_decode_(metrics_.GetTimer("engine.analysis_decode_ms")) {
  ADREC_CHECK(kb_ != nullptr);
  if (options_.compressed_index) {
    cindex_ = std::make_unique<postings::CompressedAdIndex>(
        options_.postings, &metrics_);
  }
}

void RecommendationEngine::OnTweet(const feed::Tweet& tweet) {
  ++mutation_epoch_;
  AnnotatedTweet annotated;
  {
    obs::StageSpan probe(StageTimer(tm_annotate_), "engine.annotate");
    annotated = semantic_.ProcessTweet(tweet);
  }
  {
    obs::StageSpan probe(StageTimer(tm_profile_update_), "engine.profile_update");
    profiles_.ObserveTweet(tweet.user, tweet.time, annotated.annotations);
    tfca_.AddTweet(annotated);
  }
  analysis_valid_ = false;
  ++tweets_ingested_;
  ctr_tweets_->Inc();
}

void RecommendationEngine::OnCheckIn(const feed::CheckIn& check_in) {
  ++mutation_epoch_;
  {
    obs::StageSpan probe(StageTimer(tm_profile_update_), "engine.profile_update");
    profiles_.ObserveCheckIn(check_in.user, check_in.time, check_in.location);
    tfca_.AddCheckIn(check_in);
    current_location_[check_in.user.value] = check_in.location;
  }
  analysis_valid_ = false;
  ++checkins_ingested_;
  ctr_checkins_->Inc();
}

void RecommendationEngine::OnEvent(const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
      OnTweet(event.tweet);
      break;
    case feed::EventKind::kCheckIn:
      OnCheckIn(event.check_in);
      break;
    case feed::EventKind::kAdInsert:
      (void)InsertAd(event.ad);
      break;
    case feed::EventKind::kAdDelete:
      (void)RemoveAd(event.ad_id);
      break;
  }
}

void RecommendationEngine::ReplayForAnalysis(const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
      tfca_.AddTweet(semantic_.ProcessTweet(event.tweet));
      analysis_valid_ = false;
      break;
    case feed::EventKind::kCheckIn:
      tfca_.AddCheckIn(event.check_in);
      analysis_valid_ = false;
      break;
    case feed::EventKind::kAdInsert:
    case feed::EventKind::kAdDelete:
      break;  // inventory is part of the snapshot, not the window
  }
}

Status RecommendationEngine::InsertAd(const feed::Ad& ad) {
  ++mutation_epoch_;
  AdContext ctx;
  {
    obs::StageSpan probe(StageTimer(tm_annotate_), "engine.annotate");
    ctx = semantic_.ProcessAd(ad);
  }
  obs::StageSpan probe(StageTimer(tm_index_update_), "engine.index_update");
  ADREC_RETURN_NOT_OK(store_.Insert(ad, ctx.topics));
  Status indexed =
      cindex_ != nullptr
          ? cindex_->Insert(ad.id, ctx.topics, ad.target_locations,
                            ad.target_slots, ad.bid)
          : index_.Insert(ad.id, ctx.topics, ad.target_locations,
                          ad.target_slots, ad.bid);
  if (!indexed.ok()) {
    (void)store_.Remove(ad.id);  // keep store and index consistent
    return indexed;
  }
  ctr_ads_inserted_->Inc();
  RefreshIndexGauges();
  return Status::OK();
}

Status RecommendationEngine::RemoveAd(AdId id) {
  ++mutation_epoch_;
  obs::StageSpan probe(StageTimer(tm_index_update_), "engine.index_update");
  ADREC_RETURN_NOT_OK(store_.Remove(id));
  ADREC_RETURN_NOT_OK(cindex_ != nullptr ? cindex_->Remove(id)
                                         : index_.Remove(id));
  ctr_ads_removed_->Inc();
  RefreshIndexGauges();
  return Status::OK();
}

void RecommendationEngine::RefreshIndexGauges() {
  if (cindex_ != nullptr) {
    g_index_ads_->Set(static_cast<double>(cindex_->size()));
    g_index_postings_bytes_->Set(
        static_cast<double>(cindex_->approx_bytes()));
  } else {
    g_index_ads_->Set(static_cast<double>(index_.size()));
    g_index_postings_bytes_->Set(static_cast<double>(index_.approx_bytes()));
  }
}

Status RecommendationEngine::RunAnalysis() {
  return RunAnalysis(options_.alpha);
}

Status RecommendationEngine::RunAnalysis(double alpha) {
  TfcaOptions opts;
  opts.alpha = alpha;
  const auto t0 = std::chrono::steady_clock::now();
  ADREC_RETURN_NOT_OK(tfca_.Analyze(opts));
  const auto t1 = std::chrono::steady_clock::now();
  tm_analysis_ms_->Record(
      std::chrono::duration<double, std::milli>(t1 - t0).count());
  const TfcaPhaseTimings& spans = tfca_.phase_timings();
  tm_analysis_build_->Record(spans.build_context_ms);
  tm_analysis_trias_location_->Record(spans.trias_location_ms);
  tm_analysis_trias_topic_->Record(spans.trias_topic_ms);
  tm_analysis_decode_->Record(spans.decode_ms);
  if (obs::TraceBuilder* trace = obs::ActiveTrace(); trace != nullptr) {
    // The TFCA pipeline times its phases internally (they run in this
    // fixed order), so the trace gets them as retroactive sub-spans at
    // cumulative offsets under one engine.analysis parent.
    const uint32_t parent = trace->AddSpan("engine.analysis", t0, t1);
    auto at = t0;
    const auto ms = [](double v) {
      return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(v));
    };
    const std::pair<const char*, double> phases[] = {
        {"engine.analysis.build", spans.build_context_ms},
        {"engine.analysis.trias_location", spans.trias_location_ms},
        {"engine.analysis.trias_topic", spans.trias_topic_ms},
        {"engine.analysis.decode", spans.decode_ms},
    };
    for (const auto& [name, dur_ms] : phases) {
      trace->AddSpan(name, at, at + ms(dur_ms), parent);
      at += ms(dur_ms);
    }
  }
  ctr_analyses_->Inc();
  g_location_triconcepts_->Set(
      static_cast<double>(tfca_.stats().location_triconcepts));
  g_topic_triconcepts_->Set(
      static_cast<double>(tfca_.stats().topic_triconcepts));
  analysis_valid_ = true;
  return Status::OK();
}

EngineStats RecommendationEngine::Stats() const {
  EngineStats stats;
  stats.tweets = ctr_tweets_->value();
  stats.checkins = ctr_checkins_->value();
  stats.ads_inserted = ctr_ads_inserted_->value();
  stats.ads_removed = ctr_ads_removed_->value();
  stats.topk_queries = ctr_topk_queries_->value();
  stats.impressions_served = ctr_impressions_->value();
  stats.analyses_run = ctr_analyses_->value();
  stats.location_triconcepts =
      static_cast<uint64_t>(g_location_triconcepts_->value());
  stats.topic_triconcepts =
      static_cast<uint64_t>(g_topic_triconcepts_->value());
  stats.annotate_us = tm_annotate_->Snapshot();
  stats.profile_update_us = tm_profile_update_->Snapshot();
  stats.index_update_us = tm_index_update_->Snapshot();
  stats.topk_us = tm_topk_->Snapshot();
  stats.analysis_ms = tm_analysis_ms_->Snapshot();
  stats.analysis_build_ms = tm_analysis_build_->Snapshot();
  stats.analysis_trias_location_ms = tm_analysis_trias_location_->Snapshot();
  stats.analysis_trias_topic_ms = tm_analysis_trias_topic_->Snapshot();
  stats.analysis_decode_ms = tm_analysis_decode_->Snapshot();
  return stats;
}

Result<MatchResult> RecommendationEngine::RecommendUsers(AdId id) const {
  const ads::StoredAd* stored = store_.Find(id);
  if (stored == nullptr) {
    return Status::NotFound(StringFormat("ad %u not in store", id.value));
  }
  return RecommendUsersFor(stored->ad);
}

Result<MatchResult> RecommendationEngine::RecommendUsersFor(
    const feed::Ad& ad) const {
  if (!analysis_valid_) {
    return Status::FailedPrecondition(
        "RunAnalysis() must succeed before RecommendUsers()");
  }
  const AdContext ctx = semantic_.ProcessAd(ad);
  return MatchAd(tfca_, ctx, options_.match);
}

index::AdQuery RecommendationEngine::BuildQuery(const feed::Tweet& tweet,
                                                size_t k) const {
  index::AdQuery query;
  query.k = k;
  query.slot = slots_.SlotOf(tweet.time);
  // "Where is this user now?": the profile's top location for the current
  // slot (habits are slot-dependent), falling back to the last check-in.
  query.location = profiles_.TopLocation(tweet.user, query.slot);
  if (!query.location.valid()) {
    auto loc = current_location_.find(tweet.user.value);
    if (loc != current_location_.end()) query.location = loc->second;
  }

  // Topic vector: the tweet's own annotations blended with the author's
  // decayed interest profile (weight 0.5) so short tweets still carry
  // context.
  std::vector<text::SparseEntry> entries;
  for (const annotate::Annotation& a :
       semantic_.annotator().Annotate(tweet.text)) {
    entries.push_back({a.topic.value, a.score});
  }
  text::SparseVector topics =
      text::SparseVector::FromUnsorted(std::move(entries));
  text::SparseVector interests = profiles_.InterestsAt(tweet.user, tweet.time);
  interests.NormalizeL2();
  topics.AddScaled(interests, 0.5);
  query.topics = std::move(topics);
  return query;
}

std::vector<index::ScoredAd> RecommendationEngine::TopKAdsForTweet(
    const feed::Tweet& tweet, size_t k) {
  ++mutation_epoch_;
  obs::StageSpan probe(StageTimer(tm_topk_), "engine.topk");
  // Over-fetch to survive budget filtering, then keep the first k with
  // budget and charge them.
  index::AdQuery query = BuildQuery(tweet, k * 2 + 4);
  std::vector<index::ScoredAd> ranked =
      cindex_ != nullptr ? cindex_->TopK(query) : index_.TopK(query);
  const bool cap_enabled = options_.frequency_cap.max_impressions > 0;
  std::vector<index::ScoredAd> out;
  for (const index::ScoredAd& sa : ranked) {
    if (out.size() >= k) break;
    if (!store_.HasBudget(sa.ad)) continue;
    if (cap_enabled && !capper_.Allowed(tweet.user, sa.ad, tweet.time)) {
      continue;
    }
    if (store_.RecordImpression(sa.ad).ok()) {
      if (cap_enabled) capper_.Record(tweet.user, sa.ad, tweet.time);
      out.push_back(sa);
    }
  }
  ctr_topk_queries_->Inc();
  ctr_impressions_->Inc(out.size());
  return out;
}

TopkContext RecommendationEngine::TopkContextFor(
    const feed::Tweet& tweet) const {
  // Mirrors BuildQuery's filter resolution without paying for annotation.
  TopkContext ctx;
  ctx.slot = slots_.SlotOf(tweet.time);
  ctx.location = profiles_.TopLocation(tweet.user, ctx.slot);
  if (!ctx.location.valid()) {
    auto loc = current_location_.find(tweet.user.value);
    if (loc != current_location_.end()) ctx.location = loc->second;
  }
  return ctx;
}

bool RecommendationEngine::ChargeCachedTopK(const feed::Tweet& tweet,
                                            const std::vector<AdId>& ads) {
  ++mutation_epoch_;
  obs::StageSpan probe(StageTimer(tm_topk_), "engine.topk_cached");
  const bool cap_enabled = frequency_cap_enabled();
  // Validate everything before charging anything so a failure leaves the
  // engine untouched and the caller can recompute from clean state.
  for (const AdId ad : ads) {
    if (!store_.HasBudget(ad)) return false;
    if (cap_enabled && !capper_.Allowed(tweet.user, ad, tweet.time)) {
      return false;
    }
  }
  for (const AdId ad : ads) {
    // Cannot fail: HasBudget held above and the engine is single-writer.
    (void)store_.RecordImpression(ad);
    if (cap_enabled) capper_.Record(tweet.user, ad, tweet.time);
  }
  ctr_topk_queries_->Inc();
  ctr_impressions_->Inc(ads.size());
  return true;
}

std::vector<index::ScoredAd>
RecommendationEngine::TopKAdsForTweetExhaustive(const feed::Tweet& tweet,
                                                size_t k) const {
  index::AdQuery query = BuildQuery(tweet, k);
  return cindex_ != nullptr ? cindex_->TopKExhaustive(query)
                            : index_.TopKExhaustive(query);
}

}  // namespace adrec::core
