#include "core/engine.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::core {

RecommendationEngine::RecommendationEngine(
    std::shared_ptr<annotate::KnowledgeBase> kb,
    timeline::TimeSlotScheme slots, EngineOptions options)
    : kb_(std::move(kb)),
      slots_(std::move(slots)),
      options_(options),
      semantic_(kb_.get(), options.annotator),
      profiles_(&slots_, options.profile_half_life),
      tfca_(&slots_, kb_->size()),
      capper_(options.frequency_cap) {
  ADREC_CHECK(kb_ != nullptr);
}

void RecommendationEngine::OnTweet(const feed::Tweet& tweet) {
  const AnnotatedTweet annotated = semantic_.ProcessTweet(tweet);
  profiles_.ObserveTweet(tweet.user, tweet.time, annotated.annotations);
  tfca_.AddTweet(annotated);
  analysis_valid_ = false;
  ++tweets_ingested_;
}

void RecommendationEngine::OnCheckIn(const feed::CheckIn& check_in) {
  profiles_.ObserveCheckIn(check_in.user, check_in.time, check_in.location);
  tfca_.AddCheckIn(check_in);
  current_location_[check_in.user.value] = check_in.location;
  analysis_valid_ = false;
  ++checkins_ingested_;
}

void RecommendationEngine::OnEvent(const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
      OnTweet(event.tweet);
      break;
    case feed::EventKind::kCheckIn:
      OnCheckIn(event.check_in);
      break;
    case feed::EventKind::kAdInsert:
      (void)InsertAd(event.ad);
      break;
    case feed::EventKind::kAdDelete:
      (void)RemoveAd(event.ad_id);
      break;
  }
}

Status RecommendationEngine::InsertAd(const feed::Ad& ad) {
  const AdContext ctx = semantic_.ProcessAd(ad);
  ADREC_RETURN_NOT_OK(store_.Insert(ad, ctx.topics));
  Status indexed = index_.Insert(ad.id, ctx.topics, ad.target_locations,
                                 ad.target_slots, ad.bid);
  if (!indexed.ok()) {
    (void)store_.Remove(ad.id);  // keep store and index consistent
    return indexed;
  }
  return Status::OK();
}

Status RecommendationEngine::RemoveAd(AdId id) {
  ADREC_RETURN_NOT_OK(store_.Remove(id));
  return index_.Remove(id);
}

Status RecommendationEngine::RunAnalysis() {
  return RunAnalysis(options_.alpha);
}

Status RecommendationEngine::RunAnalysis(double alpha) {
  TfcaOptions opts;
  opts.alpha = alpha;
  ADREC_RETURN_NOT_OK(tfca_.Analyze(opts));
  analysis_valid_ = true;
  return Status::OK();
}

Result<MatchResult> RecommendationEngine::RecommendUsers(AdId id) const {
  const ads::StoredAd* stored = store_.Find(id);
  if (stored == nullptr) {
    return Status::NotFound(StringFormat("ad %u not in store", id.value));
  }
  return RecommendUsersFor(stored->ad);
}

Result<MatchResult> RecommendationEngine::RecommendUsersFor(
    const feed::Ad& ad) const {
  if (!analysis_valid_) {
    return Status::FailedPrecondition(
        "RunAnalysis() must succeed before RecommendUsers()");
  }
  const AdContext ctx = semantic_.ProcessAd(ad);
  return MatchAd(tfca_, ctx, options_.match);
}

index::AdQuery RecommendationEngine::BuildQuery(const feed::Tweet& tweet,
                                                size_t k) const {
  index::AdQuery query;
  query.k = k;
  query.slot = slots_.SlotOf(tweet.time);
  // "Where is this user now?": the profile's top location for the current
  // slot (habits are slot-dependent), falling back to the last check-in.
  query.location = profiles_.TopLocation(tweet.user, query.slot);
  if (!query.location.valid()) {
    auto loc = current_location_.find(tweet.user.value);
    if (loc != current_location_.end()) query.location = loc->second;
  }

  // Topic vector: the tweet's own annotations blended with the author's
  // decayed interest profile (weight 0.5) so short tweets still carry
  // context.
  std::vector<text::SparseEntry> entries;
  for (const annotate::Annotation& a :
       semantic_.annotator().Annotate(tweet.text)) {
    entries.push_back({a.topic.value, a.score});
  }
  text::SparseVector topics =
      text::SparseVector::FromUnsorted(std::move(entries));
  text::SparseVector interests = profiles_.InterestsAt(tweet.user, tweet.time);
  interests.NormalizeL2();
  topics.AddScaled(interests, 0.5);
  query.topics = std::move(topics);
  return query;
}

std::vector<index::ScoredAd> RecommendationEngine::TopKAdsForTweet(
    const feed::Tweet& tweet, size_t k) {
  // Over-fetch to survive budget filtering, then keep the first k with
  // budget and charge them.
  index::AdQuery query = BuildQuery(tweet, k * 2 + 4);
  std::vector<index::ScoredAd> ranked = index_.TopK(query);
  const bool cap_enabled = options_.frequency_cap.max_impressions > 0;
  std::vector<index::ScoredAd> out;
  for (const index::ScoredAd& sa : ranked) {
    if (out.size() >= k) break;
    if (!store_.HasBudget(sa.ad)) continue;
    if (cap_enabled && !capper_.Allowed(tweet.user, sa.ad, tweet.time)) {
      continue;
    }
    if (store_.RecordImpression(sa.ad).ok()) {
      if (cap_enabled) capper_.Record(tweet.user, sa.ad, tweet.time);
      out.push_back(sa);
    }
  }
  return out;
}

std::vector<index::ScoredAd>
RecommendationEngine::TopKAdsForTweetExhaustive(const feed::Tweet& tweet,
                                                size_t k) {
  index::AdQuery query = BuildQuery(tweet, k);
  return index_.TopKExhaustive(query);
}

}  // namespace adrec::core
