#include "core/snapshot.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "common/fs_util.h"
#include "common/string_util.h"
#include "feed/trace_io.h"

namespace adrec::core {

namespace {

constexpr std::string_view kProfilesFile = "snapshot_profiles.tsv";
constexpr std::string_view kAdsFile = "snapshot_ads.tsv";
constexpr std::string_view kImpressionsFile = "snapshot_impressions.tsv";
constexpr std::string_view kFreqCapFile = "snapshot_freqcap.tsv";
constexpr std::string_view kManifestFile = "snapshot_manifest.tsv";

std::string ProfilesPath(const std::string& dir) {
  return dir + "/" + std::string(kProfilesFile);
}
std::string AdsPath(const std::string& dir) {
  return dir + "/" + std::string(kAdsFile);
}
std::string ImpressionsPath(const std::string& dir) {
  return dir + "/" + std::string(kImpressionsFile);
}
std::string FreqCapPath(const std::string& dir) {
  return dir + "/" + std::string(kFreqCapFile);
}
std::string ManifestPath(const std::string& dir) {
  return dir + "/" + std::string(kManifestFile);
}

// %.17g round-trips IEEE doubles exactly through strtod, so a restored
// engine is *bit-identical* to the saved one — the property the testkit
// differential checker (single vs snapshot-restored engine) relies on.
std::string EncodeVector(const text::SparseVector& v) {
  std::string out;
  for (const text::SparseEntry& e : v.entries()) {
    if (!out.empty()) out += ';';
    out += StringFormat("%u:%.17g", e.id, e.weight);
  }
  return out.empty() ? "-" : out;
}

Result<text::SparseVector> DecodeVector(std::string_view field) {
  std::vector<text::SparseEntry> entries;
  if (field != "-") {
    for (std::string_view piece : SplitString(field, ';')) {
      const size_t colon = piece.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("bad sparse entry");
      }
      const std::string id_str(piece.substr(0, colon));
      const std::string w_str(piece.substr(colon + 1));
      char* end = nullptr;
      const unsigned long id = std::strtoul(id_str.c_str(), &end, 10);
      if (end == id_str.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad sparse id");
      }
      end = nullptr;
      const double w = std::strtod(w_str.c_str(), &end);
      if (end == w_str.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad sparse weight");
      }
      entries.push_back({static_cast<uint32_t>(id), w});
    }
  }
  return text::SparseVector::FromUnsorted(std::move(entries));
}

}  // namespace

Result<std::vector<SnapshotFile>> SerializeEngineSnapshot(
    const RecommendationEngine& engine) {
  // Emission order is canonicalized everywhere below (sorted by id):
  // the underlying stores iterate hash maps or insertion order, and a
  // snapshot's bytes must not depend on either — byte-identical state
  // must produce byte-identical snapshot files (testkit determinism,
  // and the delta-checkpoint diff: an unchanged store must hash equal).

  std::vector<SnapshotFile> files;

  // --- Profiles + current locations. ---
  {
    std::ostringstream out;
    std::vector<std::pair<UserId, const profile::UserState*>> states;
    engine.profiles().ForEachState(
        [&](UserId user, const profile::UserState& state) {
          states.emplace_back(user, &state);
        });
    std::sort(states.begin(), states.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [user, state] : states) {
      out << "P\t" << user.value << '\t' << state->as_of << '\n';
      out << "I\t" << user.value << '\t' << EncodeVector(state->interests)
          << '\n';
      for (size_t slot = 0; slot < state->visits.size(); ++slot) {
        if (state->visits[slot].empty()) continue;
        std::vector<std::pair<uint32_t, double>> visits(
            state->visits[slot].begin(), state->visits[slot].end());
        std::sort(visits.begin(), visits.end());
        out << "V\t" << user.value << '\t' << slot << '\t';
        bool first = true;
        for (const auto& [loc, mass] : visits) {
          if (!first) out << ';';
          first = false;
          out << loc << ':' << StringFormat("%.17g", mass);
        }
        out << '\n';
      }
    }
    std::vector<std::pair<uint32_t, uint32_t>> locations;
    for (const auto& [user, loc] : engine.current_locations()) {
      locations.emplace_back(user, loc.value);
    }
    std::sort(locations.begin(), locations.end());
    for (const auto& [user, loc] : locations) {
      out << "L\t" << user << '\t' << loc << '\n';
    }
    files.push_back({std::string(kProfilesFile), out.str()});
  }

  // --- Ads + impressions. The ads file is byte-for-byte the
  // feed::WriteAds format so feed::ReadAds loads it unchanged. ---
  std::vector<feed::Ad> ads;
  std::vector<std::pair<uint32_t, int64_t>> impressions;
  engine.ad_store().ForEach([&](const ads::StoredAd& stored) {
    ads.push_back(stored.ad);
    impressions.emplace_back(stored.ad.id.value, stored.impressions_served);
  });
  std::sort(ads.begin(), ads.end(),
            [](const feed::Ad& a, const feed::Ad& b) { return a.id < b.id; });
  std::sort(impressions.begin(), impressions.end());
  {
    std::ostringstream out;
    for (const feed::Ad& ad : ads) {
      out << "A\t" << feed::FormatAdFields(ad) << '\n';
    }
    files.push_back({std::string(kAdsFile), out.str()});
  }
  {
    std::ostringstream out;
    for (const auto& [ad, served] : impressions) {
      out << "M\t" << ad << '\t' << served << '\n';
    }
    files.push_back({std::string(kImpressionsFile), out.str()});
  }

  // --- Frequency-cap state. Without it a restored engine re-serves ads
  // the saved engine would cap, breaking save→load→continue equivalence.
  {
    std::ostringstream out;
    struct CapRow {
      uint32_t user;
      uint32_t ad;
      std::string times;
    };
    std::vector<CapRow> rows;
    engine.frequency_capper().ForEach(
        [&](UserId user, AdId ad, const std::deque<Timestamp>& times) {
          CapRow row{user.value, ad.value, {}};
          for (Timestamp t : times) {
            if (!row.times.empty()) row.times += ';';
            row.times += StringFormat("%lld", static_cast<long long>(t));
          }
          rows.push_back(std::move(row));
        });
    std::sort(rows.begin(), rows.end(), [](const CapRow& a, const CapRow& b) {
      return std::tie(a.user, a.ad) < std::tie(b.user, b.ad);
    });
    for (const CapRow& row : rows) {
      if (row.times.empty()) continue;
      out << "F\t" << row.user << '\t' << row.ad << '\t' << row.times << '\n';
    }
    files.push_back({std::string(kFreqCapFile), out.str()});
  }

  // --- Integrity manifest, derived from the in-memory byte counts
  // (identical to what file_size reports after an untranslated write). ---
  std::string manifest;
  for (const SnapshotFile& f : files) {
    manifest += StringFormat("S\t%s\t%llu\n", f.name.c_str(),
                             static_cast<unsigned long long>(f.contents.size()));
  }
  files.push_back({std::string(kManifestFile), std::move(manifest)});
  return files;
}

Status WriteSnapshotFiles(const std::string& dir,
                          const std::vector<SnapshotFile>& files) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir);

  // Each file is written to a `.tmp` sibling, fsynced and renamed into
  // place — a crash mid-save never leaves a half-written file under its
  // final name. The manifest (file sizes) is renamed LAST, so a crash
  // between renames of the data files is detectable at load time: the
  // surviving manifest's sizes no longer match the mixed file set.
  if (files.empty() || files.back().name != kManifestFile) {
    return Status::InvalidArgument("snapshot files must end with manifest");
  }
  for (const SnapshotFile& f : files) {
    const std::string tmp = dir + "/" + f.name + ".tmp";
    std::ofstream out(tmp);
    if (!out) return Status::IoError("cannot open " + tmp);
    out << f.contents;
    out.flush();
    if (!out) return Status::IoError("write failed on " + tmp);
    out.close();
    ADREC_RETURN_NOT_OK(FsyncFile(tmp));
  }
  for (size_t i = 0; i + 1 < files.size(); ++i) {
    ADREC_RETURN_NOT_OK(RenamePath(dir + "/" + files[i].name + ".tmp",
                                   dir + "/" + files[i].name));
  }
  ADREC_RETURN_NOT_OK(RenamePath(dir + "/" + files.back().name + ".tmp",
                                 dir + "/" + files.back().name));
  return FsyncDir(dir);
}

Status SaveEngineSnapshot(const RecommendationEngine& engine,
                          const std::string& dir) {
  Result<std::vector<SnapshotFile>> files = SerializeEngineSnapshot(engine);
  if (!files.ok()) return files.status();
  return WriteSnapshotFiles(dir, files.value());
}

Status LoadEngineSnapshot(const std::string& dir,
                          RecommendationEngine* engine) {
  if (engine == nullptr) {
    return Status::InvalidArgument("engine must not be null");
  }

  // --- Manifest integrity gate. When present (every snapshot written by
  // the atomic save path has one), each listed file must exist with
  // exactly the recorded byte count: a truncated file — even one cut at
  // a line boundary, which the per-record parsers below cannot see — is
  // rejected here. Manifest-less snapshots (pre-durability format) are
  // still loaded on parser trust alone.
  {
    std::ifstream mf(ManifestPath(dir));
    std::string mline;
    size_t mline_no = 0;
    while (mf && std::getline(mf, mline)) {
      ++mline_no;
      if (mline.empty()) continue;
      const auto fields = SplitString(mline, '\t', /*keep_empty=*/true);
      if (fields.size() != 3 || fields[0] != "S") {
        return Status::InvalidArgument(
            StringFormat("%s:%zu: bad manifest record",
                         ManifestPath(dir).c_str(), mline_no));
      }
      const std::string name(fields[1]);
      char* end = nullptr;
      const std::string bytes_str(fields[2]);
      const unsigned long long want =
          std::strtoull(bytes_str.c_str(), &end, 10);
      if (end == bytes_str.c_str() || *end != '\0') {
        return Status::InvalidArgument(
            StringFormat("%s:%zu: bad manifest size",
                         ManifestPath(dir).c_str(), mline_no));
      }
      const std::string path = dir + "/" + name;
      std::error_code ec;
      const uintmax_t have = std::filesystem::file_size(path, ec);
      if (ec) {
        return Status::IoError("snapshot file missing: " + path);
      }
      if (have != want) {
        return Status::IoError(StringFormat(
            "snapshot file truncated or altered: %s is %llu bytes, "
            "manifest records %llu",
            path.c_str(), static_cast<unsigned long long>(have), want));
      }
    }
  }

  // --- Ads first (they define the index). ---
  Result<std::vector<feed::Ad>> ads = feed::ReadAds(AdsPath(dir));
  if (!ads.ok()) return ads.status();

  // --- Parse profiles fully before mutating the engine. ---
  std::ifstream in(ProfilesPath(dir));
  if (!in) return Status::IoError("cannot open " + ProfilesPath(dir));
  struct PendingState {
    UserId user;
    profile::UserState state;
  };
  std::vector<PendingState> states;
  std::vector<std::pair<UserId, LocationId>> locations;
  std::unordered_map<uint32_t, size_t> row_of;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(StringFormat(
          "%s:%zu: %s", ProfilesPath(dir).c_str(), line_no, why.c_str()));
    };
    const auto fields = SplitString(line, '\t', /*keep_empty=*/true);
    if (fields.size() < 3) return bad("record needs >= 3 fields");
    char* end = nullptr;
    const std::string user_str(fields[1]);
    const unsigned long user_raw = std::strtoul(user_str.c_str(), &end, 10);
    if (end == user_str.c_str() || *end != '\0') return bad("bad user id");
    const UserId user(static_cast<uint32_t>(user_raw));

    if (fields[0] == "P") {
      PendingState ps;
      ps.user = user;
      const std::string as_of_str(fields[2]);
      ps.state.as_of = std::strtoll(as_of_str.c_str(), nullptr, 10);
      row_of[user.value] = states.size();
      states.push_back(std::move(ps));
    } else if (fields[0] == "I") {
      auto it = row_of.find(user.value);
      if (it == row_of.end()) return bad("I before P");
      Result<text::SparseVector> v = DecodeVector(fields[2]);
      if (!v.ok()) return bad(v.status().ToString());
      states[it->second].state.interests = std::move(v).value();
    } else if (fields[0] == "V") {
      if (fields.size() < 4) return bad("V needs 4 fields");
      auto it = row_of.find(user.value);
      if (it == row_of.end()) return bad("V before P");
      const std::string slot_str(fields[2]);
      const size_t slot = std::strtoul(slot_str.c_str(), nullptr, 10);
      auto& visits = states[it->second].state.visits;
      if (slot >= visits.size()) visits.resize(slot + 1);
      for (std::string_view piece : SplitString(fields[3], ';')) {
        const size_t colon = piece.find(':');
        if (colon == std::string_view::npos) return bad("bad visit entry");
        const std::string loc_str(piece.substr(0, colon));
        const std::string mass_str(piece.substr(colon + 1));
        visits[slot][static_cast<uint32_t>(
            std::strtoul(loc_str.c_str(), nullptr, 10))] =
            std::strtod(mass_str.c_str(), nullptr);
      }
    } else if (fields[0] == "L") {
      const std::string loc_str(fields[2]);
      locations.emplace_back(
          user, LocationId(static_cast<uint32_t>(
                    std::strtoul(loc_str.c_str(), nullptr, 10))));
    } else {
      return bad("unknown record tag");
    }
  }

  // --- Impressions. ---
  std::vector<std::pair<uint32_t, int64_t>> impressions;
  {
    std::ifstream imp(ImpressionsPath(dir));
    if (!imp) return Status::IoError("cannot open " + ImpressionsPath(dir));
    size_t imp_line = 0;
    while (std::getline(imp, line)) {
      ++imp_line;
      if (line.empty()) continue;
      const auto fields = SplitString(line, '\t', true);
      if (fields.size() != 3 || fields[0] != "M") {
        return Status::InvalidArgument(
            StringFormat("%s:%zu: bad impression record",
                         ImpressionsPath(dir).c_str(), imp_line));
      }
      impressions.emplace_back(
          static_cast<uint32_t>(
              std::strtoul(std::string(fields[1]).c_str(), nullptr, 10)),
          std::strtoll(std::string(fields[2]).c_str(), nullptr, 10));
    }
  }

  // --- Frequency-cap histories. The file is optional: snapshots written
  // before the format carried cap state simply restore with an empty
  // capper (the pre-existing behaviour).
  struct CapEntry {
    UserId user;
    AdId ad;
    std::vector<Timestamp> times;
  };
  std::vector<CapEntry> cap_entries;
  {
    std::ifstream cap(FreqCapPath(dir));
    size_t cap_line = 0;
    while (cap && std::getline(cap, line)) {
      ++cap_line;
      if (line.empty()) continue;
      const auto fields = SplitString(line, '\t', true);
      if (fields.size() != 4 || fields[0] != "F") {
        return Status::InvalidArgument(
            StringFormat("%s:%zu: bad freqcap record",
                         FreqCapPath(dir).c_str(), cap_line));
      }
      CapEntry entry;
      entry.user = UserId(static_cast<uint32_t>(
          std::strtoul(std::string(fields[1]).c_str(), nullptr, 10)));
      entry.ad = AdId(static_cast<uint32_t>(
          std::strtoul(std::string(fields[2]).c_str(), nullptr, 10)));
      for (std::string_view piece : SplitString(fields[3], ';')) {
        entry.times.push_back(static_cast<Timestamp>(
            std::strtoll(std::string(piece).c_str(), nullptr, 10)));
      }
      if (entry.times.empty()) {
        return Status::InvalidArgument(
            StringFormat("%s:%zu: empty freqcap history",
                         FreqCapPath(dir).c_str(), cap_line));
      }
      cap_entries.push_back(std::move(entry));
    }
  }

  // --- Everything parsed: apply. ---
  for (const feed::Ad& ad : ads.value()) {
    ADREC_RETURN_NOT_OK(engine->InsertAd(ad));
  }
  for (const auto& [ad, served] : impressions) {
    ADREC_RETURN_NOT_OK(
        engine->mutable_ad_store()->RestoreImpressions(AdId(ad), served));
  }
  for (PendingState& ps : states) {
    engine->mutable_profiles()->RestoreState(ps.user, std::move(ps.state));
  }
  for (const auto& [user, loc] : locations) {
    engine->RestoreCurrentLocation(user, loc);
  }
  for (CapEntry& entry : cap_entries) {
    engine->mutable_frequency_capper()->RestoreHistory(
        entry.user, entry.ad, std::move(entry.times));
  }
  return Status::OK();
}

}  // namespace adrec::core
