#ifndef ADREC_GEO_POINT_H_
#define ADREC_GEO_POINT_H_

namespace adrec::geo {

/// A WGS-84 coordinate pair in degrees.
struct GeoPoint {
  double lat = 0.0;  ///< latitude in [-90, 90]
  double lon = 0.0;  ///< longitude in [-180, 180]

  friend bool operator==(const GeoPoint& a, const GeoPoint& b) {
    return a.lat == b.lat && a.lon == b.lon;
  }
};

/// Mean Earth radius in meters (IUGG).
constexpr double kEarthRadiusMeters = 6371008.8;

/// Great-circle distance between two points in meters (haversine formula).
double HaversineMeters(const GeoPoint& a, const GeoPoint& b);

/// True iff `p` has in-range latitude/longitude.
bool IsValidPoint(const GeoPoint& p);

}  // namespace adrec::geo

#endif  // ADREC_GEO_POINT_H_
