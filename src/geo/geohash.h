#ifndef ADREC_GEO_GEOHASH_H_
#define ADREC_GEO_GEOHASH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "geo/point.h"

namespace adrec::geo {

/// Encodes `p` as a standard base-32 geohash of `precision` characters
/// (1..12). Longer hashes denote smaller cells; prefix containment implies
/// spatial containment, which the grid experiments rely on.
std::string GeohashEncode(const GeoPoint& p, int precision);

/// Decodes a geohash to its cell-center point. Fails on invalid characters
/// or an empty hash.
Result<GeoPoint> GeohashDecode(std::string_view hash);

/// Decodes a geohash to its bounding box (lat_lo, lat_hi, lon_lo, lon_hi).
struct GeohashBounds {
  double lat_lo, lat_hi, lon_lo, lon_hi;
};
Result<GeohashBounds> GeohashDecodeBounds(std::string_view hash);

/// The eight neighbouring cells of a geohash (N, NE, E, SE, S, SW, W,
/// NW order), at the same precision. Cells at the poles clamp; cells at
/// the antimeridian wrap. Fails on invalid input.
Result<std::vector<std::string>> GeohashNeighbors(std::string_view hash);

}  // namespace adrec::geo

#endif  // ADREC_GEO_GEOHASH_H_
