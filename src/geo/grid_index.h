#ifndef ADREC_GEO_GRID_INDEX_H_
#define ADREC_GEO_GRID_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "geo/point.h"

namespace adrec::geo {

/// A uniform lat/lon grid index over (id, point) items supporting radius
/// queries. Cell size is chosen from the expected query radius; a radius
/// query visits only the cells overlapping the query circle's bounding box
/// and then distance-filters, so cost is proportional to local density
/// rather than the full item count.
class GridIndex {
 public:
  /// `cell_degrees` is the grid pitch in degrees (e.g. 0.01 ~ 1.1 km N-S).
  explicit GridIndex(double cell_degrees = 0.01);

  /// Inserts an item. Duplicate ids are allowed (caller's semantics);
  /// Remove deletes all copies.
  Status Insert(uint32_t id, const GeoPoint& p);

  /// Removes every copy of `id` at point `p`; NotFound if absent.
  Status Remove(uint32_t id, const GeoPoint& p);

  /// All item ids within `radius_m` meters of `center`, distance-sorted.
  std::vector<uint32_t> QueryRadius(const GeoPoint& center,
                                    double radius_m) const;

  /// Number of stored items.
  size_t size() const { return size_; }

 private:
  struct Item {
    uint32_t id;
    GeoPoint point;
  };

  int64_t CellKey(const GeoPoint& p) const;

  double cell_degrees_;
  std::unordered_map<int64_t, std::vector<Item>> cells_;
  size_t size_ = 0;
};

}  // namespace adrec::geo

#endif  // ADREC_GEO_GRID_INDEX_H_
