#ifndef ADREC_GEO_PLACES_H_
#define ADREC_GEO_PLACES_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/id_types.h"
#include "common/status.h"
#include "geo/grid_index.h"
#include "geo/point.h"

namespace adrec::geo {

/// A named check-in location (a venue in the paper's location set M).
struct Place {
  std::string name;
  GeoPoint point;
};

/// Registry mapping LocationId <-> named places, with nearest-place snap
/// for raw GPS check-ins. Backed by a GridIndex for sub-linear lookup.
class PlaceRegistry {
 public:
  PlaceRegistry();

  /// Registers a place; fails with AlreadyExists on duplicate name.
  Result<LocationId> AddPlace(std::string_view name, const GeoPoint& point);

  /// Accessors.
  const Place& place(LocationId id) const;
  Result<LocationId> FindByName(std::string_view name) const;
  size_t size() const { return places_.size(); }

  /// Snaps a raw point to the nearest registered place within
  /// `max_distance_m`; NotFound when no place is that close.
  Result<LocationId> Nearest(const GeoPoint& p, double max_distance_m) const;

  /// All places within the radius, nearest first.
  std::vector<LocationId> Within(const GeoPoint& p, double radius_m) const;

 private:
  std::vector<Place> places_;
  std::unordered_map<std::string, LocationId> by_name_;
  GridIndex grid_;
};

}  // namespace adrec::geo

#endif  // ADREC_GEO_PLACES_H_
