#include "geo/places.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::geo {

PlaceRegistry::PlaceRegistry() : grid_(0.02) {}

Result<LocationId> PlaceRegistry::AddPlace(std::string_view name,
                                           const GeoPoint& point) {
  if (!IsValidPoint(point)) {
    return Status::InvalidArgument("place coordinates out of range");
  }
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) {
    return Status::AlreadyExists(StringFormat(
        "place '%.*s' already registered", static_cast<int>(name.size()),
        name.data()));
  }
  const LocationId id(static_cast<uint32_t>(places_.size()));
  places_.push_back(Place{std::string(name), point});
  by_name_.emplace(std::string(name), id);
  ADREC_CHECK(grid_.Insert(id.value, point).ok());
  return id;
}

const Place& PlaceRegistry::place(LocationId id) const {
  ADREC_CHECK(id.value < places_.size());
  return places_[id.value];
}

Result<LocationId> PlaceRegistry::FindByName(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound(StringFormat("no place named '%.*s'",
                                         static_cast<int>(name.size()),
                                         name.data()));
  }
  return it->second;
}

Result<LocationId> PlaceRegistry::Nearest(const GeoPoint& p,
                                          double max_distance_m) const {
  const std::vector<uint32_t> hits = grid_.QueryRadius(p, max_distance_m);
  if (hits.empty()) {
    return Status::NotFound("no place within the snap radius");
  }
  return LocationId(hits.front());
}

std::vector<LocationId> PlaceRegistry::Within(const GeoPoint& p,
                                              double radius_m) const {
  std::vector<LocationId> out;
  for (uint32_t id : grid_.QueryRadius(p, radius_m)) {
    out.push_back(LocationId(id));
  }
  return out;
}

}  // namespace adrec::geo
