#include "geo/geohash.h"

#include <algorithm>

namespace adrec::geo {

namespace {

constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";

int Base32Value(char c) {
  const char* pos =
      std::char_traits<char>::find(kBase32, sizeof(kBase32) - 1, c);
  return pos == nullptr ? -1 : static_cast<int>(pos - kBase32);
}

}  // namespace

std::string GeohashEncode(const GeoPoint& p, int precision) {
  precision = std::clamp(precision, 1, 12);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  std::string out;
  out.reserve(precision);
  int bit = 0;
  int current = 0;
  bool even_bit = true;  // even bits encode longitude
  while (static_cast<int>(out.size()) < precision) {
    if (even_bit) {
      const double mid = (lon_lo + lon_hi) / 2.0;
      if (p.lon >= mid) {
        current = (current << 1) | 1;
        lon_lo = mid;
      } else {
        current <<= 1;
        lon_hi = mid;
      }
    } else {
      const double mid = (lat_lo + lat_hi) / 2.0;
      if (p.lat >= mid) {
        current = (current << 1) | 1;
        lat_lo = mid;
      } else {
        current <<= 1;
        lat_hi = mid;
      }
    }
    even_bit = !even_bit;
    if (++bit == 5) {
      out.push_back(kBase32[current]);
      bit = 0;
      current = 0;
    }
  }
  return out;
}

Result<GeohashBounds> GeohashDecodeBounds(std::string_view hash) {
  if (hash.empty()) return Status::InvalidArgument("empty geohash");
  GeohashBounds b{-90.0, 90.0, -180.0, 180.0};
  bool even_bit = true;
  for (char c : hash) {
    const int value = Base32Value(c);
    if (value < 0) {
      return Status::InvalidArgument(std::string("bad geohash char: ") + c);
    }
    for (int bit_pos = 4; bit_pos >= 0; --bit_pos) {
      const int bit = (value >> bit_pos) & 1;
      if (even_bit) {
        const double mid = (b.lon_lo + b.lon_hi) / 2.0;
        if (bit) {
          b.lon_lo = mid;
        } else {
          b.lon_hi = mid;
        }
      } else {
        const double mid = (b.lat_lo + b.lat_hi) / 2.0;
        if (bit) {
          b.lat_lo = mid;
        } else {
          b.lat_hi = mid;
        }
      }
      even_bit = !even_bit;
    }
  }
  return b;
}

Result<GeoPoint> GeohashDecode(std::string_view hash) {
  Result<GeohashBounds> bounds = GeohashDecodeBounds(hash);
  if (!bounds.ok()) return bounds.status();
  const GeohashBounds& b = bounds.value();
  return GeoPoint{(b.lat_lo + b.lat_hi) / 2.0, (b.lon_lo + b.lon_hi) / 2.0};
}

Result<std::vector<std::string>> GeohashNeighbors(std::string_view hash) {
  Result<GeohashBounds> bounds = GeohashDecodeBounds(hash);
  if (!bounds.ok()) return bounds.status();
  const GeohashBounds& b = bounds.value();
  const double dlat = b.lat_hi - b.lat_lo;
  const double dlon = b.lon_hi - b.lon_lo;
  const double clat = (b.lat_lo + b.lat_hi) / 2.0;
  const double clon = (b.lon_lo + b.lon_hi) / 2.0;
  const int precision = static_cast<int>(hash.size());

  auto wrap_lon = [](double lon) {
    while (lon >= 180.0) lon -= 360.0;
    while (lon < -180.0) lon += 360.0;
    return lon;
  };
  auto clamp_lat = [](double lat) { return std::clamp(lat, -90.0, 90.0); };

  // N, NE, E, SE, S, SW, W, NW offsets in cell units.
  const double offsets[8][2] = {{1, 0},  {1, 1},  {0, 1},  {-1, 1},
                                {-1, 0}, {-1, -1}, {0, -1}, {1, -1}};
  std::vector<std::string> out;
  out.reserve(8);
  for (const auto& o : offsets) {
    const GeoPoint p{clamp_lat(clat + o[0] * dlat),
                     wrap_lon(clon + o[1] * dlon)};
    out.push_back(GeohashEncode(p, precision));
  }
  return out;
}

}  // namespace adrec::geo
