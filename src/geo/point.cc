#include "geo/point.h"

#include <cmath>

namespace adrec::geo {

namespace {
constexpr double kDegToRad = M_PI / 180.0;
}  // namespace

double HaversineMeters(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = a.lat * kDegToRad;
  const double lat2 = b.lat * kDegToRad;
  const double dlat = (b.lat - a.lat) * kDegToRad;
  const double dlon = (b.lon - a.lon) * kDegToRad;
  const double s1 = std::sin(dlat / 2.0);
  const double s2 = std::sin(dlon / 2.0);
  const double h = s1 * s1 + std::cos(lat1) * std::cos(lat2) * s2 * s2;
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(std::min(1.0, h)));
}

bool IsValidPoint(const GeoPoint& p) {
  return p.lat >= -90.0 && p.lat <= 90.0 && p.lon >= -180.0 && p.lon <= 180.0;
}

}  // namespace adrec::geo
