#include "geo/grid_index.h"

#include <algorithm>
#include <cmath>

namespace adrec::geo {

GridIndex::GridIndex(double cell_degrees)
    : cell_degrees_(cell_degrees > 0 ? cell_degrees : 0.01) {}

int64_t GridIndex::CellKey(const GeoPoint& p) const {
  const int64_t row =
      static_cast<int64_t>(std::floor((p.lat + 90.0) / cell_degrees_));
  const int64_t col =
      static_cast<int64_t>(std::floor((p.lon + 180.0) / cell_degrees_));
  return (row << 32) ^ (col & 0xFFFFFFFFll);
}

Status GridIndex::Insert(uint32_t id, const GeoPoint& p) {
  if (!IsValidPoint(p)) {
    return Status::InvalidArgument("point out of WGS-84 range");
  }
  cells_[CellKey(p)].push_back(Item{id, p});
  ++size_;
  return Status::OK();
}

Status GridIndex::Remove(uint32_t id, const GeoPoint& p) {
  auto it = cells_.find(CellKey(p));
  if (it == cells_.end()) return Status::NotFound("no such item");
  auto& items = it->second;
  const size_t before = items.size();
  items.erase(std::remove_if(items.begin(), items.end(),
                             [&](const Item& item) {
                               return item.id == id && item.point == p;
                             }),
              items.end());
  const size_t removed = before - items.size();
  if (removed == 0) return Status::NotFound("no such item");
  size_ -= removed;
  if (items.empty()) cells_.erase(it);
  return Status::OK();
}

std::vector<uint32_t> GridIndex::QueryRadius(const GeoPoint& center,
                                             double radius_m) const {
  // Convert the radius to a degree envelope. 1 deg latitude ~ 111.2 km;
  // longitude shrinks with cos(lat) (guard the poles).
  const double lat_deg = radius_m / 111194.9;
  const double cos_lat =
      std::max(0.01, std::cos(center.lat * M_PI / 180.0));
  const double lon_deg = lat_deg / cos_lat;

  struct Hit {
    uint32_t id;
    double dist;
  };
  std::vector<Hit> hits;
  const int64_t row_lo =
      static_cast<int64_t>(std::floor((center.lat - lat_deg + 90.0) / cell_degrees_));
  const int64_t row_hi =
      static_cast<int64_t>(std::floor((center.lat + lat_deg + 90.0) / cell_degrees_));
  const int64_t col_lo =
      static_cast<int64_t>(std::floor((center.lon - lon_deg + 180.0) / cell_degrees_));
  const int64_t col_hi =
      static_cast<int64_t>(std::floor((center.lon + lon_deg + 180.0) / cell_degrees_));
  for (int64_t row = row_lo; row <= row_hi; ++row) {
    for (int64_t col = col_lo; col <= col_hi; ++col) {
      const int64_t key = (row << 32) ^ (col & 0xFFFFFFFFll);
      auto it = cells_.find(key);
      if (it == cells_.end()) continue;
      for (const Item& item : it->second) {
        const double d = HaversineMeters(center, item.point);
        if (d <= radius_m) hits.push_back(Hit{item.id, d});
      }
    }
  }
  std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
    return a.dist < b.dist || (a.dist == b.dist && a.id < b.id);
  });
  std::vector<uint32_t> out;
  out.reserve(hits.size());
  for (const Hit& h : hits) out.push_back(h.id);
  return out;
}

}  // namespace adrec::geo
