#ifndef ADREC_PROFILE_USER_PROFILE_H_
#define ADREC_PROFILE_USER_PROFILE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "annotate/annotator.h"
#include "common/id_types.h"
#include "common/sim_clock.h"
#include "text/sparse_vector.h"
#include "timeline/decay.h"
#include "timeline/time_slots.h"

namespace adrec::profile {

/// Incrementally-maintained interest state for one user: a decayed topic
/// vector (dimensions are TopicIds) plus per-slot location visit counters.
/// The decay trick: weights are stored scaled to the last-update time and
/// multiplied by one decay factor on each touch, so updates are O(profile
/// size) with no timer wheel.
struct UserState {
  text::SparseVector interests;  ///< topic-id weights at time `as_of`
  Timestamp as_of = 0;
  /// visit_counts[slot][location] — decayed check-in mass.
  std::vector<std::unordered_map<uint32_t, double>> visits;
};

/// Store of all user states. Single-writer streaming semantics.
class UserProfileStore {
 public:
  /// `half_life` controls how fast stale interests fade (E9 sweeps it).
  UserProfileStore(const timeline::TimeSlotScheme* slots,
                   DurationSec half_life_seconds);

  /// Folds an annotated tweet into the author's interest vector.
  void ObserveTweet(UserId user, Timestamp time,
                    const std::vector<annotate::Annotation>& annotations);

  /// Folds a check-in into the author's per-slot location counters.
  void ObserveCheckIn(UserId user, Timestamp time, LocationId location);

  /// The user's interest vector decayed to `now` (empty for unknown user).
  text::SparseVector InterestsAt(UserId user, Timestamp now) const;

  /// Decayed visit mass of (user, slot, location); 0 when never visited.
  double VisitMass(UserId user, SlotId slot, LocationId location) const;

  /// The user's most-visited location during `slot` (by decayed mass);
  /// invalid LocationId when the user has no check-ins in that slot.
  LocationId TopLocation(UserId user, SlotId slot) const;

  /// Users with any state (ids in insertion order).
  std::vector<UserId> KnownUsers() const;

  /// Visits every state (snapshot serialization).
  void ForEachState(
      const std::function<void(UserId, const UserState&)>& fn) const;

  /// Replaces (or creates) a user's state wholesale (snapshot restore).
  /// The state's visits vector is resized to the slot scheme.
  void RestoreState(UserId user, UserState state);

  size_t size() const { return states_.size(); }

 private:
  UserState& StateOf(UserId user);

  /// Brings a state's decayed quantities forward to `now`.
  void AdvanceTo(UserState& state, Timestamp now) const;

  const timeline::TimeSlotScheme* slots_;  // not owned
  timeline::ExponentialDecay decay_;
  std::unordered_map<uint32_t, UserState> states_;
  std::vector<UserId> insertion_order_;
};

}  // namespace adrec::profile

#endif  // ADREC_PROFILE_USER_PROFILE_H_
