#include "profile/user_profile.h"

#include "common/logging.h"

namespace adrec::profile {

UserProfileStore::UserProfileStore(const timeline::TimeSlotScheme* slots,
                                   DurationSec half_life_seconds)
    : slots_(slots), decay_(half_life_seconds) {
  ADREC_CHECK(slots != nullptr);
}

UserState& UserProfileStore::StateOf(UserId user) {
  auto it = states_.find(user.value);
  if (it == states_.end()) {
    it = states_.emplace(user.value, UserState{}).first;
    it->second.visits.resize(slots_->size());
    insertion_order_.push_back(user);
  }
  return it->second;
}

void UserProfileStore::AdvanceTo(UserState& state, Timestamp now) const {
  if (now <= state.as_of) return;
  const double factor = decay_.DecayFactor(state.as_of, now);
  state.interests.Scale(factor);
  state.interests.Prune(1e-9);
  for (auto& slot_map : state.visits) {
    for (auto it = slot_map.begin(); it != slot_map.end();) {
      it->second *= factor;
      if (it->second < 1e-9) {
        it = slot_map.erase(it);
      } else {
        ++it;
      }
    }
  }
  state.as_of = now;
}

void UserProfileStore::ObserveTweet(
    UserId user, Timestamp time,
    const std::vector<annotate::Annotation>& annotations) {
  UserState& state = StateOf(user);
  AdvanceTo(state, time);
  for (const annotate::Annotation& a : annotations) {
    state.interests.Add(a.topic.value, a.score);
  }
}

void UserProfileStore::ObserveCheckIn(UserId user, Timestamp time,
                                      LocationId location) {
  UserState& state = StateOf(user);
  AdvanceTo(state, time);
  const SlotId slot = slots_->SlotOf(time);
  state.visits[slot.value][location.value] += 1.0;
}

text::SparseVector UserProfileStore::InterestsAt(UserId user,
                                                 Timestamp now) const {
  auto it = states_.find(user.value);
  if (it == states_.end()) return {};
  const UserState& state = it->second;
  text::SparseVector out = state.interests;
  if (now > state.as_of) out.Scale(decay_.DecayFactor(state.as_of, now));
  return out;
}

double UserProfileStore::VisitMass(UserId user, SlotId slot,
                                   LocationId location) const {
  auto it = states_.find(user.value);
  if (it == states_.end()) return 0.0;
  const UserState& state = it->second;
  if (slot.value >= state.visits.size()) return 0.0;
  auto vit = state.visits[slot.value].find(location.value);
  return vit == state.visits[slot.value].end() ? 0.0 : vit->second;
}

LocationId UserProfileStore::TopLocation(UserId user, SlotId slot) const {
  auto it = states_.find(user.value);
  if (it == states_.end()) return LocationId();
  const UserState& state = it->second;
  if (slot.value >= state.visits.size()) return LocationId();
  LocationId best;
  double best_mass = 0.0;
  for (const auto& [location, mass] : state.visits[slot.value]) {
    if (mass > best_mass ||
        (mass == best_mass && best.valid() && location < best.value)) {
      best_mass = mass;
      best = LocationId(location);
    }
  }
  return best;
}

std::vector<UserId> UserProfileStore::KnownUsers() const {
  return insertion_order_;
}

void UserProfileStore::ForEachState(
    const std::function<void(UserId, const UserState&)>& fn) const {
  for (UserId user : insertion_order_) {
    auto it = states_.find(user.value);
    if (it != states_.end()) fn(user, it->second);
  }
}

void UserProfileStore::RestoreState(UserId user, UserState state) {
  state.visits.resize(slots_->size());
  auto it = states_.find(user.value);
  if (it == states_.end()) {
    insertion_order_.push_back(user);
    states_.emplace(user.value, std::move(state));
  } else {
    it->second = std::move(state);
  }
}

}  // namespace adrec::profile
