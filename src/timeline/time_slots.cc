#include "timeline/time_slots.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::timeline {

Result<TimeSlotScheme> TimeSlotScheme::Create(std::vector<TimeSlot> slots) {
  if (slots.empty()) {
    return Status::InvalidArgument("a slot scheme needs at least one slot");
  }
  int64_t cursor = 0;
  for (const TimeSlot& s : slots) {
    if (s.begin_second != cursor) {
      return Status::InvalidArgument(StringFormat(
          "slot '%s' begins at %lld, expected %lld (gap or overlap)",
          s.name.c_str(), static_cast<long long>(s.begin_second),
          static_cast<long long>(cursor)));
    }
    if (s.end_second <= s.begin_second) {
      return Status::InvalidArgument(
          StringFormat("slot '%s' is empty or inverted", s.name.c_str()));
    }
    cursor = s.end_second;
  }
  if (cursor != kSecondsPerDay) {
    return Status::InvalidArgument(
        StringFormat("slots cover only %lld of %lld seconds",
                     static_cast<long long>(cursor),
                     static_cast<long long>(kSecondsPerDay)));
  }
  return TimeSlotScheme(std::move(slots));
}

TimeSlotScheme TimeSlotScheme::PaperScheme() {
  auto r = Create({
      {"night", 0, 5 * kSecondsPerHour},
      {"slot1_05am_01pm", 5 * kSecondsPerHour, 13 * kSecondsPerHour},
      {"slot2_01pm_08pm", 13 * kSecondsPerHour, 20 * kSecondsPerHour},
      {"late", 20 * kSecondsPerHour, kSecondsPerDay},
  });
  ADREC_CHECK(r.ok());
  return std::move(r).value();
}

TimeSlotScheme TimeSlotScheme::MorningAfternoonEvening() {
  auto r = Create({
      {"morning", 0, 12 * kSecondsPerHour},
      {"afternoon", 12 * kSecondsPerHour, 18 * kSecondsPerHour},
      {"evening", 18 * kSecondsPerHour, kSecondsPerDay},
  });
  ADREC_CHECK(r.ok());
  return std::move(r).value();
}

TimeSlotScheme TimeSlotScheme::Uniform(size_t n) {
  if (n == 0) n = 1;
  if (n > static_cast<size_t>(kSecondsPerDay)) {
    n = static_cast<size_t>(kSecondsPerDay);
  }
  const int64_t width = kSecondsPerDay / static_cast<int64_t>(n);
  std::vector<TimeSlot> slots;
  int64_t cursor = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t end =
        (i + 1 == n) ? kSecondsPerDay : cursor + width;
    slots.push_back(TimeSlot{StringFormat("slot%zu", i), cursor, end});
    cursor = end;
  }
  auto r = Create(std::move(slots));
  ADREC_CHECK(r.ok());
  return std::move(r).value();
}

TimeSlotScheme TimeSlotScheme::Hourly() {
  std::vector<TimeSlot> slots;
  for (int h = 0; h < 24; ++h) {
    slots.push_back(TimeSlot{StringFormat("h%02d", h),
                             h * kSecondsPerHour, (h + 1) * kSecondsPerHour});
  }
  auto r = Create(std::move(slots));
  ADREC_CHECK(r.ok());
  return std::move(r).value();
}

SlotId TimeSlotScheme::SlotOf(Timestamp t) const {
  const int64_t s = SecondOfDay(t);
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (s >= slots_[i].begin_second && s < slots_[i].end_second) {
      return SlotId(static_cast<uint32_t>(i));
    }
  }
  // Unreachable when the scheme covers the whole day (validated on Create).
  return SlotId(static_cast<uint32_t>(slots_.size() - 1));
}

const TimeSlot& TimeSlotScheme::slot(SlotId id) const {
  ADREC_CHECK(id.value < slots_.size());
  return slots_[id.value];
}

Result<SlotId> TimeSlotScheme::FindByName(std::string_view name) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].name == name) return SlotId(static_cast<uint32_t>(i));
  }
  return Status::NotFound(StringFormat("no slot named '%.*s'",
                                       static_cast<int>(name.size()),
                                       name.data()));
}

uint32_t TimeSlotScheme::SlotInstanceOf(Timestamp t) const {
  const int64_t day = DayIndex(t);
  ADREC_CHECK(day >= 0);  // simulated timelines start at 0
  return static_cast<uint32_t>(day) * static_cast<uint32_t>(slots_.size()) +
         SlotOf(t).value;
}

std::pair<int64_t, SlotId> TimeSlotScheme::DecomposeInstance(
    uint32_t instance) const {
  const uint32_t n = static_cast<uint32_t>(slots_.size());
  return {static_cast<int64_t>(instance / n), SlotId(instance % n)};
}

}  // namespace adrec::timeline
