#ifndef ADREC_TIMELINE_TIME_SLOTS_H_
#define ADREC_TIMELINE_TIME_SLOTS_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/id_types.h"
#include "common/sim_clock.h"
#include "common/status.h"

namespace adrec::timeline {

/// One named slot: a half-open interval of second-of-day [begin, end).
struct TimeSlot {
  std::string name;        ///< e.g. "morning"
  int64_t begin_second;    ///< inclusive, in [0, 86400)
  int64_t end_second;      ///< exclusive, in (begin, 86400]
};

/// A partition of the day into named slots — the condition dimension T of
/// both triadic contexts. Slots must cover [0, 86400) without overlap.
class TimeSlotScheme {
 public:
  /// Builds a scheme from ordered slots; validates coverage and ordering.
  static Result<TimeSlotScheme> Create(std::vector<TimeSlot> slots);

  /// The evaluation scheme of the reconstructed experiments: three slots —
  /// night [00:00-05:00), slot1 [05:00-13:00) ("05:00am-01:00pm"),
  /// slot2 [13:00-20:00) ("01:01pm-08:00pm"), late [20:00-24:00).
  static TimeSlotScheme PaperScheme();

  /// Morning / afternoon / evening thirds used by the worked example.
  static TimeSlotScheme MorningAfternoonEvening();

  /// `n` equal slots named "slot0".."slot{n-1}" (n in [1, 86400],
  /// clamped; the last slot absorbs the remainder when 86400 % n != 0).
  static TimeSlotScheme Uniform(size_t n);

  /// 24 hourly slots "h00".."h23" — the granularity trending analyses
  /// tend to want.
  static TimeSlotScheme Hourly();

  /// The slot containing the timestamp's second-of-day.
  SlotId SlotOf(Timestamp t) const;

  /// Slot metadata.
  const TimeSlot& slot(SlotId id) const;
  Result<SlotId> FindByName(std::string_view name) const;
  size_t size() const { return slots_.size(); }

  /// The "slot instance" of t: day index * num_slots + slot. Two events in
  /// the same named slot on different days are different conditions for the
  /// timed analysis (t1, t2, ... in the paper's tables).
  uint32_t SlotInstanceOf(Timestamp t) const;

  /// Decomposes a slot instance into (day, slot).
  std::pair<int64_t, SlotId> DecomposeInstance(uint32_t instance) const;

 private:
  explicit TimeSlotScheme(std::vector<TimeSlot> slots)
      : slots_(std::move(slots)) {}

  std::vector<TimeSlot> slots_;
};

}  // namespace adrec::timeline

#endif  // ADREC_TIMELINE_TIME_SLOTS_H_
