#ifndef ADREC_TIMELINE_DECAY_H_
#define ADREC_TIMELINE_DECAY_H_

#include <cmath>

#include "common/sim_clock.h"

namespace adrec::timeline {

/// Exponential decay with a configurable half-life: the weight of evidence
/// aged `age` seconds is 0.5^(age/half_life). User-interest profiles use
/// this so stale tweets stop driving recommendations (E9 sweeps it).
class ExponentialDecay {
 public:
  explicit ExponentialDecay(DurationSec half_life_seconds)
      : half_life_(half_life_seconds > 0 ? half_life_seconds : 1) {}

  /// Weight of evidence `age` seconds old; 1.0 at age 0, 0.5 at one
  /// half-life. Negative ages (future evidence) clamp to 1.0.
  double WeightAtAge(DurationSec age) const {
    if (age <= 0) return 1.0;
    return std::exp2(-static_cast<double>(age) / half_life_);
  }

  /// Multiplier that advances an accumulated weight from `from` to `to`.
  double DecayFactor(Timestamp from, Timestamp to) const {
    return WeightAtAge(to - from);
  }

  DurationSec half_life() const { return half_life_; }

 private:
  DurationSec half_life_;
};

/// Linear window decay: full weight inside the window, zero outside.
/// The recompute-from-window baseline of E9.
class WindowDecay {
 public:
  explicit WindowDecay(DurationSec window_seconds)
      : window_(window_seconds > 0 ? window_seconds : 1) {}

  double WeightAtAge(DurationSec age) const {
    return (age >= 0 && age < window_) ? 1.0 : 0.0;
  }

  DurationSec window() const { return window_; }

 private:
  DurationSec window_;
};

}  // namespace adrec::timeline

#endif  // ADREC_TIMELINE_DECAY_H_
