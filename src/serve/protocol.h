#ifndef ADREC_SERVE_PROTOCOL_H_
#define ADREC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/id_types.h"
#include "common/status.h"
#include "feed/types.h"

namespace adrec::serve {

/// The adrecd wire protocol: a memcached-style text protocol, one request
/// per line, one (possibly multi-line) response per request, processed in
/// order (clients may pipeline).
///
/// Framing: requests are LF-terminated (an optional preceding CR is
/// stripped); responses terminate every line with CRLF. Fields within a
/// request are TAB-separated — not space-separated as in memcached —
/// because tweet text and ad copy are free text; the payload after each
/// ingest verb is exactly the feed::trace_io field grammar, so a trace
/// file line `T\t<user>\t<time>\t<text>` becomes the wire command
/// `tweet\t<user>\t<time>\t<text>` and vice versa.
///
/// Requests:
///   tweet <user> <time> <text...>      -> OK
///   checkin <user> <time> <location>   -> OK
///   adput <id> <campaign> <budget> <bid> <locs;> <slots;> <copy...> -> OK
///   addel <id>                         -> OK | NOT_FOUND
///   topk <user> <k> [<time> [<text...>]] -> ADS <n> / AD <id> <score> / END
///        (time omitted: the server substitutes the newest event time it
///        has seen — "what belongs on this user's feed right now")
///   match <ad>                         -> USERS <n> / USER <id> <score> / END
///   analyze [<alpha>]                  -> OK
///   stats                              -> STAT <name> <value> ... / END
///   metrics                            -> METRICS <bytes> / <payload> / END
///        (payload is Prometheus text exposition, obs::ExportPrometheus)
///   snapshot <dir>                     -> OK   (per-shard dir/shard<i>;
///        dir is relative, `..`-free, resolved under the server's
///        snapshot root — the verb is disabled when no root is set)
///   checkpoint                         -> OK   (WAL-coordinated durable
///        checkpoint — see wal/checkpoint.h; disabled without --wal-dir)
///   compact                            -> OK   (rewrite sealed WAL
///        segments dropping superseded inventory records — see
///        wal/delta/compactor.h; disabled without --wal-dir. Segments a
///        connected follower still needs are preserved.)
///   repl <cursor>                      -> REPL OK <cursor> / <stream...>
///        (replication handshake: the connection becomes a one-way WAL
///        frame stream starting after seqno <cursor> — raw CRC frames
///        interleaved with `REPL HB <tip>` heartbeats; DESIGN.md §12.
///        Disabled without --wal-dir.)
///   repl <shard> <cursor>              -> REPL OK <shard> <cursor> / ...
///        (per-shard-stream form for a sharded log, DESIGN.md §16: the
///        connection streams shard <shard>'s WAL only; a follower opens
///        one such connection per shard. The one-field legacy form is
///        only valid against a single-stream log, and vice versa.)
///   promote                            -> OK   (follower only: detach
///        from the leader, seal the local log, begin accepting writes)
///   trace [tsv|chrome]                 -> TRACE <bytes> / <payload> / END
///        (recent traces from the flight recorder: TSV by default,
///        Chrome trace-event JSON — loadable in Perfetto — with
///        `chrome`; obs/trace.h. Disabled when the daemon runs with
///        --trace-ring=0.)
///   slow                               -> SLOW <bytes> / <payload> / END
///        (the slow-request log: pinned slow/error traces as TSV, with
///        arguments and per-stage breakdown)
///   conns                              -> CONNS <n> / CONN ... / END
///        (per-connection diagnostics: age, idle, bytes, commands, last
///        verb, buffer depths, backpressure/replica/closing flags)
///   ping                               -> PONG
///   quit                               (server closes the connection)
///
/// Error replies: `CLIENT_ERROR <detail>` for anything that fails to
/// parse (the connection stays usable — except over-long lines, which
/// cannot be resynchronised and close it), `SERVER_ERROR <detail>` for
/// engine-side failures, `SERVER_ERROR busy` when the daemon sheds
/// load instead of queueing without bound, and `READONLY` when a write
/// verb reaches a follower (see IsWriteVerb).

/// Command verbs, in wire-name order (VerbName / per-verb metrics).
enum class Verb {
  kTweet = 0,
  kCheckIn,
  kAdPut,
  kAdDel,
  kTopK,
  kMatch,
  kAnalyze,
  kStats,
  kMetrics,
  kSnapshot,
  kCheckpoint,
  kCompact,
  kRepl,
  kPromote,
  kTrace,
  kSlow,
  kConns,
  kPing,
  kQuit,
};

inline constexpr size_t kNumVerbs = 19;

/// The wire name of a verb ("tweet", "checkin", ...).
std::string_view VerbName(Verb verb);

/// True for verbs that mutate replicated engine state — exactly the
/// verbs the WAL records and a read-only follower refuses with
/// `READONLY`. This is THE single classification point: a new verb added
/// to the enum must be classified here (the switch is exhaustive, so
/// forgetting is a compile error) and is covered by the verb-table test
/// in serve_replica_test.cc.
bool IsWriteVerb(Verb verb);

/// One parsed request line. Only the fields of the given verb are
/// meaningful.
struct Request {
  Verb verb = Verb::kPing;
  feed::Tweet tweet;       // kTweet; kTopK (query context)
  feed::CheckIn check_in;  // kCheckIn
  feed::Ad ad;             // kAdPut
  AdId ad_id;              // kAdDel, kMatch
  size_t k = 0;            // kTopK
  /// kTopK: false when the client omitted <time> and the server should
  /// substitute its stream clock.
  bool has_time = false;
  /// kAnalyze: NaN-free; <0 means "use the engine's configured alpha".
  double alpha = -1.0;
  std::string dir;  // kSnapshot
  /// kRepl: last WAL seqno the follower already holds (0 = from the
  /// beginning); streaming resumes at cursor + 1.
  uint64_t cursor = 0;
  /// kRepl: WAL stream requested (two-field form); SIZE_MAX for the
  /// legacy single-stream handshake.
  size_t repl_shard = SIZE_MAX;
  /// kTrace: dump as Chrome trace-event JSON instead of TSV.
  bool chrome = false;
};

/// Parses one request line (terminator already stripped). The error
/// status' message is the `CLIENT_ERROR` detail the server sends back.
Result<Request> ParseRequest(std::string_view line);

/// Client-side request formatters: the exact line `Client` sends (no
/// terminator). Ingest verbs delegate to the trace_io field formatters.
std::string FormatTweetCmd(const feed::Tweet& tweet);
std::string FormatCheckInCmd(const feed::CheckIn& check_in);
std::string FormatAdPutCmd(const feed::Ad& ad);
std::string FormatAdDelCmd(AdId id);
std::string FormatTopKCmd(UserId user, size_t k);
std::string FormatTopKCmd(UserId user, size_t k, Timestamp time,
                          std::string_view text);
std::string FormatMatchCmd(AdId id);
std::string FormatAnalyzeCmd(double alpha);
std::string FormatSnapshotCmd(std::string_view dir);
std::string FormatReplCmd(uint64_t cursor);
std::string FormatReplCmd(size_t shard, uint64_t cursor);

}  // namespace adrec::serve

#endif  // ADREC_SERVE_PROTOCOL_H_
