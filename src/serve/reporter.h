#ifndef ADREC_SERVE_REPORTER_H_
#define ADREC_SERVE_REPORTER_H_

#include <chrono>
#include <functional>
#include <map>
#include <string>

#include "obs/metrics.h"
#include "obs/stats_export.h"

namespace adrec::serve {

/// One reporting window: what changed between two metric snapshots.
/// Long-running deployments watch these deltas, not cumulative totals —
/// a cumulative events/sec flattens toward the lifetime mean and hides
/// a stall; the window figure shows it immediately.
struct WindowReport {
  /// Wall length of the window in seconds.
  double wall_seconds = 0.0;
  /// Counter increments inside the window.
  std::map<std::string, uint64_t> counter_deltas;
  /// counter_deltas / wall_seconds.
  std::map<std::string, double> rates;
  /// Window-only latency distributions (Histogram::DeltaSince), for
  /// counters' timer siblings — p95 of *this* window, not of the
  /// process lifetime. Timers with no window samples are omitted.
  std::map<std::string, obs::TimerStat> timers;
};

/// Emits per-interval deltas from any snapshot source (a Server's merged
/// view, an engine's registry, a replayer's harness registry). Cumulative
/// metrics are never reset: windows are formed by counter subtraction and
/// Histogram::DeltaSince against the previous snapshot.
///
/// Not a thread: the owner calls TickIfDue() from whatever loop it
/// already runs (the daemon's poll loop, a replay progress callback), so
/// the reporter adds no concurrency of its own.
class PeriodicReporter {
 public:
  using SnapshotFn = std::function<obs::MetricsSnapshot()>;
  using Sink = std::function<void(const WindowReport&)>;

  /// `interval_seconds` is the cadence TickIfDue honours. An empty sink
  /// logs one INFO summary line per window (events/sec, cmds/sec, the
  /// largest per-verb p95).
  PeriodicReporter(SnapshotFn snapshot_fn, double interval_seconds,
                   Sink sink = {});

  /// Closes the window and reports if the interval has elapsed; returns
  /// true when a report was emitted.
  bool TickIfDue();

  /// Unconditionally closes the current window and returns the report
  /// (also delivered to the sink).
  WindowReport Tick();

  double interval_seconds() const { return interval_seconds_; }

 private:
  SnapshotFn snapshot_fn_;
  double interval_seconds_;
  Sink sink_;
  obs::MetricsSnapshot last_;
  std::chrono::steady_clock::time_point last_time_;
};

}  // namespace adrec::serve

#endif  // ADREC_SERVE_REPORTER_H_
