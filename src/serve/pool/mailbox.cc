#include "serve/pool/mailbox.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>

#include "common/logging.h"

namespace adrec::serve::pool {

Mailboxes::Mailboxes(size_t workers, size_t ring_slots)
    : workers_(workers),
      retry_(workers, std::vector<std::deque<Task>>(workers)),
      kicked_(std::make_unique<std::atomic<bool>[]>(workers)) {
  rings_.reserve(workers * workers);
  for (size_t i = 0; i < workers * workers; ++i) {
    rings_.push_back(std::make_unique<SpscRing<Task>>(ring_slots));
  }
  wake_fds_.resize(workers);
  for (size_t w = 0; w < workers; ++w) {
    ADREC_CHECK(pipe(wake_fds_[w].data()) == 0);
    for (int end : wake_fds_[w]) {
      const int flags = fcntl(end, F_GETFL, 0);
      ADREC_CHECK(flags >= 0 &&
                  fcntl(end, F_SETFL, flags | O_NONBLOCK) == 0);
    }
    kicked_[w].store(false, std::memory_order_relaxed);
  }
}

Mailboxes::~Mailboxes() {
  for (auto& fds : wake_fds_) {
    ::close(fds[0]);
    ::close(fds[1]);
  }
}

void Mailboxes::PushOrSpill(size_t from, size_t to, Task task) {
  std::deque<Task>& spill = retry_[from][to];
  // FIFO per pair: earlier spilled tasks must enter the ring before this
  // one may.
  while (!spill.empty()) {
    if (!ring(from, to).TryPush(std::move(spill.front()))) break;
    spill.pop_front();
  }
  if (!spill.empty() || !ring(from, to).TryPush(std::move(task))) {
    spill.push_back(std::move(task));
  }
}

void Mailboxes::Post(size_t from, size_t to, Task task) {
  PushOrSpill(from, to, std::move(task));
  Kick(to);
}

void Mailboxes::Kick(size_t to) {
  // One pipe byte per sleep, not per post: the flag is re-armed by the
  // drain, so a burst of posts costs one write(2).
  if (!kicked_[to].exchange(true, std::memory_order_acq_rel)) {
    const char b = 'k';
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[to][1], &b, 1);
  }
}

size_t Mailboxes::Drain(size_t to) {
  // Re-arm the kick before popping: a producer that posts after this
  // point writes the pipe again, so the consumer cannot sleep through a
  // task (worst case is one spurious wakeup).
  char buf[64];
  while (::read(wake_fds_[to][0], buf, sizeof(buf)) > 0) {
  }
  kicked_[to].store(false, std::memory_order_release);
  size_t ran = 0;
  for (size_t from = 0; from < workers_; ++from) {
    Task task;
    while (ring(from, to).TryPop(&task)) {
      task();
      ++ran;
    }
  }
  return ran;
}

void Mailboxes::FlushRetries(size_t from) {
  for (size_t to = 0; to < workers_; ++to) {
    std::deque<Task>& spill = retry_[from][to];
    if (spill.empty()) continue;
    while (!spill.empty()) {
      if (!ring(from, to).TryPush(std::move(spill.front()))) break;
      spill.pop_front();
    }
    Kick(to);
  }
}

}  // namespace adrec::serve::pool
