#ifndef ADREC_SERVE_POOL_SPSC_H_
#define ADREC_SERVE_POOL_SPSC_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <utility>

namespace adrec::serve::pool {

/// A bounded lock-free single-producer/single-consumer ring (the worker
/// pool's mailbox lane, DESIGN.md §16). One thread calls TryPush, one
/// thread calls TryPop; the only shared state is two monotonically
/// increasing indices with acquire/release pairing — no CAS loops, no
/// locks, wait-free on both sides.
///
/// Capacity is rounded up to a power of two so the slot index is a mask,
/// not a modulo. A full ring rejects the push (the caller spills to its
/// private retry queue); nothing is ever silently dropped.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. False when the ring is full (value untouched).
  bool TryPush(T&& value) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool TryPop(T* out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (racy for producers, exact for the
  /// consumer).
  bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return mask_ + 1; }

 private:
  size_t mask_ = 0;
  std::unique_ptr<T[]> slots_;
  /// Padded apart so the producer's and consumer's cache lines do not
  /// ping-pong on every operation.
  alignas(64) std::atomic<size_t> head_{0};
  alignas(64) std::atomic<size_t> tail_{0};
};

}  // namespace adrec::serve::pool

#endif  // ADREC_SERVE_POOL_SPSC_H_
