#ifndef ADREC_SERVE_POOL_MAILBOX_H_
#define ADREC_SERVE_POOL_MAILBOX_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "serve/pool/spsc.h"

namespace adrec::serve::pool {

/// A closure shipped between pool workers: a forwarded ingest/query, a
/// post-commit reply ack, or a barrier arrival. Runs on the destination
/// worker's event-loop thread during its mailbox drain.
using Task = std::function<void()>;

/// The worker pool's cross-thread fabric: an N×N matrix of SPSC rings
/// (one per ordered worker pair, so every lane has exactly one producer
/// and one consumer — no multi-producer coordination anywhere), plus a
/// per-worker wake pipe so a post can interrupt the destination's
/// poll(2) sleep.
///
/// Delivery is guaranteed and FIFO per (from, to) pair: a push that
/// finds its ring full spills into the producer's private retry deque
/// (only ever touched by that producer's thread) and is re-driven by
/// FlushRetries before the producer's next wave. Tasks between the same
/// two workers are never reordered — the retry deque drains before new
/// pushes for the same lane.
class Mailboxes {
 public:
  /// `workers` lanes; each ring holds `ring_slots` tasks.
  Mailboxes(size_t workers, size_t ring_slots = 1024);
  ~Mailboxes();

  Mailboxes(const Mailboxes&) = delete;
  Mailboxes& operator=(const Mailboxes&) = delete;

  size_t workers() const { return workers_; }

  /// Posts `task` from worker `from` to worker `to` (FIFO per pair,
  /// never dropped) and kicks `to`'s wake pipe when it may be asleep.
  /// Must be called on worker `from`'s thread.
  void Post(size_t from, size_t to, Task task);

  /// Runs every task currently queued for worker `to`, in per-producer
  /// FIFO order. Must be called on worker `to`'s thread. Returns the
  /// number of tasks run.
  size_t Drain(size_t to);

  /// Re-drives worker `from`'s spilled tasks (ring-full overflow). Must
  /// be called on worker `from`'s thread, once per wave.
  void FlushRetries(size_t from);

  /// The fd worker `to` polls (POLLIN) to sleep interruptibly.
  int wake_fd(size_t to) const { return wake_fds_[to][0]; }

  /// Wakes worker `to` without posting a task (drain requests).
  void Kick(size_t to);

 private:
  SpscRing<Task>& ring(size_t from, size_t to) {
    return *rings_[from * workers_ + to];
  }
  /// Push with order preservation: spilled tasks for the pair go first.
  void PushOrSpill(size_t from, size_t to, Task task);

  const size_t workers_;
  std::vector<std::unique_ptr<SpscRing<Task>>> rings_;
  /// retry_[from][to]: producer-private overflow, FIFO.
  std::vector<std::vector<std::deque<Task>>> retry_;
  /// One self-pipe per worker; [0] = read (polled), [1] = write (kick).
  std::vector<std::array<int, 2>> wake_fds_;
  /// Collapses kicks: a worker is kicked at most once between drains.
  std::unique_ptr<std::atomic<bool>[]> kicked_;
};

}  // namespace adrec::serve::pool

#endif  // ADREC_SERVE_POOL_MAILBOX_H_
