#include "serve/pool/barrier.h"

#include "common/logging.h"
#include "serve/pool/mailbox.h"

namespace adrec::serve::pool {

PoolBarrier::PoolBarrier(size_t workers)
    : workers_(workers),
      alive_(workers, true),
      arrived_(workers, 0),
      registered_(workers) {}

size_t PoolBarrier::registered() const {
  std::lock_guard<std::mutex> lk(mu_);
  return registered_;
}

void PoolBarrier::WaitDoneLocked(std::unique_lock<std::mutex>& lk,
                                 uint64_t gen) {
  cv_.wait(lk, [&] { return done_generation_ >= gen; });
}

void PoolBarrier::CompleteLocked(std::unique_lock<std::mutex>& lk) {
  // Every registered worker has arrived: the pool is quiescent. The
  // operation runs outside the lock (parked workers wait on
  // done_generation_, not the mutex), but nothing else can be running —
  // that is the whole guarantee.
  const uint64_t gen = generation_;
  std::function<void()> fn = std::move(fn_);
  fn_ = nullptr;
  lk.unlock();
  if (fn) fn();
  lk.lock();
  active_ = false;
  done_generation_ = gen;
  cv_.notify_all();
}

void PoolBarrier::ArriveLocked(size_t self,
                               std::unique_lock<std::mutex>& lk) {
  if (!active_ || !alive_[self]) return;
  const uint64_t gen = generation_;
  if (arrived_[self] != gen) {
    arrived_[self] = gen;
    ++arrivals_;
    if (arrivals_ == registered_) {
      CompleteLocked(lk);
      return;
    }
  }
  WaitDoneLocked(lk, gen);
}

void PoolBarrier::Arrive(size_t self, uint64_t generation) {
  std::unique_lock<std::mutex> lk(mu_);
  // Stale arrival (the barrier it was posted for already completed, or a
  // newer one replaced it — the newer one posted its own arrivals).
  if (!active_ || generation != generation_) return;
  ArriveLocked(self, lk);
}

void PoolBarrier::Run(size_t self, Mailboxes* mail,
                      std::function<void()> fn) {
  std::unique_lock<std::mutex> lk(mu_);
  ADREC_CHECK(alive_[self]);
  // Another originator's barrier is in flight: join it first — refusing
  // to arrive while waiting to claim would deadlock both.
  while (active_) ArriveLocked(self, lk);
  active_ = true;
  ++generation_;
  arrivals_ = 0;
  fn_ = std::move(fn);
  const uint64_t gen = generation_;
  for (size_t w = 0; w < workers_; ++w) {
    if (w == self || !alive_[w]) continue;
    mail->Post(self, w, [this, w, gen] { Arrive(w, gen); });
  }
  ArriveLocked(self, lk);
}

void PoolBarrier::Deregister(size_t self) {
  std::unique_lock<std::mutex> lk(mu_);
  if (!alive_[self]) return;
  alive_[self] = false;
  --registered_;
  // A barrier waiting only on this worker completes now, executed here:
  // every other registered worker is already parked, so the quiescence
  // guarantee is intact.
  if (active_ && arrived_[self] != generation_ && registered_ > 0 &&
      arrivals_ == registered_) {
    CompleteLocked(lk);
  }
}

}  // namespace adrec::serve::pool
