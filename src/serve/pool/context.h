#ifndef ADREC_SERVE_POOL_CONTEXT_H_
#define ADREC_SERVE_POOL_CONTEXT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "serve/pool/barrier.h"
#include "serve/pool/mailbox.h"

namespace adrec::serve {
class Server;
}  // namespace adrec::serve

namespace adrec::serve::pool {

/// Shared state of one worker pool (DESIGN.md §16), owned by PoolServer
/// and handed to every worker Server via ServerOptions::pool. Workers
/// are lanes 0..workers-1; the user-visible worker id is lane + 1 (0
/// means "the single-threaded server" in traces and `conns` output).
struct PoolContext {
  explicit PoolContext(size_t n) : workers(n), mail(n), barrier(n) {}

  const size_t workers;
  Mailboxes mail;
  PoolBarrier barrier;

  /// The pool-wide stream clock: newest event timestamp ingested by ANY
  /// worker, substituted into time-less `topk` queries. A relaxed
  /// max-CAS per ingest replaces the single-threaded server's plain
  /// member.
  std::atomic<int64_t> stream_now{0};

  /// Every worker's Server, indexed by lane. Written once before the
  /// workers start; barrier operations (which run with the pool
  /// quiescent) use it to reach the other workers' connection tables,
  /// followers and read-only gates.
  std::vector<Server*> servers;

  /// Pool-wide metrics view (engine + every worker + WAL streams +
  /// followers + tracer), installed by PoolServer; what the `stats` and
  /// `metrics` verbs on any worker export.
  std::function<obs::MetricsSnapshot()> merged_snapshot;

  void BumpStreamClock(int64_t t) {
    int64_t cur = stream_now.load(std::memory_order_relaxed);
    while (t > cur && !stream_now.compare_exchange_weak(
                          cur, t, std::memory_order_relaxed)) {
    }
  }
};

}  // namespace adrec::serve::pool

#endif  // ADREC_SERVE_POOL_CONTEXT_H_
