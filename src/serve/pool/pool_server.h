#ifndef ADREC_SERVE_POOL_POOL_SERVER_H_
#define ADREC_SERVE_POOL_POOL_SERVER_H_

#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/sharded_engine.h"
#include "serve/pool/context.h"
#include "serve/server.h"

namespace adrec::serve::pool {

/// Multi-core adrecd (DESIGN.md §16): one acceptor/dispatcher thread
/// (the thread that calls Run) plus N event-loop workers, each a full
/// serve::Server owning the engine shards `s % N == lane` — with all of
/// the single-threaded machinery (group commit, backpressure, shed,
/// idle reap, drain) running per worker over its own connections.
///
/// The acceptor owns the listening socket and deals accepted sockets
/// round-robin to the workers (AdoptSocket); connection-to-worker
/// affinity is therefore arbitrary, and shard affinity is restored per
/// request: a worker executes the ops of its own shards locally and
/// forwards the rest through the pool mailboxes (ordered reply slots
/// keep each connection's pipeline order). Rare coordination verbs
/// stop the world (PoolBarrier) instead of growing per-verb fan-out
/// machinery.
///
/// The WAL is one stream per shard (wal::ShardedWal) so the commit
/// barrier, checkpointing and recovery all parallelise; followers are
/// per-stream and polled by the worker that owns the stream's shard.
class PoolServer {
 public:
  /// `base` is the per-worker option template. PoolServer fills in
  /// `pool` and `lane`, distributes `base.followers` (indexed by WAL
  /// stream) to the workers owning each stream's shard, and sets every
  /// worker read-only when any follower is attached. `workers` must be
  /// >= 2 (use serve::Server directly for 1) and divide the shard space
  /// sensibly: shards are dealt round-robin, so workers > shards leaves
  /// idle workers. Engine and log must outlive the pool.
  PoolServer(core::ShardedEngine* engine, ServerOptions base,
             size_t workers);
  ~PoolServer();

  PoolServer(const PoolServer&) = delete;
  PoolServer& operator=(const PoolServer&) = delete;

  /// Binds the acceptor's listening socket and starts every worker's
  /// wake pipe. port() is valid after.
  Status Start();

  uint16_t port() const { return port_; }
  size_t workers() const { return ctx_->workers; }

  /// Runs the pool: spawns the worker threads, then serves the accept
  /// loop on the calling thread until RequestDrain. Returns after every
  /// worker has drained and joined and the log streams are synced.
  void Run();

  /// Initiates pool-wide graceful drain (thread-safe, signal-safe).
  void RequestDrain();

  /// Seeds the pool-wide stream clock after recovery (call before Run).
  void SeedStreamClock(Timestamp t) { ctx_->BumpStreamClock(t); }

  /// The pool-wide metrics view. Only safe while the pool is quiescent
  /// (before Run, after Run returns, or from a barrier op).
  obs::MetricsSnapshot MergedSnapshot() const;

 private:
  core::ShardedEngine* engine_;  // not owned
  ServerOptions base_;
  std::unique_ptr<PoolContext> ctx_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<std::thread> threads_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  std::atomic<bool> drain_requested_{false};
  size_t next_lane_ = 0;
};

}  // namespace adrec::serve::pool

#endif  // ADREC_SERVE_POOL_POOL_SERVER_H_
