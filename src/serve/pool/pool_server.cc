#include "serve/pool/pool_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/string_util.h"
#include "replica/follower.h"
#include "wal/sharded_wal.h"
#include "wal/wal.h"

namespace adrec::serve::pool {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(StringFormat("fcntl(O_NONBLOCK): %s",
                                         std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

PoolServer::PoolServer(core::ShardedEngine* engine, ServerOptions base,
                       size_t workers)
    : engine_(engine), base_(std::move(base)) {
  ADREC_CHECK(engine_ != nullptr);
  ADREC_CHECK(workers >= 2);  // one worker is just serve::Server
  // The pool's cross-shard story depends on per-shard log streams; a
  // single shared stream would serialise every worker's commit barrier
  // on one file (and recovery on one replay). Allow no log at all
  // (durability off) or exactly one stream per shard.
  ADREC_CHECK(base_.wal == nullptr);
  if (base_.sharded_wal != nullptr) {
    ADREC_CHECK(base_.sharded_wal->num_streams() == engine_->num_shards());
  }
  ADREC_CHECK(base_.topk_cache.capacity == 0);

  ctx_ = std::make_unique<PoolContext>(workers);

  // Followers are indexed by WAL stream (= shard); each goes to the
  // worker that owns the shard, so the stream's single mutator is also
  // its replication applier. Legacy single-follower mode pins it to the
  // worker owning shard 0.
  std::vector<std::vector<replica::Follower*>> lane_followers(workers);
  bool any_follower = base_.follower != nullptr;
  if (base_.follower != nullptr) {
    lane_followers[0].push_back(base_.follower);
  }
  for (size_t s = 0; s < base_.followers.size(); ++s) {
    if (base_.followers[s] == nullptr) continue;
    any_follower = true;
    lane_followers[s % workers].push_back(base_.followers[s]);
  }

  for (size_t lane = 0; lane < workers; ++lane) {
    ServerOptions o = base_;
    o.pool = ctx_.get();
    o.lane = lane;
    o.follower = nullptr;
    o.followers = std::move(lane_followers[lane]);
    // Read-only is pool-wide: a worker with no follower of its own must
    // still refuse writes while its siblings replicate (promote — a
    // barrier op — clears all of them together).
    o.start_read_only = any_follower;
    // Workers never listen; the acceptor deals sockets to them.
    o.port = 0;
    servers_.push_back(std::make_unique<Server>(engine_, std::move(o)));
    ctx_->servers.push_back(servers_.back().get());
  }

  ctx_->merged_snapshot = [this] {
    obs::MetricsSnapshot snapshot;
    for (const auto& server : servers_) {
      snapshot.MergeFrom(server->metrics().Snapshot());
    }
    snapshot.MergeFrom(engine_->MergedMetrics());
    if (base_.sharded_wal != nullptr) {
      snapshot.MergeFrom(base_.sharded_wal->MergedMetrics());
    }
    if (base_.follower != nullptr) {
      snapshot.MergeFrom(base_.follower->metrics().Snapshot());
    }
    for (const replica::Follower* follower : base_.followers) {
      if (follower != nullptr) {
        snapshot.MergeFrom(follower->metrics().Snapshot());
      }
    }
    if (base_.tracer != nullptr) {
      snapshot.MergeFrom(base_.tracer->metrics().Snapshot());
    }
    return snapshot;
  };
}

PoolServer::~PoolServer() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

obs::MetricsSnapshot PoolServer::MergedSnapshot() const {
  return ctx_->merged_snapshot();
}

Status PoolServer::Start() {
  if (pipe(wake_fds_) != 0) {
    return Status::Internal(StringFormat("pipe: %s", std::strerror(errno)));
  }
  ADREC_RETURN_NOT_OK(SetNonBlocking(wake_fds_[0]));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StringFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(base_.port);
  if (inet_pton(AF_INET, base_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + base_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(StringFormat("bind %s:%u: %s",
                                         base_.host.c_str(), base_.port,
                                         std::strerror(errno)));
  }
  if (listen(listen_fd_, 128) != 0) {
    return Status::Internal(StringFormat("listen: %s", std::strerror(errno)));
  }
  ADREC_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(StringFormat("getsockname: %s",
                                         std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);

  for (const auto& server : servers_) {
    ADREC_RETURN_NOT_OK(server->Start());
  }
  return Status::OK();
}

void PoolServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void PoolServer::Run() {
  ADREC_CHECK(listen_fd_ >= 0);
  threads_.reserve(servers_.size());
  for (const auto& server : servers_) {
    threads_.emplace_back([s = server.get()] { s->Run(); });
  }
  ADREC_LOG(kInfo) << "serve: pool accepting on port " << port_ << " with "
                   << servers_.size() << " workers";

  // The acceptor: accept, deal round-robin, repeat. Per-worker shed
  // (max_connections) happens at adoption on the worker, where the
  // connection count lives.
  pollfd fds[2];
  for (;;) {
    if (drain_requested_.load(std::memory_order_acquire)) break;
    fds[0] = {wake_fds_[0], POLLIN, 0};
    fds[1] = {listen_fd_, POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      ADREC_LOG(kError) << "serve: pool acceptor poll: "
                        << std::strerror(errno);
      break;
    }
    if (fds[0].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
      continue;  // re-check the drain flag
    }
    if (fds[1].revents & (POLLIN | POLLERR)) {
      for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          if (errno == EINTR || errno == ECONNABORTED) continue;
          ADREC_LOG(kWarning) << "serve: pool accept: "
                              << std::strerror(errno);
          break;
        }
        servers_[next_lane_]->AdoptSocket(fd);
        next_lane_ = (next_lane_ + 1) % servers_.size();
      }
    }
  }

  // Drain: stop accepting first (close the listener so the kernel stops
  // queueing clients nobody will serve), then drain every worker and
  // wait them out.
  ::close(listen_fd_);
  listen_fd_ = -1;
  for (const auto& server : servers_) server->RequestDrain();
  for (std::thread& t : threads_) t.join();
  threads_.clear();

  if (base_.sharded_wal != nullptr) {
    // Final durability barrier, once, after every worker stopped (pool
    // workers skip their own final sync; the streams are shared).
    const Status st = base_.sharded_wal->SyncAll();
    if (!st.ok()) {
      ADREC_LOG(kError) << "serve: final pool wal sync failed: "
                        << st.ToString();
    }
  }
  ADREC_LOG(kInfo) << "serve: pool drained, acceptor exiting";
}

}  // namespace adrec::serve::pool
