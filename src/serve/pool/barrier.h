#ifndef ADREC_SERVE_POOL_BARRIER_H_
#define ADREC_SERVE_POOL_BARRIER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace adrec::serve::pool {

class Mailboxes;

/// Stop-the-world coordination for the worker pool's rare verbs
/// (DESIGN.md §16): adput/addel, analyze, match, snapshot, checkpoint,
/// promote, conns. Instead of per-verb fan-out/ack machinery, the
/// originating worker parks EVERY worker at a rendezvous; the last
/// arriver executes the whole operation with the pool quiescent — every
/// other worker is blocked inside Arrive, so their shards, WAL streams
/// and connection tables are race-free readable and writable — then all
/// workers resume their event loops. Group commit, broadcasts and
/// multi-shard reads reuse the existing single-threaded machinery
/// unchanged, which is the point: correctness of the rare path never
/// depends on fine-grained locking.
///
/// Arrival is delivered via the pool mailboxes: Run posts an arrival
/// task to every other registered worker; a worker that is itself trying
/// to Run while a barrier is pending arrives at the pending one first
/// (so two concurrent originators serialize instead of deadlocking), and
/// a worker that exits its loop Deregisters so a barrier never waits on
/// a thread that will not come back.
class PoolBarrier {
 public:
  explicit PoolBarrier(size_t workers);

  /// Executes `fn` with every registered worker stopped. Called on
  /// worker `self`'s event-loop thread; blocks until `fn` has run.
  /// `mail` delivers the arrival tasks.
  void Run(size_t self, Mailboxes* mail, std::function<void()> fn);

  /// Arrival task body: parks `self` in the current barrier (if any)
  /// until it completes. Ignores stale generations — a queued arrival
  /// for an already-finished barrier is a no-op.
  void Arrive(size_t self, uint64_t generation);

  /// Permanently removes `self` from the rendezvous set (worker loop
  /// exit during drain). If a barrier is currently waiting only on
  /// `self`, the deregistering thread executes it — by then every other
  /// registered worker is parked, so the stop-the-world guarantee holds.
  void Deregister(size_t self);

  size_t registered() const;

 private:
  /// Runs fn_ and releases the generation. Caller holds lk.
  void CompleteLocked(std::unique_lock<std::mutex>& lk);
  /// Parks until generation `gen` completes. Caller holds lk.
  void WaitDoneLocked(std::unique_lock<std::mutex>& lk, uint64_t gen);
  /// Counts `self` into the active barrier if not yet counted; runs fn_
  /// when it is the last. Caller holds lk.
  void ArriveLocked(size_t self, std::unique_lock<std::mutex>& lk);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  const size_t workers_;
  std::vector<bool> alive_;        ///< still registered
  std::vector<uint64_t> arrived_;  ///< generation each worker last joined
  size_t registered_ = 0;
  bool active_ = false;
  uint64_t generation_ = 0;  ///< current (active_) or last barrier id
  uint64_t done_generation_ = 0;
  size_t arrivals_ = 0;
  std::function<void()> fn_;
};

}  // namespace adrec::serve::pool

#endif  // ADREC_SERVE_POOL_BARRIER_H_
