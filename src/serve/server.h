#ifndef ADREC_SERVE_SERVER_H_
#define ADREC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cache/topk_cache.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "core/sharded_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/protocol.h"

namespace adrec::wal {
class CheckpointManager;
class ShardedWal;
class WalWriter;
}  // namespace adrec::wal

namespace adrec::replica {
class Follower;
}  // namespace adrec::replica

namespace adrec::serve {

namespace pool {
struct PoolContext;
}  // namespace pool

/// Daemon configuration.
struct ServerOptions {
  /// Listen address; loopback by default (adrecd is an internal service).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Accepted connections beyond this are told `SERVER_ERROR busy` and
  /// closed immediately.
  size_t max_connections = 64;
  /// A request line longer than this — terminated or not — gets
  /// `CLIENT_ERROR line too long` and the connection is closed.
  size_t max_line_bytes = 64 * 1024;
  /// Backpressure: a connection whose pending response bytes exceed this
  /// stops being read (its socket buffer, then the client, blocks) until
  /// the peer drains it.
  size_t max_write_buffer_bytes = 1024 * 1024;
  /// Global cap on pending response bytes across all connections; past
  /// it, commands are shed with `SERVER_ERROR busy` instead of executed.
  size_t max_inflight_bytes = 16 * 1024 * 1024;
  /// Connections silent for this long are closed (0 = never).
  DurationSec idle_timeout = 300;
  /// Cadence of the windowed PeriodicReporter (0 = off): per-interval
  /// events/sec, cmds/sec and per-verb p95 logged from the event loop.
  double report_interval = 0.0;
  /// After RequestDrain, pending responses get this long to flush before
  /// remaining connections are dropped.
  double drain_timeout = 5.0;
  /// Base directory the `snapshot` verb may write under. Empty (the
  /// default) disables the verb entirely; when set, client-supplied
  /// targets must be relative paths without `..` components and are
  /// resolved against this root — a client can never name an arbitrary
  /// filesystem location.
  std::string snapshot_root;
  /// Write-ahead log (not owned; nullptr = durability off). Every ingest
  /// verb is appended (deferred) before it executes, and the event loop
  /// runs a policy-aware Commit() barrier before releasing the batch's
  /// replies — under SyncPolicy::kGroup an acknowledged ingest is on
  /// disk, at one fdatasync per event-loop batch rather than per record.
  /// Mutually exclusive with `sharded_wal`.
  wal::WalWriter* wal = nullptr;
  /// Per-shard log streams (DESIGN.md §16; not owned; mutually exclusive
  /// with `wal`). Stream count must equal the engine shard count:
  /// tweets/check-ins append to their owner shard's stream, ad ops are
  /// duplicated into every stream, and the commit barrier covers every
  /// stream the wave dirtied. Replication handshakes use the
  /// `repl <shard> <cursor>` form, one connection per stream.
  wal::ShardedWal* sharded_wal = nullptr;
  /// Checkpoint coordinator (not owned; nullptr disables the
  /// `checkpoint` verb and interval checkpointing). Requires a log.
  wal::CheckpointManager* checkpointer = nullptr;
  /// Take a checkpoint automatically every this many wall seconds
  /// (0 = only on explicit `checkpoint` commands).
  double checkpoint_interval = 0.0;
  /// Idle-time WAL segment compaction cadence in wall seconds (0 = only
  /// on explicit `compact` commands): sealed segments are rewritten
  /// dropping superseded inventory records (wal/delta/compactor.h).
  /// Segments a connected follower still needs are never touched.
  /// Requires a log.
  double compact_interval = 0.0;
  /// Follower mode (not owned; nullptr = this daemon is a leader or a
  /// standalone). When set, the server polls the follower's leader
  /// connection inside its own event loop, starts read-only (write verbs
  /// answer `READONLY`) and stays read-only until the `promote` verb
  /// detaches the follower. Requires a log (the follower logs before it
  /// applies). Merged into `followers`.
  replica::Follower* follower = nullptr;
  /// Per-shard-stream follower mode: one Follower per WAL stream, every
  /// one polled by this server's event loop (a pool worker gets the
  /// followers of the shards it owns). All must detach before `promote`
  /// lifts the read-only gate.
  std::vector<replica::Follower*> followers;
  /// Start read-only even with no follower attached locally: a pool
  /// worker whose shards happen to have no follower still must refuse
  /// writes while its siblings replicate.
  bool start_read_only = false;
  /// Leader side of replication: cadence of `REPL HB <tip>` heartbeats
  /// on idle replication streams (followers derive lag_ms from tip
  /// announcements, so the cadence bounds lag resolution).
  double repl_heartbeat_interval = 1.0;
  /// Max bytes of WAL frames shipped to one replication stream per
  /// event-loop wave. Bounds the per-wave read amplification while a
  /// follower catches up; the live tail is far smaller.
  size_t repl_batch_bytes = 256 * 1024;
  /// Flight recorder (not owned; nullptr or a disabled collector turns
  /// request tracing off). When set, every request gets a trace ID and a
  /// span tree (serve dispatch → engine stages → WAL append/commit wave),
  /// retained tail-based in the collector's rings and served by the
  /// `trace` / `slow` admin verbs. Write-verb traces stay open across the
  /// wave's group-commit barrier so the commit wave is attributed to every
  /// request it made durable. Shared by all pool workers (the rings are
  /// multi-writer safe); records carry the worker id.
  obs::TraceCollector* tracer = nullptr;
  /// Topk result cache (DESIGN.md §14). Off by default (capacity 0);
  /// `--topk-cache=N` turns it on. The server owns the cache, consults it
  /// under the `topk` verb (hit-time revalidation + charging through the
  /// engine keeps cached replies byte-identical to recomputed ones), and
  /// invalidates it on every ingest verb — and, on a follower, on every
  /// replicated frame the follower applies. Forced off in pool mode
  /// (cross-worker invalidation would reintroduce the coordination the
  /// pool exists to avoid).
  cache::TopkCacheOptions topk_cache;
  /// Worker-pool mode (DESIGN.md §16; not owned). When set, this Server
  /// is one event-loop worker of a PoolServer: it owns engine shards
  /// `s % pool->workers == lane` and their WAL streams, adopts sockets
  /// from the acceptor instead of listening, forwards cross-shard ops
  /// through the pool mailboxes, and joins the stop-the-world barrier
  /// for the rare coordination verbs.
  pool::PoolContext* pool = nullptr;
  /// This worker's lane in [0, pool->workers). The user-visible worker
  /// id (traces, `conns`) is lane + 1.
  size_t lane = 0;
};

/// The adrecd network front end: an event-driven (poll + non-blocking
/// sockets) TCP daemon speaking the line protocol of serve/protocol.h,
/// dispatching onto a core::ShardedEngine.
///
/// Single-threaded by design, mirroring the engine's single-writer
/// streaming model: the event loop is the sole mutator of its shards, so
/// no locking is added to the hot path. Scale-out across cores is by
/// running several of these loops side by side (serve/pool/pool_server.h)
/// with disjoint shard ownership — not by threads inside one loop. The
/// loop multiplexes with poll(2) — connection counts here are bounded by
/// max_connections, far below where poll's O(n) scan matters.
///
/// Lifecycle: Start() binds and listens (port() is valid after), Run()
/// blocks in the event loop until RequestDrain() — which is async-signal-
/// safe and thread-safe — stops accepting, flushes pending responses and
/// returns. Tests run Run() on a background thread and drive blocking
/// Clients against port().
class Server {
 public:
  /// `engine` must outlive the server; the event loop is its only caller
  /// while Run() executes.
  explicit Server(core::ShardedEngine* engine, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Creates the listening socket (pool workers only create their wake
  /// pipe — the PoolServer's acceptor owns the listener). Fails if the
  /// port is taken.
  Status Start();

  /// The bound port (valid after a successful Start; 0 for pool workers).
  uint16_t port() const { return port_; }

  /// Runs the event loop until drained. Call at most once, after Start().
  void Run();

  /// Initiates graceful drain: stop accepting, serve what is buffered,
  /// then return from Run(). Safe from signal handlers and other threads
  /// (single write(2) to a self-pipe).
  void RequestDrain();

  /// Hands an accepted socket to this worker's event loop (pool mode;
  /// thread-safe, called from the acceptor thread). The worker applies
  /// its own max_connections shed at adoption.
  void AdoptSocket(int fd);

  /// The serve.* metric registry (connections, per-verb commands and
  /// latency, parse errors, sheds, bytes in/out).
  const obs::MetricRegistry& metrics() const { return metrics_; }

  /// serve.* metrics merged with the engine's per-shard registries (and
  /// the log's wal.* registry when one is attached) — the view the
  /// `stats` and `metrics` commands export. In pool mode this is the
  /// pool-wide view (PoolContext::merged_snapshot).
  obs::MetricsSnapshot MergedSnapshot() const;

  /// Seeds the stream clock (newest-event-time substitution for `topk`)
  /// after recovery, so a freshly restarted daemon answers time-less
  /// queries at the recovered stream position, not at t=0.
  void SeedStreamClock(Timestamp t) { BumpStreamClock(t); }

  // --- Pool-barrier surface: called only while the pool is quiescent
  // (every worker parked in the barrier), or from this server's own
  // event-loop thread. ---

  /// Appends this worker's `conns` lines (without header/END) to `out`;
  /// `self` marks the requesting connection when it lives here.
  void AppendConnsTo(std::string* out, const void* self) const;
  size_t num_connections() const { return connections_.size(); }
  const std::vector<replica::Follower*>& followers() const {
    return followers_;
  }
  void set_read_only(bool read_only) { read_only_ = read_only; }
  bool read_only() const { return read_only_; }

  /// Smallest WAL seqno a replication connection on THIS worker still
  /// needs from `stream` (its next unshipped frame), UINT64_MAX when no
  /// replica is attached here. Compaction takes the min across workers
  /// as its preserve floor so a follower's resume cursor never lands in
  /// a compacted gap.
  uint64_t ReplCursorFloor(size_t stream) const;

  /// Completes a forwarded op's reply slot (runs on this worker's thread
  /// via a mailbox ack task). Drops silently when the connection is
  /// already gone.
  void CompleteSlot(uint64_t conn_id, uint64_t slot_id, std::string reply);

 private:
  struct Connection;
  struct ReplySlot;
  struct PendingAck;

  void AcceptNew();
  /// Registers one accepted/adopted socket (or sheds it at the door).
  void AdmitSocket(int fd);
  /// Adopts sockets queued by the acceptor thread (pool mode).
  void AdoptPending();
  /// Drains readable bytes; returns false when the connection is gone.
  bool ReadFrom(Connection* conn);
  /// Parses and executes every complete line the backpressure budget
  /// allows, appending responses to the write buffer.
  void ProcessLines(Connection* conn);
  void Dispatch(std::string_view line, Connection* conn);
  std::string Execute(const Request& req, Connection* conn);
  /// Appends a reply in pipeline order: straight to the write buffer, or
  /// as a completed slot when forwarded ops are still in flight ahead of
  /// it.
  void EmitReply(Connection* conn, std::string reply);
  /// Flushes the completed prefix of the reply-slot queue into the write
  /// buffer.
  void FlushReplySlots(Connection* conn);
  /// Flushes the write buffer; returns false when the connection is gone.
  bool WriteTo(Connection* conn);
  void CloseConnection(Connection* conn);
  void CloseIdle();
  size_t InflightBytes() const;

  // --- Pool mode. ---
  bool pool_mode() const { return pool_ != nullptr; }
  /// 1-based worker id for traces/conns; 0 in the single-threaded server.
  uint32_t worker_id() const;
  bool OwnsShard(size_t shard) const;
  /// Ships a tweet/checkin/topk whose shard another worker owns; the
  /// reply arrives later as a mailbox ack into the connection's ordered
  /// slot queue.
  void ForwardRequest(Connection* conn, const Request& req,
                      std::string_view line,
                      size_t shard,
                      std::unique_ptr<obs::TraceBuilder> trace);
  /// Owner-side execution of a forwarded op (runs on this worker's
  /// thread). The ack is withheld until this worker's commit barrier.
  void ExecuteForwarded(Request req, std::string line, size_t origin,
                        uint64_t conn_id, uint64_t slot_id);
  /// Posts the wave's withheld acks back to their origin workers (after
  /// CommitWal, so a forwarded write is durable before its reply moves).
  void FlushWaveAcks();
  /// Stop-the-world execution of a rare coordination verb.
  std::string ExecuteBarrierVerb(const Request& req, std::string_view line,
                                 Connection* conn);
  /// The barrier verb body; runs with the pool quiescent.
  std::string ExecuteQuiesced(const Request& req, std::string_view line,
                              Connection* conn);

  // --- Stream clock (plain member single-threaded, pool atomic). ---
  Timestamp StreamNow() const;
  void BumpStreamClock(Timestamp t);

  // --- Log streams. ---
  size_t num_streams() const { return streams_.size(); }
  size_t StreamIndexFor(size_t shard) const {
    return streams_.size() <= 1 ? 0 : shard;
  }

  std::string ExecuteTopK(const Request& req);
  /// The cached topk path: lookup + revalidate-and-charge, else compute
  /// and fill. `query` already has the stream clock substituted.
  std::string ExecuteTopKCached(const feed::Tweet& query, size_t k);
  /// Evicts the cache entries a feed event can influence. The follower's
  /// apply observer routes every replicated frame through here (pre-
  /// apply); the leader-side ingest verbs call the cache directly so
  /// they can gate on the engine's accept/reject status.
  void InvalidateCacheFor(const feed::FeedEvent& event);
  std::string ExecuteMatch(const Request& req);
  std::string ExecuteStats();
  std::string ExecuteMetrics();
  std::string ExecuteTrace(const Request& req);
  std::string ExecuteSlow();
  std::string ExecuteConns(const Connection* self);
  std::string ExecuteSnapshot(const Request& req);
  std::string ExecuteCheckpoint();
  /// The `compact` verb body: compacts every stream's sealed segments,
  /// preserving everything at or past the attached replicas' cursors.
  std::string ExecuteCompact();
  std::string ExecuteRepl(const Request& req, Connection* conn);
  std::string ExecutePromote();
  /// Leader-side tail fan-out: after the wave's WAL commit, ships newly
  /// flushed frames (and due heartbeats) to every replication stream
  /// whose write buffer has room.
  void PumpReplicas();
  /// Durability barrier for the deferred WAL appends of the current
  /// event-loop batch; no-op when nothing was appended since the last
  /// commit. Commits every stream the wave dirtied; closes the wave's
  /// write-verb traces with a retroactive `wal.commit_wave` span.
  void CommitWal();
  void MaybeCheckpoint();
  /// Idle-time compaction trigger (options_.compact_interval), run from
  /// the event loop between waves like MaybeCheckpoint.
  void MaybeCompact();
  /// Finishes a trace through the collector and recycles the builder.
  void FinishTrace(std::unique_ptr<obs::TraceBuilder> trace);

  core::ShardedEngine* engine_;  // not owned
  ServerOptions options_;
  /// The log as a list of streams: empty (durability off), one (classic
  /// single log), or one per engine shard (options_.sharded_wal).
  std::vector<wal::WalWriter*> streams_;
  /// Streams with deferred appends awaiting the wave's Commit barrier.
  std::vector<bool> stream_dirty_;
  bool wal_dirty_ = false;
  /// All attached followers (options_.follower merged into
  /// options_.followers).
  std::vector<replica::Follower*> followers_;
  pool::PoolContext* pool_ = nullptr;  // not owned
  /// Topk result cache; nullptr when options_.topk_cache.capacity == 0.
  std::unique_ptr<cache::TopkCache> cache_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: RequestDrain -> event loop
  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;
  /// Sockets handed over by the pool acceptor, awaiting adoption.
  std::mutex adopt_mu_;
  std::vector<int> adopted_;
  /// Accept backoff after EMFILE/ENFILE: until this instant the listen
  /// fd is left out of the poll set so the loop cannot busy-spin on a
  /// readable-but-unacceptable listener.
  std::chrono::steady_clock::time_point accept_pause_until_{};
  /// Newest event timestamp ingested — substituted into `topk` queries
  /// that omit <time> ("now" on the simulated stream clock). Pool mode
  /// uses the shared PoolContext::stream_now instead.
  Timestamp stream_now_ = 0;
  /// Follower read-only gate: write verbs answer `READONLY` until
  /// `promote` clears it. Starts true iff a follower is attached (or
  /// options_.start_read_only).
  bool read_only_ = false;
  std::chrono::steady_clock::time_point last_checkpoint_{};
  std::chrono::steady_clock::time_point last_compact_{};
  std::map<int, Connection> connections_;
  /// Connection ids are monotonic across the server's lifetime (fds are
  /// recycled by the kernel; `conns` output should not be).
  uint64_t next_conn_id_ = 1;
  /// Acks for forwarded ops executed this wave, withheld until the
  /// wave's commit barrier.
  std::vector<PendingAck> wave_acks_;
  /// Traces of this wave's write verbs, held open until CommitWal — the
  /// group-commit barrier is part of every one of their latencies.
  std::vector<std::unique_ptr<obs::TraceBuilder>> wave_traces_;
  obs::TraceBuilderPool trace_pool_;

  obs::MetricRegistry metrics_;
  obs::Counter* ctr_accepted_;
  obs::Counter* ctr_rejected_;
  obs::Gauge* g_active_;
  obs::Counter* ctr_parse_errors_;
  obs::Counter* ctr_sheds_;
  obs::Counter* ctr_bytes_in_;
  obs::Counter* ctr_bytes_out_;
  obs::Counter* ctr_idle_closed_;
  obs::Counter* ctr_readonly_rejected_;
  obs::Counter* ctr_repl_bytes_shipped_;
  obs::Counter* ctr_repl_heartbeats_;
  obs::Gauge* g_repl_streams_;
  obs::Counter* ctr_forwarded_;
  obs::Counter* ctr_forward_acks_;
  obs::Counter* ctr_barrier_ops_;
  obs::Counter* ctr_cmds_[kNumVerbs];
  obs::Timer* tm_cmds_[kNumVerbs];
};

}  // namespace adrec::serve

#endif  // ADREC_SERVE_SERVER_H_
