#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/snapshot.h"
#include "obs/stats_export.h"
#include "replica/follower.h"
#include "serve/reporter.h"
#include "wal/checkpoint.h"
#include "wal/wal.h"

namespace adrec::serve {

namespace {

constexpr std::string_view kCrlf = "\r\n";

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(StringFormat("fcntl(O_NONBLOCK): %s",
                                         std::strerror(errno)));
  }
  return Status::OK();
}

/// Exact score text on the wire: round-trips doubles so differential
/// clients see bit-identical rankings.
std::string ScoreText(double score) { return StringFormat("%.17g", score); }

/// The `topk` reply — also the byte sequence the result cache memoises.
std::string FormatTopKReply(const std::vector<index::ScoredAd>& ads) {
  std::string out = StringFormat("ADS %zu", ads.size()) + std::string(kCrlf);
  for (const index::ScoredAd& sa : ads) {
    out += StringFormat("AD %u ", sa.ad.value) + ScoreText(sa.score);
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
  return out;
}

}  // namespace

/// Per-connection state, owned and touched only by the event loop.
struct Server::Connection {
  int fd = -1;
  /// Unconsumed request bytes (partial or backpressured lines).
  std::string in;
  /// Response bytes not yet accepted by the socket.
  std::string out;
  std::chrono::steady_clock::time_point last_active;
  /// Peer half-closed (or quit): flush `out`, then close.
  bool closing = false;
  // --- `conns` diagnostics ---
  /// Monotonic connection id (fds are recycled; ids are not).
  uint64_t id = 0;
  std::chrono::steady_clock::time_point created;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t cmds = 0;
  /// Wire name of the last parsed verb (static storage via VerbName).
  std::string_view last_verb = "-";
  /// Replication stream (post-`repl` handshake): exempt from the idle
  /// reaper and the global in-flight cap, fed by PumpReplicas.
  bool replica = false;
  /// Next WAL seqno this replication stream is owed.
  uint64_t repl_next_seqno = 0;
  /// Byte-offset resume state so tail reads do not rescan the segment.
  wal::CursorHint repl_hint;
  std::chrono::steady_clock::time_point repl_last_hb;
};

Server::Server(core::ShardedEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      ctr_accepted_(metrics_.GetCounter("serve.connections_accepted")),
      ctr_rejected_(metrics_.GetCounter("serve.connections_rejected")),
      g_active_(metrics_.GetGauge("serve.connections_active")),
      ctr_parse_errors_(metrics_.GetCounter("serve.parse_errors")),
      ctr_sheds_(metrics_.GetCounter("serve.sheds")),
      ctr_bytes_in_(metrics_.GetCounter("serve.bytes_in")),
      ctr_bytes_out_(metrics_.GetCounter("serve.bytes_out")),
      ctr_idle_closed_(metrics_.GetCounter("serve.idle_closed")),
      ctr_readonly_rejected_(
          metrics_.GetCounter("serve.readonly_rejected")),
      ctr_repl_bytes_shipped_(
          metrics_.GetCounter("serve.repl_bytes_shipped")),
      ctr_repl_heartbeats_(metrics_.GetCounter("serve.repl_heartbeats")),
      g_repl_streams_(metrics_.GetGauge("serve.repl_streams")) {
  ADREC_CHECK(engine_ != nullptr);
  // A follower starts read-only; `promote` is the only way out.
  read_only_ = options_.follower != nullptr;
  if (options_.topk_cache.capacity > 0) {
    cache_ = std::make_unique<cache::TopkCache>(options_.topk_cache);
    if (options_.follower != nullptr) {
      // Replicated ingest must invalidate exactly like local ingest; the
      // observer fires pre-apply on the event-loop thread.
      options_.follower->set_apply_observer(
          [this](const feed::FeedEvent& event) { InvalidateCacheFor(event); });
    }
  }
  for (size_t v = 0; v < kNumVerbs; ++v) {
    const std::string name(VerbName(static_cast<Verb>(v)));
    ctr_cmds_[v] = metrics_.GetCounter("serve.cmd_" + name);
    tm_cmds_[v] = metrics_.GetTimer("serve.cmd_" + name + "_us");
  }
}

Server::~Server() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

Status Server::Start() {
  if (pipe(wake_fds_) != 0) {
    return Status::Internal(StringFormat("pipe: %s", std::strerror(errno)));
  }
  ADREC_RETURN_NOT_OK(SetNonBlocking(wake_fds_[0]));

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StringFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(StringFormat("bind %s:%u: %s",
                                         options_.host.c_str(), options_.port,
                                         std::strerror(errno)));
  }
  if (listen(listen_fd_, 128) != 0) {
    return Status::Internal(StringFormat("listen: %s", std::strerror(errno)));
  }
  ADREC_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(StringFormat("getsockname: %s",
                                         std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void Server::RequestDrain() {
  // Async-signal-safe: one byte down the self-pipe wakes poll(); the loop
  // reads the pipe and flips into draining.
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
}

size_t Server::InflightBytes() const {
  // Replication streams are exempt: a catching-up follower legitimately
  // holds megabytes of frames in flight, and shedding CLIENT traffic
  // because a REPLICA is slow would invert the service's priorities.
  // Replica buffers are bounded separately (PumpReplicas stops feeding a
  // stream past max_write_buffer_bytes).
  size_t total = 0;
  for (const auto& [fd, conn] : connections_) {
    if (!conn.replica) total += conn.out.size();
  }
  return total;
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE (and other persistent failures): the listening fd
      // stays readable, so going straight back to poll would busy-spin
      // at 100% CPU. Stop polling the listener briefly instead.
      ADREC_LOG(kWarning) << "serve: accept: " << std::strerror(errno)
                          << ", pausing accepts";
      accept_pause_until_ = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(100);
      return;
    }
    if (connections_.size() >= options_.max_connections || draining_) {
      // Shed at the door: tell the client why, then hang up. The
      // best-effort write is fine — the socket buffer of a fresh
      // connection is empty.
      const std::string busy = std::string("SERVER_ERROR busy") +
                               std::string(kCrlf);
      [[maybe_unused]] const ssize_t n = ::write(fd, busy.data(),
                                                 busy.size());
      ::close(fd);
      ctr_rejected_->Inc();
      ctr_sheds_->Inc();
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.fd = fd;
    conn.last_active = std::chrono::steady_clock::now();
    conn.id = next_conn_id_++;
    conn.created = conn.last_active;
    connections_.emplace(fd, std::move(conn));
    ctr_accepted_->Inc();
    g_active_->Set(static_cast<double>(connections_.size()));
  }
}

bool Server::ReadFrom(Connection* conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      ctr_bytes_in_->Inc(static_cast<uint64_t>(n));
      conn->bytes_in += static_cast<uint64_t>(n);
      conn->last_active = std::chrono::steady_clock::now();
      // Oversized frame: no newline within the cap means the client lost
      // the protocol; there is no safe resync point, so answer and close.
      if (conn->in.size() > options_.max_line_bytes &&
          conn->in.find('\n') == std::string::npos) {
        ctr_parse_errors_->Inc();
        conn->in.clear();
        conn->out += "CLIENT_ERROR line too long";
        conn->out += kCrlf;
        conn->closing = true;
        return true;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) return true;
      continue;  // possibly more buffered
    }
    if (n == 0) {
      // Half-close: the peer is done sending but still reads. Process
      // what arrived, flush, then close our side.
      conn->closing = true;
      return true;
    }
    if (errno == EINTR) continue;  // drain signal mid-recv: just retry
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    CloseConnection(conn);  // ECONNRESET and friends
    return false;
  }
}

void Server::ProcessLines(Connection* conn) {
  size_t start = 0;
  while (start < conn->in.size()) {
    // Backpressure: once this connection's pending responses pass the
    // cap, stop consuming its pipeline — poll stops watching POLLIN until
    // the peer drains the write buffer.
    if (conn->out.size() >= options_.max_write_buffer_bytes) break;
    const size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) {
      // A partial line longer than the cap can never complete validly.
      if (conn->in.size() - start > options_.max_line_bytes) {
        ctr_parse_errors_->Inc();
        conn->out += "CLIENT_ERROR line too long";
        conn->out += kCrlf;
        conn->closing = true;
        start = conn->in.size();
      }
      break;
    }
    size_t end = nl;
    if (end > start && conn->in[end - 1] == '\r') --end;
    // The cap applies to complete lines too, even when the newline
    // arrived in the same read batch (ReadFrom only sees newline-less
    // overruns); a client this far out of protocol is cut off.
    if (end - start > options_.max_line_bytes) {
      ctr_parse_errors_->Inc();
      conn->out += "CLIENT_ERROR line too long";
      conn->out += kCrlf;
      conn->closing = true;
      start = conn->in.size();
      break;
    }
    const bool was_closing = conn->closing;
    Dispatch(std::string_view(conn->in).substr(start, end - start), conn);
    start = nl + 1;
    if (conn->closing && !was_closing) {  // quit: drop any pipelined tail
      start = conn->in.size();
      break;
    }
  }
  conn->in.erase(0, start);
}

void Server::Dispatch(std::string_view line, Connection* conn) {
  // Every request gets a trace (when the flight recorder is on): started
  // before parsing so even malformed lines leave a pinned record with
  // the refusal reason — overload and abuse forensics need exactly the
  // requests that never executed.
  std::unique_ptr<obs::TraceBuilder> trace;
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    trace = trace_pool_.Acquire();
    trace->Start(options_.tracer->NextTraceId(), line);
  }
  const uint32_t parse_span =
      trace != nullptr ? trace->StartSpan("serve.parse") : 0;
  auto parsed = ParseRequest(line);
  if (trace != nullptr) trace->EndSpan(parse_span);
  if (!parsed.ok()) {
    ctr_parse_errors_->Inc();
    const std::string detail = parsed.status().message();
    conn->out += "CLIENT_ERROR " + detail;
    conn->out += kCrlf;
    if (trace != nullptr) {
      trace->SetOutcome(obs::TraceOutcome::kError);
      trace->SetReason("CLIENT_ERROR " + detail);
      FinishTrace(std::move(trace));
    }
    return;
  }
  const Request& req = parsed.value();
  const size_t verb = static_cast<size_t>(req.verb);
  ctr_cmds_[verb]->Inc();
  ++conn->cmds;
  conn->last_verb = VerbName(req.verb);
  if (req.verb == Verb::kQuit) {
    conn->closing = true;
    FinishTrace(std::move(trace));
    return;
  }
  // Follower read-only gate. The classification lives in IsWriteVerb —
  // one switch, compile-time exhaustive — so a future verb cannot reach
  // the engine's write path here without being classified there first.
  if (read_only_ && IsWriteVerb(req.verb)) {
    ctr_readonly_rejected_->Inc();
    conn->out += "READONLY";
    conn->out += kCrlf;
    if (trace != nullptr) {
      trace->SetOutcome(obs::TraceOutcome::kReadonly);
      trace->SetReason("READONLY");
      FinishTrace(std::move(trace));
    }
    return;
  }
  // Global in-flight cap: executing a command whose response has nowhere
  // to go just grows memory; shed instead.
  if (InflightBytes() > options_.max_inflight_bytes) {
    ctr_sheds_->Inc();
    conn->out += "SERVER_ERROR busy";
    conn->out += kCrlf;
    if (trace != nullptr) {
      trace->SetOutcome(obs::TraceOutcome::kShed);
      trace->SetReason("SERVER_ERROR busy");
      FinishTrace(std::move(trace));
    }
    return;
  }
  // Write-ahead: the raw request line is the log payload (the ingest
  // grammar IS the wire grammar), appended before the engine mutates. An
  // event the WAL cannot record is refused — never applied-but-lost.
  bool wal_appended = false;
  if (options_.wal != nullptr &&
      (req.verb == Verb::kTweet || req.verb == Verb::kCheckIn ||
       req.verb == Verb::kAdPut || req.verb == Verb::kAdDel)) {
    const uint32_t append_span =
        trace != nullptr ? trace->StartSpan("wal.append") : 0;
    auto seqno = options_.wal->AppendDeferred(line);
    if (trace != nullptr) trace->EndSpan(append_span);
    if (!seqno.ok()) {
      ADREC_LOG(kError) << "serve: wal append failed: "
                        << seqno.status().ToString();
      conn->out += "SERVER_ERROR wal append failed";
      conn->out += kCrlf;
      if (trace != nullptr) {
        trace->SetOutcome(obs::TraceOutcome::kError);
        trace->SetReason("SERVER_ERROR wal append failed");
        FinishTrace(std::move(trace));
      }
      return;
    }
    wal_dirty_ = true;
    wal_appended = true;
  }
  {
    obs::ScopedTimer timer(tm_cmds_[verb]);
    const uint32_t exec_span =
        trace != nullptr ? trace->StartSpan("serve.dispatch") : 0;
    // Engine stage probes (obs::StageSpan) attach to the active trace,
    // so their spans nest under serve.dispatch without the engine ever
    // seeing a trace parameter.
    obs::ScopedActiveTrace active(trace.get());
    const std::string reply = Execute(req, conn);
    if (trace != nullptr) {
      trace->EndSpan(exec_span);
      if (StartsWith(reply, "CLIENT_ERROR") ||
          StartsWith(reply, "SERVER_ERROR")) {
        trace->SetOutcome(obs::TraceOutcome::kError);
        const size_t eol = reply.find('\r');
        trace->SetReason(std::string_view(reply).substr(
            0, eol == std::string::npos ? reply.size() : eol));
      }
    }
    conn->out += reply;
  }
  if (trace == nullptr) return;
  if (wal_appended) {
    // The request is not over: its reply is withheld until the wave's
    // group commit. CommitWal appends the shared `wal.commit_wave` span
    // and finishes these traces, so the root duration matches what the
    // client observes.
    wave_traces_.push_back(std::move(trace));
  } else {
    FinishTrace(std::move(trace));
  }
}

void Server::FinishTrace(std::unique_ptr<obs::TraceBuilder> trace) {
  if (trace == nullptr) return;
  if (options_.tracer != nullptr) options_.tracer->Finish(trace.get());
  trace_pool_.Release(std::move(trace));
}

std::string Server::Execute(const Request& req, Connection* conn) {
  (void)conn;
  auto status_reply = [](const Status& s) {
    if (s.ok()) return "OK" + std::string(kCrlf);
    if (s.code() == StatusCode::kNotFound) {
      return "NOT_FOUND" + std::string(kCrlf);
    }
    if (s.code() == StatusCode::kInvalidArgument) {
      return "CLIENT_ERROR " + s.message() + std::string(kCrlf);
    }
    return "SERVER_ERROR " + s.ToString() + std::string(kCrlf);
  };

  switch (req.verb) {
    case Verb::kTweet:
      engine_->OnTweet(req.tweet);
      if (cache_ != nullptr) cache_->OnTweet(req.tweet.user);
      if (req.tweet.time > stream_now_) stream_now_ = req.tweet.time;
      return "OK" + std::string(kCrlf);
    case Verb::kCheckIn:
      engine_->OnCheckIn(req.check_in);
      if (cache_ != nullptr) {
        cache_->OnCheckIn(req.check_in.user, req.check_in.location);
      }
      if (req.check_in.time > stream_now_) stream_now_ = req.check_in.time;
      return "OK" + std::string(kCrlf);
    case Verb::kAdPut: {
      const Status st = engine_->InsertAd(req.ad);
      if (cache_ != nullptr && st.ok()) {
        cache_->OnAdPut(req.ad.target_locations, req.ad.target_slots);
      }
      return status_reply(st);
    }
    case Verb::kAdDel: {
      // The fan-out needs the ad's targeting as stored, and the store
      // forgets it on removal — look it up first.
      std::vector<LocationId> target_locations;
      std::vector<SlotId> target_slots;
      bool stored = false;
      if (cache_ != nullptr) {
        if (const ads::StoredAd* ad = engine_->FindAd(req.ad_id)) {
          stored = true;
          target_locations = ad->ad.target_locations;
          target_slots = ad->ad.target_slots;
        }
      }
      const Status st = engine_->RemoveAd(req.ad_id);
      if (cache_ != nullptr && stored && st.ok()) {
        cache_->OnAdRemoved(target_locations, target_slots);
      }
      return status_reply(st);
    }
    case Verb::kTopK:
      return ExecuteTopK(req);
    case Verb::kMatch:
      return ExecuteMatch(req);
    case Verb::kAnalyze:
      return status_reply(req.alpha < 0.0 ? engine_->RunAnalysis()
                                          : engine_->RunAnalysis(req.alpha));
    case Verb::kStats:
      return ExecuteStats();
    case Verb::kMetrics:
      return ExecuteMetrics();
    case Verb::kSnapshot:
      return ExecuteSnapshot(req);
    case Verb::kCheckpoint:
      return ExecuteCheckpoint();
    case Verb::kRepl:
      return ExecuteRepl(req, conn);
    case Verb::kPromote:
      return ExecutePromote();
    case Verb::kTrace:
      return ExecuteTrace(req);
    case Verb::kSlow:
      return ExecuteSlow();
    case Verb::kConns:
      return ExecuteConns(conn);
    case Verb::kPing:
      return "PONG" + std::string(kCrlf);
    case Verb::kQuit:
      break;  // handled in Dispatch
  }
  return "SERVER_ERROR unreachable" + std::string(kCrlf);
}

std::string Server::ExecuteTopK(const Request& req) {
  feed::Tweet query = req.tweet;
  if (!req.has_time) query.time = stream_now_;
  if (cache_ != nullptr) return ExecuteTopKCached(query, req.k);
  return FormatTopKReply(engine_->TopKAdsForTweet(query, req.k));
}

std::string Server::ExecuteTopKCached(const feed::Tweet& query, size_t k) {
  cache::TopkKey key;
  key.user = query.user.value;
  key.time = query.time;
  key.k = static_cast<uint32_t>(k);
  key.text = query.text;

  {
    obs::StageSpan probe(cache_->lookup_timer(), "cache.lookup");
    if (cache::TopkCache::Entry* entry = cache_->Find(key)) {
      // Serving is a mutation: re-check and charge the memoised ads
      // through the engine so a hit is observably identical to a
      // recomputation. A failed revalidation falls through to recompute.
      if (engine_->ChargeCachedTopK(query, entry->ads)) {
        cache_->RecordHit(entry);
        std::string reply = entry->reply;
        if (!entry->ads.empty() && engine_->frequency_cap_enabled()) {
          cache_->OnUserCharged(query.user, key);
        }
        return reply;
      }
      cache_->RecordRevalidationMiss(entry);
    } else {
      cache_->RecordMiss();
    }
  }

  const std::vector<index::ScoredAd> ads = engine_->TopKAdsForTweet(query, k);
  std::string reply = FormatTopKReply(ads);
  {
    obs::StageSpan probe(cache_->fill_timer(), "cache.fill");
    const core::TopkContext ctx = engine_->TopkContextFor(query);
    std::vector<AdId> ids;
    ids.reserve(ads.size());
    for (const index::ScoredAd& sa : ads) ids.push_back(sa.ad);
    const bool charged = !ids.empty();
    cache_->Insert(key, reply, std::move(ids), ctx.location, ctx.slot);
    // The compute above charged this user's frequency caps, which can
    // reshape cap decisions baked into their other entries.
    if (charged && engine_->frequency_cap_enabled()) {
      cache_->OnUserCharged(query.user, key);
    }
  }
  return reply;
}

void Server::InvalidateCacheFor(const feed::FeedEvent& event) {
  if (cache_ == nullptr) return;
  switch (event.kind) {
    case feed::EventKind::kTweet:
      cache_->OnTweet(event.tweet.user);
      break;
    case feed::EventKind::kCheckIn:
      cache_->OnCheckIn(event.check_in.user, event.check_in.location);
      break;
    case feed::EventKind::kAdInsert:
      cache_->OnAdPut(event.ad.target_locations, event.ad.target_slots);
      break;
    case feed::EventKind::kAdDelete:
      // Pre-apply: the ad is still in the store. A missing ad means the
      // delete will no-op, so nothing can change.
      if (const ads::StoredAd* ad = engine_->FindAd(event.ad_id)) {
        cache_->OnAdRemoved(ad->ad.target_locations, ad->ad.target_slots);
      }
      break;
  }
}

std::string Server::ExecuteMatch(const Request& req) {
  auto match = engine_->RecommendUsers(req.ad_id);
  if (!match.ok()) {
    if (match.status().code() == StatusCode::kNotFound) {
      return "NOT_FOUND" + std::string(kCrlf);
    }
    return "SERVER_ERROR " + match.status().ToString() + std::string(kCrlf);
  }
  std::string out = StringFormat("USERS %zu", match.value().users.size()) +
                    std::string(kCrlf);
  for (const core::MatchedUser& mu : match.value().users) {
    out += StringFormat("USER %u ", mu.user.value) + ScoreText(mu.score);
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteStats() {
  const obs::StatsReport report = obs::BuildReport(MergedSnapshot());
  std::string out;
  for (const auto& [name, value] : report.counters) {
    out += "STAT " + name +
           StringFormat(" %llu", static_cast<unsigned long long>(value));
    out += kCrlf;
  }
  for (const auto& [name, value] : report.gauges) {
    out += "STAT " + name + StringFormat(" %.6f", value);
    out += kCrlf;
  }
  for (const auto& [name, t] : report.timers) {
    out += "STAT " + name +
           StringFormat(
               " count=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
               static_cast<unsigned long long>(t.count), t.mean, t.p50,
               t.p95, t.p99, t.max);
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteMetrics() {
  const std::string payload = obs::ExportPrometheus(MergedSnapshot());
  std::string out = StringFormat("METRICS %zu", payload.size()) +
                    std::string(kCrlf);
  out += payload;
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteTrace(const Request& req) {
  if (options_.tracer == nullptr || !options_.tracer->enabled()) {
    return "SERVER_ERROR tracing disabled (no flight recorder configured)" +
           std::string(kCrlf);
  }
  const std::vector<obs::TraceRecord> traces = options_.tracer->Recent();
  const std::string payload = req.chrome ? obs::ExportTracesChrome(traces)
                                         : obs::ExportTracesTsv(traces);
  std::string out = StringFormat("TRACE %zu", payload.size()) +
                    std::string(kCrlf);
  out += payload;
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteSlow() {
  if (options_.tracer == nullptr || !options_.tracer->enabled()) {
    return "SERVER_ERROR tracing disabled (no flight recorder configured)" +
           std::string(kCrlf);
  }
  const std::string payload =
      obs::ExportTracesTsv(options_.tracer->Slow());
  std::string out = StringFormat("SLOW %zu", payload.size()) +
                    std::string(kCrlf);
  out += payload;
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteConns(const Connection* self) {
  const auto now = std::chrono::steady_clock::now();
  std::string out = StringFormat("CONNS %zu", connections_.size()) +
                    std::string(kCrlf);
  for (const auto& [fd, conn] : connections_) {
    out += StringFormat(
        "CONN %llu fd=%d age_s=%.1f idle_s=%.1f cmds=%llu last=%.*s "
        "bytes_in=%llu bytes_out=%llu inbuf=%zu outbuf=%zu flags=",
        static_cast<unsigned long long>(conn.id), conn.fd,
        std::chrono::duration<double>(now - conn.created).count(),
        std::chrono::duration<double>(now - conn.last_active).count(),
        static_cast<unsigned long long>(conn.cmds),
        static_cast<int>(conn.last_verb.size()), conn.last_verb.data(),
        static_cast<unsigned long long>(conn.bytes_in),
        static_cast<unsigned long long>(conn.bytes_out), conn.in.size(),
        conn.out.size());
    std::string flags;
    if (&conn == self) flags += "self,";
    if (conn.replica) flags += "replica,";
    if (conn.closing) flags += "closing,";
    if (conn.out.size() >= options_.max_write_buffer_bytes) {
      flags += "backpressured,";
    }
    if (flags.empty()) {
      out += '-';
    } else {
      flags.pop_back();  // trailing comma
      out += flags;
    }
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteSnapshot(const Request& req) {
  // The target is client-supplied: never let it name an arbitrary
  // filesystem location. Disabled unless a root is configured; when it
  // is, the path must stay strictly under it.
  if (options_.snapshot_root.empty()) {
    return "SERVER_ERROR snapshot disabled (no snapshot root configured)" +
           std::string(kCrlf);
  }
  if (req.dir.empty() || req.dir.front() == '/') {
    return "CLIENT_ERROR snapshot dir must be a relative path" +
           std::string(kCrlf);
  }
  for (size_t pos = 0; pos <= req.dir.size();) {
    const size_t slash = req.dir.find('/', pos);
    const size_t comp_end = slash == std::string::npos ? req.dir.size()
                                                       : slash;
    if (std::string_view(req.dir).substr(pos, comp_end - pos) == "..") {
      return "CLIENT_ERROR snapshot dir must not contain .." +
             std::string(kCrlf);
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  const std::string base = options_.snapshot_root + "/" + req.dir;
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    const std::string dir = base + StringFormat("/shard%zu", s);
    const Status st = core::SaveEngineSnapshot(engine_->shard(s), dir);
    if (!st.ok()) {
      return "SERVER_ERROR " + st.ToString() + std::string(kCrlf);
    }
  }
  return "OK" + std::string(kCrlf);
}

std::string Server::ExecuteCheckpoint() {
  if (options_.checkpointer == nullptr || options_.wal == nullptr) {
    return "SERVER_ERROR checkpoint disabled (no wal configured)" +
           std::string(kCrlf);
  }
  const Status st =
      options_.checkpointer->Checkpoint(*engine_, options_.wal, stream_now_);
  if (!st.ok()) {
    return "SERVER_ERROR " + st.ToString() + std::string(kCrlf);
  }
  last_checkpoint_ = std::chrono::steady_clock::now();
  return "OK" + std::string(kCrlf);
}

std::string Server::ExecuteRepl(const Request& req, Connection* conn) {
  if (options_.wal == nullptr) {
    return "SERVER_ERROR replication disabled (no wal configured)" +
           std::string(kCrlf);
  }
  // Handshake: from here on the connection is a one-way frame stream,
  // fed by PumpReplicas after each wave's durability barrier. The
  // follower's cursor is the last seqno it already holds.
  conn->replica = true;
  conn->repl_next_seqno = req.cursor + 1;
  conn->repl_hint = wal::CursorHint{};
  conn->repl_last_hb = std::chrono::steady_clock::now();
  size_t streams = 0;
  for (const auto& [fd, c] : connections_) streams += c.replica ? 1 : 0;
  g_repl_streams_->Set(static_cast<double>(streams));
  ADREC_LOG(kInfo) << "serve: replication stream attached at cursor "
                   << req.cursor;
  return StringFormat("REPL OK %llu",
                      static_cast<unsigned long long>(req.cursor)) +
         std::string(kCrlf);
}

std::string Server::ExecutePromote() {
  if (options_.follower == nullptr) {
    return "SERVER_ERROR not a follower (nothing to promote)" +
           std::string(kCrlf);
  }
  if (!read_only_) return "OK" + std::string(kCrlf);  // idempotent
  options_.follower->Detach();
  if (options_.wal != nullptr) {
    // Seal the replicated history: everything applied as a follower is
    // fdatasynced and closed into an immutable segment before the first
    // write of the new epoch can land.
    const Status rotate = options_.wal->Rotate();
    const Status sync = options_.wal->Sync();
    if (!rotate.ok() || !sync.ok()) {
      return "SERVER_ERROR promote seal failed: " +
             (!rotate.ok() ? rotate.ToString() : sync.ToString()) +
             std::string(kCrlf);
    }
  }
  read_only_ = false;
  ADREC_LOG(kInfo) << "serve: promoted to leader at wal seqno "
                   << (options_.wal != nullptr
                           ? options_.wal->last_seqno()
                           : 0)
                   << ", accepting writes";
  return "OK" + std::string(kCrlf);
}

void Server::PumpReplicas() {
  if (options_.wal == nullptr) return;
  uint64_t limit = 0;
  bool limit_known = false;
  const auto now = std::chrono::steady_clock::now();
  for (auto& [fd, conn] : connections_) {
    if (!conn.replica || conn.closing) continue;
    if (!limit_known) {
      // Ship only what the durability barrier has released: flushed
      // frames are complete on disk and their replies (if any) are out,
      // so a follower can never hold a record the leader would deny.
      limit = options_.wal->flushed_seqno();
      limit_known = true;
    }
    // Backpressure: a stream that cannot drain keeps its cursor; the
    // log is the queue, so nothing is lost while it stalls.
    if (conn.out.size() < options_.max_write_buffer_bytes &&
        conn.repl_next_seqno <= limit) {
      auto batch = wal::ReadFrames(options_.wal->dir(),
                                   conn.repl_next_seqno, limit,
                                   options_.repl_batch_bytes,
                                   &conn.repl_hint);
      if (!batch.ok()) {
        // Cursor below retention (or log corruption): this stream can
        // never be satisfied — tell it why and hang up; the follower
        // must re-seed from a checkpoint.
        ADREC_LOG(kWarning) << "serve: replication stream failed: "
                            << batch.status().ToString();
        conn.out += "SERVER_ERROR " + batch.status().ToString();
        conn.out += kCrlf;
        conn.closing = true;
        continue;
      }
      if (!batch.value().frames.empty()) {
        conn.out += batch.value().frames;
        conn.repl_next_seqno = batch.value().next_seqno;
        ctr_repl_bytes_shipped_->Inc(batch.value().frames.size());
      }
    }
    const double since_hb =
        std::chrono::duration<double>(now - conn.repl_last_hb).count();
    if (since_hb >= options_.repl_heartbeat_interval) {
      conn.out += StringFormat("REPL HB %llu",
                               static_cast<unsigned long long>(limit));
      conn.out += kCrlf;
      conn.repl_last_hb = now;
      ctr_repl_heartbeats_->Inc();
    }
  }
}

void Server::CommitWal() {
  if (options_.wal == nullptr || !wal_dirty_) return;
  wal_dirty_ = false;
  const auto commit_t0 = std::chrono::steady_clock::now();
  const Status st = options_.wal->Commit();
  if (!st.ok()) {
    // The replies for this batch were already formatted as OK; a failing
    // fdatasync here means acknowledged-but-maybe-lost. There is no way
    // to recall the replies, so make the breach loud.
    ADREC_LOG(kError) << "serve: wal commit failed: " << st.ToString();
  }
  if (!wave_traces_.empty()) {
    // Group commit is a wave-level event: one fdatasync covers every
    // write of the batch. Each trace gets the same interval as a
    // retroactive span — the per-request view of the shared barrier.
    const auto commit_t1 = std::chrono::steady_clock::now();
    for (std::unique_ptr<obs::TraceBuilder>& trace : wave_traces_) {
      trace->AddSpan("wal.commit_wave", commit_t0, commit_t1);
      if (!st.ok()) {
        trace->SetOutcome(obs::TraceOutcome::kError);
        trace->SetReason("wal commit failed");
      }
      FinishTrace(std::move(trace));
    }
    wave_traces_.clear();
  }
}

void Server::MaybeCheckpoint() {
  if (options_.checkpointer == nullptr || options_.wal == nullptr ||
      options_.checkpoint_interval <= 0.0) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  const double since =
      std::chrono::duration<double>(now - last_checkpoint_).count();
  if (since < options_.checkpoint_interval) return;
  last_checkpoint_ = now;
  const Status st =
      options_.checkpointer->Checkpoint(*engine_, options_.wal, stream_now_);
  if (!st.ok()) {
    ADREC_LOG(kError) << "serve: periodic checkpoint failed: "
                      << st.ToString();
  } else {
    ADREC_LOG(kInfo) << "serve: checkpoint at wal seqno "
                     << options_.wal->synced_seqno();
  }
}

obs::MetricsSnapshot Server::MergedSnapshot() const {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  snapshot.MergeFrom(engine_->MergedMetrics());
  if (cache_ != nullptr) {
    snapshot.MergeFrom(cache_->metrics().Snapshot());
  }
  if (options_.wal != nullptr) {
    snapshot.MergeFrom(options_.wal->metrics().Snapshot());
  }
  if (options_.follower != nullptr) {
    snapshot.MergeFrom(options_.follower->metrics().Snapshot());
  }
  if (options_.tracer != nullptr) {
    snapshot.MergeFrom(options_.tracer->metrics().Snapshot());
  }
  return snapshot;
}

bool Server::WriteTo(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n = ::send(conn->fd, conn->out.data(), conn->out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      ctr_bytes_out_->Inc(static_cast<uint64_t>(n));
      conn->bytes_out += static_cast<uint64_t>(n);
      conn->out.erase(0, static_cast<size_t>(n));
      conn->last_active = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // drain signal mid-send
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    CloseConnection(conn);  // EPIPE/ECONNRESET
    return false;
  }
  // A half-closed peer may still have complete pipelined lines buffered
  // in `in` (read before its EOF); those are owed responses, so only
  // close once nothing processable remains.
  if (conn->closing && conn->in.find('\n') == std::string::npos) {
    CloseConnection(conn);
    return false;
  }
  return true;
}

void Server::CloseConnection(Connection* conn) {
  const int fd = conn->fd;
  const bool was_replica = conn->replica;
  ::close(fd);
  connections_.erase(fd);
  g_active_->Set(static_cast<double>(connections_.size()));
  if (was_replica) {
    size_t streams = 0;
    for (const auto& [f, c] : connections_) streams += c.replica ? 1 : 0;
    g_repl_streams_->Set(static_cast<double>(streams));
  }
}

void Server::CloseIdle() {
  if (options_.idle_timeout <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    // Replication streams are one-way by design: the follower never
    // sends another byte after the handshake, so "idle since last read"
    // is their steady state, not abandonment. Liveness comes from the
    // stream itself — a dead follower surfaces as EPIPE/ECONNRESET on
    // the next frame or heartbeat.
    if (conn.replica) continue;
    const double silent =
        std::chrono::duration<double>(now - conn.last_active).count();
    if (silent > static_cast<double>(options_.idle_timeout)) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    ctr_idle_closed_->Inc();
    CloseConnection(&connections_.at(fd));
  }
}

void Server::Run() {
  ADREC_CHECK(listen_fd_ >= 0);
  PeriodicReporter reporter([this] { return MergedSnapshot(); },
                            options_.report_interval > 0.0
                                ? options_.report_interval
                                : 1e9);
  const auto drain_deadline_never = std::chrono::steady_clock::time_point::max();
  auto drain_deadline = drain_deadline_never;
  last_checkpoint_ = std::chrono::steady_clock::now();

  std::vector<pollfd> fds;
  std::vector<int> conn_fds;
  for (;;) {
    if (draining_ && connections_.empty()) break;
    if (draining_ && std::chrono::steady_clock::now() > drain_deadline) {
      // Grace expired: drop whatever could not be flushed.
      while (!connections_.empty()) {
        CloseConnection(&connections_.begin()->second);
      }
      break;
    }

    fds.clear();
    conn_fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    const bool listen_polled =
        !draining_ &&
        std::chrono::steady_clock::now() >= accept_pause_until_;
    if (listen_polled) fds.push_back({listen_fd_, POLLIN, 0});
    // Follower mode: the leader connection lives in this poll set — the
    // event loop stays the engine's only mutator, replication included.
    replica::Follower* follower = options_.follower;
    const bool follower_polled = follower != nullptr &&
                                 !follower->detached() &&
                                 follower->fd() >= 0;
    if (follower_polled) {
      short events = POLLIN;
      if (follower->want_write()) events |= POLLOUT;
      fds.push_back({follower->fd(), events, 0});
    }
    bool has_repl_stream = false;
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      // Backpressured or closing connections are not read further.
      if (!conn.closing &&
          conn.out.size() < options_.max_write_buffer_bytes) {
        events |= POLLIN;
      }
      if (!conn.out.empty()) events |= POLLOUT;
      if (events == 0) events = POLLHUP;  // still notice resets
      fds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
      has_repl_stream = has_repl_stream || conn.replica;
    }

    // Timeout: the finest of idle sweep, reporter cadence, drain grace.
    int timeout_ms = -1;
    if (options_.idle_timeout > 0) timeout_ms = 1000;
    if (options_.report_interval > 0.0) {
      const int r = static_cast<int>(options_.report_interval * 1000 / 2);
      timeout_ms = timeout_ms < 0 ? std::max(r, 10)
                                  : std::min(timeout_ms, std::max(r, 10));
    }
    if (!draining_ && !listen_polled) {
      // Accepts are paused (descriptor exhaustion): wake soon enough to
      // resume the listener once the backoff lapses.
      timeout_ms = timeout_ms < 0 ? 100 : std::min(timeout_ms, 100);
    }
    if (options_.checkpointer != nullptr &&
        options_.checkpoint_interval > 0.0) {
      // Periodic checkpoints must fire even on an idle stream.
      timeout_ms = timeout_ms < 0 ? 1000 : std::min(timeout_ms, 1000);
    }
    if (follower != nullptr && !follower->detached()) {
      // Reconnect backoff and lag gauges are time-driven.
      const int f = follower->TickDelayMs();
      timeout_ms = timeout_ms < 0 ? f : std::min(timeout_ms, f);
    }
    if (has_repl_stream) {
      // Heartbeats to attached followers must fire on an idle stream.
      const int hb = std::max(
          50, static_cast<int>(options_.repl_heartbeat_interval * 500));
      timeout_ms = timeout_ms < 0 ? hb : std::min(timeout_ms, hb);
    }
    if (draining_) timeout_ms = 50;

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      ADREC_LOG(kError) << "poll: " << std::strerror(errno);
      break;
    }

    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
      if (!draining_) {
        draining_ = true;
        drain_deadline = std::chrono::steady_clock::now() +
                         std::chrono::duration_cast<
                             std::chrono::steady_clock::duration>(
                             std::chrono::duration<double>(
                                 options_.drain_timeout));
        // Close the listening socket immediately: leaving it open would
        // let the kernel keep accepting into the backlog, stranding
        // clients that will never be served.
        ::close(listen_fd_);
        listen_fd_ = -1;
        ADREC_LOG(kInfo) << "serve: drain requested, "
                         << connections_.size() << " connections open";
      }
    }
    ++idx;
    if (listen_polled) {
      if (!draining_ && (fds[idx].revents & (POLLIN | POLLERR))) {
        AcceptNew();
      }
      ++idx;
    }
    if (follower_polled) {
      if (fds[idx].revents != 0) follower->OnPollEvents(fds[idx].revents);
      ++idx;
    }
    if (follower != nullptr) {
      follower->Tick();
      // Replicated events drive this daemon's stream clock so time-less
      // `topk` on the replica answers at the replicated position.
      if (follower->max_event_time() > stream_now_) {
        stream_now_ = follower->max_event_time();
      }
    }

    // Read + process every ready connection first — their WAL appends
    // stay deferred — then run ONE durability barrier for the whole wave
    // before any reply reaches a socket. This is what makes group commit
    // group: the wave shares a single fdatasync instead of paying one per
    // connection.
    for (size_t c = 0; c < conn_fds.size(); ++c, ++idx) {
      auto it = connections_.find(conn_fds[c]);
      if (it == connections_.end()) continue;  // closed earlier this round
      Connection* conn = &it->second;
      const short revents = fds[idx].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        CloseConnection(conn);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        if (!ReadFrom(conn)) continue;
      }
      ProcessLines(conn);
    }
    // Durability before visibility: every deferred WAL append of the
    // wave is committed before any of the wave's replies can be written.
    CommitWal();
    // ... and replication before acknowledgement-chasing: the wave's
    // freshly durable frames fan out to attached followers in the same
    // pass that flushes the wave's replies.
    PumpReplicas();
    for (size_t c = 0; c < conn_fds.size(); ++c) {
      auto it = connections_.find(conn_fds[c]);
      if (it == connections_.end()) continue;
      Connection* conn = &it->second;
      // Flush-and-resume until quiescent. One pass is not enough: a
      // backpressured connection keeps complete pipelined lines in `in`,
      // and a peer waiting for those replies sends nothing more — no
      // POLLIN ever fires again. So whenever a write drains the buffer
      // back under the cap, resume consuming the pipeline right here
      // instead of waiting on poll (committing each resumed batch before
      // its replies flush).
      for (;;) {
        if (conn->out.empty() && !conn->closing) break;
        if (!WriteTo(conn)) break;  // connection closed and erased
        if (conn->out.size() >= options_.max_write_buffer_bytes) break;
        if (conn->in.find('\n') == std::string::npos) break;
        ProcessLines(conn);
        CommitWal();
      }
    }

    CloseIdle();
    if (!draining_) MaybeCheckpoint();
    if (options_.report_interval > 0.0 && !draining_) reporter.TickIfDue();
    // Drain semantics: stop reading new requests, flush what is queued.
    if (draining_) {
      for (auto& [fd, conn] : connections_) conn.closing = true;
      std::vector<int> done;
      for (auto& [fd, conn] : connections_) {
        if (conn.out.empty()) done.push_back(fd);
      }
      for (int fd : done) CloseConnection(&connections_.at(fd));
    }
  }
  if (options_.wal != nullptr) {
    // Final barrier: under kNone/kInterval the tail of the log may still
    // be in page cache; a clean shutdown should not lose it.
    const Status st = options_.wal->Sync();
    if (!st.ok()) {
      ADREC_LOG(kError) << "serve: final wal sync failed: " << st.ToString();
    }
  }
  ADREC_LOG(kInfo) << "serve: drained, event loop exiting";
}

}  // namespace adrec::serve
