#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/snapshot.h"
#include "obs/stats_export.h"
#include "replica/follower.h"
#include "serve/pool/context.h"
#include "serve/reporter.h"
#include "wal/checkpoint.h"
#include "wal/delta/compactor.h"
#include "wal/sharded_wal.h"
#include "wal/wal.h"

namespace adrec::serve {

namespace {

constexpr std::string_view kCrlf = "\r\n";

/// Cap on forwarded ops in flight per connection (pool mode): past it,
/// the pipeline stops being consumed until acks drain — per-connection
/// backpressure toward the owning worker.
constexpr size_t kMaxPendingForwards = 128;

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(StringFormat("fcntl(O_NONBLOCK): %s",
                                         std::strerror(errno)));
  }
  return Status::OK();
}

/// Exact score text on the wire: round-trips doubles so differential
/// clients see bit-identical rankings.
std::string ScoreText(double score) { return StringFormat("%.17g", score); }

/// The `topk` reply — also the byte sequence the result cache memoises.
std::string FormatTopKReply(const std::vector<index::ScoredAd>& ads) {
  std::string out = StringFormat("ADS %zu", ads.size()) + std::string(kCrlf);
  for (const index::ScoredAd& sa : ads) {
    out += StringFormat("AD %u ", sa.ad.value) + ScoreText(sa.score);
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
  return out;
}

/// Engine Status -> wire reply for the mutating verbs.
std::string StatusReply(const Status& s) {
  if (s.ok()) return "OK" + std::string(kCrlf);
  if (s.code() == StatusCode::kNotFound) {
    return "NOT_FOUND" + std::string(kCrlf);
  }
  if (s.code() == StatusCode::kInvalidArgument) {
    return "CLIENT_ERROR " + s.message() + std::string(kCrlf);
  }
  return "SERVER_ERROR " + s.ToString() + std::string(kCrlf);
}

}  // namespace

/// One reply position in a connection's pipeline (pool mode). Replies
/// must leave in request order, but a forwarded op completes on another
/// worker's schedule — so each request occupies a slot, local replies
/// complete theirs instantly, and only the done prefix flushes.
struct Server::ReplySlot {
  uint64_t id = 0;
  bool done = false;
  std::string reply;
  /// Open trace of a forwarded op; finished when the ack lands.
  std::unique_ptr<obs::TraceBuilder> trace;
};

/// A forwarded op executed this wave whose ack is withheld until this
/// worker's commit barrier (durability before visibility holds across
/// workers too).
struct Server::PendingAck {
  size_t origin = 0;
  uint64_t conn_id = 0;
  uint64_t slot_id = 0;
  std::string reply;
};

/// Per-connection state, owned and touched only by the event loop.
struct Server::Connection {
  int fd = -1;
  /// Unconsumed request bytes (partial or backpressured lines).
  std::string in;
  /// Response bytes not yet accepted by the socket.
  std::string out;
  std::chrono::steady_clock::time_point last_active;
  /// Peer half-closed (or quit): flush `out`, then close.
  bool closing = false;
  // --- `conns` diagnostics ---
  /// Monotonic connection id (fds are recycled; ids are not).
  uint64_t id = 0;
  std::chrono::steady_clock::time_point created;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t cmds = 0;
  /// Wire name of the last parsed verb (static storage via VerbName).
  std::string_view last_verb = "-";
  /// Replication stream (post-`repl` handshake): exempt from the idle
  /// reaper and the global in-flight cap, fed by PumpReplicas.
  bool replica = false;
  /// WAL stream this replication connection follows.
  size_t repl_stream = 0;
  /// Next WAL seqno this replication stream is owed.
  uint64_t repl_next_seqno = 0;
  /// Byte-offset resume state so tail reads do not rescan the segment.
  wal::CursorHint repl_hint;
  std::chrono::steady_clock::time_point repl_last_hb;
  // --- Pool mode ---
  /// In-order reply queue; non-empty only while forwarded ops are in
  /// flight (empty pipeline bypasses it entirely).
  std::deque<ReplySlot> pending;
  uint64_t next_slot = 1;
};

Server::Server(core::ShardedEngine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      ctr_accepted_(metrics_.GetCounter("serve.connections_accepted")),
      ctr_rejected_(metrics_.GetCounter("serve.connections_rejected")),
      g_active_(metrics_.GetGauge("serve.connections_active")),
      ctr_parse_errors_(metrics_.GetCounter("serve.parse_errors")),
      ctr_sheds_(metrics_.GetCounter("serve.sheds")),
      ctr_bytes_in_(metrics_.GetCounter("serve.bytes_in")),
      ctr_bytes_out_(metrics_.GetCounter("serve.bytes_out")),
      ctr_idle_closed_(metrics_.GetCounter("serve.idle_closed")),
      ctr_readonly_rejected_(
          metrics_.GetCounter("serve.readonly_rejected")),
      ctr_repl_bytes_shipped_(
          metrics_.GetCounter("serve.repl_bytes_shipped")),
      ctr_repl_heartbeats_(metrics_.GetCounter("serve.repl_heartbeats")),
      g_repl_streams_(metrics_.GetGauge("serve.repl_streams")),
      ctr_forwarded_(metrics_.GetCounter("serve.pool_forwarded")),
      ctr_forward_acks_(metrics_.GetCounter("serve.pool_forward_acks")),
      ctr_barrier_ops_(metrics_.GetCounter("serve.pool_barrier_ops")) {
  ADREC_CHECK(engine_ != nullptr);
  ADREC_CHECK(options_.wal == nullptr || options_.sharded_wal == nullptr);
  if (options_.sharded_wal != nullptr) {
    for (size_t s = 0; s < options_.sharded_wal->num_streams(); ++s) {
      streams_.push_back(options_.sharded_wal->stream(s));
    }
    // Stream s holds exactly shard s's history (plus the ad broadcast):
    // any other mapping would break per-shard replay.
    ADREC_CHECK(streams_.size() == 1 ||
                streams_.size() == engine_->num_shards());
  } else if (options_.wal != nullptr) {
    streams_.push_back(options_.wal);
  }
  stream_dirty_.assign(streams_.size(), false);
  followers_ = options_.followers;
  if (options_.follower != nullptr) {
    followers_.push_back(options_.follower);
  }
  // A follower starts read-only; `promote` is the only way out. A pool
  // worker also starts read-only when any sibling has a follower.
  read_only_ = !followers_.empty() || options_.start_read_only;
  pool_ = options_.pool;
  if (pool_ != nullptr) {
    ADREC_CHECK(options_.lane < pool_->workers);
    // The topk cache is per-worker state invalidated by pool-wide ingest;
    // pool mode runs without it (DESIGN.md §16).
    ADREC_CHECK(options_.topk_cache.capacity == 0);
  }
  if (options_.topk_cache.capacity > 0) {
    cache_ = std::make_unique<cache::TopkCache>(options_.topk_cache);
    for (replica::Follower* follower : followers_) {
      // Replicated ingest must invalidate exactly like local ingest; the
      // observer fires pre-apply on the event-loop thread.
      follower->set_apply_observer(
          [this](const feed::FeedEvent& event) { InvalidateCacheFor(event); });
    }
  }
  for (size_t v = 0; v < kNumVerbs; ++v) {
    const std::string name(VerbName(static_cast<Verb>(v)));
    ctr_cmds_[v] = metrics_.GetCounter("serve.cmd_" + name);
    tm_cmds_[v] = metrics_.GetTimer("serve.cmd_" + name + "_us");
  }
}

Server::~Server() {
  for (auto& [fd, conn] : connections_) ::close(fd);
  connections_.clear();
  {
    std::lock_guard<std::mutex> lk(adopt_mu_);
    for (int fd : adopted_) ::close(fd);
    adopted_.clear();
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

uint32_t Server::worker_id() const {
  return pool_mode() ? static_cast<uint32_t>(options_.lane + 1) : 0;
}

bool Server::OwnsShard(size_t shard) const {
  return !pool_mode() || shard % pool_->workers == options_.lane;
}

Timestamp Server::StreamNow() const {
  return pool_mode()
             ? static_cast<Timestamp>(
                   pool_->stream_now.load(std::memory_order_relaxed))
             : stream_now_;
}

void Server::BumpStreamClock(Timestamp t) {
  if (pool_mode()) {
    pool_->BumpStreamClock(static_cast<int64_t>(t));
  } else if (t > stream_now_) {
    stream_now_ = t;
  }
}

Status Server::Start() {
  if (pipe(wake_fds_) != 0) {
    return Status::Internal(StringFormat("pipe: %s", std::strerror(errno)));
  }
  ADREC_RETURN_NOT_OK(SetNonBlocking(wake_fds_[0]));

  // Pool workers do not listen: the PoolServer's acceptor thread owns
  // the listening socket and hands accepted fds over via AdoptSocket.
  if (pool_mode()) return Status::OK();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StringFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad listen address " + options_.host);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(StringFormat("bind %s:%u: %s",
                                         options_.host.c_str(), options_.port,
                                         std::strerror(errno)));
  }
  if (listen(listen_fd_, 128) != 0) {
    return Status::Internal(StringFormat("listen: %s", std::strerror(errno)));
  }
  ADREC_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(StringFormat("getsockname: %s",
                                         std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

void Server::RequestDrain() {
  // Async-signal-safe: one byte down the self-pipe wakes poll(); the loop
  // reads the pipe, sees the flag and flips into draining.
  drain_requested_.store(true, std::memory_order_release);
  const char b = 'q';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
}

void Server::AdoptSocket(int fd) {
  {
    std::lock_guard<std::mutex> lk(adopt_mu_);
    adopted_.push_back(fd);
  }
  const char b = 'a';
  [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &b, 1);
}

size_t Server::InflightBytes() const {
  // Replication streams are exempt: a catching-up follower legitimately
  // holds megabytes of frames in flight, and shedding CLIENT traffic
  // because a REPLICA is slow would invert the service's priorities.
  // Replica buffers are bounded separately (PumpReplicas stops feeding a
  // stream past max_write_buffer_bytes).
  size_t total = 0;
  for (const auto& [fd, conn] : connections_) {
    if (!conn.replica) total += conn.out.size();
  }
  return total;
}

void Server::AdmitSocket(int fd) {
  if (connections_.size() >= options_.max_connections || draining_) {
    // Shed at the door: tell the client why, then hang up. The
    // best-effort write is fine — the socket buffer of a fresh
    // connection is empty.
    const std::string busy = std::string("SERVER_ERROR busy") +
                             std::string(kCrlf);
    [[maybe_unused]] const ssize_t n = ::write(fd, busy.data(), busy.size());
    ::close(fd);
    ctr_rejected_->Inc();
    ctr_sheds_->Inc();
    return;
  }
  if (!SetNonBlocking(fd).ok()) {
    ::close(fd);
    return;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Connection conn;
  conn.fd = fd;
  conn.last_active = std::chrono::steady_clock::now();
  conn.id = next_conn_id_++;
  conn.created = conn.last_active;
  connections_.emplace(fd, std::move(conn));
  ctr_accepted_->Inc();
  g_active_->Set(static_cast<double>(connections_.size()));
}

void Server::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      // EMFILE/ENFILE (and other persistent failures): the listening fd
      // stays readable, so going straight back to poll would busy-spin
      // at 100% CPU. Stop polling the listener briefly instead.
      ADREC_LOG(kWarning) << "serve: accept: " << std::strerror(errno)
                          << ", pausing accepts";
      accept_pause_until_ = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(100);
      return;
    }
    AdmitSocket(fd);
  }
}

void Server::AdoptPending() {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lk(adopt_mu_);
    fds.swap(adopted_);
  }
  for (int fd : fds) AdmitSocket(fd);
}

bool Server::ReadFrom(Connection* conn) {
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      ctr_bytes_in_->Inc(static_cast<uint64_t>(n));
      conn->bytes_in += static_cast<uint64_t>(n);
      conn->last_active = std::chrono::steady_clock::now();
      // Oversized frame: no newline within the cap means the client lost
      // the protocol; there is no safe resync point, so answer and close.
      if (conn->in.size() > options_.max_line_bytes &&
          conn->in.find('\n') == std::string::npos) {
        ctr_parse_errors_->Inc();
        conn->in.clear();
        EmitReply(conn, "CLIENT_ERROR line too long" + std::string(kCrlf));
        conn->closing = true;
        return true;
      }
      if (static_cast<size_t>(n) < sizeof(buf)) return true;
      continue;  // possibly more buffered
    }
    if (n == 0) {
      // Half-close: the peer is done sending but still reads. Process
      // what arrived, flush, then close our side.
      conn->closing = true;
      return true;
    }
    if (errno == EINTR) continue;  // drain signal mid-recv: just retry
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    CloseConnection(conn);  // ECONNRESET and friends
    return false;
  }
}

void Server::ProcessLines(Connection* conn) {
  size_t start = 0;
  while (start < conn->in.size()) {
    // Backpressure: once this connection's pending responses pass the
    // cap, stop consuming its pipeline — poll stops watching POLLIN until
    // the peer drains the write buffer.
    if (conn->out.size() >= options_.max_write_buffer_bytes) break;
    // Pool backpressure: too many forwarded ops awaiting acks — resume
    // once the owner's acks drain the slot queue.
    if (conn->pending.size() >= kMaxPendingForwards) break;
    const size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) {
      // A partial line longer than the cap can never complete validly.
      if (conn->in.size() - start > options_.max_line_bytes) {
        ctr_parse_errors_->Inc();
        EmitReply(conn, "CLIENT_ERROR line too long" + std::string(kCrlf));
        conn->closing = true;
        start = conn->in.size();
      }
      break;
    }
    size_t end = nl;
    if (end > start && conn->in[end - 1] == '\r') --end;
    // The cap applies to complete lines too, even when the newline
    // arrived in the same read batch (ReadFrom only sees newline-less
    // overruns); a client this far out of protocol is cut off.
    if (end - start > options_.max_line_bytes) {
      ctr_parse_errors_->Inc();
      EmitReply(conn, "CLIENT_ERROR line too long" + std::string(kCrlf));
      conn->closing = true;
      start = conn->in.size();
      break;
    }
    const bool was_closing = conn->closing;
    Dispatch(std::string_view(conn->in).substr(start, end - start), conn);
    start = nl + 1;
    if (conn->closing && !was_closing) {  // quit: drop any pipelined tail
      start = conn->in.size();
      break;
    }
  }
  conn->in.erase(0, start);
}

void Server::EmitReply(Connection* conn, std::string reply) {
  if (conn->pending.empty()) {
    // Fast path: no forwarded op ahead of us, the reply goes straight to
    // the write buffer (this is every reply outside pool mode).
    conn->out += reply;
    return;
  }
  ReplySlot slot;
  slot.id = conn->next_slot++;
  slot.done = true;
  slot.reply = std::move(reply);
  conn->pending.push_back(std::move(slot));
}

void Server::FlushReplySlots(Connection* conn) {
  while (!conn->pending.empty() && conn->pending.front().done) {
    conn->out += conn->pending.front().reply;
    conn->pending.pop_front();
  }
}

void Server::Dispatch(std::string_view line, Connection* conn) {
  // Every request gets a trace (when the flight recorder is on): started
  // before parsing so even malformed lines leave a pinned record with
  // the refusal reason — overload and abuse forensics need exactly the
  // requests that never executed.
  std::unique_ptr<obs::TraceBuilder> trace;
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    trace = trace_pool_.Acquire();
    trace->Start(options_.tracer->NextTraceId(), line);
    trace->SetWorker(worker_id());
  }
  const uint32_t parse_span =
      trace != nullptr ? trace->StartSpan("serve.parse") : 0;
  auto parsed = ParseRequest(line);
  if (trace != nullptr) trace->EndSpan(parse_span);
  if (!parsed.ok()) {
    ctr_parse_errors_->Inc();
    const std::string detail = parsed.status().message();
    EmitReply(conn, "CLIENT_ERROR " + detail + std::string(kCrlf));
    if (trace != nullptr) {
      trace->SetOutcome(obs::TraceOutcome::kError);
      trace->SetReason("CLIENT_ERROR " + detail);
      FinishTrace(std::move(trace));
    }
    return;
  }
  const Request& req = parsed.value();
  const size_t verb = static_cast<size_t>(req.verb);
  ctr_cmds_[verb]->Inc();
  ++conn->cmds;
  conn->last_verb = VerbName(req.verb);
  if (req.verb == Verb::kQuit) {
    conn->closing = true;
    FinishTrace(std::move(trace));
    return;
  }
  // Follower read-only gate. The classification lives in IsWriteVerb —
  // one switch, compile-time exhaustive — so a future verb cannot reach
  // the engine's write path here without being classified there first.
  // Pool note: read_only_ is set identically on every worker at startup
  // and cleared for all of them by the (barrier) promote, so gating at
  // the receiving worker is gating the pool.
  if (read_only_ && IsWriteVerb(req.verb)) {
    ctr_readonly_rejected_->Inc();
    EmitReply(conn, "READONLY" + std::string(kCrlf));
    if (trace != nullptr) {
      trace->SetOutcome(obs::TraceOutcome::kReadonly);
      trace->SetReason("READONLY");
      FinishTrace(std::move(trace));
    }
    return;
  }
  // Global in-flight cap: executing a command whose response has nowhere
  // to go just grows memory; shed instead.
  if (InflightBytes() > options_.max_inflight_bytes) {
    ctr_sheds_->Inc();
    EmitReply(conn, "SERVER_ERROR busy" + std::string(kCrlf));
    if (trace != nullptr) {
      trace->SetOutcome(obs::TraceOutcome::kShed);
      trace->SetReason("SERVER_ERROR busy");
      FinishTrace(std::move(trace));
    }
    return;
  }
  // Pool routing (DESIGN.md §16). Hot verbs go to their shard's owner:
  // locally when this worker owns the shard, else forwarded through the
  // mailbox with an ordered reply slot. Rare coordination verbs
  // stop-the-world instead of growing fan-out/merge machinery.
  size_t shard = 0;
  if (pool_mode()) {
    switch (req.verb) {
      case Verb::kTweet:
        shard = engine_->ShardOf(req.tweet.user);
        break;
      case Verb::kCheckIn:
        shard = engine_->ShardOf(req.check_in.user);
        break;
      case Verb::kTopK:
        // Routed to the author's shard, same as the engine itself routes.
        shard = engine_->ShardOf(req.tweet.user);
        break;
      case Verb::kAdPut:
      case Verb::kAdDel:
      case Verb::kAnalyze:
      case Verb::kMatch:
      case Verb::kSnapshot:
      case Verb::kCheckpoint:
      case Verb::kCompact:
      case Verb::kPromote:
      case Verb::kConns:
      case Verb::kStats:
      case Verb::kMetrics: {
        obs::ScopedTimer timer(tm_cmds_[verb]);
        const uint32_t exec_span =
            trace != nullptr ? trace->StartSpan("pool.barrier") : 0;
        std::string reply = ExecuteBarrierVerb(req, line, conn);
        if (trace != nullptr) {
          trace->EndSpan(exec_span);
          if (StartsWith(reply, "CLIENT_ERROR") ||
              StartsWith(reply, "SERVER_ERROR")) {
            trace->SetOutcome(obs::TraceOutcome::kError);
            const size_t eol = reply.find('\r');
            trace->SetReason(std::string_view(reply).substr(
                0, eol == std::string::npos ? reply.size() : eol));
          }
        }
        EmitReply(conn, std::move(reply));
        FinishTrace(std::move(trace));
        return;
      }
      default:
        break;  // trace/slow/repl/ping: purely local
    }
    if ((req.verb == Verb::kTweet || req.verb == Verb::kCheckIn ||
         req.verb == Verb::kTopK) &&
        !OwnsShard(shard)) {
      obs::ScopedTimer timer(tm_cmds_[verb]);
      ForwardRequest(conn, req, line, shard, std::move(trace));
      return;
    }
  }
  // Write-ahead: the raw request line is the log payload (the ingest
  // grammar IS the wire grammar), appended before the engine mutates. An
  // event the WAL cannot record is refused — never applied-but-lost.
  // With per-shard streams, a feed event goes to its owner shard's
  // stream only; ad ops are duplicated into every stream so each stream
  // alone totally orders everything that touches its shard.
  bool wal_appended = false;
  if (!streams_.empty() &&
      (req.verb == Verb::kTweet || req.verb == Verb::kCheckIn ||
       req.verb == Verb::kAdPut || req.verb == Verb::kAdDel)) {
    const uint32_t append_span =
        trace != nullptr ? trace->StartSpan("wal.append") : 0;
    Status append_status = Status::OK();
    if (req.verb == Verb::kAdPut || req.verb == Verb::kAdDel) {
      for (size_t s = 0; s < streams_.size() && append_status.ok(); ++s) {
        auto seqno = streams_[s]->AppendDeferred(line);
        if (!seqno.ok()) append_status = seqno.status();
        stream_dirty_[s] = true;
      }
    } else {
      const size_t user_shard =
          req.verb == Verb::kTweet ? engine_->ShardOf(req.tweet.user)
                                   : engine_->ShardOf(req.check_in.user);
      const size_t s = StreamIndexFor(user_shard);
      auto seqno = streams_[s]->AppendDeferred(line);
      if (!seqno.ok()) append_status = seqno.status();
      stream_dirty_[s] = true;
    }
    if (trace != nullptr) trace->EndSpan(append_span);
    if (!append_status.ok()) {
      ADREC_LOG(kError) << "serve: wal append failed: "
                        << append_status.ToString();
      EmitReply(conn,
                "SERVER_ERROR wal append failed" + std::string(kCrlf));
      if (trace != nullptr) {
        trace->SetOutcome(obs::TraceOutcome::kError);
        trace->SetReason("SERVER_ERROR wal append failed");
        FinishTrace(std::move(trace));
      }
      return;
    }
    wal_dirty_ = true;
    wal_appended = true;
  }
  {
    obs::ScopedTimer timer(tm_cmds_[verb]);
    const uint32_t exec_span =
        trace != nullptr ? trace->StartSpan("serve.dispatch") : 0;
    // Engine stage probes (obs::StageSpan) attach to the active trace,
    // so their spans nest under serve.dispatch without the engine ever
    // seeing a trace parameter.
    obs::ScopedActiveTrace active(trace.get());
    std::string reply = Execute(req, conn);
    if (trace != nullptr) {
      trace->EndSpan(exec_span);
      if (StartsWith(reply, "CLIENT_ERROR") ||
          StartsWith(reply, "SERVER_ERROR")) {
        trace->SetOutcome(obs::TraceOutcome::kError);
        const size_t eol = reply.find('\r');
        trace->SetReason(std::string_view(reply).substr(
            0, eol == std::string::npos ? reply.size() : eol));
      }
    }
    EmitReply(conn, std::move(reply));
  }
  if (trace == nullptr) return;
  if (wal_appended) {
    // The request is not over: its reply is withheld until the wave's
    // group commit. CommitWal appends the shared `wal.commit_wave` span
    // and finishes these traces, so the root duration matches what the
    // client observes.
    wave_traces_.push_back(std::move(trace));
  } else {
    FinishTrace(std::move(trace));
  }
}

void Server::ForwardRequest(Connection* conn, const Request& req,
                            std::string_view line, size_t shard,
                            std::unique_ptr<obs::TraceBuilder> trace) {
  const size_t owner = shard % pool_->workers;
  ReplySlot slot;
  slot.id = conn->next_slot++;
  slot.trace = std::move(trace);
  const uint64_t slot_id = slot.id;
  conn->pending.push_back(std::move(slot));
  ctr_forwarded_->Inc();
  Server* target = pool_->servers[owner];
  pool_->mail.Post(
      options_.lane, owner,
      [target, req, line = std::string(line), origin = options_.lane,
       conn_id = conn->id, slot_id]() mutable {
        target->ExecuteForwarded(std::move(req), std::move(line), origin,
                                 conn_id, slot_id);
      });
}

void Server::ExecuteForwarded(Request req, std::string line, size_t origin,
                              uint64_t conn_id, uint64_t slot_id) {
  std::string reply;
  switch (req.verb) {
    case Verb::kTweet:
    case Verb::kCheckIn: {
      // Same write-ahead discipline as the local path: the owner logs to
      // its own shard stream before it applies, and the ack is withheld
      // until the owner's commit barrier (FlushWaveAcks).
      const size_t user_shard =
          req.verb == Verb::kTweet ? engine_->ShardOf(req.tweet.user)
                                   : engine_->ShardOf(req.check_in.user);
      if (!streams_.empty()) {
        const size_t s = StreamIndexFor(user_shard);
        auto seqno = streams_[s]->AppendDeferred(line);
        if (!seqno.ok()) {
          ADREC_LOG(kError) << "serve: forwarded wal append failed: "
                            << seqno.status().ToString();
          reply = "SERVER_ERROR wal append failed" + std::string(kCrlf);
          break;
        }
        stream_dirty_[s] = true;
        wal_dirty_ = true;
      }
      if (req.verb == Verb::kTweet) {
        engine_->OnTweet(req.tweet);
        BumpStreamClock(req.tweet.time);
      } else {
        engine_->OnCheckIn(req.check_in);
        BumpStreamClock(req.check_in.time);
      }
      reply = "OK" + std::string(kCrlf);
      break;
    }
    case Verb::kTopK:
      reply = ExecuteTopK(req);
      break;
    default:
      reply = "SERVER_ERROR bad forward" + std::string(kCrlf);
      break;
  }
  wave_acks_.push_back({origin, conn_id, slot_id, std::move(reply)});
}

void Server::FlushWaveAcks() {
  if (wave_acks_.empty()) return;
  for (PendingAck& ack : wave_acks_) {
    Server* origin = pool_->servers[ack.origin];
    pool_->mail.Post(options_.lane, ack.origin,
                     [origin, conn_id = ack.conn_id, slot_id = ack.slot_id,
                      reply = std::move(ack.reply)]() mutable {
                       origin->CompleteSlot(conn_id, slot_id,
                                            std::move(reply));
                     });
  }
  wave_acks_.clear();
}

void Server::CompleteSlot(uint64_t conn_id, uint64_t slot_id,
                          std::string reply) {
  ctr_forward_acks_->Inc();
  for (auto& [fd, conn] : connections_) {
    if (conn.id != conn_id) continue;
    for (ReplySlot& slot : conn.pending) {
      if (slot.id != slot_id) continue;
      slot.done = true;
      slot.reply = std::move(reply);
      if (slot.trace != nullptr) {
        if (StartsWith(slot.reply, "CLIENT_ERROR") ||
            StartsWith(slot.reply, "SERVER_ERROR")) {
          slot.trace->SetOutcome(obs::TraceOutcome::kError);
          const size_t eol = slot.reply.find('\r');
          slot.trace->SetReason(std::string_view(slot.reply).substr(
              0, eol == std::string::npos ? slot.reply.size() : eol));
        }
        FinishTrace(std::move(slot.trace));
      }
      return;
    }
    return;  // slot vanished (connection reset its pipeline): drop
  }
  // Connection closed while the op was in flight: the reply has no
  // recipient. The write itself is durable on the owner — same semantics
  // as a client disconnecting before reading its reply.
}

std::string Server::ExecuteBarrierVerb(const Request& req,
                                       std::string_view line,
                                       Connection* conn) {
  ctr_barrier_ops_->Inc();
  std::string reply;
  pool_->barrier.Run(options_.lane, &pool_->mail,
                     [&] { reply = ExecuteQuiesced(req, line, conn); });
  return reply;
}

std::string Server::ExecuteQuiesced(const Request& req,
                                    std::string_view line, Connection* conn) {
  // Runs with the pool quiescent: every worker is parked in the barrier,
  // so shards, WAL streams and sibling connection tables are all safe to
  // touch — the single-threaded machinery below needs no extra locking.
  switch (req.verb) {
    case Verb::kAdPut:
    case Verb::kAdDel: {
      // Broadcast: the ad op is appended to EVERY stream (each stream
      // alone must totally order everything touching its shard), then
      // applied to every shard. The appends stay deferred — the
      // originating worker's commit barrier (which covers all streams it
      // dirtied) runs before its reply can flush.
      for (size_t s = 0; s < streams_.size(); ++s) {
        auto seqno = streams_[s]->AppendDeferred(line);
        if (!seqno.ok()) {
          ADREC_LOG(kError) << "serve: barrier wal append failed: "
                            << seqno.status().ToString();
          return "SERVER_ERROR wal append failed" + std::string(kCrlf);
        }
        stream_dirty_[s] = true;
        wal_dirty_ = true;
      }
      const Status st = req.verb == Verb::kAdPut
                            ? engine_->InsertAd(req.ad)
                            : engine_->RemoveAd(req.ad_id);
      return StatusReply(st);
    }
    case Verb::kAnalyze:
      return StatusReply(req.alpha < 0.0 ? engine_->RunAnalysis()
                                         : engine_->RunAnalysis(req.alpha));
    case Verb::kMatch:
      return ExecuteMatch(req);
    case Verb::kSnapshot:
      return ExecuteSnapshot(req);
    case Verb::kCheckpoint:
      return ExecuteCheckpoint();
    case Verb::kCompact:
      return ExecuteCompact();
    case Verb::kPromote:
      return ExecutePromote();
    case Verb::kStats:
      return ExecuteStats();
    case Verb::kMetrics:
      return ExecuteMetrics();
    case Verb::kConns: {
      size_t total = 0;
      for (Server* s : pool_->servers) total += s->num_connections();
      std::string out = StringFormat("CONNS %zu", total) +
                        std::string(kCrlf);
      for (Server* s : pool_->servers) s->AppendConnsTo(&out, conn);
      out += "END";
      out += kCrlf;
      return out;
    }
    default:
      return "SERVER_ERROR unreachable" + std::string(kCrlf);
  }
}

void Server::FinishTrace(std::unique_ptr<obs::TraceBuilder> trace) {
  if (trace == nullptr) return;
  if (options_.tracer != nullptr) options_.tracer->Finish(trace.get());
  trace_pool_.Release(std::move(trace));
}

std::string Server::Execute(const Request& req, Connection* conn) {
  (void)conn;
  switch (req.verb) {
    case Verb::kTweet:
      engine_->OnTweet(req.tweet);
      if (cache_ != nullptr) cache_->OnTweet(req.tweet.user);
      BumpStreamClock(req.tweet.time);
      return "OK" + std::string(kCrlf);
    case Verb::kCheckIn:
      engine_->OnCheckIn(req.check_in);
      if (cache_ != nullptr) {
        cache_->OnCheckIn(req.check_in.user, req.check_in.location);
      }
      BumpStreamClock(req.check_in.time);
      return "OK" + std::string(kCrlf);
    case Verb::kAdPut: {
      const Status st = engine_->InsertAd(req.ad);
      if (cache_ != nullptr && st.ok()) {
        cache_->OnAdPut(req.ad.target_locations, req.ad.target_slots);
      }
      return StatusReply(st);
    }
    case Verb::kAdDel: {
      // The fan-out needs the ad's targeting as stored, and the store
      // forgets it on removal — look it up first.
      std::vector<LocationId> target_locations;
      std::vector<SlotId> target_slots;
      bool stored = false;
      if (cache_ != nullptr) {
        if (const ads::StoredAd* ad = engine_->FindAd(req.ad_id)) {
          stored = true;
          target_locations = ad->ad.target_locations;
          target_slots = ad->ad.target_slots;
        }
      }
      const Status st = engine_->RemoveAd(req.ad_id);
      if (cache_ != nullptr && stored && st.ok()) {
        cache_->OnAdRemoved(target_locations, target_slots);
      }
      return StatusReply(st);
    }
    case Verb::kTopK:
      return ExecuteTopK(req);
    case Verb::kMatch:
      return ExecuteMatch(req);
    case Verb::kAnalyze:
      return StatusReply(req.alpha < 0.0 ? engine_->RunAnalysis()
                                         : engine_->RunAnalysis(req.alpha));
    case Verb::kStats:
      return ExecuteStats();
    case Verb::kMetrics:
      return ExecuteMetrics();
    case Verb::kSnapshot:
      return ExecuteSnapshot(req);
    case Verb::kCheckpoint:
      return ExecuteCheckpoint();
    case Verb::kCompact:
      return ExecuteCompact();
    case Verb::kRepl:
      return ExecuteRepl(req, conn);
    case Verb::kPromote:
      return ExecutePromote();
    case Verb::kTrace:
      return ExecuteTrace(req);
    case Verb::kSlow:
      return ExecuteSlow();
    case Verb::kConns:
      return ExecuteConns(conn);
    case Verb::kPing:
      return "PONG" + std::string(kCrlf);
    case Verb::kQuit:
      break;  // handled in Dispatch
  }
  return "SERVER_ERROR unreachable" + std::string(kCrlf);
}

std::string Server::ExecuteTopK(const Request& req) {
  feed::Tweet query = req.tweet;
  if (!req.has_time) query.time = StreamNow();
  if (cache_ != nullptr) return ExecuteTopKCached(query, req.k);
  return FormatTopKReply(engine_->TopKAdsForTweet(query, req.k));
}

std::string Server::ExecuteTopKCached(const feed::Tweet& query, size_t k) {
  cache::TopkKey key;
  key.user = query.user.value;
  key.time = query.time;
  key.k = static_cast<uint32_t>(k);
  key.text = query.text;

  {
    obs::StageSpan probe(cache_->lookup_timer(), "cache.lookup");
    if (cache::TopkCache::Entry* entry = cache_->Find(key)) {
      // Serving is a mutation: re-check and charge the memoised ads
      // through the engine so a hit is observably identical to a
      // recomputation. A failed revalidation falls through to recompute.
      if (engine_->ChargeCachedTopK(query, entry->ads)) {
        cache_->RecordHit(entry);
        std::string reply = entry->reply;
        if (!entry->ads.empty() && engine_->frequency_cap_enabled()) {
          cache_->OnUserCharged(query.user, key);
        }
        return reply;
      }
      cache_->RecordRevalidationMiss(entry);
    } else {
      cache_->RecordMiss();
    }
  }

  const std::vector<index::ScoredAd> ads = engine_->TopKAdsForTweet(query, k);
  std::string reply = FormatTopKReply(ads);
  {
    obs::StageSpan probe(cache_->fill_timer(), "cache.fill");
    const core::TopkContext ctx = engine_->TopkContextFor(query);
    std::vector<AdId> ids;
    ids.reserve(ads.size());
    for (const index::ScoredAd& sa : ads) ids.push_back(sa.ad);
    const bool charged = !ids.empty();
    cache_->Insert(key, reply, std::move(ids), ctx.location, ctx.slot);
    // The compute above charged this user's frequency caps, which can
    // reshape cap decisions baked into their other entries.
    if (charged && engine_->frequency_cap_enabled()) {
      cache_->OnUserCharged(query.user, key);
    }
  }
  return reply;
}

void Server::InvalidateCacheFor(const feed::FeedEvent& event) {
  if (cache_ == nullptr) return;
  switch (event.kind) {
    case feed::EventKind::kTweet:
      cache_->OnTweet(event.tweet.user);
      break;
    case feed::EventKind::kCheckIn:
      cache_->OnCheckIn(event.check_in.user, event.check_in.location);
      break;
    case feed::EventKind::kAdInsert:
      cache_->OnAdPut(event.ad.target_locations, event.ad.target_slots);
      break;
    case feed::EventKind::kAdDelete:
      // Pre-apply: the ad is still in the store. A missing ad means the
      // delete will no-op, so nothing can change.
      if (const ads::StoredAd* ad = engine_->FindAd(event.ad_id)) {
        cache_->OnAdRemoved(ad->ad.target_locations, ad->ad.target_slots);
      }
      break;
  }
}

std::string Server::ExecuteMatch(const Request& req) {
  auto match = engine_->RecommendUsers(req.ad_id);
  if (!match.ok()) {
    if (match.status().code() == StatusCode::kNotFound) {
      return "NOT_FOUND" + std::string(kCrlf);
    }
    return "SERVER_ERROR " + match.status().ToString() + std::string(kCrlf);
  }
  std::string out = StringFormat("USERS %zu", match.value().users.size()) +
                    std::string(kCrlf);
  for (const core::MatchedUser& mu : match.value().users) {
    out += StringFormat("USER %u ", mu.user.value) + ScoreText(mu.score);
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteStats() {
  const obs::StatsReport report = obs::BuildReport(MergedSnapshot());
  std::string out;
  for (const auto& [name, value] : report.counters) {
    out += "STAT " + name +
           StringFormat(" %llu", static_cast<unsigned long long>(value));
    out += kCrlf;
  }
  for (const auto& [name, value] : report.gauges) {
    out += "STAT " + name + StringFormat(" %.6f", value);
    out += kCrlf;
  }
  for (const auto& [name, t] : report.timers) {
    out += "STAT " + name +
           StringFormat(
               " count=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f",
               static_cast<unsigned long long>(t.count), t.mean, t.p50,
               t.p95, t.p99, t.max);
    out += kCrlf;
  }
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteMetrics() {
  const std::string payload = obs::ExportPrometheus(MergedSnapshot());
  std::string out = StringFormat("METRICS %zu", payload.size()) +
                    std::string(kCrlf);
  out += payload;
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteTrace(const Request& req) {
  if (options_.tracer == nullptr || !options_.tracer->enabled()) {
    return "SERVER_ERROR tracing disabled (no flight recorder configured)" +
           std::string(kCrlf);
  }
  const std::vector<obs::TraceRecord> traces = options_.tracer->Recent();
  const std::string payload = req.chrome ? obs::ExportTracesChrome(traces)
                                         : obs::ExportTracesTsv(traces);
  std::string out = StringFormat("TRACE %zu", payload.size()) +
                    std::string(kCrlf);
  out += payload;
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteSlow() {
  if (options_.tracer == nullptr || !options_.tracer->enabled()) {
    return "SERVER_ERROR tracing disabled (no flight recorder configured)" +
           std::string(kCrlf);
  }
  const std::string payload =
      obs::ExportTracesTsv(options_.tracer->Slow());
  std::string out = StringFormat("SLOW %zu", payload.size()) +
                    std::string(kCrlf);
  out += payload;
  out += "END";
  out += kCrlf;
  return out;
}

void Server::AppendConnsTo(std::string* out, const void* self) const {
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [fd, conn] : connections_) {
    *out += StringFormat(
        "CONN %llu fd=%d worker=%u age_s=%.1f idle_s=%.1f cmds=%llu "
        "last=%.*s bytes_in=%llu bytes_out=%llu inbuf=%zu outbuf=%zu "
        "flags=",
        static_cast<unsigned long long>(conn.id), conn.fd, worker_id(),
        std::chrono::duration<double>(now - conn.created).count(),
        std::chrono::duration<double>(now - conn.last_active).count(),
        static_cast<unsigned long long>(conn.cmds),
        static_cast<int>(conn.last_verb.size()), conn.last_verb.data(),
        static_cast<unsigned long long>(conn.bytes_in),
        static_cast<unsigned long long>(conn.bytes_out), conn.in.size(),
        conn.out.size());
    std::string flags;
    if (static_cast<const void*>(&conn) == self) flags += "self,";
    if (conn.replica) flags += "replica,";
    if (conn.closing) flags += "closing,";
    if (conn.out.size() >= options_.max_write_buffer_bytes) {
      flags += "backpressured,";
    }
    if (flags.empty()) {
      *out += '-';
    } else {
      flags.pop_back();  // trailing comma
      *out += flags;
    }
    *out += kCrlf;
  }
}

std::string Server::ExecuteConns(const Connection* self) {
  std::string out = StringFormat("CONNS %zu", connections_.size()) +
                    std::string(kCrlf);
  AppendConnsTo(&out, self);
  out += "END";
  out += kCrlf;
  return out;
}

std::string Server::ExecuteSnapshot(const Request& req) {
  // The target is client-supplied: never let it name an arbitrary
  // filesystem location. Disabled unless a root is configured; when it
  // is, the path must stay strictly under it.
  if (options_.snapshot_root.empty()) {
    return "SERVER_ERROR snapshot disabled (no snapshot root configured)" +
           std::string(kCrlf);
  }
  if (req.dir.empty() || req.dir.front() == '/') {
    return "CLIENT_ERROR snapshot dir must be a relative path" +
           std::string(kCrlf);
  }
  for (size_t pos = 0; pos <= req.dir.size();) {
    const size_t slash = req.dir.find('/', pos);
    const size_t comp_end = slash == std::string::npos ? req.dir.size()
                                                       : slash;
    if (std::string_view(req.dir).substr(pos, comp_end - pos) == "..") {
      return "CLIENT_ERROR snapshot dir must not contain .." +
             std::string(kCrlf);
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  const std::string base = options_.snapshot_root + "/" + req.dir;
  for (size_t s = 0; s < engine_->num_shards(); ++s) {
    const std::string dir = base + StringFormat("/shard%zu", s);
    const Status st = core::SaveEngineSnapshot(engine_->shard(s), dir);
    if (!st.ok()) {
      return "SERVER_ERROR " + st.ToString() + std::string(kCrlf);
    }
  }
  return "OK" + std::string(kCrlf);
}

std::string Server::ExecuteCheckpoint() {
  if (options_.checkpointer == nullptr || streams_.empty()) {
    return "SERVER_ERROR checkpoint disabled (no wal configured)" +
           std::string(kCrlf);
  }
  const Status st =
      options_.sharded_wal != nullptr
          ? options_.checkpointer->Checkpoint(*engine_, options_.sharded_wal,
                                              StreamNow())
          : options_.checkpointer->Checkpoint(*engine_, streams_[0],
                                              StreamNow());
  if (!st.ok()) {
    return "SERVER_ERROR " + st.ToString() + std::string(kCrlf);
  }
  last_checkpoint_ = std::chrono::steady_clock::now();
  return "OK" + std::string(kCrlf);
}

uint64_t Server::ReplCursorFloor(size_t stream) const {
  uint64_t floor = UINT64_MAX;
  for (const auto& [fd, conn] : connections_) {
    if (conn.replica && conn.repl_stream == stream) {
      floor = std::min<uint64_t>(floor, conn.repl_next_seqno);
    }
  }
  return floor;
}

std::string Server::ExecuteCompact() {
  if (streams_.empty()) {
    return "SERVER_ERROR compaction disabled (no wal configured)" +
           std::string(kCrlf);
  }
  size_t segments_in = 0;
  size_t segments_out = 0;
  uint64_t records_dropped = 0;
  uint64_t bytes_reclaimed = 0;
  for (size_t s = 0; s < num_streams(); ++s) {
    wal::delta::CompactionOptions opts;
    // Frames an attached follower has not consumed yet must survive
    // verbatim: the preserve floor is the min resume cursor across every
    // worker's replication connections on this stream.
    opts.preserve_floor = ReplCursorFloor(s);
    if (pool_mode()) {
      for (Server* srv : pool_->servers) {
        opts.preserve_floor =
            std::min(opts.preserve_floor, srv->ReplCursorFloor(s));
      }
    }
    auto report = wal::delta::CompactSealed(streams_[s], opts);
    if (!report.ok()) {
      ADREC_LOG(kError) << "serve: wal compaction failed (stream " << s
                        << "): " << report.status().ToString();
      return "SERVER_ERROR " + report.status().ToString() +
             std::string(kCrlf);
    }
    if (!report.value().ran) continue;
    segments_in += report.value().segments_in;
    segments_out += report.value().segments_out;
    records_dropped += report.value().records_dropped;
    bytes_reclaimed += report.value().bytes_in - report.value().bytes_out;
  }
  last_compact_ = std::chrono::steady_clock::now();
  if (segments_in > 0) {
    ADREC_LOG(kInfo) << "serve: compacted " << segments_in << " -> "
                     << segments_out << " sealed segments, dropped "
                     << records_dropped << " records, reclaimed "
                     << bytes_reclaimed << " bytes";
  }
  return "OK" + std::string(kCrlf);
}

std::string Server::ExecuteRepl(const Request& req, Connection* conn) {
  if (streams_.empty()) {
    return "SERVER_ERROR replication disabled (no wal configured)" +
           std::string(kCrlf);
  }
  // Stream selection: the legacy one-field handshake only makes sense
  // against a single-stream log; a sharded log requires the explicit
  // `repl <shard> <cursor>` form, one connection per stream.
  size_t stream = 0;
  if (req.repl_shard == SIZE_MAX) {
    if (num_streams() > 1) {
      return StringFormat(
                 "CLIENT_ERROR sharded log: use repl <shard> <cursor> "
                 "(shards 0..%zu)",
                 num_streams() - 1) +
             std::string(kCrlf);
    }
  } else {
    if (req.repl_shard >= num_streams()) {
      return StringFormat("CLIENT_ERROR repl shard %zu out of range (log "
                          "has %zu streams)",
                          req.repl_shard, num_streams()) +
             std::string(kCrlf);
    }
    stream = req.repl_shard;
  }
  // Handshake: from here on the connection is a one-way frame stream,
  // fed by PumpReplicas after each wave's durability barrier. The
  // follower's cursor is the last seqno it already holds.
  conn->replica = true;
  conn->repl_stream = stream;
  conn->repl_next_seqno = req.cursor + 1;
  conn->repl_hint = wal::CursorHint{};
  conn->repl_last_hb = std::chrono::steady_clock::now();
  size_t repl_conns = 0;
  for (const auto& [fd, c] : connections_) repl_conns += c.replica ? 1 : 0;
  g_repl_streams_->Set(static_cast<double>(repl_conns));
  ADREC_LOG(kInfo) << "serve: replication stream attached (stream "
                   << stream << ") at cursor " << req.cursor;
  if (req.repl_shard == SIZE_MAX) {
    return StringFormat("REPL OK %llu",
                        static_cast<unsigned long long>(req.cursor)) +
           std::string(kCrlf);
  }
  return StringFormat("REPL OK %zu %llu", stream,
                      static_cast<unsigned long long>(req.cursor)) +
         std::string(kCrlf);
}

std::string Server::ExecutePromote() {
  if (pool_mode()) {
    // Runs quiesced (barrier). Promote is pool-wide: every worker's
    // followers detach, every stream seals, every worker opens for
    // writes — a pool is promoted once, not worker by worker.
    bool any_follower = false;
    for (Server* s : pool_->servers) {
      any_follower = any_follower || !s->followers().empty();
    }
    if (!any_follower) {
      return "SERVER_ERROR not a follower (nothing to promote)" +
             std::string(kCrlf);
    }
    if (!read_only_) return "OK" + std::string(kCrlf);  // idempotent
    for (Server* s : pool_->servers) {
      for (replica::Follower* follower : s->followers()) follower->Detach();
    }
    for (wal::WalWriter* stream : streams_) {
      const Status rotate = stream->Rotate();
      const Status sync = stream->Sync();
      if (!rotate.ok() || !sync.ok()) {
        return "SERVER_ERROR promote seal failed: " +
               (!rotate.ok() ? rotate.ToString() : sync.ToString()) +
               std::string(kCrlf);
      }
    }
    for (Server* s : pool_->servers) s->set_read_only(false);
    ADREC_LOG(kInfo) << "serve: pool promoted to leader ("
                     << streams_.size() << " streams sealed), accepting "
                     << "writes";
    return "OK" + std::string(kCrlf);
  }
  if (followers_.empty()) {
    return "SERVER_ERROR not a follower (nothing to promote)" +
           std::string(kCrlf);
  }
  if (!read_only_) return "OK" + std::string(kCrlf);  // idempotent
  for (replica::Follower* follower : followers_) follower->Detach();
  // Seal the replicated history: everything applied as a follower is
  // fdatasynced and closed into an immutable segment before the first
  // write of the new epoch can land. Every stream seals — promotion is a
  // log-wide epoch boundary, not a per-stream one.
  for (wal::WalWriter* stream : streams_) {
    const Status rotate = stream->Rotate();
    const Status sync = stream->Sync();
    if (!rotate.ok() || !sync.ok()) {
      return "SERVER_ERROR promote seal failed: " +
             (!rotate.ok() ? rotate.ToString() : sync.ToString()) +
             std::string(kCrlf);
    }
  }
  read_only_ = false;
  ADREC_LOG(kInfo) << "serve: promoted to leader ("
                   << streams_.size() << " streams sealed), accepting "
                   << "writes";
  return "OK" + std::string(kCrlf);
}

void Server::PumpReplicas() {
  if (streams_.empty()) return;
  // Per-stream durability horizon, computed lazily: ship only what each
  // stream's barrier has released — flushed frames are complete on disk
  // and their replies (if any) are out, so a follower can never hold a
  // record the leader would deny. (flushed_seqno takes the stream's
  // mutex: fine, this reads at most num_streams locks per wave.)
  std::vector<uint64_t> limits(streams_.size(), 0);
  std::vector<bool> limit_known(streams_.size(), false);
  const auto now = std::chrono::steady_clock::now();
  for (auto& [fd, conn] : connections_) {
    if (!conn.replica || conn.closing) continue;
    const size_t s = conn.repl_stream;
    if (!limit_known[s]) {
      limits[s] = streams_[s]->flushed_seqno();
      limit_known[s] = true;
    }
    const uint64_t limit = limits[s];
    // Backpressure: a stream that cannot drain keeps its cursor; the
    // log is the queue, so nothing is lost while it stalls.
    if (conn.out.size() < options_.max_write_buffer_bytes &&
        conn.repl_next_seqno <= limit) {
      auto batch = wal::ReadFrames(streams_[s]->dir(),
                                   conn.repl_next_seqno, limit,
                                   options_.repl_batch_bytes,
                                   &conn.repl_hint);
      if (!batch.ok()) {
        // Cursor below retention (or log corruption): this stream can
        // never be satisfied — tell it why and hang up; the follower
        // must re-seed from a checkpoint.
        ADREC_LOG(kWarning) << "serve: replication stream failed: "
                            << batch.status().ToString();
        conn.out += "SERVER_ERROR " + batch.status().ToString();
        conn.out += kCrlf;
        conn.closing = true;
        continue;
      }
      if (!batch.value().frames.empty()) {
        conn.out += batch.value().frames;
        conn.repl_next_seqno = batch.value().next_seqno;
        ctr_repl_bytes_shipped_->Inc(batch.value().frames.size());
      }
    }
    const double since_hb =
        std::chrono::duration<double>(now - conn.repl_last_hb).count();
    if (since_hb >= options_.repl_heartbeat_interval) {
      conn.out += StringFormat("REPL HB %llu",
                               static_cast<unsigned long long>(limit));
      conn.out += kCrlf;
      conn.repl_last_hb = now;
      ctr_repl_heartbeats_->Inc();
    }
  }
}

void Server::CommitWal() {
  if (!wal_dirty_) return;
  wal_dirty_ = false;
  const auto commit_t0 = std::chrono::steady_clock::now();
  Status first_error = Status::OK();
  for (size_t s = 0; s < streams_.size(); ++s) {
    if (!stream_dirty_[s]) continue;
    stream_dirty_[s] = false;
    const Status st = streams_[s]->Commit();
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  if (!first_error.ok()) {
    // The replies for this batch were already formatted as OK; a failing
    // fdatasync here means acknowledged-but-maybe-lost. There is no way
    // to recall the replies, so make the breach loud.
    ADREC_LOG(kError) << "serve: wal commit failed: "
                      << first_error.ToString();
  }
  if (!wave_traces_.empty()) {
    // Group commit is a wave-level event: one fdatasync per dirty stream
    // covers every write of the batch. Each trace gets the same interval
    // as a retroactive span — the per-request view of the shared barrier.
    const auto commit_t1 = std::chrono::steady_clock::now();
    for (std::unique_ptr<obs::TraceBuilder>& trace : wave_traces_) {
      trace->AddSpan("wal.commit_wave", commit_t0, commit_t1);
      if (!first_error.ok()) {
        trace->SetOutcome(obs::TraceOutcome::kError);
        trace->SetReason("wal commit failed");
      }
      FinishTrace(std::move(trace));
    }
    wave_traces_.clear();
  }
}

void Server::MaybeCheckpoint() {
  if (options_.checkpointer == nullptr || streams_.empty() ||
      options_.checkpoint_interval <= 0.0) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  const double since =
      std::chrono::duration<double>(now - last_checkpoint_).count();
  if (since < options_.checkpoint_interval) return;
  last_checkpoint_ = now;
  auto do_checkpoint = [this] {
    const Status st =
        options_.sharded_wal != nullptr
            ? options_.checkpointer->Checkpoint(
                  *engine_, options_.sharded_wal, StreamNow())
            : options_.checkpointer->Checkpoint(*engine_, streams_[0],
                                                StreamNow());
    if (!st.ok()) {
      ADREC_LOG(kError) << "serve: periodic checkpoint failed: "
                        << st.ToString();
    } else {
      ADREC_LOG(kInfo) << "serve: checkpoint at wal seqno "
                       << streams_[0]->synced_seqno();
    }
  };
  if (pool_mode()) {
    // Checkpointing reads every shard: stop the world, exactly like the
    // explicit `checkpoint` verb. Only lane 0 initiates (Run gates it).
    pool_->barrier.Run(options_.lane, &pool_->mail, do_checkpoint);
  } else {
    do_checkpoint();
  }
}

void Server::MaybeCompact() {
  if (streams_.empty() || options_.compact_interval <= 0.0) return;
  const auto now = std::chrono::steady_clock::now();
  const double since =
      std::chrono::duration<double>(now - last_compact_).count();
  if (since < options_.compact_interval) return;
  last_compact_ = now;
  auto do_compact = [this] {
    const std::string reply = ExecuteCompact();
    if (!StartsWith(reply, "OK")) {
      ADREC_LOG(kError) << "serve: idle compaction failed: " << reply;
    }
  };
  if (pool_mode()) {
    // Compaction rewrites every stream's sealed files and scans sibling
    // connection tables for replica cursors: stop the world, exactly
    // like the explicit `compact` verb. Only lane 0 initiates.
    pool_->barrier.Run(options_.lane, &pool_->mail, do_compact);
  } else {
    do_compact();
  }
}

obs::MetricsSnapshot Server::MergedSnapshot() const {
  if (pool_mode() && pool_->merged_snapshot) {
    // The pool-wide view. Only safe quiescent (stats/metrics run under
    // the barrier in pool mode) or after the workers stopped.
    return pool_->merged_snapshot();
  }
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
  snapshot.MergeFrom(engine_->MergedMetrics());
  if (cache_ != nullptr) {
    snapshot.MergeFrom(cache_->metrics().Snapshot());
  }
  if (options_.sharded_wal != nullptr) {
    snapshot.MergeFrom(options_.sharded_wal->MergedMetrics());
  } else if (options_.wal != nullptr) {
    snapshot.MergeFrom(options_.wal->metrics().Snapshot());
  }
  for (const replica::Follower* follower : followers_) {
    snapshot.MergeFrom(follower->metrics().Snapshot());
  }
  if (options_.checkpointer != nullptr) {
    snapshot.MergeFrom(options_.checkpointer->metrics().Snapshot());
  }
  if (options_.tracer != nullptr) {
    snapshot.MergeFrom(options_.tracer->metrics().Snapshot());
  }
  return snapshot;
}

bool Server::WriteTo(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n = ::send(conn->fd, conn->out.data(), conn->out.size(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      ctr_bytes_out_->Inc(static_cast<uint64_t>(n));
      conn->bytes_out += static_cast<uint64_t>(n);
      conn->out.erase(0, static_cast<size_t>(n));
      conn->last_active = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && errno == EINTR) continue;  // drain signal mid-send
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    CloseConnection(conn);  // EPIPE/ECONNRESET
    return false;
  }
  // A half-closed peer may still have complete pipelined lines buffered
  // in `in` (read before its EOF); those are owed responses, so only
  // close once nothing processable remains — including forwarded ops
  // whose acks have not come back yet.
  if (conn->closing && conn->in.find('\n') == std::string::npos &&
      conn->pending.empty()) {
    CloseConnection(conn);
    return false;
  }
  return true;
}

void Server::CloseConnection(Connection* conn) {
  const int fd = conn->fd;
  const bool was_replica = conn->replica;
  ::close(fd);
  connections_.erase(fd);
  g_active_->Set(static_cast<double>(connections_.size()));
  if (was_replica) {
    size_t repl_conns = 0;
    for (const auto& [f, c] : connections_) repl_conns += c.replica ? 1 : 0;
    g_repl_streams_->Set(static_cast<double>(repl_conns));
  }
}

void Server::CloseIdle() {
  if (options_.idle_timeout <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<int> idle;
  for (const auto& [fd, conn] : connections_) {
    // Replication streams are one-way by design: the follower never
    // sends another byte after the handshake, so "idle since last read"
    // is their steady state, not abandonment. Liveness comes from the
    // stream itself — a dead follower surfaces as EPIPE/ECONNRESET on
    // the next frame or heartbeat.
    if (conn.replica) continue;
    const double silent =
        std::chrono::duration<double>(now - conn.last_active).count();
    if (silent > static_cast<double>(options_.idle_timeout)) {
      idle.push_back(fd);
    }
  }
  for (int fd : idle) {
    ctr_idle_closed_->Inc();
    CloseConnection(&connections_.at(fd));
  }
}

void Server::Run() {
  ADREC_CHECK(listen_fd_ >= 0 || pool_mode());
  // Pool workers skip the reporter: its merged scrape is only safe
  // quiescent, and per-worker console cadence would interleave anyway.
  // The pool view is the `stats` verb (a barrier op).
  const bool reporting = options_.report_interval > 0.0 && !pool_mode();
  PeriodicReporter reporter([this] { return MergedSnapshot(); },
                            reporting ? options_.report_interval : 1e9);
  const auto drain_deadline_never = std::chrono::steady_clock::time_point::max();
  auto drain_deadline = drain_deadline_never;
  last_checkpoint_ = std::chrono::steady_clock::now();
  last_compact_ = last_checkpoint_;

  std::vector<pollfd> fds;
  std::vector<int> conn_fds;
  std::vector<replica::Follower*> polled_followers;
  for (;;) {
    if (draining_ && connections_.empty()) break;
    if (draining_ && std::chrono::steady_clock::now() > drain_deadline) {
      // Grace expired: drop whatever could not be flushed.
      while (!connections_.empty()) {
        CloseConnection(&connections_.begin()->second);
      }
      break;
    }

    fds.clear();
    conn_fds.clear();
    polled_followers.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    const bool listen_polled =
        listen_fd_ >= 0 && !draining_ &&
        std::chrono::steady_clock::now() >= accept_pause_until_;
    if (listen_polled) fds.push_back({listen_fd_, POLLIN, 0});
    // Pool mode: sleep interruptibly on the mailbox wake pipe too, so a
    // forwarded op or a barrier arrival lands within this poll wave.
    const bool mail_polled = pool_mode();
    if (mail_polled) {
      fds.push_back({pool_->mail.wake_fd(options_.lane), POLLIN, 0});
    }
    // Follower mode: every leader connection lives in this poll set —
    // the event loop stays the engine's only mutator, replication
    // included. (A pool worker polls the followers of its own shards.)
    for (replica::Follower* follower : followers_) {
      if (follower->detached() || follower->fd() < 0) continue;
      short events = POLLIN;
      if (follower->want_write()) events |= POLLOUT;
      fds.push_back({follower->fd(), events, 0});
      polled_followers.push_back(follower);
    }
    bool has_repl_stream = false;
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      // Backpressured or closing connections are not read further.
      if (!conn.closing &&
          conn.out.size() < options_.max_write_buffer_bytes &&
          conn.pending.size() < kMaxPendingForwards) {
        events |= POLLIN;
      }
      if (!conn.out.empty()) events |= POLLOUT;
      if (events == 0) events = POLLHUP;  // still notice resets
      fds.push_back({fd, events, 0});
      conn_fds.push_back(fd);
      has_repl_stream = has_repl_stream || conn.replica;
    }

    // Timeout: the finest of idle sweep, reporter cadence, drain grace.
    int timeout_ms = -1;
    if (options_.idle_timeout > 0) timeout_ms = 1000;
    if (reporting) {
      const int r = static_cast<int>(options_.report_interval * 1000 / 2);
      timeout_ms = timeout_ms < 0 ? std::max(r, 10)
                                  : std::min(timeout_ms, std::max(r, 10));
    }
    if (listen_fd_ >= 0 && !draining_ && !listen_polled) {
      // Accepts are paused (descriptor exhaustion): wake soon enough to
      // resume the listener once the backoff lapses.
      timeout_ms = timeout_ms < 0 ? 100 : std::min(timeout_ms, 100);
    }
    if (options_.checkpointer != nullptr &&
        options_.checkpoint_interval > 0.0 &&
        (!pool_mode() || options_.lane == 0)) {
      // Periodic checkpoints must fire even on an idle stream.
      timeout_ms = timeout_ms < 0 ? 1000 : std::min(timeout_ms, 1000);
    }
    for (replica::Follower* follower : followers_) {
      if (follower->detached()) continue;
      // Reconnect backoff and lag gauges are time-driven.
      const int f = follower->TickDelayMs();
      timeout_ms = timeout_ms < 0 ? f : std::min(timeout_ms, f);
    }
    if (has_repl_stream) {
      // Heartbeats to attached followers must fire on an idle stream.
      const int hb = std::max(
          50, static_cast<int>(options_.repl_heartbeat_interval * 500));
      timeout_ms = timeout_ms < 0 ? hb : std::min(timeout_ms, hb);
    }
    if (draining_) timeout_ms = 50;

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) {
      ADREC_LOG(kError) << "poll: " << std::strerror(errno);
      break;
    }

    size_t idx = 0;
    if (fds[idx].revents & POLLIN) {
      char buf[64];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    // The wake pipe multiplexes drain requests and socket adoption; the
    // flag and the queue say which (possibly both).
    AdoptPending();
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      draining_ = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               options_.drain_timeout));
      if (listen_fd_ >= 0) {
        // Close the listening socket immediately: leaving it open would
        // let the kernel keep accepting into the backlog, stranding
        // clients that will never be served.
        ::close(listen_fd_);
        listen_fd_ = -1;
      }
      ADREC_LOG(kInfo) << "serve: drain requested, "
                       << connections_.size() << " connections open";
    }
    ++idx;
    if (listen_polled) {
      if (!draining_ && listen_fd_ >= 0 &&
          (fds[idx].revents & (POLLIN | POLLERR))) {
        AcceptNew();
      }
      ++idx;
    }
    if (mail_polled) ++idx;  // Drain() below reads the pipe itself
    // Mailbox drain: forwarded ops execute here (their WAL appends stay
    // deferred into this wave's commit barrier), acks complete reply
    // slots, barrier arrivals park this worker.
    if (pool_mode()) {
      pool_->mail.FlushRetries(options_.lane);
      pool_->mail.Drain(options_.lane);
    }
    for (replica::Follower* follower : polled_followers) {
      if (fds[idx].revents != 0) follower->OnPollEvents(fds[idx].revents);
      ++idx;
    }
    for (replica::Follower* follower : followers_) {
      follower->Tick();
      // Replicated events drive this daemon's stream clock so time-less
      // `topk` on the replica answers at the replicated position.
      BumpStreamClock(follower->max_event_time());
    }

    // Read + process every ready connection first — their WAL appends
    // stay deferred — then run ONE durability barrier for the whole wave
    // before any reply reaches a socket. This is what makes group commit
    // group: the wave shares a single fdatasync (per dirty stream)
    // instead of paying one per connection.
    for (size_t c = 0; c < conn_fds.size(); ++c, ++idx) {
      auto it = connections_.find(conn_fds[c]);
      if (it == connections_.end()) continue;  // closed earlier this round
      Connection* conn = &it->second;
      const short revents = fds[idx].revents;
      if (revents & (POLLERR | POLLNVAL)) {
        CloseConnection(conn);
        continue;
      }
      if (revents & (POLLIN | POLLHUP)) {
        if (!ReadFrom(conn)) continue;
      }
      ProcessLines(conn);
    }
    // Durability before visibility: every deferred WAL append of the
    // wave is committed before any of the wave's replies can be written.
    CommitWal();
    // ... and before any forwarded op executed here is acknowledged to
    // its origin worker — the ack rides behind the same barrier.
    FlushWaveAcks();
    // ... and replication before acknowledgement-chasing: the wave's
    // freshly durable frames fan out to attached followers in the same
    // pass that flushes the wave's replies.
    PumpReplicas();
    for (size_t c = 0; c < conn_fds.size(); ++c) {
      auto it = connections_.find(conn_fds[c]);
      if (it == connections_.end()) continue;
      Connection* conn = &it->second;
      // Flush-and-resume until quiescent. One pass is not enough: a
      // backpressured connection keeps complete pipelined lines in `in`,
      // and a peer waiting for those replies sends nothing more — no
      // POLLIN ever fires again. So whenever a write drains the buffer
      // back under the cap, resume consuming the pipeline right here
      // instead of waiting on poll (committing each resumed batch before
      // its replies flush).
      for (;;) {
        FlushReplySlots(conn);
        if (!conn->out.empty() || conn->closing) {
          if (!WriteTo(conn)) break;  // connection closed and erased
        }
        if (conn->out.size() >= options_.max_write_buffer_bytes) break;
        if (conn->in.find('\n') == std::string::npos) break;
        const size_t in_before = conn->in.size();
        const size_t pending_before = conn->pending.size();
        ProcessLines(conn);
        CommitWal();
        FlushWaveAcks();
        // No progress (e.g. the forward-slot cap): the resume point is
        // the acks draining the slots, not this loop.
        if (conn->in.size() == in_before &&
            conn->pending.size() == pending_before) {
          break;
        }
      }
    }

    CloseIdle();
    if (!draining_ && (!pool_mode() || options_.lane == 0)) {
      MaybeCheckpoint();
      MaybeCompact();
    }
    if (reporting && !draining_) reporter.TickIfDue();
    // Drain semantics: stop reading new requests, flush what is queued.
    if (draining_) {
      for (auto& [fd, conn] : connections_) conn.closing = true;
      std::vector<int> done;
      for (auto& [fd, conn] : connections_) {
        if (conn.out.empty() && conn.pending.empty()) done.push_back(fd);
      }
      for (int fd : done) CloseConnection(&connections_.at(fd));
    }
  }
  if (pool_mode()) {
    // Leave the rendezvous set so a sibling's in-flight barrier never
    // waits on this thread; the PoolServer syncs the streams after every
    // worker has joined.
    pool_->barrier.Deregister(options_.lane);
  } else {
    for (wal::WalWriter* stream : streams_) {
      // Final barrier: under kNone/kInterval the tail of the log may
      // still be in page cache; a clean shutdown should not lose it.
      const Status st = stream->Sync();
      if (!st.ok()) {
        ADREC_LOG(kError) << "serve: final wal sync failed: "
                          << st.ToString();
      }
    }
  }
  ADREC_LOG(kInfo) << "serve: drained, event loop exiting";
}

}  // namespace adrec::serve
