#ifndef ADREC_SERVE_CLIENT_H_
#define ADREC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"
#include "feed/types.h"
#include "index/ad_index.h"
#include "serve/protocol.h"

namespace adrec::serve {

/// Opt-in transport-failure recovery for Client: on ECONNRESET / EPIPE /
/// connection-closed (any kIoError from the socket), the command is
/// retried over a fresh connection with capped exponential backoff —
/// what lets a client ride through a leader failover to a freshly
/// promoted follower at the same address. Off by default because the
/// retry is at-least-once: a mutation whose reply was lost in the reset
/// may execute twice (harmless for the idempotent ingest grammar, but
/// the caller should know).
struct ReconnectOptions {
  bool enabled = false;
  /// Reconnect attempts per command before the error surfaces.
  int max_attempts = 6;
  /// First retry after this many seconds, doubling per attempt ...
  double backoff_initial = 0.1;
  /// ... capped here.
  double backoff_max = 2.0;
};

/// A blocking adrecd client: one TCP connection, synchronous
/// request/response. The typed helpers format a command, send it, and
/// parse the framed reply; Command() is the generic escape hatch used by
/// the CLI and tests (it returns the raw response including multi-line
/// frames, CRLF stripped per line).
///
/// Not thread-safe: one Client per thread, like the protocol it speaks
/// (responses carry no request ids; ordering is the correlation).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_),
        buffer_(std::move(other.buffer_)),
        host_(std::move(other.host_)),
        port_(other.port_),
        reconnect_(other.reconnect_) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      host_ = std::move(other.host_);
      port_ = other.port_;
      reconnect_ = other.reconnect_;
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to an adrecd at host:port (remembered for reconnects).
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  /// Enables (or reconfigures) automatic reconnect for every subsequent
  /// command. See ReconnectOptions for the at-least-once caveat.
  void SetReconnect(ReconnectOptions options) { reconnect_ = options; }

  // --- Typed commands. ---

  Status SendTweet(const feed::Tweet& tweet);
  Status SendCheckIn(const feed::CheckIn& check_in);
  Status PutAd(const feed::Ad& ad);
  /// NOT_FOUND surfaces as StatusCode::kNotFound.
  Status DeleteAd(AdId id);

  /// `topk <user> <k>` — query at the server's stream clock.
  Result<std::vector<index::ScoredAd>> TopK(UserId user, size_t k);
  /// `topk <user> <k> <time> [<text>]` — explicit query time and text.
  Result<std::vector<index::ScoredAd>> TopK(UserId user, size_t k,
                                            Timestamp time,
                                            std::string_view text);
  /// `match <ad>` — users recommended for an ad (score order).
  Result<std::vector<core::MatchedUser>> Match(AdId id);

  Status Analyze(double alpha);
  /// Analyze with each shard's configured default alpha.
  Status Analyze();
  /// `snapshot <dir>` — `dir` is resolved server-side against the
  /// daemon's configured snapshot root (relative, no `..`); fails unless
  /// the server was started with one.
  Status Snapshot(const std::string& dir);
  /// The Prometheus payload of the `metrics` command.
  Result<std::string> Metrics();
  /// The flight-recorder dump of the `trace` command: TSV, or Chrome
  /// trace-event JSON (Perfetto-loadable) when `chrome` is set.
  Result<std::string> Trace(bool chrome = false);
  /// The slow-request log of the `slow` command (TSV).
  Result<std::string> Slow();
  Status Ping();
  /// Sends `quit` and closes the connection.
  void Quit();

  /// Sends one raw command line (no terminator) and returns the complete
  /// framed response: every line CRLF-stripped, joined with '\n'. Knows
  /// the framing (END-terminated lists, METRICS byte counts, single-line
  /// statuses) so it never under- or over-reads a pipelined stream.
  Result<std::string> Command(std::string_view line);

 private:
  /// Writes `line` + LF; loops over partial sends.
  Status SendLine(std::string_view line);
  /// Reads up to the next LF (CRLF stripped).
  Result<std::string> ReadLine();
  /// Reads exactly `n` bytes.
  Result<std::string> ReadBytes(size_t n);
  /// Reads a framed response for a command already sent.
  Result<std::string> ReadResponse();
  /// Sends a topk command line and parses the ADS frame.
  Result<std::vector<index::ScoredAd>> TopKCommand(std::string_view cmd);
  /// Expects a single-line "OK"-style reply, mapping error framing back
  /// to Status codes.
  Status ExpectOk(std::string_view sent);

  /// One send + framed read, no retry (the pre-reconnect Command body).
  Result<std::string> CommandOnce(std::string_view line);

  int fd_ = -1;
  std::string buffer_;  // bytes read but not yet consumed
  std::string host_;    // last Connect target, for reconnects
  uint16_t port_ = 0;
  ReconnectOptions reconnect_;
};

}  // namespace adrec::serve

#endif  // ADREC_SERVE_CLIENT_H_
