#ifndef ADREC_SERVE_CLIENT_H_
#define ADREC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"
#include "feed/types.h"
#include "index/ad_index.h"
#include "serve/protocol.h"

namespace adrec::serve {

/// A blocking adrecd client: one TCP connection, synchronous
/// request/response. The typed helpers format a command, send it, and
/// parse the framed reply; Command() is the generic escape hatch used by
/// the CLI and tests (it returns the raw response including multi-line
/// frames, CRLF stripped per line).
///
/// Not thread-safe: one Client per thread, like the protocol it speaks
/// (responses carry no request ids; ordering is the correlation).
class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept
      : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
    other.fd_ = -1;
  }
  Client& operator=(Client&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      buffer_ = std::move(other.buffer_);
      other.fd_ = -1;
    }
    return *this;
  }

  /// Connects to an adrecd at host:port.
  Status Connect(const std::string& host, uint16_t port);
  bool connected() const { return fd_ >= 0; }
  void Close();

  // --- Typed commands. ---

  Status SendTweet(const feed::Tweet& tweet);
  Status SendCheckIn(const feed::CheckIn& check_in);
  Status PutAd(const feed::Ad& ad);
  /// NOT_FOUND surfaces as StatusCode::kNotFound.
  Status DeleteAd(AdId id);

  /// `topk <user> <k>` — query at the server's stream clock.
  Result<std::vector<index::ScoredAd>> TopK(UserId user, size_t k);
  /// `topk <user> <k> <time> [<text>]` — explicit query time and text.
  Result<std::vector<index::ScoredAd>> TopK(UserId user, size_t k,
                                            Timestamp time,
                                            std::string_view text);
  /// `match <ad>` — users recommended for an ad (score order).
  Result<std::vector<core::MatchedUser>> Match(AdId id);

  Status Analyze(double alpha);
  /// Analyze with each shard's configured default alpha.
  Status Analyze();
  /// `snapshot <dir>` — `dir` is resolved server-side against the
  /// daemon's configured snapshot root (relative, no `..`); fails unless
  /// the server was started with one.
  Status Snapshot(const std::string& dir);
  /// The Prometheus payload of the `metrics` command.
  Result<std::string> Metrics();
  Status Ping();
  /// Sends `quit` and closes the connection.
  void Quit();

  /// Sends one raw command line (no terminator) and returns the complete
  /// framed response: every line CRLF-stripped, joined with '\n'. Knows
  /// the framing (END-terminated lists, METRICS byte counts, single-line
  /// statuses) so it never under- or over-reads a pipelined stream.
  Result<std::string> Command(std::string_view line);

 private:
  /// Writes `line` + LF; loops over partial sends.
  Status SendLine(std::string_view line);
  /// Reads up to the next LF (CRLF stripped).
  Result<std::string> ReadLine();
  /// Reads exactly `n` bytes.
  Result<std::string> ReadBytes(size_t n);
  /// Reads a framed response for a command already sent.
  Result<std::string> ReadResponse();
  /// Sends a topk command line and parses the ADS frame.
  Result<std::vector<index::ScoredAd>> TopKCommand(std::string_view cmd);
  /// Expects a single-line "OK"-style reply, mapping error framing back
  /// to Status codes.
  Status ExpectOk(std::string_view sent);

  int fd_ = -1;
  std::string buffer_;  // bytes read but not yet consumed
};

}  // namespace adrec::serve

#endif  // ADREC_SERVE_CLIENT_H_
