#include "serve/reporter.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::serve {

namespace {

/// The generic one-line window summary: engine events/sec, serve cmds/sec
/// and the slowest per-verb p95 — whatever of those the snapshot carries.
void LogWindow(const WindowReport& report) {
  uint64_t events = 0;
  uint64_t cmds = 0;
  for (const auto& [name, delta] : report.counter_deltas) {
    if (name == "engine.tweets" || name == "engine.checkins") events += delta;
    if (StartsWith(name, "serve.cmd_")) cmds += delta;
  }
  std::string worst_timer = "-";
  double worst_p95 = 0.0;
  for (const auto& [name, stat] : report.timers) {
    if (stat.p95 > worst_p95) {
      worst_p95 = stat.p95;
      worst_timer = name;
    }
  }
  const double w = report.wall_seconds > 0.0 ? report.wall_seconds : 1.0;
  ADREC_LOG(kInfo) << StringFormat(
      "window %.1fs: %.0f events/s, %.0f cmds/s, worst p95 %s=%.1f",
      report.wall_seconds, static_cast<double>(events) / w,
      static_cast<double>(cmds) / w, worst_timer.c_str(), worst_p95);
}

}  // namespace

PeriodicReporter::PeriodicReporter(SnapshotFn snapshot_fn,
                                   double interval_seconds, Sink sink)
    : snapshot_fn_(std::move(snapshot_fn)),
      interval_seconds_(interval_seconds),
      sink_(std::move(sink)),
      last_(snapshot_fn_()),
      last_time_(std::chrono::steady_clock::now()) {}

bool PeriodicReporter::TickIfDue() {
  const auto now = std::chrono::steady_clock::now();
  if (std::chrono::duration<double>(now - last_time_).count() <
      interval_seconds_) {
    return false;
  }
  Tick();
  return true;
}

WindowReport PeriodicReporter::Tick() {
  const auto now = std::chrono::steady_clock::now();
  obs::MetricsSnapshot current = snapshot_fn_();

  WindowReport report;
  report.wall_seconds =
      std::chrono::duration<double>(now - last_time_).count();
  for (const auto& [name, value] : current.counters) {
    const auto it = last_.counters.find(name);
    const uint64_t before = it == last_.counters.end() ? 0 : it->second;
    const uint64_t delta = value >= before ? value - before : 0;
    report.counter_deltas[name] = delta;
    report.rates[name] = report.wall_seconds > 0.0
                             ? static_cast<double>(delta) /
                                   report.wall_seconds
                             : 0.0;
  }
  for (const auto& [name, hist] : current.timers) {
    const auto it = last_.timers.find(name);
    const Histogram window =
        it == last_.timers.end() ? hist : hist.DeltaSince(it->second);
    if (window.count() == 0) continue;
    obs::TimerStat stat;
    stat.count = window.count();
    stat.mean = window.Mean();
    stat.p50 = window.Quantile(0.50);
    stat.p95 = window.Quantile(0.95);
    stat.p99 = window.Quantile(0.99);
    stat.min = window.min();
    stat.max = window.max();
    report.timers.emplace(name, stat);
  }

  last_ = std::move(current);
  last_time_ = now;
  if (sink_) {
    sink_(report);
  } else {
    LogWindow(report);
  }
  return report;
}

}  // namespace adrec::serve
