#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/string_util.h"

namespace adrec::serve {

namespace {

/// Replies that are complete in one line (everything except the
/// END-framed list/stat/metrics responses).
bool IsSingleLineReply(std::string_view first) {
  return first == "OK" || first == "PONG" || first == "NOT_FOUND" ||
         first == "READONLY" || StartsWith(first, "CLIENT_ERROR") ||
         StartsWith(first, "SERVER_ERROR");
}

Status StatusFromReply(std::string_view reply) {
  if (reply == "NOT_FOUND") return Status::NotFound("not found");
  if (reply == "READONLY") {
    return Status::FailedPrecondition(
        "read-only replica rejected the write");
  }
  if (StartsWith(reply, "CLIENT_ERROR ")) {
    return Status::InvalidArgument(
        std::string(reply.substr(strlen("CLIENT_ERROR "))));
  }
  if (StartsWith(reply, "SERVER_ERROR ")) {
    return Status::Internal(
        std::string(reply.substr(strlen("SERVER_ERROR "))));
  }
  return Status::Internal("unexpected reply '" + std::string(reply) + "'");
}

Result<double> ParseScore(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::Internal("bad score '" + s + "' in reply");
  }
  return v;
}

}  // namespace

Client::~Client() { Close(); }

Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  host_ = host;
  port_ = port;
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(StringFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IoError(StringFormat(
        "connect %s:%u: %s", host.c_str(), port, std::strerror(errno)));
    Close();
    return st;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  buffer_.clear();
}

Status Client::SendLine(std::string_view line) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  std::string frame(line);
  frame.push_back('\n');
  size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(
          StringFormat("send: %s", std::strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> Client::ReadLine() {
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      size_t end = nl;
      if (end > 0 && buffer_[end - 1] == '\r') --end;
      std::string line = buffer_.substr(0, end);
      buffer_.erase(0, nl + 1);
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::IoError(n == 0 ? "connection closed by server"
                                      : StringFormat("recv: %s",
                                                     std::strerror(errno)));
  }
}

Result<std::string> Client::ReadBytes(size_t n) {
  while (buffer_.size() < n) {
    char chunk[4096];
    const ssize_t r = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (r > 0) {
      buffer_.append(chunk, static_cast<size_t>(r));
      continue;
    }
    if (r < 0 && errno == EINTR) continue;
    return Status::IoError(r == 0 ? "connection closed by server"
                                      : StringFormat("recv: %s",
                                                     std::strerror(errno)));
  }
  std::string out = buffer_.substr(0, n);
  buffer_.erase(0, n);
  return out;
}

Result<std::string> Client::ReadResponse() {
  auto first = ReadLine();
  if (!first.ok()) return first.status();
  if (IsSingleLineReply(first.value())) return first;

  std::string out = first.value();
  // Length-framed payloads: "<HEADER> <bytes>\r\n" <bytes> "END\r\n".
  // `metrics` (Prometheus text) and `trace`/`slow` (TSV or JSON) carry
  // arbitrary bytes, so the line loop below cannot frame them.
  size_t header_len = 0;
  for (const std::string_view header : {"METRICS ", "TRACE ", "SLOW "}) {
    if (StartsWith(first.value(), header)) {
      header_len = header.size();
      break;
    }
  }
  if (header_len > 0) {
    char* end = nullptr;
    const std::string count_str = first.value().substr(header_len);
    const unsigned long long bytes = std::strtoull(count_str.c_str(), &end, 10);
    if (end == count_str.c_str() || *end != '\0') {
      return Status::Internal("bad length frame '" + first.value() + "'");
    }
    auto payload = ReadBytes(static_cast<size_t>(bytes));
    if (!payload.ok()) return payload.status();
    out.push_back('\n');
    out += payload.value();
  }
  for (;;) {
    auto line = ReadLine();
    if (!line.ok()) return line.status();
    if (!out.empty() && out.back() != '\n') out.push_back('\n');
    out += line.value();
    if (line.value() == "END") return out;
  }
}

Result<std::string> Client::CommandOnce(std::string_view line) {
  ADREC_RETURN_NOT_OK(SendLine(line));
  return ReadResponse();
}

Result<std::string> Client::Command(std::string_view line) {
  Result<std::string> reply = CommandOnce(line);
  if (reply.ok() || !reconnect_.enabled) return reply;
  // Transport failure with reconnect enabled: ride through a daemon
  // restart or a failover to a promoted follower. Only kIoError (socket
  // died) and kFailedPrecondition (never connected — e.g. the daemon is
  // not up yet) retry; a protocol-level error reply arrived fine and
  // must surface as is.
  double backoff = reconnect_.backoff_initial;
  for (int attempt = 0; attempt < reconnect_.max_attempts; ++attempt) {
    const StatusCode code = reply.status().code();
    if (code != StatusCode::kIoError &&
        code != StatusCode::kFailedPrecondition) {
      return reply;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    backoff = std::min(backoff * 2.0, reconnect_.backoff_max);
    const Status conn = Connect(host_, port_);
    if (!conn.ok()) {
      reply = conn;
      continue;
    }
    reply = CommandOnce(line);
    if (reply.ok()) return reply;
  }
  return reply;
}

Status Client::ExpectOk(std::string_view sent) {
  auto reply = Command(sent);
  if (!reply.ok()) return reply.status();
  if (reply.value() == "OK") return Status::OK();
  return StatusFromReply(reply.value());
}

Status Client::SendTweet(const feed::Tweet& tweet) {
  return ExpectOk(FormatTweetCmd(tweet));
}

Status Client::SendCheckIn(const feed::CheckIn& check_in) {
  return ExpectOk(FormatCheckInCmd(check_in));
}

Status Client::PutAd(const feed::Ad& ad) {
  return ExpectOk(FormatAdPutCmd(ad));
}

Status Client::DeleteAd(AdId id) { return ExpectOk(FormatAdDelCmd(id)); }

Result<std::vector<index::ScoredAd>> Client::TopK(UserId user, size_t k) {
  return TopKCommand(FormatTopKCmd(user, k));
}

Result<std::vector<index::ScoredAd>> Client::TopK(UserId user, size_t k,
                                                  Timestamp time,
                                                  std::string_view text) {
  return TopKCommand(FormatTopKCmd(user, k, time, text));
}

Result<std::vector<index::ScoredAd>> Client::TopKCommand(
    std::string_view cmd) {
  auto reply = Command(cmd);
  if (!reply.ok()) return reply.status();
  const auto lines = SplitString(reply.value(), '\n');
  if (lines.empty() || !StartsWith(lines[0], "ADS ")) {
    return StatusFromReply(lines.empty() ? "" : lines[0]);
  }
  std::vector<index::ScoredAd> ads;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i] == "END") break;
    const auto fields = SplitString(lines[i], ' ');
    if (fields.size() != 3 || fields[0] != "AD") {
      return Status::Internal("bad AD line '" + std::string(lines[i]) + "'");
    }
    index::ScoredAd sa;
    sa.ad = AdId(static_cast<uint32_t>(
        std::strtoul(std::string(fields[1]).c_str(), nullptr, 10)));
    auto score = ParseScore(fields[2]);
    if (!score.ok()) return score.status();
    sa.score = score.value();
    ads.push_back(sa);
  }
  return ads;
}

Result<std::vector<core::MatchedUser>> Client::Match(AdId id) {
  auto reply = Command(FormatMatchCmd(id));
  if (!reply.ok()) return reply.status();
  const auto lines = SplitString(reply.value(), '\n');
  if (lines.empty() || !StartsWith(lines[0], "USERS ")) {
    return StatusFromReply(lines.empty() ? "" : lines[0]);
  }
  std::vector<core::MatchedUser> users;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i] == "END") break;
    const auto fields = SplitString(lines[i], ' ');
    if (fields.size() != 3 || fields[0] != "USER") {
      return Status::Internal("bad USER line '" + std::string(lines[i]) +
                              "'");
    }
    core::MatchedUser mu;
    mu.user = UserId(static_cast<uint32_t>(
        std::strtoul(std::string(fields[1]).c_str(), nullptr, 10)));
    auto score = ParseScore(fields[2]);
    if (!score.ok()) return score.status();
    mu.score = score.value();
    users.push_back(mu);
  }
  return users;
}

Status Client::Analyze(double alpha) {
  return ExpectOk(FormatAnalyzeCmd(alpha));
}

Status Client::Analyze() { return ExpectOk("analyze"); }

Status Client::Snapshot(const std::string& dir) {
  return ExpectOk(FormatSnapshotCmd(dir));
}

namespace {

/// Strips the `<HEADER> <bytes>` first line and trailing END from a
/// length-framed response, leaving the raw payload.
Result<std::string> FramedPayload(const std::string& reply,
                                  std::string_view header) {
  if (!StartsWith(reply, header)) return StatusFromReply(reply);
  const size_t header_end = reply.find('\n');
  const size_t tail = reply.rfind("\nEND");
  if (header_end == std::string::npos || tail == std::string::npos) {
    return Status::Internal("bad " + std::string(header) + "frame");
  }
  return reply.substr(header_end + 1, tail - header_end);
}

}  // namespace

Result<std::string> Client::Metrics() {
  auto reply = Command("metrics");
  if (!reply.ok()) return reply.status();
  return FramedPayload(reply.value(), "METRICS ");
}

Result<std::string> Client::Trace(bool chrome) {
  auto reply = Command(chrome ? "trace\tchrome" : "trace");
  if (!reply.ok()) return reply.status();
  return FramedPayload(reply.value(), "TRACE ");
}

Result<std::string> Client::Slow() {
  auto reply = Command("slow");
  if (!reply.ok()) return reply.status();
  return FramedPayload(reply.value(), "SLOW ");
}

Status Client::Ping() {
  auto reply = Command("ping");
  if (!reply.ok()) return reply.status();
  if (reply.value() == "PONG") return Status::OK();
  return StatusFromReply(reply.value());
}

void Client::Quit() {
  if (fd_ < 0) return;
  (void)SendLine("quit");
  Close();
}

}  // namespace adrec::serve
