#include "serve/protocol.h"

#include <cstdlib>

#include "common/string_util.h"
#include "feed/trace_io.h"

namespace adrec::serve {

namespace {

constexpr std::string_view kVerbNames[kNumVerbs] = {
    "tweet",   "checkin", "adput",   "addel",    "topk",
    "match",   "analyze", "stats",   "metrics",  "snapshot",
    "checkpoint", "compact", "repl", "promote",  "trace",
    "slow",    "conns",   "ping",    "quit"};

Result<uint64_t> ParseU64(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || s[0] == '-') {
    return Status::InvalidArgument(
        StringFormat("bad unsigned integer '%s'", s.c_str()));
  }
  return static_cast<uint64_t>(v);
}

Result<int64_t> ParseI64(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument(
        StringFormat("bad integer '%s'", s.c_str()));
  }
  return static_cast<int64_t>(v);
}

Result<uint32_t> ParseU32(std::string_view field) {
  auto v = ParseU64(field);
  if (!v.ok()) return v.status();
  if (v.value() > UINT32_MAX) {
    return Status::InvalidArgument("id out of range");
  }
  return static_cast<uint32_t>(v.value());
}

}  // namespace

std::string_view VerbName(Verb verb) {
  return kVerbNames[static_cast<size_t>(verb)];
}

bool IsWriteVerb(Verb verb) {
  switch (verb) {
    case Verb::kTweet:
    case Verb::kCheckIn:
    case Verb::kAdPut:
    case Verb::kAdDel:
      return true;
    // Queries, introspection and local-only admin verbs. `analyze`
    // rebuilds derived state from events the follower already replicated,
    // and snapshot/checkpoint write only local artifacts — all fine on a
    // read replica. `repl` stays readable so followers can cascade;
    // `promote` is the verb that ENDS read-only mode.
    case Verb::kTopK:
    case Verb::kMatch:
    case Verb::kAnalyze:
    case Verb::kStats:
    case Verb::kMetrics:
    case Verb::kSnapshot:
    case Verb::kCheckpoint:
    case Verb::kCompact:
    case Verb::kRepl:
    case Verb::kPromote:
    case Verb::kTrace:
    case Verb::kSlow:
    case Verb::kConns:
    case Verb::kPing:
    case Verb::kQuit:
      return false;
  }
  return false;
}

Result<Request> ParseRequest(std::string_view line) {
  const size_t tab = line.find('\t');
  const std::string_view verb =
      tab == std::string_view::npos ? line : line.substr(0, tab);
  const bool has_payload = tab != std::string_view::npos;
  const std::string_view payload =
      has_payload ? line.substr(tab + 1) : std::string_view();

  Request req;
  if (verb == "tweet") {
    req.verb = Verb::kTweet;
    auto t = feed::ParseTweetFields(payload);
    if (!t.ok()) return t.status();
    req.tweet = std::move(t).value();
    return req;
  }
  if (verb == "checkin") {
    req.verb = Verb::kCheckIn;
    auto c = feed::ParseCheckInFields(payload);
    if (!c.ok()) return c.status();
    req.check_in = c.value();
    return req;
  }
  if (verb == "adput") {
    req.verb = Verb::kAdPut;
    auto a = feed::ParseAdFields(payload);
    if (!a.ok()) return a.status();
    req.ad = std::move(a).value();
    return req;
  }
  if (verb == "addel" || verb == "match") {
    req.verb = verb == "addel" ? Verb::kAdDel : Verb::kMatch;
    if (!has_payload || payload.find('\t') != std::string_view::npos) {
      return Status::InvalidArgument(std::string(verb) + " needs <ad>");
    }
    auto id = ParseU32(payload);
    if (!id.ok()) return id.status();
    req.ad_id = AdId(id.value());
    return req;
  }
  if (verb == "topk") {
    req.verb = Verb::kTopK;
    // <user>\t<k>[\t<time>[\t<text...>]] — text is the tail.
    const auto fields = SplitString(payload, '\t', /*keep_empty=*/true);
    if (fields.size() < 2) {
      return Status::InvalidArgument("topk needs <user> <k> [<time> [<text>]]");
    }
    auto user = ParseU32(fields[0]);
    if (!user.ok()) return user.status();
    auto k = ParseU64(fields[1]);
    if (!k.ok()) return k.status();
    if (k.value() == 0 || k.value() > 1000) {
      return Status::InvalidArgument("k must be in [1, 1000]");
    }
    req.tweet.user = UserId(user.value());
    req.k = static_cast<size_t>(k.value());
    if (fields.size() >= 3) {
      auto time = ParseI64(fields[2]);
      if (!time.ok()) return time.status();
      if (time.value() < 0) {
        return Status::InvalidArgument("time must be non-negative");
      }
      req.tweet.time = time.value();
      req.has_time = true;
      if (fields.size() > 3) {
        // Rejoin the tail after the third tab as the query text.
        size_t pos = 0;
        for (int i = 0; i < 3; ++i) pos = payload.find('\t', pos) + 1;
        req.tweet.text = std::string(payload.substr(pos));
      }
    }
    return req;
  }
  if (verb == "analyze") {
    req.verb = Verb::kAnalyze;
    if (has_payload) {
      if (payload.find('\t') != std::string_view::npos) {
        return Status::InvalidArgument("analyze takes at most <alpha>");
      }
      const std::string s(payload);
      char* end = nullptr;
      const double alpha = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0' || alpha < 0.0 || alpha > 1.0) {
        return Status::InvalidArgument(
            StringFormat("bad alpha '%s' (want [0,1])", s.c_str()));
      }
      req.alpha = alpha;
    }
    return req;
  }
  if (verb == "snapshot") {
    req.verb = Verb::kSnapshot;
    if (!has_payload || payload.empty() ||
        payload.find('\t') != std::string_view::npos) {
      return Status::InvalidArgument("snapshot needs <dir>");
    }
    req.dir = std::string(payload);
    return req;
  }
  if (verb == "repl") {
    req.verb = Verb::kRepl;
    if (!has_payload) {
      return Status::InvalidArgument("repl needs <cursor>");
    }
    const size_t tab = payload.find('\t');
    if (tab == std::string_view::npos) {
      auto cursor = ParseU64(payload);
      if (!cursor.ok()) return cursor.status();
      req.cursor = cursor.value();
      return req;
    }
    // Two-field form: repl <shard> <cursor> (per-shard log stream).
    const std::string_view shard_field = payload.substr(0, tab);
    const std::string_view cursor_field = payload.substr(tab + 1);
    if (cursor_field.find('\t') != std::string_view::npos) {
      return Status::InvalidArgument("repl needs <cursor> or <shard> <cursor>");
    }
    auto shard = ParseU64(shard_field);
    if (!shard.ok()) return shard.status();
    auto cursor = ParseU64(cursor_field);
    if (!cursor.ok()) return cursor.status();
    req.repl_shard = static_cast<size_t>(shard.value());
    req.cursor = cursor.value();
    return req;
  }
  if (verb == "trace") {
    req.verb = Verb::kTrace;
    if (has_payload) {
      if (payload == "chrome") {
        req.chrome = true;
      } else if (payload != "tsv") {
        return Status::InvalidArgument("trace takes at most tsv|chrome");
      }
    }
    return req;
  }
  if (verb == "stats" || verb == "metrics" || verb == "checkpoint" ||
      verb == "compact" || verb == "promote" || verb == "slow" ||
      verb == "conns" || verb == "ping" || verb == "quit") {
    if (has_payload) {
      return Status::InvalidArgument(std::string(verb) +
                                     " takes no arguments");
    }
    req.verb = verb == "stats"        ? Verb::kStats
               : verb == "metrics"    ? Verb::kMetrics
               : verb == "checkpoint" ? Verb::kCheckpoint
               : verb == "compact"    ? Verb::kCompact
               : verb == "promote"    ? Verb::kPromote
               : verb == "slow"       ? Verb::kSlow
               : verb == "conns"      ? Verb::kConns
               : verb == "ping"       ? Verb::kPing
                                      : Verb::kQuit;
    return req;
  }
  return Status::InvalidArgument("unknown command '" + std::string(verb) +
                                 "'");
}

std::string FormatTweetCmd(const feed::Tweet& tweet) {
  return "tweet\t" + feed::FormatTweetFields(tweet);
}

std::string FormatCheckInCmd(const feed::CheckIn& check_in) {
  return "checkin\t" + feed::FormatCheckInFields(check_in);
}

std::string FormatAdPutCmd(const feed::Ad& ad) {
  return "adput\t" + feed::FormatAdFields(ad);
}

std::string FormatAdDelCmd(AdId id) {
  return StringFormat("addel\t%u", id.value);
}

std::string FormatTopKCmd(UserId user, size_t k) {
  return StringFormat("topk\t%u\t%zu", user.value, k);
}

std::string FormatTopKCmd(UserId user, size_t k, Timestamp time,
                          std::string_view text) {
  std::string out = StringFormat("topk\t%u\t%zu\t%lld", user.value, k,
                                 static_cast<long long>(time));
  if (!text.empty()) {
    out.push_back('\t');
    // Same sanitisation contract as the trace grammar: single line, no tabs.
    for (char c : text) {
      out.push_back(c == '\t' || c == '\n' || c == '\r' ? ' ' : c);
    }
  }
  return out;
}

std::string FormatMatchCmd(AdId id) {
  return StringFormat("match\t%u", id.value);
}

std::string FormatAnalyzeCmd(double alpha) {
  return StringFormat("analyze\t%.6f", alpha);
}

std::string FormatSnapshotCmd(std::string_view dir) {
  return "snapshot\t" + std::string(dir);
}

std::string FormatReplCmd(uint64_t cursor) {
  return StringFormat("repl\t%llu", static_cast<unsigned long long>(cursor));
}

std::string FormatReplCmd(size_t shard, uint64_t cursor) {
  return StringFormat("repl\t%zu\t%llu", shard,
                      static_cast<unsigned long long>(cursor));
}

}  // namespace adrec::serve
