#include "feed/loadgen.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

namespace adrec::feed {

namespace {
const std::string kEmptyPhrase;
}  // namespace

LoadGen::LoadGen(LoadGenOptions options, std::vector<std::string> phrases)
    : options_(options),
      phrases_(std::move(phrases)),
      rng_(options.seed),
      users_(std::max<size_t>(options.num_users, 1), options.user_skew),
      cells_(std::max<size_t>(options.num_cells, 1), options.cell_skew),
      now_(options.start_time) {}

const std::string& LoadGen::PhraseFor(UserId user) const {
  if (phrases_.empty()) return kEmptyPhrase;
  return phrases_[user.value % phrases_.size()];
}

LoadOp LoadGen::Next() {
  LoadOp op;
  const UserId user(static_cast<uint32_t>(users_.Sample(rng_)));
  if (rng_.NextBool(options_.ingest_fraction)) {
    ++ingests_;
    if (options_.ingests_per_second > 0 &&
        ingests_ % options_.ingests_per_second == 0) {
      ++now_;
    }
    if (rng_.NextBool(options_.checkin_fraction)) {
      op.kind = LoadOp::Kind::kCheckIn;
      op.check_in.user = user;
      op.check_in.time = now_;
      op.check_in.location =
          LocationId(static_cast<uint32_t>(cells_.Sample(rng_)));
    } else {
      op.kind = LoadOp::Kind::kTweet;
      op.tweet.user = user;
      op.tweet.time = now_;
      op.tweet.text = PhraseFor(user);
    }
  } else {
    op.kind = LoadOp::Kind::kTopK;
    op.k = options_.topk_k;
    op.tweet.user = user;
    if (options_.explicit_time_queries) {
      op.has_time = true;
      op.tweet.time = now_;
      op.tweet.text = PhraseFor(user);
    }
  }
  return op;
}

LoadRunStats RunLoad(serve::Client* client, LoadGen* gen,
                     const LoadRunOptions& run) {
  using Clock = std::chrono::steady_clock;
  LoadRunStats stats;
  const Clock::time_point start = Clock::now();
  const bool open_loop = run.open_loop_rate > 0.0;
  const std::chrono::nanoseconds interval(
      open_loop ? static_cast<int64_t>(1e9 / run.open_loop_rate) : 0);

  for (size_t i = 0; i < run.num_ops; ++i) {
    Clock::time_point issue = Clock::now();
    if (open_loop) {
      // Latency is referenced to the scheduled arrival: if the service
      // lags behind the arrival process, the wait shows up as latency.
      const Clock::time_point scheduled = start + interval * i;
      if (issue < scheduled) {
        std::this_thread::sleep_until(scheduled);
        issue = Clock::now();
      } else {
        issue = scheduled;
      }
    }

    const LoadOp op = gen->Next();
    bool ok = true;
    bool is_topk = false;
    switch (op.kind) {
      case LoadOp::Kind::kTweet:
        ok = client->SendTweet(op.tweet).ok();
        break;
      case LoadOp::Kind::kCheckIn:
        ok = client->SendCheckIn(op.check_in).ok();
        break;
      case LoadOp::Kind::kTopK: {
        is_topk = true;
        const auto result =
            op.has_time ? client->TopK(op.tweet.user, op.k, op.tweet.time,
                                       op.tweet.text)
                        : client->TopK(op.tweet.user, op.k);
        ok = result.ok();
        break;
      }
    }

    ++stats.ops;
    if (!ok) {
      ++stats.errors;
      continue;
    }
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - issue)
            .count();
    (is_topk ? stats.topk_latency_us : stats.ingest_latency_us).Record(us);
  }

  stats.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  stats.achieved_ops_per_sec =
      stats.seconds > 0.0 ? static_cast<double>(stats.ops) / stats.seconds
                          : 0.0;
  return stats;
}

namespace {

/// Issues one pre-generated op over `client`; returns false on a
/// transport error. `is_topk` reports which latency bucket it belongs
/// to.
bool IssueOp(serve::Client* client, const LoadOp& op, bool* is_topk) {
  *is_topk = false;
  switch (op.kind) {
    case LoadOp::Kind::kTweet:
      return client->SendTweet(op.tweet).ok();
    case LoadOp::Kind::kCheckIn:
      return client->SendCheckIn(op.check_in).ok();
    case LoadOp::Kind::kTopK: {
      *is_topk = true;
      const auto result =
          op.has_time
              ? client->TopK(op.tweet.user, op.k, op.tweet.time,
                             op.tweet.text)
              : client->TopK(op.tweet.user, op.k);
      return result.ok();
    }
  }
  return false;
}

}  // namespace

LoadRunStats RunLoadMulti(const std::string& host, uint16_t port,
                          LoadGen* gen, const LoadRunOptions& run) {
  using Clock = std::chrono::steady_clock;
  const size_t connections = std::max<size_t>(run.connections, 1);

  // The op stream is generated once, up front, from the single
  // deterministic generator: connection count changes only who carries
  // each op, never what the ops are.
  std::vector<LoadOp> ops;
  ops.reserve(run.num_ops);
  for (size_t i = 0; i < run.num_ops; ++i) ops.push_back(gen->Next());

  const bool open_loop = run.open_loop_rate > 0.0;
  const std::chrono::nanoseconds interval(
      open_loop ? static_cast<int64_t>(1e9 / run.open_loop_rate) : 0);

  std::vector<LoadRunStats> per_conn(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  const Clock::time_point start = Clock::now();
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      LoadRunStats& stats = per_conn[c];
      serve::Client client;
      if (!client.Connect(host, port).ok()) {
        // The whole partition is lost, not silently skipped.
        for (size_t i = c; i < ops.size(); i += connections) {
          ++stats.ops;
          ++stats.errors;
        }
        return;
      }
      for (size_t i = c; i < ops.size(); i += connections) {
        Clock::time_point issue = Clock::now();
        if (open_loop) {
          // Each op keeps its *global* scheduled arrival instant, so N
          // connections jointly realise the one arrival process and
          // queueing delay still counts against latency.
          const Clock::time_point scheduled = start + interval * i;
          if (issue < scheduled) {
            std::this_thread::sleep_until(scheduled);
            issue = Clock::now();
          } else {
            issue = scheduled;
          }
        }
        bool is_topk = false;
        const bool ok = IssueOp(&client, ops[i], &is_topk);
        ++stats.ops;
        if (!ok) {
          ++stats.errors;
          continue;
        }
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - issue)
                .count();
        (is_topk ? stats.topk_latency_us : stats.ingest_latency_us)
            .Record(us);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LoadRunStats merged;
  for (const LoadRunStats& stats : per_conn) {
    merged.ops += stats.ops;
    merged.errors += stats.errors;
    merged.topk_latency_us.Merge(stats.topk_latency_us);
    merged.ingest_latency_us.Merge(stats.ingest_latency_us);
  }
  merged.seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  merged.achieved_ops_per_sec =
      merged.seconds > 0.0
          ? static_cast<double>(merged.ops) / merged.seconds
          : 0.0;
  return merged;
}

}  // namespace adrec::feed
