#include "feed/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::feed {

namespace {

/// Knuth's Poisson sampler; fine for the small per-slot rates used here.
int SamplePoisson(Rng& rng, double lambda) {
  if (lambda <= 0.0) return 0;
  const double limit = std::exp(-lambda);
  double p = 1.0;
  int k = 0;
  do {
    ++k;
    p *= rng.NextDouble();
  } while (p > limit);
  return k - 1;
}

const char* const kFillerWords[] = {
    "really", "loving", "hanging", "around", "finally", "excited",
    "friends", "awesome", "crazy", "weekend", "vibes", "mood",
    "honestly", "literally", "thinking", "remember", "amazing",
};

/// Picks `count` distinct words from a context sentence of `entity`.
std::string SampleContextWords(Rng& rng, const annotate::Entity& entity,
                               int count) {
  if (entity.context_texts.empty() || count <= 0) return "";
  const std::string& sentence =
      entity.context_texts[rng.NextBounded(entity.context_texts.size())];
  const std::vector<std::string_view> words = SplitString(sentence, ' ');
  std::string out;
  for (int i = 0; i < count && !words.empty(); ++i) {
    if (!out.empty()) out += ' ';
    out += std::string(words[rng.NextBounded(words.size())]);
  }
  return out;
}

/// Composes one synthetic tweet mentioning `topic`.
std::string ComposeTweet(Rng& rng, const annotate::KnowledgeBase& kb,
                         TopicId topic) {
  const annotate::Entity& e = kb.entity(topic);
  std::string text;
  // Mention: one registered surface phrase.
  const std::string surface =
      e.surface_phrases.empty()
          ? e.label
          : e.surface_phrases[rng.NextBounded(e.surface_phrases.size())];
  // 2-4 supporting context words pull the disambiguator toward this sense.
  const std::string support =
      SampleContextWords(rng, e, 2 + static_cast<int>(rng.NextBounded(3)));
  // 1-3 filler words of tweet noise.
  const int fillers = 1 + static_cast<int>(rng.NextBounded(3));
  for (int i = 0; i < fillers; ++i) {
    if (!text.empty()) text += ' ';
    text += kFillerWords[rng.NextBounded(std::size(kFillerWords))];
  }
  text += ' ';
  text += surface;
  if (!support.empty()) {
    text += ' ';
    text += support;
  }
  return text;
}

/// Composes ad copy mentioning every topic in `topics`.
std::string ComposeAdCopy(Rng& rng, const annotate::KnowledgeBase& kb,
                          const std::vector<TopicId>& topics) {
  std::string text = "introducing";
  for (TopicId t : topics) {
    const annotate::Entity& e = kb.entity(t);
    const std::string surface =
        e.surface_phrases.empty()
            ? e.label
            : e.surface_phrases[rng.NextBounded(e.surface_phrases.size())];
    text += ' ';
    text += surface;
    const std::string support = SampleContextWords(rng, e, 2);
    if (!support.empty()) {
      text += ' ';
      text += support;
    }
  }
  text += " offer deal discount";
  return text;
}

/// Samples `k` distinct topics via the Zipf sampler.
std::vector<TopicId> SampleDistinctTopics(Rng& rng, const ZipfSampler& zipf,
                                          size_t k, size_t universe) {
  std::vector<TopicId> out;
  size_t guard = 0;
  while (out.size() < std::min(k, universe) && guard++ < 1000) {
    const TopicId cand(static_cast<uint32_t>(zipf.Sample(rng)));
    if (std::find(out.begin(), out.end(), cand) == out.end()) {
      out.push_back(cand);
    }
  }
  return out;
}

/// Coherent interest clusters over the demo KB, by entity label. Entities
/// not listed fall into a residual cluster.
std::vector<std::vector<TopicId>> BuildInterestClusters(
    const annotate::KnowledgeBase& kb) {
  auto cluster_of = [](const std::string& label) -> int {
    static constexpr const char* kSports[] = {
        "Volleyball", "Basketball", "Marathon", "Adidas", "Nike, Inc.",
        "Pitch (sports field)", "Team", "Yoga"};
    static constexpr const char* kFood[] = {"Coffee", "Pizza", "Sushi",
                                            "Apple (fruit)"};
    static constexpr const char* kEntertainment[] = {
        "Concert", "Cinema", "The CW", "Pitch (music)"};
    for (const char* s : kSports) {
      if (label == s) return 0;
    }
    for (const char* s : kFood) {
      if (label == s) return 1;
    }
    for (const char* s : kEntertainment) {
      if (label == s) return 2;
    }
    return 3;  // residual (Nation, Apple Inc., ...)
  };
  std::vector<std::vector<TopicId>> clusters(4);
  for (uint32_t i = 0; i < kb.size(); ++i) {
    clusters[cluster_of(kb.entity(TopicId(i)).label)].push_back(TopicId(i));
  }
  // Drop empty clusters so sampling never lands on one.
  std::vector<std::vector<TopicId>> out;
  for (auto& c : clusters) {
    if (!c.empty()) out.push_back(std::move(c));
  }
  return out;
}

}  // namespace

WorkloadOptions CaseStudyOptions() {
  WorkloadOptions opts;  // defaults are the pinned configuration
  return opts;
}

std::vector<FeedEvent> Workload::MergedEvents() const {
  std::vector<FeedEvent> out;
  out.reserve(tweets.size() + check_ins.size());
  size_t i = 0, j = 0;
  while (i < tweets.size() || j < check_ins.size()) {
    const bool take_tweet =
        j >= check_ins.size() ||
        (i < tweets.size() && tweets[i].time <= check_ins[j].time);
    FeedEvent ev;
    if (take_tweet) {
      ev.kind = EventKind::kTweet;
      ev.time = tweets[i].time;
      ev.tweet = tweets[i];
      ++i;
    } else {
      ev.kind = EventKind::kCheckIn;
      ev.time = check_ins[j].time;
      ev.check_in = check_ins[j];
      ++j;
    }
    out.push_back(std::move(ev));
  }
  return out;
}

Workload GenerateWorkload(const WorkloadOptions& options) {
  Workload w;
  w.options = options;
  Rng rng(options.seed);

  w.analyzer = std::make_shared<text::Analyzer>();
  std::unique_ptr<annotate::KnowledgeBase> kb =
      annotate::BuildDemoKnowledgeBase(w.analyzer.get());
  w.kb = std::shared_ptr<annotate::KnowledgeBase>(std::move(kb));

  // Places scattered around a city center (~Rome), far enough apart that
  // nearest-place snapping is unambiguous.
  for (size_t p = 0; p < options.num_places; ++p) {
    const geo::GeoPoint point{41.80 + 0.005 * static_cast<double>(p % 10),
                              12.40 + 0.02 * static_cast<double>(p / 10)};
    auto added = w.places.AddPlace(StringFormat("place_%zu", p), point);
    ADREC_CHECK(added.ok());
  }

  const size_t num_topics = w.kb->size();
  ZipfSampler topic_zipf(num_topics, options.topic_skew);
  ZipfSampler user_zipf(options.num_users, options.user_skew);

  const size_t num_slots = w.slots.size();
  std::vector<double> intensity = options.slot_intensity;
  intensity.resize(num_slots, 0.5);
  double intensity_sum = 0;
  for (double v : intensity) intensity_sum += v;
  if (intensity_sum <= 0) intensity_sum = 1;

  // --- Users: interests + mobility (the ground truth). ---
  const std::vector<std::vector<TopicId>> clusters =
      BuildInterestClusters(*w.kb);
  w.truth.resize(options.num_users);
  for (size_t u = 0; u < options.num_users; ++u) {
    UserTruth& truth = w.truth[u];
    const int k = static_cast<int>(
        rng.NextInt(options.min_interests, options.max_interests));
    if (rng.NextBool(options.clustered_interest_probability)) {
      // Coherent user: all interests from one cluster.
      const auto& cluster = clusters[rng.NextBounded(clusters.size())];
      size_t guard = 0;
      while (truth.interests.size() <
                 std::min<size_t>(static_cast<size_t>(k), cluster.size()) &&
             guard++ < 1000) {
        const TopicId cand = cluster[rng.NextBounded(cluster.size())];
        if (std::find(truth.interests.begin(), truth.interests.end(), cand) ==
            truth.interests.end()) {
          truth.interests.push_back(cand);
        }
      }
    } else {
      truth.interests = SampleDistinctTopics(
          rng, topic_zipf, static_cast<size_t>(k), num_topics);
    }
    truth.activity = 0.3 + 3.0 * user_zipf.Pmf(u) * options.num_users /
                               (1.0 + options.user_skew);
    truth.frequented.resize(num_slots);
    for (size_t s = 0; s < num_slots; ++s) {
      const int places_here =
          1 + static_cast<int>(rng.NextBounded(
                  static_cast<uint64_t>(options.max_places_per_slot)));
      for (int p = 0; p < places_here; ++p) {
        const LocationId loc(
            static_cast<uint32_t>(rng.NextBounded(options.num_places)));
        if (std::find(truth.frequented[s].begin(), truth.frequented[s].end(),
                      loc) == truth.frequented[s].end()) {
          truth.frequented[s].push_back(loc);
        }
      }
    }
  }

  // --- Tweets and check-ins, day by day, slot by slot. ---
  for (int day = 0; day < options.days; ++day) {
    for (size_t u = 0; u < options.num_users; ++u) {
      const UserTruth& truth = w.truth[u];
      for (size_t s = 0; s < num_slots; ++s) {
        const timeline::TimeSlot& slot = w.slots.slot(SlotId(s));
        const double share = intensity[s] / intensity_sum;
        // Tweets in this slot.
        const double tweet_rate =
            options.tweets_per_user_day * truth.activity * share;
        const int tweet_count = SamplePoisson(rng, tweet_rate);
        for (int i = 0; i < tweet_count; ++i) {
          Tweet tw;
          tw.user = UserId(static_cast<uint32_t>(u));
          tw.time = static_cast<Timestamp>(day) * kSecondsPerDay +
                    rng.NextInt(slot.begin_second, slot.end_second - 1);
          TopicId topic;
          if (!truth.interests.empty() &&
              !rng.NextBool(options.noise_probability)) {
            topic = truth.interests[rng.NextBounded(truth.interests.size())];
          } else {
            topic = TopicId(static_cast<uint32_t>(topic_zipf.Sample(rng)));
          }
          tw.text = ComposeTweet(rng, *w.kb, topic);
          w.tweets.push_back(std::move(tw));
        }
        // Check-ins in this slot.
        const double checkin_rate =
            options.checkins_per_user_day * truth.activity * share;
        const int checkin_count = SamplePoisson(rng, checkin_rate);
        const auto& frequented = truth.frequented[s];
        for (int i = 0; i < checkin_count && !frequented.empty(); ++i) {
          CheckIn ci;
          ci.user = UserId(static_cast<uint32_t>(u));
          ci.time = static_cast<Timestamp>(day) * kSecondsPerDay +
                    rng.NextInt(slot.begin_second, slot.end_second - 1);
          ci.location = frequented[rng.NextBounded(frequented.size())];
          w.check_ins.push_back(ci);
        }
      }
    }
  }
  auto by_time = [](const auto& a, const auto& b) { return a.time < b.time; };
  std::stable_sort(w.tweets.begin(), w.tweets.end(), by_time);
  std::stable_sort(w.check_ins.begin(), w.check_ins.end(), by_time);

  // --- Ads. ---
  for (size_t a = 0; a < options.num_ads; ++a) {
    Ad ad;
    ad.id = AdId(static_cast<uint32_t>(a));
    ad.campaign = CampaignId(static_cast<uint32_t>(a));
    const size_t topics_here =
        1 + rng.NextBounded(static_cast<uint64_t>(options.max_topics_per_ad));
    std::vector<TopicId> topics =
        SampleDistinctTopics(rng, topic_zipf, topics_here, num_topics);
    ad.copy = ComposeAdCopy(rng, *w.kb, topics);
    const size_t locs =
        1 + rng.NextBounded(static_cast<uint64_t>(options.max_locations_per_ad));
    for (size_t l = 0; l < locs; ++l) {
      const LocationId loc(
          static_cast<uint32_t>(rng.NextBounded(options.num_places)));
      if (std::find(ad.target_locations.begin(), ad.target_locations.end(),
                    loc) == ad.target_locations.end()) {
        ad.target_locations.push_back(loc);
      }
    }
    // Daytime targeting: slot1 and/or slot2 of the paper scheme.
    ad.target_slots.push_back(SlotId(1 + static_cast<uint32_t>(
                                             rng.NextBounded(2))));
    if (rng.NextBool(0.5)) {
      const SlotId other(ad.target_slots[0].value == 1 ? 2u : 1u);
      ad.target_slots.push_back(other);
    }
    w.ad_topics.push_back(std::move(topics));
    w.ads.push_back(std::move(ad));
  }
  return w;
}

}  // namespace adrec::feed
