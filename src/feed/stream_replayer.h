#ifndef ADREC_FEED_STREAM_REPLAYER_H_
#define ADREC_FEED_STREAM_REPLAYER_H_

#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/sim_clock.h"
#include "feed/types.h"

namespace adrec::feed {

/// Replay statistics.
struct ReplayStats {
  size_t events_delivered = 0;
  size_t events_dropped = 0;  ///< load shedding (see max_lag)
  double wall_seconds = 0.0;
  double events_per_second = 0.0;
  /// Per-event handler latency in microseconds.
  Histogram handler_micros;
};

/// A point-in-time progress report emitted mid-replay (see
/// ReplayOptions::progress_every).
struct ReplayProgress {
  size_t events_delivered = 0;
  size_t events_dropped = 0;
  double wall_seconds = 0.0;
  /// Cumulative delivery rate so far.
  double events_per_second = 0.0;
  /// Delivery rate of the window since the previous progress report —
  /// the in-flight figure long-running deployments watch (cumulative
  /// rates flatten out and hide regressions). Equals events_per_second
  /// on the first report.
  double interval_events_per_second = 0.0;
  /// How far behind the paced schedule the replay is, in simulated
  /// seconds (0 when unpaced or on schedule).
  double lag_sim_seconds = 0.0;
};

/// Replayer configuration.
struct ReplayOptions {
  /// Time-compression factor: simulated seconds per wall second.
  /// 0 = as-fast-as-possible (no pacing), the benchmark mode.
  double speedup = 0.0;
  /// Load shedding: when pacing is on and the replay falls more than
  /// this many simulated seconds behind schedule, events are dropped
  /// until it catches up (0 = never drop). Models the "high-speed feed
  /// outruns the consumer" regime.
  DurationSec max_lag = 0;
  /// Emit a progress report every N processed (delivered + dropped)
  /// events; 0 disables progress reporting.
  size_t progress_every = 0;
  /// Progress sink. When unset but progress_every > 0, each report is
  /// logged as one INFO line (events/sec and lag).
  std::function<void(const ReplayProgress&)> on_progress;
};

/// Drives a time-ordered event vector through a handler, optionally
/// pacing delivery against the wall clock (compressed simulated time) and
/// shedding load when the handler cannot keep up. Collects handler
/// latency and throughput statistics — the measurement harness of the
/// streaming experiments.
class StreamReplayer {
 public:
  explicit StreamReplayer(ReplayOptions options = {});

  /// Replays `events` (must be time-ordered) through `handler`.
  ReplayStats Replay(const std::vector<FeedEvent>& events,
                     const std::function<void(const FeedEvent&)>& handler);

 private:
  ReplayOptions options_;
};

}  // namespace adrec::feed

#endif  // ADREC_FEED_STREAM_REPLAYER_H_
