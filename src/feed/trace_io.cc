#include "feed/trace_io.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace adrec::feed {

namespace {

/// Makes text single-line and tab-free for the line format.
std::string Sanitize(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::string JoinIds(const std::vector<LocationId>& ids) {
  std::string out;
  for (LocationId id : ids) {
    if (!out.empty()) out += ';';
    out += StringFormat("%u", id.value);
  }
  return out.empty() ? "-" : out;
}

std::string JoinSlots(const std::vector<SlotId>& ids) {
  std::string out;
  for (SlotId id : ids) {
    if (!out.empty()) out += ';';
    out += StringFormat("%u", id.value);
  }
  return out.empty() ? "-" : out;
}

Result<std::vector<uint32_t>> ParseIdList(std::string_view field) {
  std::vector<uint32_t> out;
  if (field == "-") return out;
  for (std::string_view piece : SplitString(field, ';')) {
    char* end = nullptr;
    const std::string s(piece);
    const unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') {
      return Status::InvalidArgument(StringFormat("bad id '%s'", s.c_str()));
    }
    out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

Result<int64_t> ParseInt(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument(StringFormat("bad integer '%s'", s.c_str()));
  }
  return static_cast<int64_t>(v);
}

Result<uint32_t> ParseU32(std::string_view field) {
  auto v = ParseInt(field);
  if (!v.ok()) return v.status();
  if (v.value() < 0 || v.value() > static_cast<int64_t>(UINT32_MAX)) {
    return Status::InvalidArgument(
        StringFormat("id out of range '%lld'",
                     static_cast<long long>(v.value())));
  }
  return static_cast<uint32_t>(v.value());
}

Result<double> ParseDouble(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument(StringFormat("bad double '%s'", s.c_str()));
  }
  return v;
}

}  // namespace

Result<Tweet> ParseTweetFields(std::string_view payload) {
  const size_t tab1 = payload.find('\t');
  const size_t tab2 =
      tab1 == std::string_view::npos ? tab1 : payload.find('\t', tab1 + 1);
  if (tab2 == std::string_view::npos) {
    return Status::InvalidArgument("tweet needs <user> <time> <text>");
  }
  auto user = ParseU32(payload.substr(0, tab1));
  if (!user.ok()) return user.status();
  auto time = ParseInt(payload.substr(tab1 + 1, tab2 - tab1 - 1));
  if (!time.ok()) return time.status();
  Tweet t;
  t.user = UserId(user.value());
  t.time = time.value();
  // The text is the tail (may be empty, and joins any further tabs back —
  // sanitised on write anyway).
  t.text = std::string(payload.substr(tab2 + 1));
  return t;
}

std::string FormatTweetFields(const Tweet& tweet) {
  return StringFormat("%u\t%lld\t", tweet.user.value,
                      static_cast<long long>(tweet.time)) +
         Sanitize(tweet.text);
}

Result<CheckIn> ParseCheckInFields(std::string_view payload) {
  const auto fields = SplitString(payload, '\t', /*keep_empty=*/true);
  if (fields.size() != 3) {
    return Status::InvalidArgument("check-in needs <user> <time> <location>");
  }
  auto user = ParseU32(fields[0]);
  if (!user.ok()) return user.status();
  auto time = ParseInt(fields[1]);
  if (!time.ok()) return time.status();
  auto loc = ParseU32(fields[2]);
  if (!loc.ok()) return loc.status();
  CheckIn c;
  c.user = UserId(user.value());
  c.time = time.value();
  c.location = LocationId(loc.value());
  return c;
}

std::string FormatCheckInFields(const CheckIn& check_in) {
  return StringFormat("%u\t%lld\t%u", check_in.user.value,
                      static_cast<long long>(check_in.time),
                      check_in.location.value);
}

Result<Ad> ParseAdFields(std::string_view payload) {
  // Six fixed fields, then the copy tail.
  std::array<std::string_view, 6> f;
  size_t pos = 0;
  for (size_t i = 0; i < f.size(); ++i) {
    const size_t tab = payload.find('\t', pos);
    if (tab == std::string_view::npos) {
      return Status::InvalidArgument(
          "ad needs <id> <campaign> <budget> <bid> <locs> <slots> <copy>");
    }
    f[i] = payload.substr(pos, tab - pos);
    pos = tab + 1;
  }
  auto id = ParseU32(f[0]);
  auto campaign = ParseU32(f[1]);
  auto budget = ParseInt(f[2]);
  auto bid = ParseDouble(f[3]);
  auto locs = ParseIdList(f[4]);
  auto slots = ParseIdList(f[5]);
  if (!id.ok()) return id.status();
  if (!campaign.ok()) return campaign.status();
  if (!budget.ok()) return budget.status();
  if (!bid.ok()) return bid.status();
  if (!locs.ok()) return locs.status();
  if (!slots.ok()) return slots.status();
  Ad ad;
  ad.id = AdId(id.value());
  ad.campaign = CampaignId(campaign.value());
  ad.budget_impressions = budget.value();
  ad.bid = bid.value();
  for (uint32_t v : locs.value()) ad.target_locations.push_back(LocationId(v));
  for (uint32_t v : slots.value()) ad.target_slots.push_back(SlotId(v));
  ad.copy = std::string(payload.substr(pos));
  return ad;
}

std::string FormatAdFields(const Ad& ad) {
  return StringFormat("%u\t%u\t%lld\t", ad.id.value, ad.campaign.value,
                      static_cast<long long>(ad.budget_impressions)) +
         StringFormat("%.6f", ad.bid) + '\t' + JoinIds(ad.target_locations) +
         '\t' + JoinSlots(ad.target_slots) + '\t' + Sanitize(ad.copy);
}

Status WriteTrace(const std::string& path, const std::vector<Tweet>& tweets,
                  const std::vector<CheckIn>& check_ins) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  size_t i = 0, j = 0;
  while (i < tweets.size() || j < check_ins.size()) {
    const bool take_tweet =
        j >= check_ins.size() ||
        (i < tweets.size() && tweets[i].time <= check_ins[j].time);
    if (take_tweet) {
      out << "T\t" << FormatTweetFields(tweets[i++]) << '\n';
    } else {
      out << "C\t" << FormatCheckInFields(check_ins[j++]) << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

Status WriteAds(const std::string& path, const std::vector<Ad>& ads) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const Ad& ad : ads) {
    out << "A\t" << FormatAdFields(ad) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

namespace {

/// The payload after a one-letter record tag, or an error if the line is
/// just the tag.
Result<std::string_view> RecordPayload(const std::string& line) {
  if (line.size() < 2 || line[1] != '\t') {
    return Status::InvalidArgument("record has no payload");
  }
  return std::string_view(line).substr(2);
}

}  // namespace

Result<Trace> ReadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(
          StringFormat("%s:%zu: %s", path.c_str(), line_no, why.c_str()));
    };
    if (line[0] == 'T' && (line.size() == 1 || line[1] == '\t')) {
      auto payload = RecordPayload(line);
      if (!payload.ok()) return bad(payload.status().message());
      auto t = ParseTweetFields(payload.value());
      if (!t.ok()) return bad(t.status().message());
      trace.tweets.push_back(std::move(t).value());
    } else if (line[0] == 'C' && (line.size() == 1 || line[1] == '\t')) {
      auto payload = RecordPayload(line);
      if (!payload.ok()) return bad(payload.status().message());
      auto c = ParseCheckInFields(payload.value());
      if (!c.ok()) return bad(c.status().message());
      trace.check_ins.push_back(c.value());
    } else {
      const std::string tag(SplitString(line, '\t', /*keep_empty=*/true)[0]);
      return bad("unknown record tag '" + tag + "'");
    }
  }
  return trace;
}

Result<std::vector<Ad>> ReadAds(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Ad> ads;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(
          StringFormat("%s:%zu: %s", path.c_str(), line_no, why.c_str()));
    };
    if (line[0] != 'A' || (line.size() > 1 && line[1] != '\t')) {
      return bad("bad ad record");
    }
    auto payload = RecordPayload(line);
    if (!payload.ok()) return bad(payload.status().message());
    auto ad = ParseAdFields(payload.value());
    if (!ad.ok()) return bad(ad.status().message());
    ads.push_back(std::move(ad).value());
  }
  return ads;
}

}  // namespace adrec::feed
