#include "feed/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace adrec::feed {

namespace {

/// Makes text single-line and tab-free for the line format.
std::string Sanitize(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

std::string JoinIds(const std::vector<LocationId>& ids) {
  std::string out;
  for (LocationId id : ids) {
    if (!out.empty()) out += ';';
    out += StringFormat("%u", id.value);
  }
  return out.empty() ? "-" : out;
}

std::string JoinSlots(const std::vector<SlotId>& ids) {
  std::string out;
  for (SlotId id : ids) {
    if (!out.empty()) out += ';';
    out += StringFormat("%u", id.value);
  }
  return out.empty() ? "-" : out;
}

Result<std::vector<uint32_t>> ParseIdList(std::string_view field) {
  std::vector<uint32_t> out;
  if (field == "-") return out;
  for (std::string_view piece : SplitString(field, ';')) {
    char* end = nullptr;
    const std::string s(piece);
    const unsigned long v = std::strtoul(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0') {
      return Status::InvalidArgument(StringFormat("bad id '%s'", s.c_str()));
    }
    out.push_back(static_cast<uint32_t>(v));
  }
  return out;
}

Result<int64_t> ParseInt(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument(StringFormat("bad integer '%s'", s.c_str()));
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view field) {
  const std::string s(field);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    return Status::InvalidArgument(StringFormat("bad double '%s'", s.c_str()));
  }
  return v;
}

}  // namespace

Status WriteTrace(const std::string& path, const std::vector<Tweet>& tweets,
                  const std::vector<CheckIn>& check_ins) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  size_t i = 0, j = 0;
  while (i < tweets.size() || j < check_ins.size()) {
    const bool take_tweet =
        j >= check_ins.size() ||
        (i < tweets.size() && tweets[i].time <= check_ins[j].time);
    if (take_tweet) {
      const Tweet& t = tweets[i++];
      out << "T\t" << t.user.value << '\t' << t.time << '\t'
          << Sanitize(t.text) << '\n';
    } else {
      const CheckIn& c = check_ins[j++];
      out << "C\t" << c.user.value << '\t' << c.time << '\t'
          << c.location.value << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

Status WriteAds(const std::string& path, const std::vector<Ad>& ads) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (const Ad& ad : ads) {
    out << "A\t" << ad.id.value << '\t' << ad.campaign.value << '\t'
        << ad.budget_impressions << '\t' << StringFormat("%.6f", ad.bid)
        << '\t' << JoinIds(ad.target_locations) << '\t'
        << JoinSlots(ad.target_slots) << '\t' << Sanitize(ad.copy) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

Result<Trace> ReadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  Trace trace;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(
          StringFormat("%s:%zu: %s", path.c_str(), line_no, why.c_str()));
    };
    const auto fields = SplitString(line, '\t', /*keep_empty=*/true);
    if (fields.empty()) continue;
    if (fields[0] == "T") {
      if (fields.size() < 4) return bad("tweet needs 4 fields");
      auto user = ParseInt(fields[1]);
      auto time = ParseInt(fields[2]);
      if (!user.ok() || !time.ok()) return bad("bad tweet numbers");
      Tweet t;
      t.user = UserId(static_cast<uint32_t>(user.value()));
      t.time = time.value();
      // The text is everything after the third tab (may itself be empty,
      // and joins any further tabs back — sanitised on write anyway).
      size_t pos = 0;
      for (int k = 0; k < 3; ++k) pos = line.find('\t', pos) + 1;
      t.text = line.substr(pos);
      trace.tweets.push_back(std::move(t));
    } else if (fields[0] == "C") {
      if (fields.size() != 4) return bad("check-in needs 4 fields");
      auto user = ParseInt(fields[1]);
      auto time = ParseInt(fields[2]);
      auto loc = ParseInt(fields[3]);
      if (!user.ok() || !time.ok() || !loc.ok()) {
        return bad("bad check-in numbers");
      }
      CheckIn c;
      c.user = UserId(static_cast<uint32_t>(user.value()));
      c.time = time.value();
      c.location = LocationId(static_cast<uint32_t>(loc.value()));
      trace.check_ins.push_back(c);
    } else {
      return bad("unknown record tag '" + std::string(fields[0]) + "'");
    }
  }
  return trace;
}

Result<std::vector<Ad>> ReadAds(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::vector<Ad> ads;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(
          StringFormat("%s:%zu: %s", path.c_str(), line_no, why.c_str()));
    };
    const auto fields = SplitString(line, '\t', /*keep_empty=*/true);
    if (fields.size() < 8 || fields[0] != "A") return bad("bad ad record");
    auto id = ParseInt(fields[1]);
    auto campaign = ParseInt(fields[2]);
    auto budget = ParseInt(fields[3]);
    auto bid = ParseDouble(fields[4]);
    auto locs = ParseIdList(fields[5]);
    auto slots = ParseIdList(fields[6]);
    if (!id.ok() || !campaign.ok() || !budget.ok() || !bid.ok() ||
        !locs.ok() || !slots.ok()) {
      return bad("bad ad fields");
    }
    Ad ad;
    ad.id = AdId(static_cast<uint32_t>(id.value()));
    ad.campaign = CampaignId(static_cast<uint32_t>(campaign.value()));
    ad.budget_impressions = budget.value();
    ad.bid = bid.value();
    for (uint32_t v : locs.value()) ad.target_locations.push_back(LocationId(v));
    for (uint32_t v : slots.value()) ad.target_slots.push_back(SlotId(v));
    size_t pos = 0;
    for (int k = 0; k < 7; ++k) pos = line.find('\t', pos) + 1;
    ad.copy = line.substr(pos);
    ads.push_back(std::move(ad));
  }
  return ads;
}

}  // namespace adrec::feed
