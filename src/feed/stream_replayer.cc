#include "feed/stream_replayer.h"

#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::feed {

StreamReplayer::StreamReplayer(ReplayOptions options)
    : options_(std::move(options)) {}

ReplayStats StreamReplayer::Replay(
    const std::vector<FeedEvent>& events,
    const std::function<void(const FeedEvent&)>& handler) {
  ReplayStats stats;
  if (events.empty()) return stats;

  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  const Timestamp sim_start = events.front().time;

  double current_lag_sim = 0.0;
  size_t processed = 0;
  // Previous report's cut, for the windowed (per-interval) rate.
  size_t last_delivered = 0;
  double last_wall = 0.0;

  const auto report_progress = [&] {
    ReplayProgress progress;
    progress.events_delivered = stats.events_delivered;
    progress.events_dropped = stats.events_dropped;
    progress.wall_seconds =
        std::chrono::duration<double>(Clock::now() - wall_start).count();
    progress.events_per_second =
        progress.wall_seconds > 0.0
            ? static_cast<double>(stats.events_delivered) /
                  progress.wall_seconds
            : 0.0;
    const double window = progress.wall_seconds - last_wall;
    progress.interval_events_per_second =
        window > 0.0 ? static_cast<double>(stats.events_delivered -
                                           last_delivered) /
                           window
                     : 0.0;
    last_delivered = stats.events_delivered;
    last_wall = progress.wall_seconds;
    progress.lag_sim_seconds = current_lag_sim;
    if (options_.on_progress) {
      options_.on_progress(progress);
    } else {
      ADREC_LOG(kInfo) << "replay: " << progress.events_delivered
                       << " delivered, " << progress.events_dropped
                       << " dropped, "
                       << StringFormat(
                              "%.0f ev/s (window %.0f), lag %.1fs",
                              progress.events_per_second,
                              progress.interval_events_per_second,
                              progress.lag_sim_seconds);
    }
  };

  for (const FeedEvent& event : events) {
    bool delivered = true;
    if (options_.speedup > 0.0) {
      // The wall time at which this event is due.
      const double due_wall =
          static_cast<double>(event.time - sim_start) / options_.speedup;
      const double now_wall =
          std::chrono::duration<double>(Clock::now() - wall_start).count();
      if (now_wall < due_wall) {
        current_lag_sim = 0.0;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due_wall - now_wall));
      } else {
        // How far behind schedule are we, in simulated seconds?
        current_lag_sim = (now_wall - due_wall) * options_.speedup;
        if (options_.max_lag > 0 &&
            current_lag_sim > static_cast<double>(options_.max_lag)) {
          ++stats.events_dropped;
          delivered = false;  // shed this event
        }
      }
    }
    if (delivered) {
      const auto h0 = Clock::now();
      handler(event);
      const auto h1 = Clock::now();
      stats.handler_micros.Record(
          std::chrono::duration<double, std::micro>(h1 - h0).count());
      ++stats.events_delivered;
    }
    ++processed;
    if (options_.progress_every > 0 &&
        processed % options_.progress_every == 0) {
      report_progress();
    }
  }

  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  stats.events_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.events_delivered) / stats.wall_seconds
          : 0.0;
  return stats;
}

}  // namespace adrec::feed
