#include "feed/stream_replayer.h"

#include <chrono>
#include <thread>

namespace adrec::feed {

StreamReplayer::StreamReplayer(ReplayOptions options) : options_(options) {}

ReplayStats StreamReplayer::Replay(
    const std::vector<FeedEvent>& events,
    const std::function<void(const FeedEvent&)>& handler) {
  ReplayStats stats;
  if (events.empty()) return stats;

  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  const Timestamp sim_start = events.front().time;

  for (const FeedEvent& event : events) {
    if (options_.speedup > 0.0) {
      // The wall time at which this event is due.
      const double due_wall =
          static_cast<double>(event.time - sim_start) / options_.speedup;
      const double now_wall =
          std::chrono::duration<double>(Clock::now() - wall_start).count();
      if (now_wall < due_wall) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(due_wall - now_wall));
      } else if (options_.max_lag > 0) {
        // How far behind schedule are we, in simulated seconds?
        const double lag_sim =
            (now_wall - due_wall) * options_.speedup;
        if (lag_sim > static_cast<double>(options_.max_lag)) {
          ++stats.events_dropped;
          continue;  // shed this event
        }
      }
    }
    const auto h0 = Clock::now();
    handler(event);
    const auto h1 = Clock::now();
    stats.handler_micros.Record(
        std::chrono::duration<double, std::micro>(h1 - h0).count());
    ++stats.events_delivered;
  }

  stats.wall_seconds =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  stats.events_per_second =
      stats.wall_seconds > 0.0
          ? static_cast<double>(stats.events_delivered) / stats.wall_seconds
          : 0.0;
  return stats;
}

}  // namespace adrec::feed
