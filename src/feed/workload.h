#ifndef ADREC_FEED_WORKLOAD_H_
#define ADREC_FEED_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "annotate/knowledge_base.h"
#include "common/id_types.h"
#include "common/random.h"
#include "common/status.h"
#include "feed/types.h"
#include "geo/places.h"
#include "timeline/time_slots.h"

namespace adrec::feed {

/// Ground truth recorded while generating a user: which topics the user is
/// genuinely interested in and which (location, slot) pairs the user
/// frequents. The evaluation oracle derives relevant-user sets U* from
/// this, playing the role of the paper's human domain experts.
struct UserTruth {
  std::vector<TopicId> interests;
  /// frequented[s] lists LocationIds the user visits during slot s.
  std::vector<std::vector<LocationId>> frequented;
  double activity = 1.0;  ///< relative posting rate
};

/// Generator parameters. Defaults produce a medium workload; the pinned
/// case-study configuration (31 users, 29 locations, 5 ads, 30 days —
/// mirroring the scale of the crawl the source family of papers reports)
/// is available via CaseStudyOptions().
struct WorkloadOptions {
  uint64_t seed = 42;
  size_t num_users = 31;
  size_t num_places = 29;
  size_t num_ads = 5;
  int days = 30;
  /// Mean tweets per user per day (scaled by per-user activity).
  double tweets_per_user_day = 6.0;
  /// Mean check-ins per user per day.
  double checkins_per_user_day = 2.5;
  /// Zipf skew of topic popularity across users.
  double topic_skew = 1.0;
  /// Zipf skew of user activity.
  double user_skew = 0.8;
  /// Number of interest topics per user, drawn uniformly in [min, max].
  int min_interests = 2;
  int max_interests = 4;
  /// Number of frequented places per user per slot, in [1, max].
  int max_places_per_slot = 2;
  /// Probability that a tweet is off-interest noise.
  double noise_probability = 0.25;
  /// Probability that a user's interests are sampled from one coherent
  /// topic cluster (sports / food / entertainment / tech) instead of
  /// independently. Clustered interests create *individual-level*
  /// co-interest correlations — the signal audience expansion (E13)
  /// exploits. 0 keeps the independent sampling.
  double clustered_interest_probability = 0.0;
  /// Relative posting intensity per slot of TimeSlotScheme::PaperScheme():
  /// night, slot1, slot2, late. The paper observes higher intensity (and
  /// hence better classification) in slot2.
  std::vector<double> slot_intensity = {0.2, 1.0, 2.0, 0.7};
  /// Topics per generated ad, in [1, max].
  int max_topics_per_ad = 2;
  /// Target locations per ad, in [1, max].
  int max_locations_per_ad = 2;
};

/// A fully-generated synthetic trace plus its ground truth and the shared
/// vocabulary/KB machinery used to produce it.
struct Workload {
  WorkloadOptions options;
  timeline::TimeSlotScheme slots = timeline::TimeSlotScheme::PaperScheme();
  std::shared_ptr<text::Analyzer> analyzer;
  std::shared_ptr<annotate::KnowledgeBase> kb;
  geo::PlaceRegistry places;
  std::vector<Tweet> tweets;        // time-ordered
  std::vector<CheckIn> check_ins;   // time-ordered
  std::vector<Ad> ads;
  std::vector<UserTruth> truth;     // indexed by UserId
  /// Topic ids of each ad's copy (ground truth, pre-annotation).
  std::vector<std::vector<TopicId>> ad_topics;

  /// Tweets and check-ins merged into one time-ordered event stream.
  std::vector<FeedEvent> MergedEvents() const;
};

/// Deterministically generates a synthetic trace from `options`. The
/// generator first samples each user's interests and mobility (the ground
/// truth), then emits tweets *from* those interests — so relevance is
/// known exactly, which is what the F-score experiments need.
Workload GenerateWorkload(const WorkloadOptions& options);

/// The pinned configuration of the reconstructed evaluation (E1/E2/E8...).
WorkloadOptions CaseStudyOptions();

}  // namespace adrec::feed

#endif  // ADREC_FEED_WORKLOAD_H_
