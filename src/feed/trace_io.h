#ifndef ADREC_FEED_TRACE_IO_H_
#define ADREC_FEED_TRACE_IO_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "feed/types.h"

namespace adrec::feed {

/// Line-oriented trace persistence. One record per line, tab-separated,
/// with a leading record-type tag — robust to tweet texts containing
/// commas and easy to stream:
///   T <user> <time> <text...>          (tweet; text is the line tail)
///   C <user> <time> <location>         (check-in)
///   A <id> <campaign> <budget> <bid> <locs;...> <slots;...> <copy...>
/// Escapes in text: tabs and newlines are replaced by spaces on write
/// (tweets are single-line by construction).

/// Writes tweets and check-ins (merged, time-ordered) to `path`.
Status WriteTrace(const std::string& path, const std::vector<Tweet>& tweets,
                  const std::vector<CheckIn>& check_ins);

/// Writes ads to `path`.
Status WriteAds(const std::string& path, const std::vector<Ad>& ads);

/// Parsed trace contents.
struct Trace {
  std::vector<Tweet> tweets;
  std::vector<CheckIn> check_ins;
};

/// Reads a trace written by WriteTrace. Fails on malformed lines with the
/// line number in the message.
Result<Trace> ReadTrace(const std::string& path);

/// Reads ads written by WriteAds.
Result<std::vector<Ad>> ReadAds(const std::string& path);

/// --- The field grammar itself, shared with the serve wire protocol. ---
///
/// A record's payload is the tab-separated field list after its leading
/// tag. The parse/format pair below is the single definition of that
/// grammar: ReadTrace/ReadAds consume it per line, and the src/serve
/// daemon's `tweet`/`checkin`/`adput` commands carry exactly these
/// payloads after the command verb. Formatters emit neither tag nor
/// newline; free text is sanitised to be single-line and tab-free.

/// "<user>\t<time>\t<text...>" (text is the tail and may be empty).
Result<Tweet> ParseTweetFields(std::string_view payload);
std::string FormatTweetFields(const Tweet& tweet);

/// "<user>\t<time>\t<location>" (exactly three fields).
Result<CheckIn> ParseCheckInFields(std::string_view payload);
std::string FormatCheckInFields(const CheckIn& check_in);

/// "<id>\t<campaign>\t<budget>\t<bid>\t<locs;...>\t<slots;...>\t<copy...>"
/// ("-" stands for an empty id list; copy is the tail).
Result<Ad> ParseAdFields(std::string_view payload);
std::string FormatAdFields(const Ad& ad);

}  // namespace adrec::feed

#endif  // ADREC_FEED_TRACE_IO_H_
