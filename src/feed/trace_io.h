#ifndef ADREC_FEED_TRACE_IO_H_
#define ADREC_FEED_TRACE_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "feed/types.h"

namespace adrec::feed {

/// Line-oriented trace persistence. One record per line, tab-separated,
/// with a leading record-type tag — robust to tweet texts containing
/// commas and easy to stream:
///   T <user> <time> <text...>          (tweet; text is the line tail)
///   C <user> <time> <location>         (check-in)
///   A <id> <campaign> <budget> <bid> <locs;...> <slots;...> <copy...>
/// Escapes in text: tabs and newlines are replaced by spaces on write
/// (tweets are single-line by construction).

/// Writes tweets and check-ins (merged, time-ordered) to `path`.
Status WriteTrace(const std::string& path, const std::vector<Tweet>& tweets,
                  const std::vector<CheckIn>& check_ins);

/// Writes ads to `path`.
Status WriteAds(const std::string& path, const std::vector<Ad>& ads);

/// Parsed trace contents.
struct Trace {
  std::vector<Tweet> tweets;
  std::vector<CheckIn> check_ins;
};

/// Reads a trace written by WriteTrace. Fails on malformed lines with the
/// line number in the message.
Result<Trace> ReadTrace(const std::string& path);

/// Reads ads written by WriteAds.
Result<std::vector<Ad>> ReadAds(const std::string& path);

}  // namespace adrec::feed

#endif  // ADREC_FEED_TRACE_IO_H_
