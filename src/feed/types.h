#ifndef ADREC_FEED_TYPES_H_
#define ADREC_FEED_TYPES_H_

#include <string>
#include <vector>

#include "common/id_types.h"
#include "common/sim_clock.h"
#include "geo/point.h"

namespace adrec::feed {

/// A social post: author, timestamp and raw text. Annotation happens in the
/// engine's semantic-representation phase, not here.
struct Tweet {
  UserId user;
  Timestamp time = 0;
  std::string text;
};

/// A check-in: a user declaring presence at a named location.
struct CheckIn {
  UserId user;
  Timestamp time = 0;
  LocationId location;
};

/// An advertisement: copy text plus the advertiser's context — target
/// locations m*, target time slots t*, and a budget in impressions.
struct Ad {
  AdId id;
  CampaignId campaign;
  std::string copy;
  std::vector<LocationId> target_locations;  ///< m* (any-of)
  std::vector<SlotId> target_slots;          ///< t* (any-of)
  int64_t budget_impressions = 0;            ///< 0 means unlimited
  double bid = 1.0;                          ///< value per impression
};

/// Stream event kinds (the high-speed feed interleaves all three).
enum class EventKind { kTweet, kCheckIn, kAdInsert, kAdDelete };

/// One event of the unified input stream, ordered by timestamp.
struct FeedEvent {
  EventKind kind = EventKind::kTweet;
  Timestamp time = 0;
  // Exactly one of the following is meaningful, per kind. A plain struct
  // (not std::variant) keeps the hot path free of visitation overhead.
  Tweet tweet;
  CheckIn check_in;
  Ad ad;          // for kAdInsert
  AdId ad_id;     // for kAdDelete
};

}  // namespace adrec::feed

#endif  // ADREC_FEED_TYPES_H_
