#ifndef ADREC_FEED_LOADGEN_H_
#define ADREC_FEED_LOADGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/sim_clock.h"
#include "feed/types.h"
#include "serve/client.h"

namespace adrec::feed {

/// Zipf-parameterised mixed ingest/query load (SNIPPETS.md §1 shape):
/// the realistic traffic model for a high-speed feed front end, where a
/// small set of hot users absorbs most topk calls and ingest trickles
/// through the same connection. One LoadGen is one deterministic op
/// stream — same options, same seed, same ops — so cached and uncached
/// servers can be driven identically.
struct LoadGenOptions {
  uint64_t seed = 1;
  size_t num_users = 1000;
  /// Check-in cells are drawn from their own Zipf (hot venues).
  size_t num_cells = 64;
  /// Zipf exponent over users; 0 = uniform. Applies to both queries and
  /// ingest (hot users are hot on both sides).
  double user_skew = 0.99;
  double cell_skew = 0.8;
  /// Probability an op is ingest (the rest are topk queries).
  double ingest_fraction = 0.10;
  /// Of the ingest ops, the check-in share (the rest are tweets).
  double checkin_fraction = 0.30;
  size_t topk_k = 5;
  /// Simulated stream time starts here and advances one second per
  /// `ingests_per_second` generated ingest events — the knob for how
  /// fast the server's stream clock (and with it the identity of
  /// time-less topk queries) moves under load.
  Timestamp start_time = 1;
  size_t ingests_per_second = 64;
  /// false: topk ops are time-less ("this user's feed right now" — the
  /// server substitutes its stream clock). true: ops carry an explicit
  /// <time> (the generator's current stream time) and the user's phrase.
  bool explicit_time_queries = false;
};

/// One generated operation.
struct LoadOp {
  enum class Kind { kTweet, kCheckIn, kTopK };
  Kind kind = Kind::kTopK;
  Tweet tweet;        ///< kTweet payload; kTopK query (user[, time, text])
  CheckIn check_in;   ///< kCheckIn payload
  size_t k = 0;       ///< kTopK
  bool has_time = false;  ///< kTopK: explicit time+text on the wire
};

/// Deterministic op-stream generator.
class LoadGen {
 public:
  /// `phrases` is the text pool; each user tweets/queries one stable
  /// phrase from it (realistic repeat-query shapes). May be empty.
  LoadGen(LoadGenOptions options, std::vector<std::string> phrases);

  LoadOp Next();

  /// The generator's current simulated stream time.
  Timestamp now() const { return now_; }

 private:
  const std::string& PhraseFor(UserId user) const;

  const LoadGenOptions options_;
  const std::vector<std::string> phrases_;
  Rng rng_;
  ZipfSampler users_;
  ZipfSampler cells_;
  Timestamp now_;
  size_t ingests_ = 0;
};

/// One load run's outcome.
struct LoadRunStats {
  size_t ops = 0;
  size_t errors = 0;
  double seconds = 0.0;
  double achieved_ops_per_sec = 0.0;
  Histogram topk_latency_us;
  Histogram ingest_latency_us;
};

struct LoadRunOptions {
  size_t num_ops = 10000;
  /// 0 = closed loop (back-to-back over the blocking client; achieved
  /// throughput is the service rate). > 0 = open loop: ops are scheduled
  /// at this uniform arrival rate and latency is measured from the
  /// *scheduled* arrival instant, so queueing delay while the server
  /// falls behind counts against it — no coordinated omission.
  double open_loop_rate = 0.0;
  /// Concurrent client connections for RunLoadMulti. One blocking socket
  /// serialises the whole schedule at the server's per-request latency,
  /// which can't saturate a multi-worker daemon; N connections split the
  /// op stream round-robin (op i on connection i%N), each keeping its
  /// globally scheduled arrival instant, so the aggregate open-loop rate
  /// is preserved while requests genuinely overlap.
  size_t connections = 1;
};

/// Drives `gen` over `client` per `run` on one connection (the classic
/// closed/open single-socket loop; `run.connections` is ignored).
/// Transport errors are counted and the affected op's latency is
/// dropped; callers treat a non-zero error count as a failed run.
LoadRunStats RunLoad(serve::Client* client, LoadGen* gen,
                     const LoadRunOptions& run);

/// Multi-connection variant: pre-generates the deterministic op stream
/// from `gen` (same seed -> same ops, independent of the connection
/// count), opens `run.connections` sockets to host:port, and drives the
/// round-robin partition of the stream over each from its own thread.
/// Latencies are merged across connections; achieved throughput is
/// aggregate ops over the whole run's wall time. A connection that
/// fails to connect counts every op of its partition as an error.
LoadRunStats RunLoadMulti(const std::string& host, uint16_t port,
                          LoadGen* gen, const LoadRunOptions& run);

}  // namespace adrec::feed

#endif  // ADREC_FEED_LOADGEN_H_
