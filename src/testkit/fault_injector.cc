#include "testkit/fault_injector.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "common/string_util.h"

namespace adrec::testkit {

Result<size_t> TornWriteTail(const std::string& path, uint64_t seed,
                             size_t max_bytes) {
  std::error_code ec;
  const uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IoError("stat " + path + ": " + ec.message());
  if (size == 0 || max_bytes == 0) return static_cast<size_t>(0);
  Rng rng(seed);
  const uint64_t cap = std::min<uint64_t>(max_bytes, size);
  const size_t cut = static_cast<size_t>(1 + rng.NextBounded(cap));
  std::filesystem::resize_file(path, size - cut, ec);
  if (ec) return Status::IoError("truncate " + path + ": " + ec.message());
  return cut;
}

Result<size_t> FlipRandomBit(const std::string& path, uint64_t seed) {
  std::error_code ec;
  const uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IoError("stat " + path + ": " + ec.message());
  if (size == 0) {
    return Status::InvalidArgument("cannot flip a bit of empty " + path);
  }
  Rng rng(seed);
  const size_t offset = static_cast<size_t>(rng.NextBounded(size));
  const int bit = static_cast<int>(rng.NextBounded(8));
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return Status::IoError("cannot open " + path);
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  if (!f.get(byte)) return Status::IoError("read " + path);
  byte = static_cast<char>(byte ^ (1 << bit));
  f.seekp(static_cast<std::streamoff>(offset));
  if (!f.put(byte).flush()) return Status::IoError("write " + path);
  return offset;
}

FaultOptions DefaultFaultMix(uint64_t seed) {
  FaultOptions f;
  f.seed = seed;
  f.reorder_probability = 0.05;
  f.reorder_window = 6;
  f.duplicate_probability = 0.03;
  f.drop_probability = 0.02;
  f.skew_probability = 0.02;
  f.max_skew = 10 * kSecondsPerMinute;
  f.malform_probability = 0.02;
  return f;
}

FaultOptions RecoverableFaultMix(uint64_t seed) {
  FaultOptions f;
  f.seed = seed;
  f.reorder_probability = 0.08;
  f.reorder_window = 6;
  f.duplicate_probability = 0.05;
  f.malform_probability = 0.03;
  return f;
}

bool IsWellFormed(const feed::FeedEvent& event) {
  if (event.time < 0) return false;
  switch (event.kind) {
    case feed::EventKind::kTweet:
      return event.tweet.user.valid() && !event.tweet.text.empty();
    case feed::EventKind::kCheckIn:
      return event.check_in.user.valid() && event.check_in.location.valid();
    case feed::EventKind::kAdInsert:
      return event.ad.id.valid() && !event.ad.copy.empty();
    case feed::EventKind::kAdDelete:
      return event.ad_id.valid();
  }
  return false;
}

std::string EventKey(const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
      return StringFormat("T|%lld|%u|", static_cast<long long>(event.time),
                          event.tweet.user.value) +
             event.tweet.text;
    case feed::EventKind::kCheckIn:
      return StringFormat("C|%lld|%u|%u", static_cast<long long>(event.time),
                          event.check_in.user.value,
                          event.check_in.location.value);
    case feed::EventKind::kAdInsert:
      return StringFormat("A|%lld|%u|", static_cast<long long>(event.time),
                          event.ad.id.value) +
             event.ad.copy;
    case feed::EventKind::kAdDelete:
      return StringFormat("D|%lld|%u", static_cast<long long>(event.time),
                          event.ad_id.value);
  }
  return "?";
}

namespace {

/// Turns a valid event into one of the malformed records a truncated or
/// garbled wire line parses into.
void Corrupt(feed::FeedEvent* event, Rng& rng) {
  switch (rng.NextBounded(3)) {
    case 0:  // impossible timestamp
      event->time = -1 - static_cast<Timestamp>(rng.NextBounded(1000));
      break;
    case 1:  // lost primary id
      switch (event->kind) {
        case feed::EventKind::kTweet:
          event->tweet.user = UserId();
          break;
        case feed::EventKind::kCheckIn:
          event->check_in.user = UserId();
          break;
        case feed::EventKind::kAdInsert:
          event->ad.id = AdId();
          break;
        case feed::EventKind::kAdDelete:
          event->ad_id = AdId();
          break;
      }
      break;
    default:  // truncated payload
      switch (event->kind) {
        case feed::EventKind::kTweet:
          event->tweet.text.clear();
          break;
        case feed::EventKind::kCheckIn:
          event->check_in.location = LocationId();
          break;
        case feed::EventKind::kAdInsert:
          event->ad.copy.clear();
          break;
        case feed::EventKind::kAdDelete:
          event->ad_id = AdId();
          break;
      }
      break;
  }
}

}  // namespace

std::vector<feed::FeedEvent> InjectFaults(
    const std::vector<feed::FeedEvent>& events, const FaultOptions& options,
    FaultStats* stats) {
  Rng rng(options.seed);
  FaultStats local;
  local.events_in = events.size();

  std::vector<feed::FeedEvent> out;
  out.reserve(events.size() + events.size() / 8);
  for (const feed::FeedEvent& event : events) {
    if (options.drop_probability > 0.0 &&
        rng.NextBool(options.drop_probability)) {
      ++local.dropped;
      continue;
    }
    feed::FeedEvent copy = event;
    if (options.malform_probability > 0.0 &&
        rng.NextBool(options.malform_probability)) {
      // A garbled wire line arrives alongside the real record (the
      // original still flows) — which is what makes malformed records a
      // recoverable fault: dropping the garbage loses nothing.
      feed::FeedEvent garbled = copy;
      Corrupt(&garbled, rng);
      out.push_back(std::move(garbled));
      ++local.malformed;
    } else if (options.skew_probability > 0.0 && options.max_skew > 0 &&
               rng.NextBool(options.skew_probability)) {
      const DurationSec magnitude = rng.NextInt(1, options.max_skew);
      copy.time += rng.NextBool(0.5) ? magnitude : -magnitude;
      ++local.skewed;
    }
    out.push_back(copy);
    if (options.duplicate_probability > 0.0 &&
        rng.NextBool(options.duplicate_probability)) {
      out.push_back(out.back());  // adjacent; the reorder pass displaces it
      ++local.duplicated;
    }
  }

  // Bounded forward displacement: the chosen event slides up to
  // `reorder_window` positions downstream, everything else keeps its
  // relative order (std::rotate).
  if (options.reorder_probability > 0.0 && options.reorder_window > 0) {
    for (size_t i = 0; i + 1 < out.size(); ++i) {
      if (!rng.NextBool(options.reorder_probability)) continue;
      const size_t target = std::min(
          i + 1 + static_cast<size_t>(rng.NextBounded(options.reorder_window)),
          out.size() - 1);
      if (target == i) continue;
      std::rotate(out.begin() + static_cast<ptrdiff_t>(i),
                  out.begin() + static_cast<ptrdiff_t>(i) + 1,
                  out.begin() + static_cast<ptrdiff_t>(target) + 1);
      ++local.reordered;
    }
  }

  local.events_out = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<feed::FeedEvent> SanitizeTrace(
    const std::vector<feed::FeedEvent>& events, const SanitizeOptions& options,
    SanitizeStats* stats) {
  SanitizeStats local;
  std::vector<feed::FeedEvent> out;
  out.reserve(events.size());
  std::unordered_set<std::string> seen;
  std::vector<std::string> keys;
  for (const feed::FeedEvent& event : events) {
    if (options.drop_malformed && !IsWellFormed(event)) {
      ++local.dropped_malformed;
      continue;
    }
    if (options.dedup) {
      if (!seen.insert(EventKey(event)).second) {
        ++local.deduplicated;
        continue;
      }
    }
    out.push_back(event);
  }
  if (options.resort) {
    // Canonical total order: time, then content key. Deterministic for
    // any input permutation, which is what makes bounded reordering a
    // recoverable fault.
    keys.reserve(out.size());
    std::vector<size_t> order(out.size());
    for (size_t i = 0; i < out.size(); ++i) {
      order[i] = i;
      keys.push_back(EventKey(out[i]));
    }
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (out[a].time != out[b].time) return out[a].time < out[b].time;
      return keys[a] < keys[b];
    });
    std::vector<feed::FeedEvent> sorted;
    sorted.reserve(out.size());
    for (size_t idx : order) sorted.push_back(std::move(out[idx]));
    out = std::move(sorted);
  }
  local.events_out = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

FaultInjectingReplayer::FaultInjectingReplayer(FaultOptions faults,
                                               feed::ReplayOptions replay,
                                               obs::MetricRegistry* registry)
    : faults_(faults), replay_options_(std::move(replay)),
      registry_(registry) {}

feed::ReplayStats FaultInjectingReplayer::Replay(
    const std::vector<feed::FeedEvent>& events,
    const std::function<void(const feed::FeedEvent&)>& handler) {
  const std::vector<feed::FeedEvent> injected =
      InjectFaults(events, faults_, &fault_stats_);
  feed::StreamReplayer replayer(replay_options_);
  feed::ReplayStats stats = replayer.Replay(injected, handler);
  if (registry_ != nullptr) {
    registry_->GetCounter("testkit.reordered")->Inc(fault_stats_.reordered);
    registry_->GetCounter("testkit.duplicated")->Inc(fault_stats_.duplicated);
    registry_->GetCounter("testkit.dropped")->Inc(fault_stats_.dropped);
    registry_->GetCounter("testkit.skewed")->Inc(fault_stats_.skewed);
    registry_->GetCounter("testkit.malformed")->Inc(fault_stats_.malformed);
    registry_->GetCounter("testkit.events_delivered")
        ->Inc(stats.events_delivered);
  }
  return stats;
}

}  // namespace adrec::testkit
