#ifndef ADREC_TESTKIT_DIFFERENTIAL_H_
#define ADREC_TESTKIT_DIFFERENTIAL_H_

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "annotate/knowledge_base.h"
#include "core/engine.h"
#include "core/recommender.h"
#include "core/tfca.h"
#include "feed/types.h"
#include "index/ad_index.h"
#include "timeline/time_slots.h"
#include "wal/checkpoint.h"

namespace adrec::wal {
struct RecoveryResult;
}  // namespace adrec::wal

namespace adrec::testkit {

/// One streaming top-k probe: the ads served for the tweet at
/// `event_index` of the input trace.
struct ProbeResult {
  size_t event_index = 0;
  std::vector<index::ScoredAd> ads;
};

/// Everything observable about one execution of a trace: the streamed
/// top-k probes, the post-stream analysis counters, the per-ad triadic
/// match results, and the event counters. Two correct engine variants
/// executing the same trace must produce equal outcomes (bit-equal
/// scores included — same arithmetic, same order).
struct RunOutcome {
  std::vector<ProbeResult> probes;
  core::TfcaStats tfca;
  /// MatchResult per input ad (input order); empty when the variant does
  /// not support exact matching (sharded mining is shard-local).
  std::vector<core::MatchResult> matches;
  uint64_t tweets = 0;
  uint64_t checkins = 0;
  uint64_t topk_queries = 0;
  uint64_t impressions = 0;
};

/// Which outcome facets a comparison asserts. The sharded variant only
/// supports the summable facets: probe equality holds exactly (per-user
/// routing; ad operations broadcast), but concept mining is shard-local
/// by design (see core/sharded_engine.h), so only the window-content
/// sums — users, check-in incidences, tweet cells — are comparable.
struct CompareOptions {
  bool probes = true;
  bool counters = true;
  bool tfca_full = true;
  bool tfca_sums = false;
  bool matches = true;
};

/// A divergence report: which facet disagreed, at which input event
/// (SIZE_MAX for post-stream facets like analysis results).
struct Divergence {
  bool diverged = false;
  size_t event_index = SIZE_MAX;
  std::string detail;

  explicit operator bool() const { return diverged; }
};

/// Differential execution of one trace across independent engine
/// deployments: a single RecommendationEngine, a ShardedEngine with N
/// shards, and an engine that is snapshot-saved mid-stream, restored
/// into a fresh engine (core/snapshot), window-replayed and continued.
/// All variants must agree; the first disagreement is reported with the
/// input event index — the substrate every perf/refactor PR must pass
/// before claiming the hot path got faster without getting wrong.
struct DifferentialOptions {
  size_t num_shards = 3;
  /// Fraction of the trace after which the snapshot variant saves,
  /// restores and continues.
  double snapshot_fraction = 0.5;
  size_t top_k = 3;
  double alpha = 0.6;
  /// Probe TopKAdsForTweet on every Nth tweet (1 = every tweet).
  size_t probe_every = 1;
  /// Directory for the snapshot variant's save/load cycle. Required when
  /// run_snapshot is true.
  std::string snapshot_dir;
  core::EngineOptions engine;
  bool run_sharded = true;
  bool run_snapshot = true;

  // --- WAL crash-recovery variant (RunWalCrash). ---
  /// Log directory; must be fresh per run (leftover segments would be
  /// replayed).
  std::string wal_dir;
  /// Fraction of the trace ingested — and WAL-acknowledged — before the
  /// simulated crash.
  double crash_fraction = 0.5;
  /// Take a coordinated wal::CheckpointManager checkpoint at this
  /// fraction of the trace (< 0 = crash recovers from the log alone;
  /// otherwise must be <= crash_fraction).
  double wal_checkpoint_fraction = -1.0;
  /// Append a torn half-frame of the first unacknowledged event at the
  /// crash point — recovery must detect and cut it, not fail.
  bool crash_torn_tail = false;
  /// Seeds the torn-frame cut length.
  uint64_t crash_seed = 1;
  /// Segment size for the crash variant; small, to force rotation and
  /// multi-segment replay.
  size_t wal_segment_bytes = 16 * 1024;
  /// Shard count of the crashing/replicating engine AND its WAL stream
  /// count (wal::WalOptions::shards): the crash variant logs through a
  /// wal::ShardedWal (feed events to the owner shard's stream, ad ops
  /// broadcast) and recovers all streams; the promotion variant runs one
  /// replication cursor per stream. 1 (the default) collapses to the
  /// classic single-stream layout, exactly comparable to RunSingle
  /// (full CompareOptions).
  size_t wal_shards = 1;
  /// Checkpoint manager configuration for the crash variant: set
  /// mode = kDelta / rebase_every to exercise the delta-chain save path
  /// (wal/delta/delta_checkpoint.h) instead of full snapshots.
  wal::CheckpointOptions wal_checkpoint_options;
  /// Checkpoints taken, evenly spaced through the first
  /// wal_checkpoint_fraction of the trace (>= 1; several build a delta
  /// chain in kDelta mode — rebase generation plus deltas).
  size_t wal_checkpoint_count = 1;
  /// Runs between the crash (after torn-tail injection) and recovery,
  /// with the log directory fully quiescent — the hook for offline
  /// compaction and kill-point surgery on checkpoint / compaction-swap
  /// artifacts.
  std::function<void(const std::string& wal_dir)> post_crash_hook;

  // --- Replica promotion variant (RunReplicaPromotion). ---
  /// The follower's own log directory; fresh per run. (The leader logs
  /// to wal_dir and dies at crash_fraction; crash_torn_tail/crash_seed
  /// control the torn final frame exactly as in RunWalCrash.)
  std::string replica_wal_dir;
  /// Scratch directory for the canonical byte-compare: snapshot trees
  /// for the promoted follower and the reference engine are written
  /// under it.
  std::string replica_snapshot_dir;
  /// Fraction of the leader's acknowledged records the follower has
  /// replicated when the leader dies (1.0 = fully caught up; smaller
  /// kills the leader mid-catch-up, so promotion happens from a strict
  /// prefix — the async-replication durability contract).
  double replica_catchup_fraction = 1.0;
  /// Frame bytes per wal::ReadFrames batch; small, to force the cursor
  /// hint across many batches and segment boundaries.
  size_t replica_batch_bytes = 4 * 1024;
};

/// What one RunReplicaPromotion execution observed.
struct ReplicaPromotionReport {
  /// Records the leader had flushed (= acknowledged) before it died.
  uint64_t acknowledged = 0;
  /// Records the follower logged to its own WAL and applied.
  uint64_t replicated = 0;
  /// Writes the promoted follower accepted after the failover.
  uint64_t post_promote = 0;
  /// Snapshot trees byte-identical both at promotion and after the
  /// post-promotion writes.
  bool identical = false;
  /// First mismatch (file set or file bytes) when !identical.
  std::string detail;
};

class DifferentialChecker {
 public:
  DifferentialChecker(std::shared_ptr<annotate::KnowledgeBase> kb,
                      timeline::TimeSlotScheme slots,
                      DifferentialOptions options);

  /// One trace through the flat engine. Ads are inserted up front; the
  /// trace supplies tweets and check-ins (ad churn events pass through
  /// OnEvent as usual).
  RunOutcome RunSingle(const std::vector<feed::Ad>& ads,
                       const std::vector<feed::FeedEvent>& events) const;

  /// Same trace through a ShardedEngine with options.num_shards shards.
  /// The outcome's tfca carries only the summable fields (users,
  /// checkin_incidences, tweet_cells, summed across shards) and matches
  /// stays empty.
  RunOutcome RunSharded(const std::vector<feed::Ad>& ads,
                        const std::vector<feed::FeedEvent>& events) const;

  /// Same trace with a save→load→window-replay→continue cycle at
  /// options.snapshot_fraction. Counters are the sum of the pre-save and
  /// post-restore engines' counters.
  RunOutcome RunSnapshotRestore(
      const std::vector<feed::Ad>& ads,
      const std::vector<feed::FeedEvent>& events) const;

  /// Same trace through a WAL-logged engine that is destroyed without
  /// warning at options.crash_fraction (optionally leaving a torn final
  /// frame behind), recovered via wal::CheckpointManager::Recover into a
  /// fresh engine, and continued — the crash-consistency counterpart of
  /// RunSnapshotRestore. `recovery`, when given, receives what Recover
  /// reported (checkpoint use, replay counts, torn bytes).
  ///
  /// Exactness caveat: `topk` probes mutate serving state (impression
  /// counters, frequency-cap histories) that is NOT write-ahead logged,
  /// so exact equality with RunSingle requires a workload where serving
  /// is ranking-stateless: unlimited ad budgets and
  /// engine.frequency_cap.max_impressions <= 0.
  RunOutcome RunWalCrash(const std::vector<feed::Ad>& ads,
                         const std::vector<feed::FeedEvent>& events,
                         wal::RecoveryResult* recovery = nullptr) const;

  /// The log-shipping failover differential. A leader executes the trace
  /// prefix up to crash_fraction while logging to wal_dir, then dies
  /// without warning (optionally leaving a torn final frame). A follower
  /// engine replicates the acknowledged prefix through wal::ReadFrames —
  /// the same cursor reader the serving daemon's leader side ships from —
  /// writing every record to its own log (replica_wal_dir) before
  /// applying it, exactly as replica::Follower does. At
  /// replica_catchup_fraction of the prefix the follower is promoted
  /// (log sealed, writes accepted) and must be byte-identical — by
  /// canonical core/snapshot compare — to a fresh engine fed the same
  /// record prefix directly, both immediately after promotion and again
  /// after the trace tail is re-submitted as post-failover writes.
  ReplicaPromotionReport RunReplicaPromotion(
      const std::vector<feed::Ad>& ads,
      const std::vector<feed::FeedEvent>& events) const;

  /// Runs every enabled variant and returns the first divergence (or a
  /// non-diverged report).
  Divergence Check(const std::vector<feed::Ad>& ads,
                   const std::vector<feed::FeedEvent>& events) const;

  /// Compares two outcomes facet by facet; `a_name`/`b_name` label the
  /// variants in the report.
  static Divergence CompareOutcomes(const RunOutcome& a, const RunOutcome& b,
                                    const CompareOptions& compare,
                                    std::string_view a_name,
                                    std::string_view b_name);

  const DifferentialOptions& options() const { return options_; }

 private:
  std::shared_ptr<annotate::KnowledgeBase> kb_;
  timeline::TimeSlotScheme slots_;
  DifferentialOptions options_;
};

}  // namespace adrec::testkit

#endif  // ADREC_TESTKIT_DIFFERENTIAL_H_
