#ifndef ADREC_TESTKIT_FAULT_INJECTOR_H_
#define ADREC_TESTKIT_FAULT_INJECTOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "feed/stream_replayer.h"
#include "feed/types.h"
#include "obs/metrics.h"

namespace adrec::testkit {

/// The fault model of the testkit: the ways a real high-speed feed
/// deviates from the clean, time-ordered event vector the unit suite
/// feeds the engine. Every fault is drawn from one pinned seed, so an
/// injected trace is a pure function of (input trace, FaultOptions).
struct FaultOptions {
  uint64_t seed = 1;
  /// Probability that an event is displaced forward by up to
  /// `reorder_window` positions (bounded out-of-order arrival, the
  /// shard-skew / network-jitter regime).
  double reorder_probability = 0.0;
  size_t reorder_window = 4;
  /// Probability that an event is delivered twice (at-least-once
  /// upstream). The duplicate lands a bounded distance downstream.
  double duplicate_probability = 0.0;
  /// Probability that an event is silently lost.
  double drop_probability = 0.0;
  /// Probability that an event's timestamp is perturbed by a uniform
  /// offset in [-max_skew, +max_skew] \ {0} (clock skew across sources).
  double skew_probability = 0.0;
  DurationSec max_skew = 5 * kSecondsPerMinute;
  /// Probability that a malformed record (empty text, invalid ids,
  /// negative timestamp — what a truncated line in the wire format
  /// parses into) is spliced into the stream next to an event. The
  /// original event still arrives, so dropping malformed records
  /// recovers the trace exactly.
  double malform_probability = 0.0;
};

/// Per-fault injection counters (also exported through the metric
/// registry as `testkit.*` when the replayer is given one).
struct FaultStats {
  size_t reordered = 0;
  size_t duplicated = 0;
  size_t dropped = 0;
  size_t skewed = 0;
  size_t malformed = 0;
  size_t events_in = 0;
  size_t events_out = 0;
};

/// A moderate all-faults-on preset used by the differential suite.
FaultOptions DefaultFaultMix(uint64_t seed);

/// A preset restricted to *recoverable* faults — reordering, duplicates
/// and malformed records, the ones SanitizeTrace can undo exactly. Used
/// by the recovery-differential tests, which compare an injected+
/// sanitized run against the pristine run.
FaultOptions RecoverableFaultMix(uint64_t seed);

/// True iff the event is structurally valid: non-negative timestamp,
/// valid ids, and (for tweets) non-empty text. The engine's input
/// contract; SanitizeTrace drops everything else.
bool IsWellFormed(const feed::FeedEvent& event);

/// A content fingerprint of an event: two events with equal keys are the
/// same record (kind, time and kind-specific payload). Dedup identity
/// and the canonical-order tie-break.
std::string EventKey(const feed::FeedEvent& event);

/// Applies the fault plan to a time-ordered trace. Deterministic in
/// (events, options). The output is generally NOT time-ordered — that is
/// the point.
std::vector<feed::FeedEvent> InjectFaults(
    const std::vector<feed::FeedEvent>& events, const FaultOptions& options,
    FaultStats* stats = nullptr);

/// The repair pipeline a robust ingest front-end runs before the engine:
/// drop malformed records, drop exact duplicates (keyed on EventKey),
/// and restore canonical time order (stable total order: time, then
/// EventKey). Each stage can be switched off to model a broken build —
/// the differential tests use `dedup = false` to prove the harness
/// catches a skipped dedup path.
struct SanitizeOptions {
  bool drop_malformed = true;
  bool dedup = true;
  bool resort = true;
};

struct SanitizeStats {
  size_t dropped_malformed = 0;
  size_t deduplicated = 0;
  size_t events_out = 0;
};

std::vector<feed::FeedEvent> SanitizeTrace(
    const std::vector<feed::FeedEvent>& events,
    const SanitizeOptions& options = {}, SanitizeStats* stats = nullptr);

// --- On-disk crash corruptors. The durability counterpart of the
// stream fault model above: the ways a crash (or a failing disk) mangles
// a log file. Both are pure functions of (file contents, seed), so a
// corrupted-recovery differential is exactly reproducible.

/// Simulates a torn write: removes a seeded number of trailing bytes
/// (1..max_bytes, capped at the file size) from `path`, as if the
/// process died mid-write(2). Returns the number of bytes removed.
Result<size_t> TornWriteTail(const std::string& path, uint64_t seed,
                             size_t max_bytes = 64);

/// Flips one seeded bit of `path` (which must be non-empty) in place —
/// the single-bit medium-corruption model a CRC frame must catch.
/// Returns the byte offset of the flipped bit.
Result<size_t> FlipRandomBit(const std::string& path, uint64_t seed);

/// A feed::StreamReplayer wrapper that injects the fault plan into the
/// trace before delivery and exports the injection counters through an
/// obs::MetricRegistry (`testkit.reordered`, `testkit.duplicated`,
/// `testkit.dropped`, `testkit.skewed`, `testkit.malformed`,
/// `testkit.events_delivered`). Pacing options are honoured, but the
/// injected trace is replayed as-is (out of order when reordering is on),
/// so paced runs should expect schedule jitter.
class FaultInjectingReplayer {
 public:
  explicit FaultInjectingReplayer(FaultOptions faults,
                                  feed::ReplayOptions replay = {},
                                  obs::MetricRegistry* registry = nullptr);

  /// Injects faults into `events`, replays the injected trace through
  /// `handler`, and returns the replay stats.
  feed::ReplayStats Replay(
      const std::vector<feed::FeedEvent>& events,
      const std::function<void(const feed::FeedEvent&)>& handler);

  /// Fault counters of the last Replay call.
  const FaultStats& fault_stats() const { return fault_stats_; }

 private:
  FaultOptions faults_;
  feed::ReplayOptions replay_options_;
  obs::MetricRegistry* registry_;  // not owned, may be null
  FaultStats fault_stats_;
};

}  // namespace adrec::testkit

#endif  // ADREC_TESTKIT_FAULT_INJECTOR_H_
