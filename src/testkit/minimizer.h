#ifndef ADREC_TESTKIT_MINIMIZER_H_
#define ADREC_TESTKIT_MINIMIZER_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "feed/types.h"

namespace adrec::testkit {

/// The failure oracle: true iff the (sub)trace still reproduces the
/// divergence. Must be deterministic — the minimizer calls it many times.
using FailurePredicate =
    std::function<bool(const std::vector<feed::FeedEvent>&)>;

struct MinimizeOptions {
  /// Hard cap on predicate evaluations (each one re-runs the
  /// differential, which is the expensive part).
  size_t max_predicate_calls = 2000;
};

struct MinimizeOutcome {
  /// 1-minimal failing trace: removing any single remaining event makes
  /// the failure disappear (up to the predicate-call budget).
  std::vector<feed::FeedEvent> trace;
  size_t predicate_calls = 0;
  /// False when the input trace did not fail in the first place (the
  /// input is returned unchanged).
  bool input_failed = true;
};

/// Delta-debugging (ddmin) trace reduction: bisects the failing trace
/// into progressively finer chunks, greedily deleting every chunk whose
/// removal preserves the failure, until the trace is 1-minimal or the
/// call budget runs out. Deterministic in (trace, predicate).
MinimizeOutcome MinimizeTrace(const std::vector<feed::FeedEvent>& failing,
                              const FailurePredicate& still_fails,
                              const MinimizeOptions& options = {});

/// Persists a minimized reproducer in the feed::trace_io golden format:
/// `<dir>/repro_trace.tsv` (tweets + check-ins, WriteTrace format) and
/// `<dir>/repro_ads.tsv` (WriteAds format). Ad insert/delete events in
/// `events` are rejected (reproducer ads belong in the `ads` argument).
Status WriteReproducer(const std::string& dir,
                       const std::vector<feed::FeedEvent>& events,
                       const std::vector<feed::Ad>& ads);

/// Reads a reproducer back as (ads, merged time-ordered events).
struct Reproducer {
  std::vector<feed::Ad> ads;
  std::vector<feed::FeedEvent> events;
};
Result<Reproducer> ReadReproducer(const std::string& dir);

}  // namespace adrec::testkit

#endif  // ADREC_TESTKIT_MINIMIZER_H_
