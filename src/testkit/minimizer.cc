#include "testkit/minimizer.h"

#include <algorithm>

#include "feed/trace_io.h"
#include "testkit/fault_injector.h"

namespace adrec::testkit {

namespace {

std::string TracePath(const std::string& dir) {
  return dir + "/repro_trace.tsv";
}
std::string AdsPath(const std::string& dir) { return dir + "/repro_ads.tsv"; }

/// `trace` minus the half-open chunk [begin, end).
std::vector<feed::FeedEvent> WithoutChunk(
    const std::vector<feed::FeedEvent>& trace, size_t begin, size_t end) {
  std::vector<feed::FeedEvent> out;
  out.reserve(trace.size() - (end - begin));
  out.insert(out.end(), trace.begin(),
             trace.begin() + static_cast<ptrdiff_t>(begin));
  out.insert(out.end(), trace.begin() + static_cast<ptrdiff_t>(end),
             trace.end());
  return out;
}

}  // namespace

MinimizeOutcome MinimizeTrace(const std::vector<feed::FeedEvent>& failing,
                              const FailurePredicate& still_fails,
                              const MinimizeOptions& options) {
  MinimizeOutcome outcome;
  outcome.trace = failing;

  const auto fails = [&](const std::vector<feed::FeedEvent>& t) {
    ++outcome.predicate_calls;
    return still_fails(t);
  };

  if (!fails(outcome.trace)) {
    outcome.input_failed = false;
    return outcome;
  }

  // ddmin (Zeller & Hildebrandt): delete chunks at granularity n,
  // refining n up to the trace length. Deleting a chunk restarts the
  // scan at coarser granularity, so large irrelevant spans go first.
  size_t n = 2;
  while (outcome.trace.size() >= 2 && n <= outcome.trace.size() &&
         outcome.predicate_calls < options.max_predicate_calls) {
    const size_t len = outcome.trace.size();
    const size_t chunk = (len + n - 1) / n;
    bool removed = false;
    for (size_t begin = 0; begin < len; begin += chunk) {
      const size_t end = std::min(begin + chunk, len);
      std::vector<feed::FeedEvent> candidate =
          WithoutChunk(outcome.trace, begin, end);
      if (candidate.empty()) continue;
      if (fails(candidate)) {
        outcome.trace = std::move(candidate);
        n = std::max<size_t>(2, n - 1);
        removed = true;
        break;
      }
      if (outcome.predicate_calls >= options.max_predicate_calls) break;
    }
    if (!removed) {
      if (n >= outcome.trace.size()) break;  // 1-minimal
      n = std::min(outcome.trace.size(), n * 2);
    }
  }
  return outcome;
}

Status WriteReproducer(const std::string& dir,
                       const std::vector<feed::FeedEvent>& events,
                       const std::vector<feed::Ad>& ads) {
  std::vector<feed::Tweet> tweets;
  std::vector<feed::CheckIn> check_ins;
  for (const feed::FeedEvent& event : events) {
    switch (event.kind) {
      case feed::EventKind::kTweet:
        tweets.push_back(event.tweet);
        break;
      case feed::EventKind::kCheckIn:
        check_ins.push_back(event.check_in);
        break;
      case feed::EventKind::kAdInsert:
      case feed::EventKind::kAdDelete:
        return Status::InvalidArgument(
            "reproducer traces carry tweets/check-ins only; pass ads via "
            "the ads argument");
    }
  }
  ADREC_RETURN_NOT_OK(feed::WriteTrace(TracePath(dir), tweets, check_ins));
  return feed::WriteAds(AdsPath(dir), ads);
}

Result<Reproducer> ReadReproducer(const std::string& dir) {
  Result<feed::Trace> trace = feed::ReadTrace(TracePath(dir));
  if (!trace.ok()) return trace.status();
  Result<std::vector<feed::Ad>> ads = feed::ReadAds(AdsPath(dir));
  if (!ads.ok()) return ads.status();

  Reproducer repro;
  repro.ads = std::move(ads).value();
  for (const feed::Tweet& t : trace.value().tweets) {
    feed::FeedEvent ev;
    ev.kind = feed::EventKind::kTweet;
    ev.time = t.time;
    ev.tweet = t;
    repro.events.push_back(std::move(ev));
  }
  for (const feed::CheckIn& c : trace.value().check_ins) {
    feed::FeedEvent ev;
    ev.kind = feed::EventKind::kCheckIn;
    ev.time = c.time;
    ev.check_in = c;
    repro.events.push_back(std::move(ev));
  }
  // Canonical order (time, then content key) — the order every
  // differential run uses, so a written-then-read reproducer replays the
  // exact event sequence that failed.
  SanitizeOptions resort_only;
  resort_only.drop_malformed = false;
  resort_only.dedup = false;
  repro.events = SanitizeTrace(repro.events, resort_only);
  return repro;
}

}  // namespace adrec::testkit
