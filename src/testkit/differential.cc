#include "testkit/differential.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <utility>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "core/sharded_engine.h"
#include "core/snapshot.h"
#include "wal/checkpoint.h"
#include "wal/record.h"
#include "wal/sharded_wal.h"
#include "wal/wal.h"

namespace adrec::testkit {

namespace {

/// Streams `events` through `on_event`, probing `topk` on every
/// `probe_every`-th tweet, starting at tweet ordinal `*tweet_ordinal`
/// (carried across the snapshot variant's save/restore boundary).
void StreamWithProbes(
    const std::vector<feed::FeedEvent>& events, size_t begin, size_t end,
    size_t probe_every, size_t top_k, size_t* tweet_ordinal,
    const std::function<void(const feed::FeedEvent&)>& on_event,
    const std::function<std::vector<index::ScoredAd>(const feed::Tweet&,
                                                     size_t)>& topk,
    RunOutcome* outcome) {
  for (size_t i = begin; i < end; ++i) {
    const feed::FeedEvent& event = events[i];
    on_event(event);
    if (event.kind != feed::EventKind::kTweet) continue;
    const size_t ordinal = (*tweet_ordinal)++;
    if (probe_every == 0 || ordinal % probe_every != 0) continue;
    ProbeResult probe;
    probe.event_index = i;
    probe.ads = topk(event.tweet, top_k);
    outcome->probes.push_back(std::move(probe));
  }
}

std::string DescribeAds(const std::vector<index::ScoredAd>& ads) {
  std::string out = "[";
  for (const index::ScoredAd& sa : ads) {
    if (out.size() > 1) out += ' ';
    out += StringFormat("%u:%.17g", sa.ad.value, sa.score);
  }
  return out + "]";
}

/// The follower/recovery apply semantics (replica/follower.cc,
/// wal/checkpoint.cc): tweets and check-ins stream through OnEvent,
/// re-insertion and double-deletion of ads are benign.
void ApplyReplicated(core::ShardedEngine* engine,
                     const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
    case feed::EventKind::kCheckIn:
      engine->OnEvent(event);
      break;
    case feed::EventKind::kAdInsert: {
      const Status st = engine->InsertAd(event.ad);
      ADREC_CHECK(st.ok() || st.code() == StatusCode::kAlreadyExists);
      break;
    }
    case feed::EventKind::kAdDelete: {
      const Status st = engine->RemoveAd(event.ad_id);
      ADREC_CHECK(st.ok() || st.code() == StatusCode::kNotFound);
      break;
    }
  }
}

/// Per-shard-stream apply: a record read from stream `shard` touches
/// only that shard (replica::Follower's N-cursor mode). Ad ops arrive
/// once per stream, so each shard sees its own copy exactly once.
void ApplyReplicatedToShard(core::ShardedEngine* engine, size_t shard,
                            const feed::FeedEvent& event) {
  switch (event.kind) {
    case feed::EventKind::kTweet:
    case feed::EventKind::kCheckIn:
      engine->ApplyToShard(shard, event);
      break;
    case feed::EventKind::kAdInsert: {
      const Status st = engine->InsertAdOnShard(shard, event.ad);
      ADREC_CHECK(st.ok() || st.code() == StatusCode::kAlreadyExists);
      break;
    }
    case feed::EventKind::kAdDelete: {
      const Status st = engine->RemoveAdOnShard(shard, event.ad_id);
      ADREC_CHECK(st.ok() || st.code() == StatusCode::kNotFound);
      break;
    }
  }
}

/// Byte-compares two canonical snapshot trees. Returns "" when they are
/// identical, else a one-line description of the first difference.
std::string CompareSnapshotTrees(const std::string& a_dir,
                                 const std::string& b_dir) {
  namespace fs = std::filesystem;
  const auto relative_files = [](const std::string& root) {
    std::vector<std::string> rel;
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file()) {
        rel.push_back(fs::relative(entry.path(), root).string());
      }
    }
    std::sort(rel.begin(), rel.end());
    return rel;
  };
  const std::vector<std::string> a_files = relative_files(a_dir);
  const std::vector<std::string> b_files = relative_files(b_dir);
  if (a_files != b_files) {
    return StringFormat("file sets differ (%zu vs %zu files)",
                        a_files.size(), b_files.size());
  }
  for (const std::string& rel : a_files) {
    const auto slurp = [&](const std::string& root) {
      std::ifstream in(fs::path(root) / rel, std::ios::binary);
      return std::string(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
    };
    if (slurp(a_dir) != slurp(b_dir)) return rel + ": bytes differ";
  }
  return "";
}

}  // namespace

DifferentialChecker::DifferentialChecker(
    std::shared_ptr<annotate::KnowledgeBase> kb,
    timeline::TimeSlotScheme slots, DifferentialOptions options)
    : kb_(std::move(kb)), slots_(std::move(slots)),
      options_(std::move(options)) {}

RunOutcome DifferentialChecker::RunSingle(
    const std::vector<feed::Ad>& ads,
    const std::vector<feed::FeedEvent>& events) const {
  core::RecommendationEngine engine(kb_, slots_, options_.engine);
  for (const feed::Ad& ad : ads) (void)engine.InsertAd(ad);
  RunOutcome outcome;
  size_t tweet_ordinal = 0;
  StreamWithProbes(
      events, 0, events.size(), options_.probe_every, options_.top_k,
      &tweet_ordinal,
      [&](const feed::FeedEvent& e) { engine.OnEvent(e); },
      [&](const feed::Tweet& t, size_t k) {
        return engine.TopKAdsForTweet(t, k);
      },
      &outcome);
  (void)engine.RunAnalysis(options_.alpha);
  outcome.tfca = engine.analysis().stats();
  for (const feed::Ad& ad : ads) {
    Result<core::MatchResult> match = engine.RecommendUsers(ad.id);
    outcome.matches.push_back(match.ok() ? std::move(match).value()
                                         : core::MatchResult{});
  }
  const core::EngineStats stats = engine.Stats();
  outcome.tweets = stats.tweets;
  outcome.checkins = stats.checkins;
  outcome.topk_queries = stats.topk_queries;
  outcome.impressions = stats.impressions_served;
  return outcome;
}

RunOutcome DifferentialChecker::RunSharded(
    const std::vector<feed::Ad>& ads,
    const std::vector<feed::FeedEvent>& events) const {
  core::ShardedEngine sharded(kb_, slots_, options_.num_shards,
                              options_.engine);
  for (const feed::Ad& ad : ads) (void)sharded.InsertAd(ad);
  RunOutcome outcome;
  size_t tweet_ordinal = 0;
  StreamWithProbes(
      events, 0, events.size(), options_.probe_every, options_.top_k,
      &tweet_ordinal,
      [&](const feed::FeedEvent& e) { sharded.OnEvent(e); },
      [&](const feed::Tweet& t, size_t k) {
        return sharded.TopKAdsForTweet(t, k);
      },
      &outcome);
  (void)sharded.RunAnalysis(options_.alpha);
  // Shard-local mining: only the window-content sums are globally
  // meaningful (each user lives in exactly one shard).
  for (size_t i = 0; i < sharded.num_shards(); ++i) {
    const core::TfcaStats& shard = sharded.shard(i).analysis().stats();
    outcome.tfca.users += shard.users;
    outcome.tfca.checkin_incidences += shard.checkin_incidences;
    outcome.tfca.tweet_cells += shard.tweet_cells;
  }
  const core::EngineStats stats = sharded.Stats();
  outcome.tweets = stats.tweets;
  outcome.checkins = stats.checkins;
  outcome.topk_queries = stats.topk_queries;
  outcome.impressions = stats.impressions_served;
  return outcome;
}

RunOutcome DifferentialChecker::RunSnapshotRestore(
    const std::vector<feed::Ad>& ads,
    const std::vector<feed::FeedEvent>& events) const {
  const size_t split = static_cast<size_t>(
      static_cast<double>(events.size()) * options_.snapshot_fraction);
  RunOutcome outcome;
  size_t tweet_ordinal = 0;
  uint64_t pre_tweets = 0, pre_checkins = 0, pre_queries = 0,
           pre_impressions = 0;

  {
    core::RecommendationEngine before(kb_, slots_, options_.engine);
    for (const feed::Ad& ad : ads) (void)before.InsertAd(ad);
    StreamWithProbes(
        events, 0, split, options_.probe_every, options_.top_k,
        &tweet_ordinal,
        [&](const feed::FeedEvent& e) { before.OnEvent(e); },
        [&](const feed::Tweet& t, size_t k) {
          return before.TopKAdsForTweet(t, k);
        },
        &outcome);
    (void)core::SaveEngineSnapshot(before, options_.snapshot_dir);
    const core::EngineStats stats = before.Stats();
    pre_tweets = stats.tweets;
    pre_checkins = stats.checkins;
    pre_queries = stats.topk_queries;
    pre_impressions = stats.impressions_served;
  }  // the pre-restart engine is gone — a real process restart

  core::RecommendationEngine after(kb_, slots_, options_.engine);
  (void)core::LoadEngineSnapshot(options_.snapshot_dir, &after);
  // Recovery procedure: rebuild the analysis window from the event log
  // without touching the restored cumulative state.
  for (size_t i = 0; i < split; ++i) after.ReplayForAnalysis(events[i]);
  StreamWithProbes(
      events, split, events.size(), options_.probe_every, options_.top_k,
      &tweet_ordinal,
      [&](const feed::FeedEvent& e) { after.OnEvent(e); },
      [&](const feed::Tweet& t, size_t k) {
        return after.TopKAdsForTweet(t, k);
      },
      &outcome);
  (void)after.RunAnalysis(options_.alpha);
  outcome.tfca = after.analysis().stats();
  for (const feed::Ad& ad : ads) {
    Result<core::MatchResult> match = after.RecommendUsers(ad.id);
    outcome.matches.push_back(match.ok() ? std::move(match).value()
                                         : core::MatchResult{});
  }
  const core::EngineStats stats = after.Stats();
  outcome.tweets = pre_tweets + stats.tweets;
  outcome.checkins = pre_checkins + stats.checkins;
  outcome.topk_queries = pre_queries + stats.topk_queries;
  outcome.impressions = pre_impressions + stats.impressions_served;
  return outcome;
}

RunOutcome DifferentialChecker::RunWalCrash(
    const std::vector<feed::Ad>& ads,
    const std::vector<feed::FeedEvent>& events,
    wal::RecoveryResult* recovery) const {
  ADREC_CHECK(!options_.wal_dir.empty());
  const size_t crash = static_cast<size_t>(
      static_cast<double>(events.size()) * options_.crash_fraction);
  const bool with_checkpoint = options_.wal_checkpoint_fraction >= 0.0;
  const size_t checkpoint_at =
      with_checkpoint
          ? std::min(static_cast<size_t>(
                         static_cast<double>(events.size()) *
                         options_.wal_checkpoint_fraction),
                     crash)
          : crash;  // only used as a stream split point

  RunOutcome outcome;
  size_t tweet_ordinal = 0;
  // Counter bookkeeping across the crash: tweets/checkins up to the
  // checkpoint live in the snapshot era (the recovered engine re-counts
  // everything after the mark during live replay), while topk/impression
  // counters accrue only where probes actually ran — the crashing engine
  // up to the crash, the recovered engine after it.
  uint64_t ckpt_tweets = 0, ckpt_checkins = 0;
  uint64_t pre_queries = 0, pre_impressions = 0;
  // Ingest counters frozen at each checkpoint mark, keyed by the mark's
  // synced seqno (per-stream max): recovery may land on an OLDER mark
  // than the last one taken (delta-chain fallback after damage), and the
  // counter split below must credit the mark actually recovered.
  struct CheckpointMark {
    uint64_t seqno;
    uint64_t tweets;
    uint64_t checkins;
  };
  std::vector<CheckpointMark> ckpt_marks;
  const size_t num_streams = options_.wal_shards;
  // Per-stream seqno the first unacked record would get, plus which
  // stream owns the event that crashed mid-frame.
  std::vector<uint64_t> crash_seqnos(num_streams, 0);
  size_t torn_stream = 0;
  wal::CheckpointManager checkpointer(options_.wal_dir,
                                      options_.wal_checkpoint_options);

  {
    core::ShardedEngine before(kb_, slots_, options_.wal_shards,
                               options_.engine);
    wal::WalOptions wal_options;
    // Durability policy is irrelevant to this differential (the "disk"
    // never loses synced data in-process); kNone keeps iterations fast.
    wal_options.sync = wal::SyncPolicy::kNone;
    wal_options.segment_bytes = options_.wal_segment_bytes;
    wal_options.shards = num_streams;
    auto writer = wal::ShardedWal::Open(options_.wal_dir, wal_options);
    ADREC_CHECK(writer.ok());
    wal::ShardedWal* w = writer.value().get();

    // Feed events go to the owner shard's stream; ad ops are broadcast
    // to every stream so each stream alone totally orders everything
    // that touches its shard (wal/sharded_wal.h). One stream collapses
    // to the classic layout.
    const auto stream_of = [&](const feed::FeedEvent& e) -> size_t {
      if (num_streams <= 1) return 0;
      switch (e.kind) {
        case feed::EventKind::kTweet:
          return before.ShardOf(e.tweet.user);
        case feed::EventKind::kCheckIn:
          return before.ShardOf(e.check_in.user);
        default:
          return 0;
      }
    };
    const auto append = [&](const feed::FeedEvent& e) {
      const std::string payload = wal::EncodeEventPayload(e);
      if (e.kind == feed::EventKind::kAdInsert ||
          e.kind == feed::EventKind::kAdDelete) {
        for (size_t s = 0; s < num_streams; ++s) {
          ADREC_CHECK(w->stream(s)->Append(payload).ok());
        }
      } else {
        ADREC_CHECK(w->stream(stream_of(e))->Append(payload).ok());
      }
    };

    // Upfront inventory is logged like any ingest, so a checkpoint-less
    // recovery rebuilds it from the log alone.
    for (const feed::Ad& ad : ads) {
      feed::FeedEvent ev;
      ev.kind = feed::EventKind::kAdInsert;
      ev.ad = ad;
      append(ev);
      (void)before.InsertAd(ad);
    }

    const auto on_event = [&](const feed::FeedEvent& e) {
      append(e);
      before.OnEvent(e);
    };
    const auto topk = [&](const feed::Tweet& t, size_t k) {
      return before.TopKAdsForTweet(t, k);
    };
    if (with_checkpoint) {
      // Evenly spaced checkpoints through [0, checkpoint_at]; more than
      // one builds a delta chain in kDelta mode. The recovery mark is
      // the LAST checkpoint, so its stats split the counters.
      const size_t ckpts = std::max<size_t>(1, options_.wal_checkpoint_count);
      size_t streamed = 0;
      for (size_t c = 1; c <= ckpts; ++c) {
        const size_t upto = checkpoint_at * c / ckpts;
        StreamWithProbes(events, streamed, upto, options_.probe_every,
                         options_.top_k, &tweet_ordinal, on_event, topk,
                         &outcome);
        streamed = upto;
        ADREC_CHECK(checkpointer.Checkpoint(before, w, 0).ok());
        uint64_t mark_seqno = 0;
        for (size_t s = 0; s < num_streams; ++s) {
          mark_seqno = std::max(mark_seqno, w->stream(s)->synced_seqno());
        }
        const core::EngineStats at_mark = before.Stats();
        ckpt_marks.push_back({mark_seqno, at_mark.tweets, at_mark.checkins});
      }
    } else {
      StreamWithProbes(events, 0, checkpoint_at, options_.probe_every,
                       options_.top_k, &tweet_ordinal, on_event, topk,
                       &outcome);
    }
    StreamWithProbes(events, checkpoint_at, crash, options_.probe_every,
                     options_.top_k, &tweet_ordinal, on_event, topk,
                     &outcome);

    const core::EngineStats at_crash = before.Stats();
    pre_queries = at_crash.topk_queries;
    pre_impressions = at_crash.impressions_served;
    for (size_t s = 0; s < num_streams; ++s) {
      crash_seqnos[s] = w->stream(s)->next_seqno();
    }
    if (crash < events.size()) torn_stream = stream_of(events[crash]);
  }  // crash: the engine and the writer die with no goodbye

  if (options_.crash_torn_tail && crash < events.size()) {
    // The first unacknowledged event made it halfway into a frame before
    // the lights went out — in the stream that owns it.
    const std::string stream_dir =
        wal::StreamDir(options_.wal_dir, torn_stream, num_streams);
    const std::string frame = wal::EncodeFrame(
        crash_seqnos[torn_stream], wal::EncodeEventPayload(events[crash]));
    Rng rng(options_.crash_seed);
    const size_t keep =
        1 + static_cast<size_t>(rng.NextBounded(frame.size() - 1));
    auto report = wal::ScanLog(stream_dir, {});
    ADREC_CHECK(report.ok() && !report.value().segments.empty());
    std::ofstream torn(report.value().segments.back().path,
                       std::ios::binary | std::ios::app);
    ADREC_CHECK(static_cast<bool>(torn));
    torn.write(frame.data(), static_cast<std::streamsize>(keep));
    torn.flush();
    ADREC_CHECK(static_cast<bool>(torn));
  }

  if (options_.post_crash_hook) options_.post_crash_hook(options_.wal_dir);

  core::ShardedEngine after(kb_, slots_, options_.wal_shards,
                            options_.engine);
  auto recovered = checkpointer.Recover(&after, num_streams);
  if (!recovered.ok()) {
    ADREC_LOG(kError) << "RunWalCrash: recovery failed: "
                      << recovered.status().ToString();
    ADREC_CHECK(recovered.ok());
  }
  if (recovery != nullptr) *recovery = recovered.value();
  if (recovered.value().from_checkpoint) {
    // Credit the counters frozen at the mark recovery actually used —
    // live replay re-counts everything past it. Marks are ascending, so
    // the last one at or below the recovered seqno wins; a log-only
    // fallback (from_checkpoint false) keeps the split at zero.
    for (const CheckpointMark& m : ckpt_marks) {
      if (m.seqno <= recovered.value().checkpoint_seqno) {
        ckpt_tweets = m.tweets;
        ckpt_checkins = m.checkins;
      }
    }
  }

  StreamWithProbes(
      events, crash, events.size(), options_.probe_every, options_.top_k,
      &tweet_ordinal,
      [&](const feed::FeedEvent& e) { after.OnEvent(e); },
      [&](const feed::Tweet& t, size_t k) {
        return after.TopKAdsForTweet(t, k);
      },
      &outcome);

  (void)after.RunAnalysis(options_.alpha);
  if (options_.wal_shards == 1) {
    outcome.tfca = after.shard(0).analysis().stats();
    for (const feed::Ad& ad : ads) {
      Result<core::MatchResult> match = after.shard(0).RecommendUsers(ad.id);
      outcome.matches.push_back(match.ok() ? std::move(match).value()
                                           : core::MatchResult{});
    }
  } else {
    for (size_t i = 0; i < after.num_shards(); ++i) {
      const core::TfcaStats& shard = after.shard(i).analysis().stats();
      outcome.tfca.users += shard.users;
      outcome.tfca.checkin_incidences += shard.checkin_incidences;
      outcome.tfca.tweet_cells += shard.tweet_cells;
    }
  }
  const core::EngineStats stats = after.Stats();
  outcome.tweets = ckpt_tweets + stats.tweets;
  outcome.checkins = ckpt_checkins + stats.checkins;
  outcome.topk_queries = pre_queries + stats.topk_queries;
  outcome.impressions = pre_impressions + stats.impressions_served;
  return outcome;
}

ReplicaPromotionReport DifferentialChecker::RunReplicaPromotion(
    const std::vector<feed::Ad>& ads,
    const std::vector<feed::FeedEvent>& events) const {
  ADREC_CHECK(!options_.wal_dir.empty());
  ADREC_CHECK(!options_.replica_wal_dir.empty());
  ADREC_CHECK(!options_.replica_snapshot_dir.empty());
  ReplicaPromotionReport report;
  const size_t crash = static_cast<size_t>(
      static_cast<double>(events.size()) * options_.crash_fraction);
  const size_t num_streams = options_.wal_shards;
  std::vector<uint64_t> acked(num_streams, 0);
  std::vector<uint64_t> crash_seqnos(num_streams, 0);
  size_t torn_stream = 0;

  // Stream routing mirrors the daemon: feed events to the owner shard's
  // stream, ad ops broadcast to every stream. One stream collapses to
  // the classic single-cursor layout.
  const auto stream_of = [&](const core::ShardedEngine& engine,
                             const feed::FeedEvent& e) -> size_t {
    if (num_streams <= 1) return 0;
    switch (e.kind) {
      case feed::EventKind::kTweet:
        return engine.ShardOf(e.tweet.user);
      case feed::EventKind::kCheckIn:
        return engine.ShardOf(e.check_in.user);
      default:
        return 0;
    }
  };
  const auto append_routed = [&](wal::ShardedWal* w,
                                 const core::ShardedEngine& engine,
                                 const feed::FeedEvent& e) {
    const std::string payload = wal::EncodeEventPayload(e);
    if (e.kind == feed::EventKind::kAdInsert ||
        e.kind == feed::EventKind::kAdDelete) {
      for (size_t s = 0; s < num_streams; ++s) {
        ADREC_CHECK(w->stream(s)->Append(payload).ok());
      }
    } else {
      ADREC_CHECK(w->stream(stream_of(engine, e))->Append(payload).ok());
    }
  };

  // --- Leader: execute and log the trace prefix, then die unwarned. ---
  {
    core::ShardedEngine leader(kb_, slots_, num_streams, options_.engine);
    wal::WalOptions wal_options;
    wal_options.sync = wal::SyncPolicy::kNone;
    wal_options.segment_bytes = options_.wal_segment_bytes;
    wal_options.shards = num_streams;
    auto writer = wal::ShardedWal::Open(options_.wal_dir, wal_options);
    ADREC_CHECK(writer.ok());
    wal::ShardedWal* w = writer.value().get();
    for (const feed::Ad& ad : ads) {
      feed::FeedEvent ev;
      ev.kind = feed::EventKind::kAdInsert;
      ev.ad = ad;
      append_routed(w, leader, ev);
      (void)leader.InsertAd(ad);
    }
    for (size_t i = 0; i < crash; ++i) {
      append_routed(w, leader, events[i]);
      leader.OnEvent(events[i]);
    }
    for (size_t s = 0; s < num_streams; ++s) {
      crash_seqnos[s] = w->stream(s)->next_seqno();
      acked[s] = crash_seqnos[s] - 1;
      report.acknowledged += acked[s];
    }
    if (crash < events.size()) torn_stream = stream_of(leader, events[crash]);
  }  // SIGKILL: engine and writer are gone

  if (options_.crash_torn_tail && crash < events.size()) {
    // The first unacknowledged record made it halfway into a frame in
    // the stream that owns it. A replication cursor must never ship it:
    // ReadFrames stops at the flushed prefix and treats the torn tail
    // as end-of-log.
    const std::string frame = wal::EncodeFrame(
        crash_seqnos[torn_stream], wal::EncodeEventPayload(events[crash]));
    Rng rng(options_.crash_seed);
    const size_t keep =
        1 + static_cast<size_t>(rng.NextBounded(frame.size() - 1));
    auto scan = wal::ScanLog(
        wal::StreamDir(options_.wal_dir, torn_stream, num_streams), {});
    ADREC_CHECK(scan.ok() && !scan.value().segments.empty());
    std::ofstream torn(scan.value().segments.back().path,
                       std::ios::binary | std::ios::app);
    ADREC_CHECK(static_cast<bool>(torn));
    torn.write(frame.data(), static_cast<std::streamsize>(keep));
    torn.flush();
    ADREC_CHECK(static_cast<bool>(torn));
  }

  // --- Follower: one cursor per stream (`repl <shard> <cursor>`),
  // log-then-apply into the follower's own per-shard log, alongside the
  // reference engine fed the identical decoded records. Shard states
  // are disjoint, so draining streams sequentially is equivalent to any
  // concurrent interleaving. ---
  core::ShardedEngine follower(kb_, slots_, num_streams, options_.engine);
  core::ShardedEngine reference(kb_, slots_, num_streams, options_.engine);
  wal::WalOptions follower_wal_options;
  follower_wal_options.sync = wal::SyncPolicy::kNone;
  follower_wal_options.segment_bytes = options_.wal_segment_bytes;
  follower_wal_options.shards = num_streams;
  auto opened =
      wal::ShardedWal::Open(options_.replica_wal_dir, follower_wal_options);
  ADREC_CHECK(opened.ok());
  wal::ShardedWal* fw = opened.value().get();

  uint64_t replicate_total = 0;
  for (size_t s = 0; s < num_streams; ++s) {
    const std::string leader_stream =
        wal::StreamDir(options_.wal_dir, s, num_streams);
    const uint64_t replicate_to = static_cast<uint64_t>(
        static_cast<double>(acked[s]) * options_.replica_catchup_fraction);
    replicate_total += replicate_to;
    wal::CursorHint hint;
    uint64_t next = 1;
    while (next <= replicate_to) {
      auto batch = wal::ReadFrames(leader_stream, next, replicate_to,
                                   options_.replica_batch_bytes, &hint);
      ADREC_CHECK(batch.ok());
      const wal::CursorBatch& cb = batch.value();
      std::vector<feed::FeedEvent> wave;
      size_t pos = 0;
      while (pos < cb.frames.size()) {
        const size_t nl = cb.frames.find('\n', pos);
        ADREC_CHECK(nl != std::string::npos);
        auto record = wal::DecodeFrame(
            std::string_view(cb.frames).substr(pos, nl - pos));
        ADREC_CHECK(record.ok());
        auto event = wal::DecodeEventPayload(record.value().payload);
        ADREC_CHECK(event.ok());
        // Durability before visibility, exactly as replica::Follower:
        // the record reaches the follower's own log before the engine.
        ADREC_CHECK(fw->stream(s)->AppendDeferred(record.value().payload)
                        .ok());
        wave.push_back(std::move(event).value());
        pos = nl + 1;
      }
      ADREC_CHECK(fw->stream(s)->Commit().ok());
      for (const feed::FeedEvent& event : wave) {
        ApplyReplicatedToShard(&follower, s, event);
        ApplyReplicatedToShard(&reference, s, event);
      }
      report.replicated += wave.size();
      ADREC_CHECK(cb.next_seqno > next);  // forward progress
      next = cb.next_seqno;
      if (cb.at_end) break;
    }
  }
  ADREC_CHECK(report.replicated == replicate_total);

  // --- Promote: seal every stream of the follower's log (what
  // ExecutePromote does), then byte-compare the canonical snapshots of
  // every shard. ---
  ADREC_CHECK(fw->RotateAll().ok());
  ADREC_CHECK(fw->SyncAll().ok());
  namespace fs = std::filesystem;
  const fs::path snap_root(options_.replica_snapshot_dir);
  const auto compare_at = [&](const char* mark) {
    const fs::path a = snap_root / (std::string("follower_") + mark);
    const fs::path b = snap_root / (std::string("reference_") + mark);
    for (size_t i = 0; i < num_streams; ++i) {
      const std::string sub = StringFormat("shard%zu", i);
      ADREC_CHECK(
          core::SaveEngineSnapshot(follower.shard(i), (a / sub).string())
              .ok());
      ADREC_CHECK(
          core::SaveEngineSnapshot(reference.shard(i), (b / sub).string())
              .ok());
    }
    std::string diff = CompareSnapshotTrees(a.string(), b.string());
    if (!diff.empty()) diff = std::string(mark) + ": " + diff;
    return diff;
  };
  report.detail = compare_at("promoted");
  if (!report.detail.empty()) return report;

  // --- Post-failover: clients re-submit the trace tail to the promoted
  // follower, which now logs and applies as a leader. ---
  for (size_t i = crash; i < events.size(); ++i) {
    append_routed(fw, follower, events[i]);
    ApplyReplicated(&follower, events[i]);
    ApplyReplicated(&reference, events[i]);
    ++report.post_promote;
  }
  report.detail = compare_at("post");
  report.identical = report.detail.empty();
  return report;
}

Divergence DifferentialChecker::CompareOutcomes(const RunOutcome& a,
                                                const RunOutcome& b,
                                                const CompareOptions& compare,
                                                std::string_view a_name,
                                                std::string_view b_name) {
  Divergence d;
  const auto diverge = [&](size_t event_index, std::string detail) {
    d.diverged = true;
    d.event_index = event_index;
    d.detail = std::string(a_name) + " vs " + std::string(b_name) + ": " +
               std::move(detail);
  };

  if (compare.probes) {
    const size_t n = std::min(a.probes.size(), b.probes.size());
    for (size_t i = 0; i < n; ++i) {
      const ProbeResult& pa = a.probes[i];
      const ProbeResult& pb = b.probes[i];
      if (pa.event_index != pb.event_index) {
        diverge(std::min(pa.event_index, pb.event_index),
                StringFormat("probe %zu at different events (%zu vs %zu)", i,
                             pa.event_index, pb.event_index));
        return d;
      }
      if (pa.ads != pb.ads) {
        diverge(pa.event_index,
                StringFormat("top-k mismatch at probe %zu: ", i) +
                    DescribeAds(pa.ads) + " vs " + DescribeAds(pb.ads));
        return d;
      }
    }
    if (a.probes.size() != b.probes.size()) {
      const size_t at = a.probes.size() < b.probes.size()
                            ? b.probes[a.probes.size()].event_index
                            : a.probes[b.probes.size()].event_index;
      diverge(at, StringFormat("probe count mismatch (%zu vs %zu)",
                               a.probes.size(), b.probes.size()));
      return d;
    }
  }

  if (compare.counters) {
    if (a.tweets != b.tweets || a.checkins != b.checkins ||
        a.topk_queries != b.topk_queries ||
        a.impressions != b.impressions) {
      diverge(SIZE_MAX,
              StringFormat("event counters mismatch: "
                           "tweets %llu/%llu checkins %llu/%llu "
                           "queries %llu/%llu impressions %llu/%llu",
                           static_cast<unsigned long long>(a.tweets),
                           static_cast<unsigned long long>(b.tweets),
                           static_cast<unsigned long long>(a.checkins),
                           static_cast<unsigned long long>(b.checkins),
                           static_cast<unsigned long long>(a.topk_queries),
                           static_cast<unsigned long long>(b.topk_queries),
                           static_cast<unsigned long long>(a.impressions),
                           static_cast<unsigned long long>(b.impressions)));
      return d;
    }
  }

  if (compare.tfca_full && !(a.tfca == b.tfca)) {
    diverge(SIZE_MAX,
            StringFormat(
                "TfcaStats mismatch: users %zu/%zu locations %zu/%zu "
                "incidences %zu/%zu cells %zu/%zu "
                "loc-concepts %zu/%zu topic-concepts %zu/%zu",
                a.tfca.users, b.tfca.users, a.tfca.locations,
                b.tfca.locations, a.tfca.checkin_incidences,
                b.tfca.checkin_incidences, a.tfca.tweet_cells,
                b.tfca.tweet_cells, a.tfca.location_triconcepts,
                b.tfca.location_triconcepts, a.tfca.topic_triconcepts,
                b.tfca.topic_triconcepts));
    return d;
  }

  if (compare.tfca_sums &&
      (a.tfca.users != b.tfca.users ||
       a.tfca.checkin_incidences != b.tfca.checkin_incidences ||
       a.tfca.tweet_cells != b.tfca.tweet_cells)) {
    diverge(SIZE_MAX,
            StringFormat("window-content sums mismatch: users %zu/%zu "
                         "incidences %zu/%zu cells %zu/%zu",
                         a.tfca.users, b.tfca.users,
                         a.tfca.checkin_incidences,
                         b.tfca.checkin_incidences, a.tfca.tweet_cells,
                         b.tfca.tweet_cells));
    return d;
  }

  if (compare.matches) {
    if (a.matches.size() != b.matches.size()) {
      diverge(SIZE_MAX, StringFormat("match count mismatch (%zu vs %zu)",
                                     a.matches.size(), b.matches.size()));
      return d;
    }
    for (size_t i = 0; i < a.matches.size(); ++i) {
      if (a.matches[i].users != b.matches[i].users) {
        diverge(SIZE_MAX,
                StringFormat("RecommendUsers mismatch for ad #%zu "
                             "(%zu vs %zu matched users)",
                             i, a.matches[i].users.size(),
                             b.matches[i].users.size()));
        return d;
      }
    }
  }
  return d;
}

Divergence DifferentialChecker::Check(
    const std::vector<feed::Ad>& ads,
    const std::vector<feed::FeedEvent>& events) const {
  const RunOutcome single = RunSingle(ads, events);

  if (options_.run_sharded) {
    const RunOutcome sharded = RunSharded(ads, events);
    CompareOptions compare;
    compare.tfca_full = false;
    compare.tfca_sums = true;
    compare.matches = false;
    Divergence d =
        CompareOutcomes(single, sharded, compare, "single", "sharded");
    if (d) return d;
  }

  if (options_.run_snapshot) {
    const RunOutcome restored = RunSnapshotRestore(ads, events);
    Divergence d = CompareOutcomes(single, restored, CompareOptions{},
                                   "single", "snapshot-restored");
    if (d) return d;
  }
  return {};
}

}  // namespace adrec::testkit
