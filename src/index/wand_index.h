#ifndef ADREC_INDEX_WAND_INDEX_H_
#define ADREC_INDEX_WAND_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/id_types.h"
#include "common/status.h"
#include "index/ad_index.h"
#include "text/sparse_vector.h"

namespace adrec::index {

/// The WAND (Weak-AND) top-k matcher: the classic document-at-a-time
/// alternative to AdIndex's TA strategy. Posting lists are *id-ordered*
/// with a per-list max weight; the pivot test skips every ad whose
/// upper-bound score (sum of the max weights of the lists that could
/// contain it) cannot beat the current k-th score.
///
/// Same query semantics as AdIndex::TopK — score = bid · dot(query, ad),
/// location/slot hard filters, deterministic tie-breaks — so the two
/// engines are interchangeable and equivalence-tested against each other.
/// The E3b ablation measures which strategy wins at which selectivity.
class WandIndex {
 public:
  WandIndex() = default;

  /// Indexes an ad (weights must be >= 0).
  Status Insert(AdId id, const text::SparseVector& topics,
                const std::vector<LocationId>& target_locations,
                const std::vector<SlotId>& target_slots, double bid = 1.0);

  /// Removes an ad. Postings are erased eagerly (id-ordered lists make
  /// the erase a binary search + shift).
  Status Remove(AdId id);

  /// Top-k ads for the query (same contract as AdIndex::TopK).
  std::vector<ScoredAd> TopK(const AdQuery& query) const;

  size_t size() const { return ads_.size(); }

  /// Full evaluations performed by the last TopK (pivot hits).
  size_t last_full_evaluations() const { return last_full_evaluations_; }

 private:
  struct Posting {
    uint32_t ad;
    double weight;
  };

  struct AdMeta {
    double bid = 1.0;
    std::vector<uint32_t> topic_ids;
    std::unordered_set<uint32_t> locations;  // empty = everywhere
    std::unordered_set<uint32_t> slots;      // empty = always
    text::SparseVector topics;
  };

  struct PostingList {
    std::vector<Posting> postings;  // ascending ad id
    double max_weight = 0.0;
  };

  bool PassesFilters(const AdMeta& meta, const AdQuery& query) const;

  std::unordered_map<uint32_t, PostingList> lists_;
  std::unordered_map<uint32_t, AdMeta> ads_;
  double max_bid_bound_ = 0.0;
  mutable size_t last_full_evaluations_ = 0;
};

}  // namespace adrec::index

#endif  // ADREC_INDEX_WAND_INDEX_H_
