#include "index/ad_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "index/topk_heap.h"

namespace adrec::index {

size_t AdIndex::MetaBytes(const AdMeta& meta) {
  // Approximate: payload plus ~32B per hash-set node and the struct +
  // map-node shells. Good enough for capacity planning / E23 ratios.
  return sizeof(AdMeta) + 64 +
         meta.topic_ids.size() * sizeof(uint32_t) +
         meta.topics.entries().size() * sizeof(text::SparseEntry) +
         (meta.locations.size() + meta.slots.size()) * 32;
}

Status AdIndex::Insert(AdId id, const text::SparseVector& topics,
                       const std::vector<LocationId>& target_locations,
                       const std::vector<SlotId>& target_slots, double bid) {
  if (ads_.find(id.value) != ads_.end()) {
    return Status::AlreadyExists(
        StringFormat("ad %u already indexed", id.value));
  }
  AdMeta meta;
  meta.bid = bid;
  meta.topics = topics;
  for (LocationId l : target_locations) meta.locations.insert(l.value);
  for (SlotId s : target_slots) meta.slots.insert(s.value);
  for (const text::SparseEntry& e : topics.entries()) {
    if (e.weight <= 0.0) continue;
    meta.topic_ids.push_back(e.id);
    auto& list = postings_[e.id];
    if (list.empty()) ++num_lists_;
    // Insert keeping impact (descending-weight) order.
    const Posting p{id.value, e.weight};
    auto it = std::lower_bound(list.begin(), list.end(), p,
                               [](const Posting& a, const Posting& b) {
                                 return a.weight > b.weight;
                               });
    list.insert(it, p);
    ++live_counts_[e.id];
    ++total_postings_;
  }
  max_bid_bound_ = std::max(max_bid_bound_, bid);
  meta_bytes_ += MetaBytes(meta);
  ads_.emplace(id.value, std::move(meta));
  return Status::OK();
}

Status AdIndex::Remove(AdId id) {
  auto it = ads_.find(id.value);
  if (it == ads_.end()) {
    return Status::NotFound(StringFormat("ad %u not indexed", id.value));
  }
  // Lazy delete: drop the meta entry; postings referencing the id become
  // tombstones skipped at query time and compacted when they dominate.
  // (Tombstones stay in total_postings_ until CompactList drops them, so
  // approx_bytes() keeps charging for them — they are resident.)
  meta_bytes_ -= MetaBytes(it->second);
  std::vector<uint32_t> topics = std::move(it->second.topic_ids);
  ads_.erase(it);
  for (uint32_t topic : topics) {
    auto lc = live_counts_.find(topic);
    if (lc == live_counts_.end()) continue;
    if (lc->second > 0) --lc->second;
    auto pl = postings_.find(topic);
    if (pl != postings_.end() && lc->second * 2 < pl->second.size()) {
      CompactList(topic);
    }
  }
  return Status::OK();
}

void AdIndex::CompactList(uint32_t topic) {
  auto it = postings_.find(topic);
  if (it == postings_.end()) return;
  auto& list = it->second;
  const size_t before = list.size();
  list.erase(std::remove_if(list.begin(), list.end(),
                            [this](const Posting& p) {
                              return ads_.find(p.ad) == ads_.end();
                            }),
             list.end());
  total_postings_ -= before - list.size();
  if (list.empty()) {
    postings_.erase(it);
    live_counts_.erase(topic);
    --num_lists_;
  } else {
    live_counts_[topic] = list.size();
  }
}

bool AdIndex::PassesFilters(const AdMeta& meta, const AdQuery& query) const {
  if (query.location.valid() && !meta.locations.empty() &&
      meta.locations.find(query.location.value) == meta.locations.end()) {
    return false;
  }
  if (query.slot.valid() && !meta.slots.empty() &&
      meta.slots.find(query.slot.value) == meta.slots.end()) {
    return false;
  }
  return true;
}

std::vector<ScoredAd> AdIndex::TopK(const AdQuery& query) const {
  // Fagin's Threshold Algorithm over impact-ordered lists: sorted access
  // round-robins the per-topic posting lists; the first time an ad is
  // seen it is fully scored by random access to its stored topic vector.
  // The unseen-ad upper bound is sum_i(query_weight_i * current depth
  // weight_i) * max_bid; once the k-th score reaches it, stop.
  last_postings_scanned_ = 0;
  if (query.k == 0 || query.topics.empty() || ads_.empty()) return {};

  const double max_bid = max_bid_bound_;
  if (max_bid <= 0.0) return {};

  struct Cursor {
    double query_weight;
    const std::vector<Posting>* list;
    size_t pos = 0;
  };
  std::vector<Cursor> cursors;
  for (const text::SparseEntry& e : query.topics.entries()) {
    if (e.weight <= 0.0) continue;
    auto it = postings_.find(e.id);
    if (it == postings_.end() || it->second.empty()) continue;
    cursors.push_back(Cursor{e.weight, &it->second, 0});
  }
  if (cursors.empty()) return {};

  TopKHeap heap(query.k);
  std::unordered_set<uint32_t> seen;
  size_t exhausted = 0;
  while (exhausted < cursors.size()) {
    exhausted = 0;
    // One round of sorted accesses.
    for (Cursor& c : cursors) {
      // Skip tombstones at the cursor.
      while (c.pos < c.list->size() &&
             ads_.find((*c.list)[c.pos].ad) == ads_.end()) {
        ++c.pos;
        ++last_postings_scanned_;
      }
      if (c.pos >= c.list->size()) {
        ++exhausted;
        continue;
      }
      const Posting& p = (*c.list)[c.pos++];
      ++last_postings_scanned_;
      if (seen.insert(p.ad).second) {
        const AdMeta& meta = ads_.at(p.ad);
        if (PassesFilters(meta, query)) {
          const double score = query.topics.Dot(meta.topics) * meta.bid;
          heap.Offer(score, p.ad);
        }
      }
    }
    // Threshold test: best possible score of any unseen ad.
    if (heap.Full()) {
      double bound = 0.0;
      for (const Cursor& c : cursors) {
        if (c.pos < c.list->size()) {
          bound += c.query_weight * (*c.list)[c.pos].weight;
        }
      }
      bound *= max_bid;
      // Strict comparison: an unseen ad scoring exactly the threshold
      // could still win its tie-break, so only a strictly smaller bound
      // is safe to stop on.
      if (bound < heap.Threshold()) break;
    }
  }
  return heap.Drain();
}

std::vector<ScoredAd> AdIndex::TopKExhaustive(const AdQuery& query) const {
  last_postings_scanned_ = 0;
  TopKHeap heap(query.k);
  for (const auto& [id, meta] : ads_) {
    ++last_postings_scanned_;
    if (!PassesFilters(meta, query)) continue;
    const double dot = query.topics.Dot(meta.topics);
    if (dot > 0.0) heap.Offer(dot * meta.bid, id);
  }
  return heap.Drain();
}

}  // namespace adrec::index
