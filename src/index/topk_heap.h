#ifndef ADREC_INDEX_TOPK_HEAP_H_
#define ADREC_INDEX_TOPK_HEAP_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "common/id_types.h"
#include "index/query.h"

namespace adrec::index {

/// Keeps the best k (score, ad) pairs with deterministic tie-breaks
/// (higher score first, then smaller ad id). Shared by the uncompressed
/// AdIndex and the compressed posting-list index: the final ranking of a
/// top-k answer is defined once, so the two implementations cannot
/// diverge on ordering (the compressed≡uncompressed differential relies
/// on this). The selected set is order-independent: the comparator is a
/// strict total order over (score, ad), so offering the same candidates
/// in any order drains the same result.
struct TopKHeap {
  struct Entry {
    double score;
    uint32_t ad;
    // Min-heap on score; for equal scores the larger ad id is nearer the
    // top so it is evicted first (final order prefers smaller ids).
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.ad < b.ad;
    }
  };

  explicit TopKHeap(size_t k) : k(k) {}

  void Offer(double score, uint32_t ad) {
    if (score <= 0.0 || k == 0) return;
    if (heap.size() < k) {
      heap.push(Entry{score, ad});
    } else if (Entry{score, ad} < heap.top()) {
      heap.pop();
      heap.push(Entry{score, ad});
    }
  }

  /// Score an entry must strictly beat to enter a full heap.
  double Threshold() const {
    return heap.size() < k ? 0.0 : heap.top().score;
  }

  bool Full() const { return heap.size() >= k; }

  std::vector<ScoredAd> Drain() {
    std::vector<ScoredAd> out(heap.size());
    for (size_t i = heap.size(); i-- > 0;) {
      out[i] = ScoredAd{AdId(heap.top().ad), heap.top().score};
      heap.pop();
    }
    return out;
  }

  size_t k;
  std::priority_queue<Entry> heap;
};

}  // namespace adrec::index

#endif  // ADREC_INDEX_TOPK_HEAP_H_
