#include "index/wand_index.h"

#include <algorithm>
#include <queue>

#include "common/string_util.h"

namespace adrec::index {

namespace {

/// Same deterministic top-k heap as the TA engine (score desc, id asc).
struct TopKHeap {
  struct Entry {
    double score;
    uint32_t ad;
    friend bool operator<(const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.ad < b.ad;
    }
  };

  explicit TopKHeap(size_t k) : k(k) {}

  void Offer(double score, uint32_t ad) {
    if (score <= 0.0 || k == 0) return;
    if (heap.size() < k) {
      heap.push(Entry{score, ad});
    } else if (Entry{score, ad} < heap.top()) {
      heap.pop();
      heap.push(Entry{score, ad});
    }
  }

  double Threshold() const {
    return heap.size() < k ? 0.0 : heap.top().score;
  }
  bool Full() const { return heap.size() >= k; }

  std::vector<ScoredAd> Drain() {
    std::vector<ScoredAd> out(heap.size());
    for (size_t i = heap.size(); i-- > 0;) {
      out[i] = ScoredAd{AdId(heap.top().ad), heap.top().score};
      heap.pop();
    }
    return out;
  }

  size_t k;
  std::priority_queue<Entry> heap;
};

}  // namespace

Status WandIndex::Insert(AdId id, const text::SparseVector& topics,
                         const std::vector<LocationId>& target_locations,
                         const std::vector<SlotId>& target_slots,
                         double bid) {
  if (ads_.find(id.value) != ads_.end()) {
    return Status::AlreadyExists(
        StringFormat("ad %u already indexed", id.value));
  }
  AdMeta meta;
  meta.bid = bid;
  meta.topics = topics;
  for (LocationId l : target_locations) meta.locations.insert(l.value);
  for (SlotId s : target_slots) meta.slots.insert(s.value);
  for (const text::SparseEntry& e : topics.entries()) {
    if (e.weight <= 0.0) continue;
    meta.topic_ids.push_back(e.id);
    PostingList& list = lists_[e.id];
    const Posting p{id.value, e.weight};
    auto it = std::lower_bound(list.postings.begin(), list.postings.end(), p,
                               [](const Posting& a, const Posting& b) {
                                 return a.ad < b.ad;
                               });
    list.postings.insert(it, p);
    list.max_weight = std::max(list.max_weight, e.weight);
  }
  max_bid_bound_ = std::max(max_bid_bound_, bid);
  ads_.emplace(id.value, std::move(meta));
  return Status::OK();
}

Status WandIndex::Remove(AdId id) {
  auto it = ads_.find(id.value);
  if (it == ads_.end()) {
    return Status::NotFound(StringFormat("ad %u not indexed", id.value));
  }
  for (uint32_t topic : it->second.topic_ids) {
    auto lit = lists_.find(topic);
    if (lit == lists_.end()) continue;
    auto& postings = lit->second.postings;
    auto pit = std::lower_bound(postings.begin(), postings.end(), id.value,
                                [](const Posting& p, uint32_t target) {
                                  return p.ad < target;
                                });
    if (pit != postings.end() && pit->ad == id.value) postings.erase(pit);
    if (postings.empty()) {
      lists_.erase(lit);
    } else {
      // Recompute the list bound (rare operation; lists are short).
      double mw = 0.0;
      for (const Posting& p : postings) mw = std::max(mw, p.weight);
      lit->second.max_weight = mw;
    }
  }
  ads_.erase(it);
  return Status::OK();
}

bool WandIndex::PassesFilters(const AdMeta& meta,
                              const AdQuery& query) const {
  if (query.location.valid() && !meta.locations.empty() &&
      meta.locations.find(query.location.value) == meta.locations.end()) {
    return false;
  }
  if (query.slot.valid() && !meta.slots.empty() &&
      meta.slots.find(query.slot.value) == meta.slots.end()) {
    return false;
  }
  return true;
}

std::vector<ScoredAd> WandIndex::TopK(const AdQuery& query) const {
  last_full_evaluations_ = 0;
  if (query.k == 0 || query.topics.empty() || ads_.empty()) return {};
  if (max_bid_bound_ <= 0.0) return {};

  // Cursors over the id-ordered lists of the query's terms.
  struct Cursor {
    const std::vector<Posting>* list;
    size_t pos = 0;
    double bound = 0.0;  // query_weight * list max_weight * max_bid
    double query_weight = 0.0;

    uint32_t CurrentAd() const { return (*list)[pos].ad; }
    bool Exhausted() const { return pos >= list->size(); }
  };
  std::vector<Cursor> cursors;
  for (const text::SparseEntry& e : query.topics.entries()) {
    if (e.weight <= 0.0) continue;
    auto it = lists_.find(e.id);
    if (it == lists_.end() || it->second.postings.empty()) continue;
    Cursor c;
    c.list = &it->second.postings;
    c.bound = e.weight * it->second.max_weight * max_bid_bound_;
    c.query_weight = e.weight;
    cursors.push_back(c);
  }
  if (cursors.empty()) return {};

  TopKHeap heap(query.k);
  for (;;) {
    // Order live cursors by current ad id.
    std::vector<Cursor*> live;
    for (Cursor& c : cursors) {
      if (!c.Exhausted()) live.push_back(&c);
    }
    if (live.empty()) break;
    std::sort(live.begin(), live.end(), [](const Cursor* a, const Cursor* b) {
      return a->CurrentAd() < b->CurrentAd();
    });
    // Find the pivot: the first cursor where the prefix bound exceeds the
    // threshold. (Strictly-greater is required for correctness of ties:
    // an ad scoring exactly the threshold can still win its tie-break, so
    // use >=.)
    const double threshold = heap.Threshold();
    double acc = 0.0;
    size_t pivot = live.size();
    for (size_t i = 0; i < live.size(); ++i) {
      acc += live[i]->bound;
      if (!heap.Full() || acc >= threshold) {
        pivot = i;
        break;
      }
    }
    if (pivot == live.size()) break;  // no ad can reach the threshold
    const uint32_t pivot_ad = live[pivot]->CurrentAd();
    if (live[0]->CurrentAd() == pivot_ad) {
      // All prefix cursors sit on the pivot: fully evaluate it.
      ++last_full_evaluations_;
      auto meta_it = ads_.find(pivot_ad);
      if (meta_it != ads_.end() && PassesFilters(meta_it->second, query)) {
        const double score =
            query.topics.Dot(meta_it->second.topics) * meta_it->second.bid;
        heap.Offer(score, pivot_ad);
      }
      // Advance every cursor positioned on the pivot.
      for (Cursor* c : live) {
        if (!c->Exhausted() && c->CurrentAd() == pivot_ad) ++c->pos;
      }
    } else {
      // Skip the earlier cursors up to the pivot ad.
      for (size_t i = 0; i < pivot; ++i) {
        Cursor* c = live[i];
        auto it = std::lower_bound(
            c->list->begin() + static_cast<ptrdiff_t>(c->pos), c->list->end(),
            pivot_ad, [](const Posting& p, uint32_t target) {
              return p.ad < target;
            });
        c->pos = static_cast<size_t>(it - c->list->begin());
      }
    }
  }
  return heap.Drain();
}

}  // namespace adrec::index
