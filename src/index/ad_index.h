#ifndef ADREC_INDEX_AD_INDEX_H_
#define ADREC_INDEX_AD_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ads/ad_store.h"
#include "common/id_types.h"
#include "common/status.h"
#include "index/query.h"
#include "text/sparse_vector.h"

namespace adrec::index {

/// The high-speed matcher: an inverted index over ad topic vectors with
/// impact-ordered postings and a threshold-based early-termination top-k,
/// plus location/slot filter bitmaps. Supports incremental insert/delete
/// (lazy tombstones with periodic compaction), which is what lets the
/// engine sustain ad churn without rebuilds (E6).
class AdIndex {
 public:
  AdIndex() = default;

  /// Indexes an ad. `topics` weights must be >= 0.
  Status Insert(AdId id, const text::SparseVector& topics,
                const std::vector<LocationId>& target_locations,
                const std::vector<SlotId>& target_slots, double bid = 1.0);

  /// Removes an ad (lazy: postings are tombstoned, lists compact when
  /// tombstones dominate). NotFound if absent.
  Status Remove(AdId id);

  /// Top-k ads for a query, scored as
  ///   score = bid * dot(query.topics, ad.topics)
  /// over ads passing the location/slot filters. Results sorted by
  /// descending score, ties by ascending ad id; zero-score ads never
  /// appear. Early termination: posting lists are consumed in impact
  /// order and scanning stops when the remaining upper bound cannot beat
  /// the current k-th score.
  std::vector<ScoredAd> TopK(const AdQuery& query) const;

  /// Reference scorer: same semantics via a full scan (the E3 baseline).
  std::vector<ScoredAd> TopKExhaustive(const AdQuery& query) const;

  /// Number of live (non-deleted) ads.
  size_t size() const { return ads_.size(); }

  /// Diagnostics: postings touched by the last TopK call (E3/E4 report).
  size_t last_postings_scanned() const { return last_postings_scanned_; }

  /// Number of posting lists currently held.
  size_t num_lists() const { return num_lists_; }

  /// Posting entries across all lists, including tombstones awaiting
  /// compaction (they occupy memory until CompactList drops them).
  size_t total_postings() const { return total_postings_; }

  /// Approximate resident bytes of the index payload: posting entries
  /// plus per-ad metadata (topic vectors, filter sets, bookkeeping).
  /// Maintained incrementally on insert/remove/compact so reading it is
  /// O(1); compared against postings.bytes of the compressed index in
  /// bench_postings / E23.
  size_t approx_bytes() const {
    return total_postings_ * sizeof(Posting) + meta_bytes_ +
           num_lists_ * kPerListOverhead;
  }

 private:
  struct Posting {
    uint32_t ad;
    double weight;
  };

  struct AdMeta {
    double bid = 1.0;
    std::vector<uint32_t> topic_ids;  // for delete-time cleanup
    std::unordered_set<uint32_t> locations;  // empty = everywhere
    std::unordered_set<uint32_t> slots;      // empty = always
    text::SparseVector topics;
  };

  // Hash-node + vector-header overhead charged per posting list in
  // approx_bytes(); a round figure, not a measurement.
  static constexpr size_t kPerListOverhead = 64;

  static size_t MetaBytes(const AdMeta& meta);

  bool PassesFilters(const AdMeta& meta, const AdQuery& query) const;
  void CompactList(uint32_t topic);

  // topic -> postings sorted by descending weight (impact order).
  std::unordered_map<uint32_t, std::vector<Posting>> postings_;
  // topic -> live entries in its list (compaction trigger).
  std::unordered_map<uint32_t, size_t> live_counts_;
  std::unordered_map<uint32_t, AdMeta> ads_;
  // Monotone upper bound on live bids (never lowered on Remove). Safe for
  // the TA stopping rule: a too-high bound only delays termination, it
  // can never admit a wrong result.
  double max_bid_bound_ = 0.0;
  mutable size_t last_postings_scanned_ = 0;
  // Incremental memory accounting (see approx_bytes()).
  size_t total_postings_ = 0;
  size_t num_lists_ = 0;
  size_t meta_bytes_ = 0;
};

}  // namespace adrec::index

#endif  // ADREC_INDEX_AD_INDEX_H_
