#ifndef ADREC_INDEX_QUERY_H_
#define ADREC_INDEX_QUERY_H_

#include <cstddef>

#include "common/id_types.h"
#include "text/sparse_vector.h"

namespace adrec::index {

/// One top-k result. Exact equality (including the score bits) is
/// meaningful: independent engines running identical arithmetic on the
/// same stream must produce bit-identical results (testkit differential).
struct ScoredAd {
  AdId ad;
  double score = 0.0;

  friend bool operator==(const ScoredAd&, const ScoredAd&) = default;
};

/// A per-feed-event query: the event's topic vector plus its hard context
/// filters (location and time slot). Ads failing a filter score zero.
///
/// Shared by both inventory-index implementations — the uncompressed
/// AdIndex (index/ad_index.h) and the compressed posting-list index
/// (postings/compressed_index.h) — which must answer it identically.
struct AdQuery {
  text::SparseVector topics;        ///< annotation-derived topic weights
  LocationId location;              ///< invalid() means "no location filter"
  SlotId slot;                      ///< invalid() means "no slot filter"
  size_t k = 10;
};

}  // namespace adrec::index

#endif  // ADREC_INDEX_QUERY_H_
