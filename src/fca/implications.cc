#include "fca/implications.h"

#include "common/logging.h"

namespace adrec::fca {

Bitset CloseUnderImplications(const std::vector<Implication>& implications,
                              const Bitset& attrs) {
  Bitset closed = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Implication& imp : implications) {
      if (imp.premise.IsSubsetOf(closed) &&
          !imp.conclusion.IsSubsetOf(closed)) {
        closed |= imp.conclusion;
        changed = true;
      }
    }
  }
  return closed;
}

bool HoldsIn(const FormalContext& ctx, const Implication& implication) {
  ADREC_CHECK(implication.premise.size() == ctx.num_attributes());
  return implication.conclusion.IsSubsetOf(
      ctx.CloseAttributes(implication.premise));
}

std::vector<AssociationRule> MineAssociationRules(const FormalContext& ctx,
                                                  size_t min_support,
                                                  double min_confidence) {
  std::vector<AssociationRule> rules;
  const size_t m = ctx.num_attributes();
  for (size_t a = 0; a < m; ++a) {
    const Bitset& objs_a = ctx.Column(a);
    const size_t count_a = objs_a.Count();
    if (count_a == 0) continue;
    for (size_t b = 0; b < m; ++b) {
      if (a == b) continue;
      const size_t both = And(objs_a, ctx.Column(b)).Count();
      if (both < min_support) continue;
      const double confidence =
          static_cast<double>(both) / static_cast<double>(count_a);
      if (confidence < min_confidence) continue;
      rules.push_back(AssociationRule{static_cast<uint32_t>(a),
                                      static_cast<uint32_t>(b), both,
                                      confidence});
    }
  }
  return rules;
}

Bitset CloseUnderRules(const std::vector<AssociationRule>& rules,
                       const Bitset& attrs) {
  Bitset closed = attrs;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const AssociationRule& rule : rules) {
      if (closed.Test(rule.premise) && !closed.Test(rule.conclusion)) {
        closed.Set(rule.conclusion);
        changed = true;
      }
    }
  }
  return closed;
}

Result<std::vector<Implication>> StemBase(const FormalContext& ctx,
                                          const EnumerateOptions& options) {
  const size_t m = ctx.num_attributes();
  std::vector<Implication> basis;

  // Ganter's algorithm: enumerate, in lectic order, the sets closed under
  // the implications found so far (the "L-closed" sets). Each such set is
  // either a concept intent (context-closed) or a pseudo-intent, which
  // contributes the implication (P -> P'').
  Bitset a = CloseUnderImplications(basis, Bitset(m));
  size_t iterations = 0;
  for (;;) {
    if (++iterations > options.max_concepts * 2 + 16) {
      return Status::ResourceExhausted("stem-base enumeration exceeded cap");
    }
    Bitset closed = ctx.CloseAttributes(a);
    if (!(closed == a)) {
      // a is a pseudo-intent.
      Bitset conclusion = closed;
      conclusion.SubtractInPlace(a);  // store the proper part
      basis.push_back(Implication{a, std::move(conclusion)});
      if (basis.size() > options.max_concepts) {
        return Status::ResourceExhausted("stem base exceeded concept cap");
      }
    }
    if (a.Count() == m) break;
    // Lectic next w.r.t. the L-closure of the current basis.
    bool advanced = false;
    Bitset working = a;
    for (size_t i = m; i-- > 0;) {
      if (working.Test(i)) {
        working.Reset(i);
      } else {
        Bitset candidate = working;
        candidate.Set(i);
        Bitset next = CloseUnderImplications(basis, candidate);
        Bitset added = next;
        added.SubtractInPlace(working);
        if (added.FindFirst() >= i) {
          a = std::move(next);
          advanced = true;
          break;
        }
      }
    }
    if (!advanced) break;  // only possible when m == 0
  }
  return basis;
}

}  // namespace adrec::fca
