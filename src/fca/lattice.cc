#include "fca/lattice.h"

#include <algorithm>

#include "common/logging.h"

namespace adrec::fca {

Result<ConceptLattice> ConceptLattice::Build(const FormalContext& ctx,
                                             const EnumerateOptions& options) {
  Result<std::vector<Concept>> mined = EnumerateConcepts(ctx, options);
  if (!mined.ok()) return mined.status();

  ConceptLattice lattice;
  lattice.concepts_ = std::move(mined).value();
  // Sort by ascending extent size; ties by intent lectic-ish comparison is
  // unnecessary — any stable order works for cover computation.
  std::stable_sort(lattice.concepts_.begin(), lattice.concepts_.end(),
                   [](const Concept& a, const Concept& b) {
                     return a.extent.Count() < b.extent.Count();
                   });
  const size_t n = lattice.concepts_.size();
  lattice.lower_.assign(n, {});
  lattice.upper_.assign(n, {});

  // For each concept, its upper covers are the minimal strictly-larger
  // extents containing it. With concepts sorted by extent size, scan
  // upward and keep candidates not above an already-chosen cover.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const Concept& ci = lattice.concepts_[i];
      const Concept& cj = lattice.concepts_[j];
      if (ci.extent.Count() == cj.extent.Count()) continue;
      if (!ci.extent.IsSubsetOf(cj.extent)) continue;
      // j is above i; check no existing cover k of i sits strictly below j.
      bool covered = false;
      for (size_t k : lattice.upper_[i]) {
        if (lattice.concepts_[k].extent.IsSubsetOf(cj.extent)) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        lattice.upper_[i].push_back(j);
        lattice.lower_[j].push_back(i);
      }
    }
  }

  // Locate top (largest extent) and bottom (smallest extent). With the
  // sort, bottom is index 0 and top is index n-1; assert the invariant.
  if (n > 0) {
    lattice.bottom_ = 0;
    lattice.top_ = n - 1;
    ADREC_CHECK(lattice.concepts_[lattice.top_].extent.Count() ==
                ctx.DeriveAttributes(Bitset(ctx.num_attributes())).Count());
  }
  return lattice;
}

const std::vector<size_t>& ConceptLattice::LowerCovers(
    size_t concept_index) const {
  ADREC_CHECK(concept_index < lower_.size());
  return lower_[concept_index];
}

const std::vector<size_t>& ConceptLattice::UpperCovers(
    size_t concept_index) const {
  ADREC_CHECK(concept_index < upper_.size());
  return upper_[concept_index];
}

bool ConceptLattice::LessEqual(size_t a, size_t b) const {
  ADREC_CHECK(a < concepts_.size() && b < concepts_.size());
  return concepts_[a].extent.IsSubsetOf(concepts_[b].extent);
}

}  // namespace adrec::fca
