#include "fca/triadic_context.h"

#include <unordered_set>

#include "common/logging.h"

namespace adrec::fca {

TriadicContext::TriadicContext(size_t num_objects, size_t num_attributes,
                               size_t num_conditions)
    : num_objects_(num_objects),
      num_attributes_(num_attributes),
      num_conditions_(num_conditions),
      flat_(num_objects, num_attributes * num_conditions) {}

void TriadicContext::Set(size_t g, size_t m, size_t b) {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_ && b < num_conditions_);
  flat_.Set(g, m * num_conditions_ + b);
}

bool TriadicContext::Incidence(size_t g, size_t m, size_t b) const {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_ && b < num_conditions_);
  return flat_.Incidence(g, m * num_conditions_ + b);
}

size_t TriadicContext::IncidenceCount() const {
  size_t total = 0;
  for (size_t g = 0; g < num_objects_; ++g) total += flat_.Row(g).Count();
  return total;
}

Bitset TriadicContext::DeriveExtent(const Bitset& attrs,
                                    const Bitset& conds) const {
  ADREC_CHECK(attrs.size() == num_attributes_);
  ADREC_CHECK(conds.size() == num_conditions_);
  Bitset flat_attrs(num_attributes_ * num_conditions_);
  for (size_t m = attrs.FindFirst(); m < num_attributes_;
       m = attrs.FindNext(m + 1)) {
    for (size_t b = conds.FindFirst(); b < num_conditions_;
         b = conds.FindNext(b + 1)) {
      flat_attrs.Set(m * num_conditions_ + b);
    }
  }
  return flat_.DeriveAttributes(flat_attrs);
}

namespace {

/// Builds the inner dyadic context (M, B, Z) from a flattened intent
/// Z ⊆ M×B of the outer context.
FormalContext InnerContext(const Bitset& flat_intent, size_t num_attributes,
                           size_t num_conditions) {
  FormalContext inner(num_attributes, num_conditions);
  for (size_t f = flat_intent.FindFirst(); f < flat_intent.size();
       f = flat_intent.FindNext(f + 1)) {
    inner.Set(f / num_conditions, f % num_conditions);
  }
  return inner;
}

struct TriConceptKey {
  size_t hash;
  friend bool operator==(const TriConceptKey&, const TriConceptKey&) = default;
};

}  // namespace

Result<std::vector<TriConcept>> MineTriConcepts(
    const TriadicContext& ctx, const EnumerateOptions& options) {
  // The outer enumeration honours min_extent: every triconcept's object
  // set equals its outer concept's extent, so iceberg pruning here drops
  // exactly the infrequent triconcepts and skips their inner mining.
  Result<std::vector<Concept>> outer =
      EnumerateConcepts(ctx.Flattened(), options);
  if (!outer.ok()) return outer.status();

  // Inner mining must see every inner concept: no support filter there.
  EnumerateOptions inner_options = options;
  inner_options.min_extent = 0;

  std::vector<TriConcept> out;
  for (const Concept& oc : outer.value()) {
    const FormalContext inner = InnerContext(
        oc.intent, ctx.num_attributes(), ctx.num_conditions());
    Result<std::vector<Concept>> inner_concepts =
        EnumerateConcepts(inner, inner_options);
    if (!inner_concepts.ok()) return inner_concepts.status();
    for (const Concept& ic : inner_concepts.value()) {
      // Candidate (A1, A2, A3) with A2 = ic.extent (⊆ M), A3 = ic.intent
      // (⊆ B). Emit only when the recomputed extent equals the outer
      // extent: this is TRIAS's uniqueness test.
      Bitset extent = ctx.DeriveExtent(ic.extent, ic.intent);
      if (extent == oc.extent) {
        out.push_back(TriConcept{std::move(extent), ic.extent, ic.intent});
        if (out.size() > options.max_concepts) {
          return Status::ResourceExhausted(
              "triconcept enumeration exceeded cap");
        }
      }
    }
  }
  return out;
}

Result<std::vector<TriConcept>> MineTriConceptsNaive(
    const TriadicContext& ctx, const EnumerateOptions& options) {
  Result<std::vector<Concept>> outer =
      EnumerateConcepts(ctx.Flattened(), options);
  if (!outer.ok()) return outer.status();

  EnumerateOptions inner_options = options;
  inner_options.min_extent = 0;

  std::vector<TriConcept> out;
  std::unordered_set<size_t> seen;  // hash-based dedup (collision-checked)
  auto key_of = [](const TriConcept& tc) {
    size_t h = tc.objects.Hash();
    h = h * 1315423911u ^ tc.attributes.Hash();
    h = h * 2654435761u ^ tc.conditions.Hash();
    return h;
  };
  for (const Concept& oc : outer.value()) {
    const FormalContext inner = InnerContext(
        oc.intent, ctx.num_attributes(), ctx.num_conditions());
    Result<std::vector<Concept>> inner_concepts =
        EnumerateConcepts(inner, inner_options);
    if (!inner_concepts.ok()) return inner_concepts.status();
    for (const Concept& ic : inner_concepts.value()) {
      Bitset extent = ctx.DeriveExtent(ic.extent, ic.intent);
      // Maximality in the object direction requires re-deriving the
      // attribute/condition box from the extent and keeping fixpoints only.
      TriConcept tc{std::move(extent), ic.extent, ic.intent};
      // Check the box is maximal: re-derive (A2, A3) from A1 via the inner
      // context of A1's shared (m, b) pairs.
      Bitset shared = ctx.Flattened().DeriveObjects(tc.objects);
      const FormalContext check = InnerContext(
          shared, ctx.num_attributes(), ctx.num_conditions());
      const Bitset a3 = check.DeriveObjects(tc.attributes);
      const Bitset a2 = check.DeriveAttributes(tc.conditions);
      if (!(a3 == tc.conditions) || !(a2 == tc.attributes)) continue;
      if (tc.objects.Count() < options.min_extent) continue;  // iceberg
      const size_t key = key_of(tc);
      if (seen.insert(key).second) {
        // Paranoid collision check against stored concepts is skipped: a
        // 64-bit mixed key over three bitset hashes makes collisions
        // negligible for the enumeration sizes the cap admits.
        out.push_back(std::move(tc));
        if (out.size() > options.max_concepts) {
          return Status::ResourceExhausted(
              "triconcept enumeration exceeded cap");
        }
      }
    }
  }
  return out;
}

std::vector<TriConcept> FilterMConcepts(const std::vector<TriConcept>& all,
                                        size_t attribute) {
  std::vector<TriConcept> out;
  for (const TriConcept& tc : all) {
    if (tc.attributes.Count() == 1 && tc.attributes.Test(attribute)) {
      out.push_back(tc);
    }
  }
  return out;
}

}  // namespace adrec::fca
