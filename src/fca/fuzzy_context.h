#ifndef ADREC_FCA_FUZZY_CONTEXT_H_
#define ADREC_FCA_FUZZY_CONTEXT_H_

#include <cstddef>
#include <vector>

#include "fca/formal_context.h"

namespace adrec::fca {

/// A dyadic fuzzy formal context: incidence degrees in [0,1] instead of
/// {0,1}. The analysis path used by the paper is crisp-by-cut: choose a
/// membership threshold α and analyse the binary α-cut context.
class FuzzyContext {
 public:
  FuzzyContext(size_t num_objects, size_t num_attributes);

  /// Sets the membership degree of (g, m); values are clamped to [0,1].
  /// Repeated sets keep the maximum degree (evidence accumulates from
  /// multiple tweets mentioning the same topic).
  void SetDegree(size_t g, size_t m, double degree);

  /// Membership degree of (g, m), 0.0 when never set.
  double Degree(size_t g, size_t m) const;

  size_t num_objects() const { return num_objects_; }
  size_t num_attributes() const { return num_attributes_; }

  /// The binary context whose incidence is degree >= alpha. (The boundary
  /// is inclusive: α-cuts are the standard closed upper level sets; the
  /// experiment sweeps α so either convention only shifts the curve.)
  FormalContext AlphaCut(double alpha) const;

 private:
  size_t num_objects_;
  size_t num_attributes_;
  std::vector<double> degrees_;  // row-major [g * num_attributes_ + m]
};

}  // namespace adrec::fca

#endif  // ADREC_FCA_FUZZY_CONTEXT_H_
