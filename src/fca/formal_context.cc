#include "fca/formal_context.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::fca {

FormalContext::FormalContext(size_t num_objects, size_t num_attributes)
    : num_objects_(num_objects),
      num_attributes_(num_attributes),
      rows_(num_objects, Bitset(num_attributes)),
      cols_(num_attributes, Bitset(num_objects)) {}

void FormalContext::Set(size_t g, size_t m) {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_);
  rows_[g].Set(m);
  cols_[m].Set(g);
}

bool FormalContext::Incidence(size_t g, size_t m) const {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_);
  return rows_[g].Test(m);
}

const Bitset& FormalContext::Row(size_t g) const {
  ADREC_CHECK(g < num_objects_);
  return rows_[g];
}

const Bitset& FormalContext::Column(size_t m) const {
  ADREC_CHECK(m < num_attributes_);
  return cols_[m];
}

Bitset FormalContext::DeriveObjects(const Bitset& objects) const {
  ADREC_CHECK(objects.size() == num_objects_);
  Bitset out = Bitset::Full(num_attributes_);
  for (size_t g = objects.FindFirst(); g < num_objects_;
       g = objects.FindNext(g + 1)) {
    out &= rows_[g];
  }
  return out;
}

Bitset FormalContext::DeriveAttributes(const Bitset& attrs) const {
  ADREC_CHECK(attrs.size() == num_attributes_);
  Bitset out = Bitset::Full(num_objects_);
  for (size_t m = attrs.FindFirst(); m < num_attributes_;
       m = attrs.FindNext(m + 1)) {
    out &= cols_[m];
  }
  return out;
}

Bitset FormalContext::CloseAttributes(const Bitset& attrs) const {
  return DeriveObjects(DeriveAttributes(attrs));
}

Result<std::vector<Concept>> EnumerateConcepts(
    const FormalContext& ctx, const EnumerateOptions& options) {
  const size_t m = ctx.num_attributes();
  std::vector<Concept> out;

  // First intent in lectic order: the closure of the empty attribute set.
  Bitset intent = ctx.CloseAttributes(Bitset(m));
  for (;;) {
    Bitset extent = ctx.DeriveAttributes(intent);
    if (extent.Count() >= options.min_extent) {
      out.push_back(Concept{std::move(extent), intent});
    }
    if (out.size() > options.max_concepts) {
      return Status::ResourceExhausted(StringFormat(
          "concept enumeration exceeded cap of %zu", options.max_concepts));
    }
    if (intent.Count() == m) break;  // the full intent is lectically last

    // NextClosure: find the lectically next closed set.
    bool advanced = false;
    Bitset working = intent;
    for (size_t i = m; i-- > 0;) {
      if (working.Test(i)) {
        working.Reset(i);
      } else {
        Bitset candidate = working;
        candidate.Set(i);
        Bitset closed = ctx.CloseAttributes(candidate);
        // Accept iff closed \ working contains no element below i.
        Bitset added = closed;
        added.SubtractInPlace(working);
        if (added.FindFirst() >= i) {
          intent = std::move(closed);
          advanced = true;
          break;
        }
      }
    }
    if (!advanced) break;  // exhausted (only when M = ∅)
  }
  return out;
}

}  // namespace adrec::fca
