#include "fca/bitset.h"

#include <bit>

#include "common/logging.h"

namespace adrec::fca {

namespace {
constexpr size_t kWordBits = 64;

size_t WordsFor(size_t nbits) { return (nbits + kWordBits - 1) / kWordBits; }
}  // namespace

Bitset::Bitset(size_t nbits) : nbits_(nbits), words_(WordsFor(nbits), 0) {}

Bitset Bitset::Full(size_t nbits) {
  Bitset b(nbits);
  for (auto& w : b.words_) w = ~0ull;
  // Clear the bits beyond nbits in the last word.
  const size_t tail = nbits % kWordBits;
  if (tail != 0 && !b.words_.empty()) {
    b.words_.back() &= (1ull << tail) - 1;
  }
  return b;
}

void Bitset::Set(size_t i) {
  ADREC_CHECK(i < nbits_);
  words_[i / kWordBits] |= 1ull << (i % kWordBits);
}

void Bitset::Reset(size_t i) {
  ADREC_CHECK(i < nbits_);
  words_[i / kWordBits] &= ~(1ull << (i % kWordBits));
}

bool Bitset::Test(size_t i) const {
  ADREC_CHECK(i < nbits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ull;
}

size_t Bitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  ADREC_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  ADREC_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::SubtractInPlace(const Bitset& other) {
  ADREC_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  ADREC_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  }
  return true;
}

bool Bitset::Intersects(const Bitset& other) const {
  ADREC_CHECK(nbits_ == other.nbits_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] & other.words_[i]) != 0) return true;
  }
  return false;
}

size_t Bitset::FindFirst() const { return FindNext(0); }

size_t Bitset::FindNext(size_t from) const {
  if (from >= nbits_) return nbits_;
  size_t word = from / kWordBits;
  uint64_t w = words_[word] & (~0ull << (from % kWordBits));
  for (;;) {
    if (w != 0) {
      const size_t bit =
          word * kWordBits + static_cast<size_t>(std::countr_zero(w));
      return bit < nbits_ ? bit : nbits_;
    }
    if (++word >= words_.size()) return nbits_;
    w = words_[word];
  }
}

std::vector<uint32_t> Bitset::ToVector() const {
  std::vector<uint32_t> out;
  for (size_t i = FindFirst(); i < nbits_; i = FindNext(i + 1)) {
    out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

Bitset Bitset::FromIndices(size_t nbits, const std::vector<uint32_t>& idx) {
  Bitset b(nbits);
  for (uint32_t i : idx) b.Set(i);
  return b;
}

size_t Bitset::Hash() const {
  uint64_t h = 0x9E3779B97F4A7C15ull ^ nbits_;
  for (uint64_t w : words_) {
    h ^= w + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  }
  return static_cast<size_t>(h);
}

Bitset And(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out &= b;
  return out;
}

Bitset Or(const Bitset& a, const Bitset& b) {
  Bitset out = a;
  out |= b;
  return out;
}

}  // namespace adrec::fca
