#ifndef ADREC_FCA_IMPLICATIONS_H_
#define ADREC_FCA_IMPLICATIONS_H_

#include <vector>

#include "common/status.h"
#include "fca/formal_context.h"

namespace adrec::fca {

/// An attribute implication A -> B: every object having all attributes of
/// the premise also has all attributes of the conclusion.
struct Implication {
  Bitset premise;
  Bitset conclusion;

  friend bool operator==(const Implication& a, const Implication& b) {
    return a.premise == b.premise && a.conclusion == b.conclusion;
  }
};

/// Closure of `attrs` under a set of implications: repeatedly fires every
/// implication whose premise is contained until a fixpoint.
Bitset CloseUnderImplications(const std::vector<Implication>& implications,
                              const Bitset& attrs);

/// True iff the implication holds in the context (premise'' ⊇ conclusion).
bool HoldsIn(const FormalContext& ctx, const Implication& implication);

/// Computes the Duquenne–Guigues basis (stem base) of the context with
/// Ganter's pseudo-intent enumeration: the unique minimal set of
/// implications from which every valid attribute implication of the
/// context follows. Premises are the pseudo-intents; conclusions their
/// context closures.
///
/// The basis powers audience expansion: in the (users × topics) context,
/// "everyone who tweets about A also tweets about B" lets an advertiser's
/// topic set be closed before matching.
Result<std::vector<Implication>> StemBase(
    const FormalContext& ctx, const EnumerateOptions& options = {});

/// A partial implication (association rule) a -> b between two single
/// attributes, with its observed support and confidence.
struct AssociationRule {
  uint32_t premise;
  uint32_t conclusion;
  size_t support = 0;      ///< |{g : g has both}|
  double confidence = 0.0; ///< support / |{g : g has premise}|
};

/// Mines all pairwise rules a -> b with support >= min_support and
/// confidence >= min_confidence. Exact implications (confidence 1.0) are
/// the stem base's singleton-premise fragment; lowering the confidence
/// threshold admits the noisy-but-useful co-interest signals real social
/// data produces (no user set follows an exact rule for 30 days).
std::vector<AssociationRule> MineAssociationRules(const FormalContext& ctx,
                                                  size_t min_support,
                                                  double min_confidence);

/// Closure of `attrs` under association rules (single firing round per
/// rule; rules chain transitively until fixpoint like implications).
Bitset CloseUnderRules(const std::vector<AssociationRule>& rules,
                       const Bitset& attrs);

}  // namespace adrec::fca

#endif  // ADREC_FCA_IMPLICATIONS_H_
