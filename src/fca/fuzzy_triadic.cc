#include "fca/fuzzy_triadic.h"

#include <algorithm>

#include "common/logging.h"

namespace adrec::fca {

FuzzyTriadicContext::FuzzyTriadicContext(size_t num_objects,
                                         size_t num_attributes,
                                         size_t num_conditions)
    : num_objects_(num_objects),
      num_attributes_(num_attributes),
      num_conditions_(num_conditions) {}

uint64_t FuzzyTriadicContext::KeyOf(size_t g, size_t m, size_t b) const {
  return (static_cast<uint64_t>(g) * num_attributes_ + m) * num_conditions_ +
         b;
}

void FuzzyTriadicContext::SetDegree(size_t g, size_t m, size_t b,
                                    double degree) {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_ && b < num_conditions_);
  degree = std::clamp(degree, 0.0, 1.0);
  if (degree <= 0.0) return;
  double& cell = degrees_[KeyOf(g, m, b)];
  cell = std::max(cell, degree);
}

double FuzzyTriadicContext::Degree(size_t g, size_t m, size_t b) const {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_ && b < num_conditions_);
  auto it = degrees_.find(KeyOf(g, m, b));
  return it == degrees_.end() ? 0.0 : it->second;
}

TriadicContext FuzzyTriadicContext::AlphaCut(double alpha) const {
  TriadicContext ctx(num_objects_, num_attributes_, num_conditions_);
  for (const auto& [key, degree] : degrees_) {
    if (degree >= alpha) {
      const size_t b = key % num_conditions_;
      const size_t gm = key / num_conditions_;
      ctx.Set(gm / num_attributes_, gm % num_attributes_, b);
    }
  }
  return ctx;
}

}  // namespace adrec::fca
