#include "fca/fuzzy_context.h"

#include <algorithm>

#include "common/logging.h"

namespace adrec::fca {

FuzzyContext::FuzzyContext(size_t num_objects, size_t num_attributes)
    : num_objects_(num_objects),
      num_attributes_(num_attributes),
      degrees_(num_objects * num_attributes, 0.0) {}

void FuzzyContext::SetDegree(size_t g, size_t m, double degree) {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_);
  degree = std::clamp(degree, 0.0, 1.0);
  double& cell = degrees_[g * num_attributes_ + m];
  cell = std::max(cell, degree);
}

double FuzzyContext::Degree(size_t g, size_t m) const {
  ADREC_CHECK(g < num_objects_ && m < num_attributes_);
  return degrees_[g * num_attributes_ + m];
}

FormalContext FuzzyContext::AlphaCut(double alpha) const {
  FormalContext ctx(num_objects_, num_attributes_);
  for (size_t g = 0; g < num_objects_; ++g) {
    for (size_t m = 0; m < num_attributes_; ++m) {
      if (degrees_[g * num_attributes_ + m] >= alpha) ctx.Set(g, m);
    }
  }
  return ctx;
}

}  // namespace adrec::fca
