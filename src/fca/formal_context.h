#ifndef ADREC_FCA_FORMAL_CONTEXT_H_
#define ADREC_FCA_FORMAL_CONTEXT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "fca/bitset.h"

namespace adrec::fca {

/// A dyadic formal context (G, M, I): a binary incidence relation between
/// `num_objects` objects and `num_attributes` attributes. Rows (per-object
/// attribute sets) and columns (per-attribute object sets) are both
/// materialised as bitsets so the two derivation operators are pure
/// intersections.
class FormalContext {
 public:
  FormalContext(size_t num_objects, size_t num_attributes);

  /// Declares that object g has attribute m.
  void Set(size_t g, size_t m);

  /// True iff (g, m) ∈ I.
  bool Incidence(size_t g, size_t m) const;

  size_t num_objects() const { return num_objects_; }
  size_t num_attributes() const { return num_attributes_; }

  /// The attribute set of object g.
  const Bitset& Row(size_t g) const;
  /// The object set of attribute m.
  const Bitset& Column(size_t m) const;

  /// Derivation A' for A ⊆ G: attributes common to all objects in A.
  /// A = ∅ derives the full attribute set.
  Bitset DeriveObjects(const Bitset& objects) const;

  /// Derivation B' for B ⊆ M: objects having every attribute in B.
  /// B = ∅ derives the full object set.
  Bitset DeriveAttributes(const Bitset& attrs) const;

  /// Intent closure B'' of an attribute set.
  Bitset CloseAttributes(const Bitset& attrs) const;

 private:
  size_t num_objects_;
  size_t num_attributes_;
  std::vector<Bitset> rows_;
  std::vector<Bitset> cols_;
};

/// A formal concept: a maximal (extent, intent) rectangle of the context.
struct Concept {
  Bitset extent;  ///< objects (⊆ G)
  Bitset intent;  ///< attributes (⊆ M)

  friend bool operator==(const Concept& a, const Concept& b) {
    return a.extent == b.extent && a.intent == b.intent;
  }
};

/// Limits for concept enumeration.
struct EnumerateOptions {
  /// Mining stops with ResourceExhausted beyond this many concepts.
  size_t max_concepts = 1u << 20;
  /// Iceberg mining: concepts whose extent has fewer objects than this are
  /// not emitted (enumeration still visits them; the lattice of frequent
  /// intents is not downward closed under NextClosure's order, so pruning
  /// the traversal itself would lose concepts). 0 keeps everything.
  size_t min_extent = 0;
};

/// Enumerates all formal concepts of `ctx` with Ganter's NextClosure
/// algorithm (lectic order over intents). Deterministic; returns concepts
/// ordered by their intents' lectic order.
Result<std::vector<Concept>> EnumerateConcepts(
    const FormalContext& ctx, const EnumerateOptions& options = {});

}  // namespace adrec::fca

#endif  // ADREC_FCA_FORMAL_CONTEXT_H_
