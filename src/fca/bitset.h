#ifndef ADREC_FCA_BITSET_H_
#define ADREC_FCA_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adrec::fca {

/// A fixed-size dynamic bitset specialised for concept-analysis workloads:
/// extents and intents are bitsets, and the hot operations are bulk
/// intersection, subset tests and population counts (all word-parallel).
class Bitset {
 public:
  /// An empty set over a universe of `nbits` elements.
  explicit Bitset(size_t nbits = 0);

  /// The full set {0, .., nbits-1}.
  static Bitset Full(size_t nbits);

  /// Single-bit operations. Index must be < size().
  void Set(size_t i);
  void Reset(size_t i);
  bool Test(size_t i) const;

  /// Number of elements in the universe.
  size_t size() const { return nbits_; }

  /// Number of set bits.
  size_t Count() const;

  bool Empty() const { return Count() == 0; }

  /// In-place set algebra (operands must have equal size()).
  Bitset& operator&=(const Bitset& other);
  Bitset& operator|=(const Bitset& other);
  /// this \ other.
  Bitset& SubtractInPlace(const Bitset& other);

  /// True iff this ⊆ other.
  bool IsSubsetOf(const Bitset& other) const;

  /// True iff this ∩ other ≠ ∅.
  bool Intersects(const Bitset& other) const;

  /// Index of the lowest set bit, or size() when empty.
  size_t FindFirst() const;

  /// Index of the lowest set bit that is >= from, or size().
  size_t FindNext(size_t from) const;

  /// The set as a sorted index vector.
  std::vector<uint32_t> ToVector() const;

  /// Builds a bitset from indices (must all be < nbits).
  static Bitset FromIndices(size_t nbits, const std::vector<uint32_t>& idx);

  friend bool operator==(const Bitset& a, const Bitset& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

  /// 64-bit mixing hash usable in unordered containers.
  size_t Hash() const;

 private:
  size_t nbits_;
  std::vector<uint64_t> words_;
};

/// a ∩ b as a new bitset.
Bitset And(const Bitset& a, const Bitset& b);
/// a ∪ b as a new bitset.
Bitset Or(const Bitset& a, const Bitset& b);

struct BitsetHash {
  size_t operator()(const Bitset& b) const { return b.Hash(); }
};

}  // namespace adrec::fca

#endif  // ADREC_FCA_BITSET_H_
