#include "fca/stability.h"

#include "common/logging.h"
#include "common/random.h"

namespace adrec::fca {

namespace {

/// Shared implementation: fraction of subsets S ⊆ extent (given as index
/// vector) with Derive(S) == reference intent, where Derive intersects
/// per-object rows.
double StabilityOverRows(const std::vector<const Bitset*>& rows,
                         const Bitset& reference,
                         const StabilityOptions& options) {
  const size_t n = rows.size();
  if (n == 0) return 1.0;  // the empty extent's only subset derives top

  auto derive = [&](uint64_t mask) {
    Bitset out = Bitset::Full(reference.size());
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) out &= *rows[i];
    }
    return out;
  };

  if (n <= options.max_exact_extent) {
    size_t hits = 0;
    const uint64_t total = 1ull << n;
    for (uint64_t mask = 0; mask < total; ++mask) {
      // The full intersection over S must equal the reference intent.
      // S = ∅ derives the full attribute set: only counts if reference
      // is full.
      if (derive(mask) == reference) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(total);
  }

  // Monte-Carlo estimate for large extents.
  Rng rng(options.seed);
  size_t hits = 0;
  for (size_t s = 0; s < options.samples; ++s) {
    // Sample a uniform subset via 64-bit chunks of random bits.
    Bitset out = Bitset::Full(reference.size());
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(0.5)) out &= *rows[i];
    }
    if (out == reference) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(options.samples);
}

}  // namespace

double ConceptStability(const FormalContext& ctx, const Concept& c,
                        const StabilityOptions& options) {
  ADREC_CHECK(c.extent.size() == ctx.num_objects());
  std::vector<const Bitset*> rows;
  for (uint32_t g : c.extent.ToVector()) {
    rows.push_back(&ctx.Row(g));
  }
  return StabilityOverRows(rows, c.intent, options);
}

double TriConceptStability(const TriadicContext& ctx, const TriConcept& tc,
                           const StabilityOptions& options) {
  ADREC_CHECK(tc.objects.size() == ctx.num_objects());
  // Reference: the flattened box attributes × conditions... note the
  // triconcept's flattened intent is exactly the set of (m, b) pairs all
  // its objects share — which may be a superset of the box. Stability is
  // measured against the objects' *common* flattened intent, mirroring
  // the dyadic definition on the flattened context.
  const Bitset reference = ctx.Flattened().DeriveObjects(tc.objects);
  std::vector<const Bitset*> rows;
  for (uint32_t g : tc.objects.ToVector()) {
    rows.push_back(&ctx.Flattened().Row(g));
  }
  return StabilityOverRows(rows, reference, options);
}

}  // namespace adrec::fca
