#ifndef ADREC_FCA_STABILITY_H_
#define ADREC_FCA_STABILITY_H_

#include "fca/formal_context.h"
#include "fca/triadic_context.h"

namespace adrec::fca {

/// Kuznetsov's intensional stability of a concept: the fraction of the
/// 2^|extent| subsets of the extent whose derivation still yields the
/// concept's intent. Stable concepts survive removal of individual
/// objects — a noise-robustness score for communities.
///
/// Cost is exponential in the extent size; extents larger than
/// `max_exact_extent` are scored by Monte-Carlo estimation with
/// `samples` draws (deterministic seed).
struct StabilityOptions {
  size_t max_exact_extent = 16;
  size_t samples = 1024;
  uint64_t seed = 31;
};

/// Stability of a dyadic concept in its context, in [0, 1].
double ConceptStability(const FormalContext& ctx, const Concept& c,
                        const StabilityOptions& options = {});

/// Stability of a triadic concept: computed on the flattened context
/// (objects vs attribute×condition pairs), where the triconcept's
/// "intent" is the box attributes×conditions.
double TriConceptStability(const TriadicContext& ctx, const TriConcept& tc,
                           const StabilityOptions& options = {});

}  // namespace adrec::fca

#endif  // ADREC_FCA_STABILITY_H_
