#ifndef ADREC_FCA_LATTICE_H_
#define ADREC_FCA_LATTICE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "fca/formal_context.h"

namespace adrec::fca {

/// The concept lattice: all concepts of a context ordered by extent
/// inclusion, with explicit covering (Hasse-diagram) edges. This is the
/// "hierarchy of time-dependent concepts" the knowledge-extraction phase
/// arranges tweets into.
class ConceptLattice {
 public:
  /// Builds the lattice of `ctx` (concepts + covering edges).
  static Result<ConceptLattice> Build(const FormalContext& ctx,
                                      const EnumerateOptions& options = {});

  /// All concepts. Indices below are positions in this vector. Concepts
  /// are sorted by ascending extent size (so parents of an index are
  /// always at a higher index... see edges for exact order).
  const std::vector<Concept>& concepts() const { return concepts_; }

  /// Direct subconcepts (children: strictly smaller extents, no concept
  /// strictly in between).
  const std::vector<size_t>& LowerCovers(size_t concept_index) const;

  /// Direct superconcepts (parents).
  const std::vector<size_t>& UpperCovers(size_t concept_index) const;

  /// Index of the top concept (full object set).
  size_t TopIndex() const { return top_; }
  /// Index of the bottom concept (full attribute set).
  size_t BottomIndex() const { return bottom_; }

  /// True iff concepts()[a] <= concepts()[b] in the lattice order
  /// (extent(a) ⊆ extent(b)).
  bool LessEqual(size_t a, size_t b) const;

  size_t size() const { return concepts_.size(); }

 private:
  ConceptLattice() = default;

  std::vector<Concept> concepts_;
  std::vector<std::vector<size_t>> lower_;
  std::vector<std::vector<size_t>> upper_;
  size_t top_ = 0;
  size_t bottom_ = 0;
};

}  // namespace adrec::fca

#endif  // ADREC_FCA_LATTICE_H_
