#ifndef ADREC_FCA_FUZZY_TRIADIC_H_
#define ADREC_FCA_FUZZY_TRIADIC_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "fca/triadic_context.h"

namespace adrec::fca {

/// A triadic fuzzy formal context: ternary incidence degrees in [0,1],
/// stored sparsely (social data is overwhelmingly sparse: most users never
/// mention most topics in most slots). The crisp analysis path is the
/// α-cut to a binary TriadicContext, mirroring the dyadic FuzzyContext.
class FuzzyTriadicContext {
 public:
  FuzzyTriadicContext(size_t num_objects, size_t num_attributes,
                      size_t num_conditions);

  /// Raises the degree of (g, m, b) to at least `degree` (clamped to
  /// [0,1]; evidence accumulates by max, the fuzzy-set union).
  void SetDegree(size_t g, size_t m, size_t b, double degree);

  /// Degree of (g, m, b); 0.0 when never set.
  double Degree(size_t g, size_t m, size_t b) const;

  size_t num_objects() const { return num_objects_; }
  size_t num_attributes() const { return num_attributes_; }
  size_t num_conditions() const { return num_conditions_; }

  /// Number of nonzero cells.
  size_t NonZeroCount() const { return degrees_.size(); }

  /// Binary context of cells with degree >= alpha.
  TriadicContext AlphaCut(double alpha) const;

 private:
  uint64_t KeyOf(size_t g, size_t m, size_t b) const;

  size_t num_objects_;
  size_t num_attributes_;
  size_t num_conditions_;
  std::unordered_map<uint64_t, double> degrees_;
};

}  // namespace adrec::fca

#endif  // ADREC_FCA_FUZZY_TRIADIC_H_
