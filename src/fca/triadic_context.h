#ifndef ADREC_FCA_TRIADIC_CONTEXT_H_
#define ADREC_FCA_TRIADIC_CONTEXT_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "fca/bitset.h"
#include "fca/formal_context.h"

namespace adrec::fca {

/// A triadic formal context (G, M, B, Y): objects × attributes ×
/// conditions with ternary incidence Y. For this system the instantiations
/// are (users, locations, time slots) for check-ins and (users, topic
/// URIs, time slots) for tweet content.
class TriadicContext {
 public:
  TriadicContext(size_t num_objects, size_t num_attributes,
                 size_t num_conditions);

  /// Declares (g, m, b) ∈ Y.
  void Set(size_t g, size_t m, size_t b);

  /// True iff (g, m, b) ∈ Y.
  bool Incidence(size_t g, size_t m, size_t b) const;

  size_t num_objects() const { return num_objects_; }
  size_t num_attributes() const { return num_attributes_; }
  size_t num_conditions() const { return num_conditions_; }

  /// Number of incidences set.
  size_t IncidenceCount() const;

  /// The flattened dyadic context K1 = (G, M×B, Y) with attribute index
  /// m * num_conditions + b. The first step of TRIAS.
  const FormalContext& Flattened() const { return flat_; }

  /// Objects g such that {g} × attrs × conds ⊆ Y (the outer derivation).
  Bitset DeriveExtent(const Bitset& attrs, const Bitset& conds) const;

 private:
  size_t num_objects_;
  size_t num_attributes_;
  size_t num_conditions_;
  FormalContext flat_;  // (G, M×B)
};

/// A triadic concept (A1, A2, A3): a maximal box A1×A2×A3 ⊆ Y.
struct TriConcept {
  Bitset objects;     ///< A1 ⊆ G (the community, for this system)
  Bitset attributes;  ///< A2 ⊆ M (locations / topic URIs)
  Bitset conditions;  ///< A3 ⊆ B (time slots)

  friend bool operator==(const TriConcept& a, const TriConcept& b) {
    return a.objects == b.objects && a.attributes == b.attributes &&
           a.conditions == b.conditions;
  }
};

/// Enumerates all triadic concepts with the TRIAS strategy (Jäschke et
/// al.): outer NextClosure over the flattened context (G, M×B), inner
/// NextClosure over each outer intent viewed as a dyadic (M, B) context,
/// and an extent-equality check that makes each triconcept appear exactly
/// once. Deterministic order.
Result<std::vector<TriConcept>> MineTriConcepts(
    const TriadicContext& ctx, const EnumerateOptions& options = {});

/// Reference implementation used as the E5 baseline and the test oracle
/// driver: same outer/inner enumeration but no extent-equality pruning;
/// duplicates are removed through a global hash set. Asymptotically does
/// redundant inner mining and hashing, which is what E5 measures.
Result<std::vector<TriConcept>> MineTriConceptsNaive(
    const TriadicContext& ctx, const EnumerateOptions& options = {});

/// The m-triadic concepts of Hao et al. 2018: triconcepts whose attribute
/// set is exactly {m}. These are the skeletons of the location-based
/// communities (Algorithm 1) and of the uri-focused communities
/// (Algorithm 2).
std::vector<TriConcept> FilterMConcepts(const std::vector<TriConcept>& all,
                                        size_t attribute);

}  // namespace adrec::fca

#endif  // ADREC_FCA_TRIADIC_CONTEXT_H_
