#include "postings/codec.h"

#include <algorithm>

#include "common/logging.h"

namespace adrec::postings {

namespace {

void AppendVarint(std::vector<uint8_t>* out, uint32_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

uint32_t ReadVarintAt(const std::vector<uint8_t>& data, size_t* pos) {
  uint32_t v = 0;
  int shift = 0;
  while (true) {
    const uint8_t b = data[(*pos)++];
    v |= static_cast<uint32_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

}  // namespace

// --- Build. ---

CompressedList CompressedList::Build(const std::vector<uint32_t>& sorted) {
  // Both encodings are cheap to produce at seal time; building both and
  // keeping the smaller one makes the choice exact and deterministic.
  CompressedList vb = BuildVarint(sorted);
  CompressedList ef = BuildEliasFano(sorted);
  return ef.bytes() < vb.bytes() ? std::move(ef) : std::move(vb);
}

CompressedList CompressedList::BuildWith(Codec codec,
                                         const std::vector<uint32_t>& sorted) {
  return codec == Codec::kVarint ? BuildVarint(sorted)
                                 : BuildEliasFano(sorted);
}

CompressedList CompressedList::BuildVarint(
    const std::vector<uint32_t>& sorted) {
  CompressedList out;
  out.codec_ = Codec::kVarint;
  out.n_ = static_cast<uint32_t>(sorted.size());
  for (size_t start = 0; start < sorted.size(); start += kBlock) {
    out.skips_.push_back(
        Skip{sorted[start], static_cast<uint32_t>(out.data_.size())});
    const size_t end = std::min(start + kBlock, sorted.size());
    for (size_t i = start + 1; i < end; ++i) {
      ADREC_CHECK(sorted[i] >= sorted[i - 1]);
      AppendVarint(&out.data_, sorted[i] - sorted[i - 1]);
    }
  }
  return out;
}

CompressedList CompressedList::BuildEliasFano(
    const std::vector<uint32_t>& sorted) {
  CompressedList out;
  out.codec_ = Codec::kEliasFano;
  out.n_ = static_cast<uint32_t>(sorted.size());
  if (sorted.empty()) return out;

  const uint64_t n = sorted.size();
  const uint64_t last = sorted.back();
  const uint64_t u = last + 1;  // universe upper bound
  // l = floor(log2(u/n)), clamped at 0: largest l with n << l <= u.
  uint8_t l = 0;
  while (l < 32 && (n << (l + 1)) <= u) ++l;
  out.ef_l_ = l;

  const uint64_t low_mask = (l == 64) ? ~0ull : ((1ull << l) - 1);
  const size_t high_len = static_cast<size_t>(n + (last >> l) + 1);
  out.low_.assign((static_cast<size_t>(n) * l + 63) / 64, 0);
  out.high_.assign((high_len + 63) / 64, 0);
  out.ef_num_zeros_ = static_cast<uint32_t>(high_len - n);

  for (size_t i = 0; i < sorted.size(); ++i) {
    ADREC_CHECK(i == 0 || sorted[i] >= sorted[i - 1]);
    const uint64_t v = sorted[i];
    if (l > 0) {
      const size_t bit = i * l;
      out.low_[bit / 64] |= (v & low_mask) << (bit % 64);
      if (bit % 64 + l > 64) {
        out.low_[bit / 64 + 1] |= (v & low_mask) >> (64 - bit % 64);
      }
    }
    const size_t high_bit = static_cast<size_t>(v >> l) + i;
    out.high_[high_bit / 64] |= 1ull << (high_bit % 64);
  }

  // Sample every kZeroSample-th zero for NextGEQ bucket jumps.
  size_t zeros = 0;
  for (size_t pos = 0; pos < high_len && zeros < out.ef_num_zeros_; ++pos) {
    if ((out.high_[pos / 64] >> (pos % 64)) & 1) continue;
    if (zeros % kZeroSample == 0) {
      out.zero_samples_.push_back(static_cast<uint32_t>(pos));
    }
    ++zeros;
  }
  return out;
}

size_t CompressedList::bytes() const {
  if (codec_ == Codec::kVarint) {
    return skips_.size() * sizeof(Skip) + data_.size();
  }
  return low_.size() * sizeof(uint64_t) + high_.size() * sizeof(uint64_t) +
         zero_samples_.size() * sizeof(uint32_t);
}

std::vector<uint32_t> CompressedList::Decode() const {
  std::vector<uint32_t> out;
  out.reserve(n_);
  for (Cursor c = cursor(); c.valid(); c.Next()) out.push_back(c.value());
  return out;
}

// --- Bit helpers. ---

uint32_t CompressedList::ReadLow(size_t i) const {
  const uint8_t l = ef_l_;
  if (l == 0) return 0;
  const size_t bit = i * l;
  uint64_t v = low_[bit / 64] >> (bit % 64);
  if (bit % 64 + l > 64) v |= low_[bit / 64 + 1] << (64 - bit % 64);
  return static_cast<uint32_t>(v & ((1ull << l) - 1));
}

size_t CompressedList::FindNextOne(size_t pos) const {
  size_t word = pos / 64;
  uint64_t w = high_[word] & (~0ull << (pos % 64));
  while (w == 0) w = high_[++word];
  return word * 64 + static_cast<size_t>(__builtin_ctzll(w));
}

size_t CompressedList::FindNextZero(size_t pos) const {
  size_t word = pos / 64;
  uint64_t w = ~high_[word] & (~0ull << (pos % 64));
  while (w == 0) w = ~high_[++word];
  return word * 64 + static_cast<size_t>(__builtin_ctzll(w));
}

// --- Cursor. ---

CompressedList::Cursor::Cursor(const CompressedList* list) : list_(list) {
  if (list_->n_ == 0) {
    i_ = list_->n_;
    return;
  }
  if (list_->codec_ == Codec::kVarint) {
    value_ = list_->skips_[0].first_value;
    byte_pos_ = list_->skips_[0].byte_offset;
  } else {
    high_pos_ = list_->FindNextOne(0);
    value_ = static_cast<uint32_t>(
        (static_cast<uint64_t>(high_pos_) << list_->ef_l_) |
        list_->ReadLow(0));
  }
}

void CompressedList::Cursor::VarintLoadBlockFirst() {
  const Skip& s = list_->skips_[i_ / kBlock];
  value_ = s.first_value;
  byte_pos_ = s.byte_offset;
}

void CompressedList::Cursor::EfLoadValue() {
  value_ = static_cast<uint32_t>(
      (static_cast<uint64_t>(high_pos_ - i_) << list_->ef_l_) |
      list_->ReadLow(i_));
}

void CompressedList::Cursor::Next() {
  ++i_;
  if (i_ >= list_->n_) return;
  if (list_->codec_ == Codec::kVarint) {
    if (i_ % kBlock == 0) {
      VarintLoadBlockFirst();
    } else {
      value_ += ReadVarintAt(list_->data_, &byte_pos_);
    }
  } else {
    high_pos_ = list_->FindNextOne(high_pos_ + 1);
    EfLoadValue();
  }
}

void CompressedList::Cursor::EfSeekBucket(uint32_t bucket) {
  // Position after zero number (bucket-1): elements before it are exactly
  // those with high part < bucket. The z-th zero (0-indexed) at position
  // p has p - z ones before it.
  const size_t z = bucket - 1;
  size_t j = z / kZeroSample;
  size_t zeros = j * kZeroSample;
  size_t pos = list_->zero_samples_[j];
  while (zeros < z) {
    pos = list_->FindNextZero(pos + 1);
    ++zeros;
  }
  const size_t new_i = pos - z;
  if (new_i <= i_) return;  // jump would not advance; linear scan instead
  i_ = new_i;
  if (i_ >= list_->n_) return;
  high_pos_ = list_->FindNextOne(pos + 1);
  EfLoadValue();
}

void CompressedList::Cursor::NextGEQ(uint32_t target) {
  if (!valid() || value_ >= target) return;
  if (list_->codec_ == Codec::kVarint) {
    // Jump to the last block whose first value is <= target.
    const auto& skips = list_->skips_;
    auto it = std::upper_bound(skips.begin(), skips.end(), target,
                               [](uint32_t t, const Skip& s) {
                                 return t < s.first_value;
                               });
    const size_t block = static_cast<size_t>(it - skips.begin()) - 1;
    if (block > i_ / kBlock) {
      i_ = block * kBlock;
      VarintLoadBlockFirst();
    }
  } else {
    const uint32_t bucket = target >> list_->ef_l_;
    if (bucket >= list_->ef_num_zeros_) {
      // Every element's high part is < bucket, so none can reach target.
      i_ = list_->n_;
      return;
    }
    if (bucket > (value_ >> list_->ef_l_)) EfSeekBucket(bucket);
  }
  while (valid() && value_ < target) Next();
}

}  // namespace adrec::postings
