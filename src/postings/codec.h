#ifndef ADREC_POSTINGS_CODEC_H_
#define ADREC_POSTINGS_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adrec::postings {

/// Encodings for an immutable monotone (non-decreasing) uint32 sequence.
enum class Codec : uint8_t {
  kVarint,    ///< delta + LEB128 varint, 64-entry skip blocks
  kEliasFano  ///< quasi-succinct: packed low bits + unary high bits
};

/// An immutable compressed posting list. Built once from a sorted vector,
/// then read through streaming cursors supporting Next and NextGEQ (the
/// skip primitive the cheapest-first conjunction relies on).
///
/// Build() picks the smaller of the two encodings for the given data:
/// Elias-Fano wins on dense lists (its size depends on universe/density,
/// not gap entropy), varint wins on short or clustered ones. The choice
/// is deterministic — same input, same codec — so replicas agree.
class CompressedList {
 public:
  CompressedList() = default;

  /// `sorted` must be non-decreasing. Strictly increasing in practice
  /// (ad ids / positions are unique per list), but duplicates round-trip.
  static CompressedList Build(const std::vector<uint32_t>& sorted);
  static CompressedList BuildWith(Codec codec,
                                  const std::vector<uint32_t>& sorted);

  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }
  Codec codec() const { return codec_; }

  /// Encoded footprint: payload plus skip/sample structures.
  size_t bytes() const;

  /// Full decode (tests / seal-time merges).
  std::vector<uint32_t> Decode() const;

  /// Forward-only streaming reader. Starts positioned on the first
  /// element (invalid immediately if the list is empty).
  class Cursor {
   public:
    explicit Cursor(const CompressedList* list);

    bool valid() const { return i_ < list_->n_; }
    uint32_t value() const { return value_; }
    size_t index() const { return i_; }

    /// Advances one element.
    void Next();

    /// Advances to the first element >= target (no-op if already there).
    /// Never moves backwards. Membership test: after NextGEQ(v), the
    /// list contains v iff valid() && value() == v.
    void NextGEQ(uint32_t target);

   private:
    void EfSeekBucket(uint32_t bucket);
    void EfLoadValue();
    void VarintLoadBlockFirst();

    const CompressedList* list_;
    size_t i_ = 0;           // element index
    uint32_t value_ = 0;
    // Elias-Fano state: bit position of element i's 1-bit in high_.
    size_t high_pos_ = 0;
    // Varint state: byte offset of the next delta in data_.
    size_t byte_pos_ = 0;
  };

  Cursor cursor() const { return Cursor(this); }

 private:
  friend class Cursor;

  static CompressedList BuildVarint(const std::vector<uint32_t>& sorted);
  static CompressedList BuildEliasFano(const std::vector<uint32_t>& sorted);

  uint32_t ReadLow(size_t i) const;
  size_t FindNextOne(size_t pos) const;
  size_t FindNextZero(size_t pos) const;

  Codec codec_ = Codec::kVarint;
  uint32_t n_ = 0;

  // --- Varint representation. ---
  // Elements are grouped in blocks of kBlock. Block b's first value and
  // the byte offset of its delta stream live in skips_; the remaining
  // kBlock-1 elements are LEB128-coded deltas in data_.
  static constexpr size_t kBlock = 64;
  struct Skip {
    uint32_t first_value;
    uint32_t byte_offset;
  };
  std::vector<Skip> skips_;
  std::vector<uint8_t> data_;

  // --- Elias-Fano representation. ---
  // Element i contributes its low l bits to low_ (packed, l bits each)
  // and a 1-bit at position (v_i >> l) + i of high_ (unary bucket code:
  // bucket h's elements are 1s, terminated by the h-th zero).
  uint8_t ef_l_ = 0;
  uint32_t ef_num_zeros_ = 0;  // = number of high buckets
  std::vector<uint64_t> low_;
  std::vector<uint64_t> high_;
  // Position of every kZeroSample-th zero in high_ (zero_samples_[j] =
  // bit position of zero number j*kZeroSample), for O(1)-ish bucket
  // jumps in NextGEQ.
  static constexpr size_t kZeroSample = 64;
  std::vector<uint32_t> zero_samples_;
};

}  // namespace adrec::postings

#endif  // ADREC_POSTINGS_CODEC_H_
