#ifndef ADREC_POSTINGS_COMPRESSED_INDEX_H_
#define ADREC_POSTINGS_COMPRESSED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/id_types.h"
#include "common/status.h"
#include "index/query.h"
#include "index/topk_heap.h"
#include "obs/metrics.h"
#include "postings/codec.h"
#include "text/sparse_vector.h"

namespace adrec::postings {

struct PostingsOptions {
  /// Delta-index ads that trigger an epoch seal (compression rebuild).
  size_t seal_threshold = 1024;
  /// Reseal when sealed tombstones exceed this fraction of sealed ads.
  double tombstone_reseal_fraction = 0.5;
};

/// Point-in-time footprint/shape of the compressed index.
struct PostingsStats {
  size_t bytes = 0;        ///< resident payload: sealed epoch + delta
  size_t sealed_bytes = 0; ///< compressed lists + flat ad arrays
  size_t lists = 0;        ///< compressed posting lists in the sealed epoch
  size_t epochs = 0;       ///< seals performed since construction
  size_t delta_ads = 0;    ///< ads in the uncompressed delta index
  size_t sealed_ads = 0;   ///< live ads in the sealed epoch
  size_t sealed_dead = 0;  ///< tombstoned sealed ads awaiting reseal
};

/// The compressed ad inventory index: an epoch-sealed, immutable set of
/// compressed posting lists (topics, location cells, time slots) plus a
/// small uncompressed delta index that absorbs churn. Ingest goes to the
/// delta; when it reaches seal_threshold ads (or tombstones dominate the
/// sealed epoch) the two are merged into a fresh sealed epoch and the
/// lists recompressed — rebuild-and-swap, never in-place mutation.
///
/// Queries pick the cheaper of two exact strategies per side:
///
/// - Filter-driven max-score conjunction, when a mandatory filter group
///   (cell ∪ untargeted, slot ∪ untargeted) is much rarer than the topic
///   postings: topic cursors carry upper-bound impacts (query weight x
///   list max weight), cursors sorted by id pick a pivot — the smallest
///   id whose prefix bound x the side's max bid can still reach the
///   current top-k threshold — and filter misses push the skip floor to
///   the group's next reachable id via NextGEQ, so the rarest list
///   drives the scan and everything in between is skipped undecoded.
///
/// - Term-at-a-time accumulation, otherwise: the query's topic lists are
///   streamed in ascending topic-id order into a generation-stamped
///   position accumulator. Because SparseVector::Dot also sums matched
///   terms in ascending topic order, the accumulated partial dot is
///   bit-identical to the merge-join score — exactness by construction,
///   at a few ns per posting.
///
/// Survivors are offered to the same deterministic top-k heap as
/// index::AdIndex, so the ranked result is byte-identical to the
/// uncompressed index — the pruning is a candidate filter, never an
/// approximation (the 20-seed differential in
/// tests/postings_differential_test.cc holds the two implementations to
/// that).
class CompressedAdIndex {
 public:
  /// `metrics`, when given, receives the postings.* gauges/counters
  /// (bytes, lists, epochs, candidate pruning); nullptr disables them.
  explicit CompressedAdIndex(PostingsOptions options = {},
                             obs::MetricRegistry* metrics = nullptr);

  /// Same contract as index::AdIndex::Insert (AlreadyExists on dup).
  Status Insert(AdId id, const text::SparseVector& topics,
                const std::vector<LocationId>& target_locations,
                const std::vector<SlotId>& target_slots, double bid = 1.0);

  /// Same contract as index::AdIndex::Remove (NotFound if absent).
  /// Sealed ads tombstone (lists are immutable); delta ads drop out.
  Status Remove(AdId id);

  /// Exact top-k, byte-identical to index::AdIndex::TopK on the same
  /// live inventory.
  std::vector<index::ScoredAd> TopK(const index::AdQuery& query) const;

  /// Full-scan reference scorer (mirrors AdIndex::TopKExhaustive).
  std::vector<index::ScoredAd> TopKExhaustive(
      const index::AdQuery& query) const;

  /// Number of live ads (sealed live + delta).
  size_t size() const {
    return sealed_.ids.size() - dead_sealed_.size() + delta_ads_.size();
  }

  /// Forces an epoch seal (tests / shutdown compaction).
  void Seal();

  PostingsStats stats() const;

  /// Diagnostics for the last TopK call.
  size_t last_candidates() const { return last_candidates_; }
  size_t last_postings_scanned() const { return last_postings_scanned_; }

  /// Resident payload bytes (stats().bytes): compressed lists + flat ad
  /// arrays + delta estimate. The number index.postings_bytes exports.
  size_t approx_bytes() const { return stats().bytes; }

 private:
  /// Uncompressed per-ad record in the delta index.
  struct DeltaMeta {
    double bid = 1.0;
    text::SparseVector topics;
    std::vector<uint32_t> locations;  // sorted; empty = everywhere
    std::vector<uint32_t> slots;      // sorted; empty = always
  };

  /// One immutable compressed epoch. Per-ad data lives in flat arrays
  /// indexed by position (ads sorted by id); posting lists hold
  /// positions, which are dense and ascending — ideal codec input.
  struct Sealed {
    std::vector<uint32_t> ids;    // sorted ad ids
    std::vector<double> bids;
    // Full topic vectors, CSR-style: ad p's entries are
    // [topic_off[p], topic_off[p+1]) of topic_ids/topic_weights,
    // ascending by topic id (same order SparseVector stores them, so
    // the merge-join dot product visits identical terms in identical
    // order — the bit-exactness requirement).
    std::vector<uint32_t> topic_off;
    std::vector<uint32_t> topic_ids;
    std::vector<double> topic_weights;
    // Targeting filters, CSR-style, sorted; empty slice = wildcard.
    std::vector<uint32_t> loc_off, locs;
    std::vector<uint32_t> slot_off, slots;
    // Posting lists over positions. by_topic indexes only weight > 0
    // entries (what makes an ad reachable, mirroring AdIndex postings).
    std::unordered_map<uint32_t, CompressedList> by_topic;
    std::unordered_map<uint32_t, CompressedList> by_cell;
    std::unordered_map<uint32_t, CompressedList> by_slot;
    CompressedList wild_cell;  // positions with no location targeting
    CompressedList wild_slot;  // positions with no slot targeting
    // Score-bound inputs for max-score pruning: the largest weight in
    // each topic list and the largest bid in the epoch. Tombstones can
    // leave these stale-high — a looser bound is still a bound.
    std::unordered_map<uint32_t, double> topic_maxw;
    double max_bid = 0.0;
  };

  bool SealedContains(uint32_t id) const;
  bool SealedLive(uint32_t id) const;
  bool SealedPassesFilters(size_t pos, const index::AdQuery& query) const;
  double ScoreSealed(size_t pos, const index::AdQuery& query) const;
  void ScanSealed(const index::AdQuery& query, index::TopKHeap* heap) const;
  void ScanSealedConjunction(const index::AdQuery& query,
                             index::TopKHeap* heap) const;
  void ScanSealedAccumulate(const index::AdQuery& query,
                            index::TopKHeap* heap) const;
  void ScanDelta(const index::AdQuery& query, index::TopKHeap* heap) const;
  void MaybeSealAfterChange();
  void PublishGauges() const;

  PostingsOptions options_;
  Sealed sealed_;
  std::unordered_set<uint32_t> dead_sealed_;  // tombstoned sealed ids

  // Delta index: sorted-vector posting lists over ad ids.
  std::unordered_map<uint32_t, DeltaMeta> delta_ads_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> delta_by_topic_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> delta_by_cell_;
  std::unordered_map<uint32_t, std::vector<uint32_t>> delta_by_slot_;
  std::vector<uint32_t> delta_wild_cell_;
  std::vector<uint32_t> delta_wild_slot_;
  // Max-score bounds for the delta side, maintained on insert. Removals
  // leave them stale-high until the next seal resets them (a looser
  // bound only costs pruning power, never correctness).
  std::unordered_map<uint32_t, double> delta_topic_maxw_;
  double delta_max_bid_ = 0.0;

  size_t epochs_ = 0;
  size_t sealed_bytes_ = 0;
  size_t sealed_lists_ = 0;
  size_t delta_bytes_ = 0;  // incremental (O(1) stats/gauge updates)

  mutable size_t last_candidates_ = 0;
  mutable size_t last_postings_scanned_ = 0;

  // Reusable term-at-a-time scoring scratch (position-indexed partial
  // dot products, generation-stamped so clearing is O(touched), not
  // O(n)). Query-time only; not part of the index footprint, and reused
  // across queries like AdIndex's seen-set.
  mutable std::vector<double> acc_;
  mutable std::vector<uint32_t> acc_stamp_;
  mutable uint32_t acc_gen_ = 0;
  mutable std::vector<uint32_t> touched_;

  // Observability (all nullable).
  obs::Gauge* g_bytes_ = nullptr;
  obs::Gauge* g_lists_ = nullptr;
  obs::Gauge* g_epochs_ = nullptr;
  obs::Gauge* g_delta_ads_ = nullptr;
  obs::Gauge* g_sealed_ads_ = nullptr;
  obs::Gauge* g_pruned_ratio_ = nullptr;
  obs::Counter* ctr_candidates_ = nullptr;
  obs::Counter* ctr_considered_ = nullptr;
  obs::Counter* ctr_seals_ = nullptr;
};

}  // namespace adrec::postings

#endif  // ADREC_POSTINGS_COMPRESSED_INDEX_H_
