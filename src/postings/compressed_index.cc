#include "postings/compressed_index.h"

#include <algorithm>

#include "common/string_util.h"
#include "obs/trace.h"

namespace adrec::postings {

namespace {

/// An OR-group of posting-list cursors: one mandatory conjunction term
/// whose members are unioned (cell list ∪ untargeted list, etc.).
template <typename CursorT>
struct OrGroup {
  std::vector<CursorT> cursors;
};

/// A topic-list cursor carrying its score upper bound: query weight x
/// the largest posting weight in the list.
template <typename CursorT>
struct BoundedCursor {
  CursorT cursor;
  double ub = 0.0;
};

/// Multiplicative slack on the score bound. The bound and the real score
/// are summed in different term orders, so pure FP rounding could make a
/// mathematically-equal bound land an ulp below the threshold; inflating
/// it by 1e-9 (orders of magnitude above any achievable rounding drift
/// for these short sums) keeps "skip" decisions strictly sound.
constexpr double kUbSlack = 1.0 + 1e-9;

/// Max-score conjunction over one side of the index. `topics` are the
/// query's reachable topic lists with their upper-bound impacts;
/// `filters` are mandatory OR-groups (location, slot). Each round sorts
/// the live topic cursors by current id and picks the pivot: the first
/// id whose accumulated prefix bound x max_bid can still reach
/// threshold() (the current k-th score, 0 while the heap is unfilled).
/// Ids below the pivot cannot make the top-k — any such id appears only
/// in the prefix lists, whose summed bound already falls short — so the
/// scan leaps straight to it. The pivot is membership-probed against
/// every filter group; a miss raises the skip floor to the group's next
/// reachable id (no id in between can pass that mandatory filter), which
/// is what lets a selective cell or slot list drive the whole scan.
/// emit(v) fires for each survivor; *considered counts pivots examined.
template <typename CursorT, typename ThresholdFn, typename EmitFn>
void Conjunction(std::vector<BoundedCursor<CursorT>>* topics,
                 std::vector<OrGroup<CursorT>>* filters, double max_bid,
                 ThresholdFn threshold, size_t* considered, EmitFn emit) {
  constexpr uint32_t kMaxId = 0xffffffffu;
  std::vector<size_t> order(topics->size());
  for (;;) {
    order.clear();
    for (size_t i = 0; i < topics->size(); ++i) {
      if ((*topics)[i].cursor.valid()) order.push_back(i);
    }
    if (order.empty()) return;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return (*topics)[a].cursor.value() < (*topics)[b].cursor.value();
    });

    const double theta = threshold();
    double acc = 0.0;
    bool have_pivot = false;
    uint32_t pivot = 0;
    for (const size_t i : order) {
      acc += (*topics)[i].ub;
      if (acc * max_bid * kUbSlack >= theta) {
        pivot = (*topics)[i].cursor.value();
        have_pivot = true;
        break;
      }
    }
    if (!have_pivot) return;  // even all lists together fall short
    ++*considered;

    bool pass = true;
    uint32_t floor = pivot;  // first id not yet ruled out by a filter
    for (OrGroup<CursorT>& g : *filters) {
      bool any = false;
      uint32_t reach = kMaxId;
      for (CursorT& c : g.cursors) {
        c.NextGEQ(pivot);
        if (c.valid()) {
          any = true;
          if (c.value() < reach) reach = c.value();
          if (reach == pivot) break;
        }
      }
      if (!any) return;  // a mandatory group is exhausted past the pivot
      if (reach != pivot) {
        pass = false;
        if (reach > floor) floor = reach;
      }
    }
    if (pass) {
      emit(pivot);
      if (pivot == kMaxId) return;  // nothing can follow the largest id
      floor = pivot + 1;  // the pivot itself is settled now
    }
    // Ids below the pivot are bound-pruned; on a filter miss, ids below
    // the raised floor fail a mandatory filter. Leap every lagging
    // cursor to the first unsettled id.
    for (BoundedCursor<CursorT>& t : *topics) {
      if (t.cursor.valid() && t.cursor.value() < floor) {
        t.cursor.NextGEQ(floor);
      }
    }
  }
}

/// Streaming cursor over a plain sorted vector (the delta index's lists),
/// satisfying the same concept as CompressedList::Cursor.
struct VecCursor {
  const std::vector<uint32_t>* v;
  size_t pos = 0;

  bool valid() const { return pos < v->size(); }
  uint32_t value() const { return (*v)[pos]; }
  void Next() { ++pos; }
  void NextGEQ(uint32_t target) {
    if (valid() && value() >= target) return;
    pos = static_cast<size_t>(
        std::lower_bound(v->begin() + static_cast<ptrdiff_t>(pos), v->end(),
                         target) -
        v->begin());
  }
};

/// Inserts v into a sorted unique vector (no-op on duplicate).
void SortedInsert(std::vector<uint32_t>* list, uint32_t v) {
  auto it = std::lower_bound(list->begin(), list->end(), v);
  if (it == list->end() || *it != v) list->insert(it, v);
}

/// Erases v from a sorted vector if present.
void SortedErase(std::vector<uint32_t>* list, uint32_t v) {
  auto it = std::lower_bound(list->begin(), list->end(), v);
  if (it != list->end() && *it == v) list->erase(it);
}

/// Approximate resident bytes of one delta ad: its meta plus the posting
/// entries it contributes. Symmetric for insert/remove accounting.
size_t DeltaAdBytes(const text::SparseVector& topics,
                    const std::vector<uint32_t>& locations,
                    const std::vector<uint32_t>& slots) {
  size_t postings = 0;
  for (const text::SparseEntry& e : topics.entries()) {
    if (e.weight > 0.0) ++postings;
  }
  postings += locations.empty() ? 1 : locations.size();
  postings += slots.empty() ? 1 : slots.size();
  return 64 /* map-node + struct shell */ +
         topics.entries().size() * sizeof(text::SparseEntry) +
         (locations.size() + slots.size()) * sizeof(uint32_t) +
         postings * sizeof(uint32_t);
}

}  // namespace

CompressedAdIndex::CompressedAdIndex(PostingsOptions options,
                                     obs::MetricRegistry* metrics)
    : options_(options) {
  if (options_.seal_threshold == 0) options_.seal_threshold = 1;
  if (metrics != nullptr) {
    g_bytes_ = metrics->GetGauge("postings.bytes");
    g_lists_ = metrics->GetGauge("postings.lists");
    g_epochs_ = metrics->GetGauge("postings.epochs");
    g_delta_ads_ = metrics->GetGauge("postings.delta_ads");
    g_sealed_ads_ = metrics->GetGauge("postings.sealed_ads");
    g_pruned_ratio_ = metrics->GetGauge("postings.pruned_ratio");
    ctr_candidates_ = metrics->GetCounter("postings.candidates");
    ctr_considered_ = metrics->GetCounter("postings.considered");
    ctr_seals_ = metrics->GetCounter("postings.seals");
  }
  sealed_.topic_off.push_back(0);
  sealed_.loc_off.push_back(0);
  sealed_.slot_off.push_back(0);
}

bool CompressedAdIndex::SealedContains(uint32_t id) const {
  return std::binary_search(sealed_.ids.begin(), sealed_.ids.end(), id);
}

bool CompressedAdIndex::SealedLive(uint32_t id) const {
  return SealedContains(id) && dead_sealed_.find(id) == dead_sealed_.end();
}

Status CompressedAdIndex::Insert(AdId id, const text::SparseVector& topics,
                                 const std::vector<LocationId>& target_locations,
                                 const std::vector<SlotId>& target_slots,
                                 double bid) {
  const uint32_t v = id.value;
  if (delta_ads_.find(v) != delta_ads_.end() || SealedLive(v)) {
    return Status::AlreadyExists(
        StringFormat("ad %u already indexed", v));
  }
  DeltaMeta meta;
  meta.bid = bid;
  meta.topics = topics;
  for (LocationId l : target_locations) meta.locations.push_back(l.value);
  for (SlotId s : target_slots) meta.slots.push_back(s.value);
  std::sort(meta.locations.begin(), meta.locations.end());
  meta.locations.erase(
      std::unique(meta.locations.begin(), meta.locations.end()),
      meta.locations.end());
  std::sort(meta.slots.begin(), meta.slots.end());
  meta.slots.erase(std::unique(meta.slots.begin(), meta.slots.end()),
                   meta.slots.end());

  for (const text::SparseEntry& e : topics.entries()) {
    if (e.weight <= 0.0) continue;
    SortedInsert(&delta_by_topic_[e.id], v);
    double& maxw = delta_topic_maxw_[e.id];
    if (e.weight > maxw) maxw = e.weight;
  }
  if (bid > delta_max_bid_) delta_max_bid_ = bid;
  if (meta.locations.empty()) {
    SortedInsert(&delta_wild_cell_, v);
  } else {
    for (uint32_t c : meta.locations) SortedInsert(&delta_by_cell_[c], v);
  }
  if (meta.slots.empty()) {
    SortedInsert(&delta_wild_slot_, v);
  } else {
    for (uint32_t s : meta.slots) SortedInsert(&delta_by_slot_[s], v);
  }
  delta_bytes_ += DeltaAdBytes(meta.topics, meta.locations, meta.slots);
  delta_ads_.emplace(v, std::move(meta));
  MaybeSealAfterChange();
  PublishGauges();
  return Status::OK();
}

Status CompressedAdIndex::Remove(AdId id) {
  const uint32_t v = id.value;
  auto it = delta_ads_.find(v);
  if (it != delta_ads_.end()) {
    const DeltaMeta& meta = it->second;
    delta_bytes_ -=
        DeltaAdBytes(meta.topics, meta.locations, meta.slots);
    for (const text::SparseEntry& e : meta.topics.entries()) {
      if (e.weight <= 0.0) continue;
      auto lt = delta_by_topic_.find(e.id);
      if (lt == delta_by_topic_.end()) continue;
      SortedErase(&lt->second, v);
      if (lt->second.empty()) {
        delta_by_topic_.erase(lt);
        delta_topic_maxw_.erase(e.id);
      }
    }
    if (meta.locations.empty()) {
      SortedErase(&delta_wild_cell_, v);
    } else {
      for (uint32_t c : meta.locations) {
        auto lc = delta_by_cell_.find(c);
        if (lc == delta_by_cell_.end()) continue;
        SortedErase(&lc->second, v);
        if (lc->second.empty()) delta_by_cell_.erase(lc);
      }
    }
    if (meta.slots.empty()) {
      SortedErase(&delta_wild_slot_, v);
    } else {
      for (uint32_t s : meta.slots) {
        auto ls = delta_by_slot_.find(s);
        if (ls == delta_by_slot_.end()) continue;
        SortedErase(&ls->second, v);
        if (ls->second.empty()) delta_by_slot_.erase(ls);
      }
    }
    delta_ads_.erase(it);
    PublishGauges();
    return Status::OK();
  }
  if (!SealedLive(v)) {
    return Status::NotFound(StringFormat("ad %u not indexed", v));
  }
  dead_sealed_.insert(v);
  MaybeSealAfterChange();
  PublishGauges();
  return Status::OK();
}

void CompressedAdIndex::MaybeSealAfterChange() {
  if (delta_ads_.size() >= options_.seal_threshold) {
    Seal();
    return;
  }
  if (!sealed_.ids.empty() &&
      static_cast<double>(dead_sealed_.size()) >
          options_.tombstone_reseal_fraction *
              static_cast<double>(sealed_.ids.size())) {
    Seal();
  }
}

void CompressedAdIndex::Seal() {
  std::vector<uint32_t> dkeys;
  dkeys.reserve(delta_ads_.size());
  for (const auto& [did, meta] : delta_ads_) dkeys.push_back(did);
  std::sort(dkeys.begin(), dkeys.end());

  Sealed ns;
  ns.topic_off.push_back(0);
  ns.loc_off.push_back(0);
  ns.slot_off.push_back(0);

  auto append_sealed = [&](size_t pos) {
    ns.ids.push_back(sealed_.ids[pos]);
    ns.bids.push_back(sealed_.bids[pos]);
    for (uint32_t i = sealed_.topic_off[pos]; i < sealed_.topic_off[pos + 1];
         ++i) {
      ns.topic_ids.push_back(sealed_.topic_ids[i]);
      ns.topic_weights.push_back(sealed_.topic_weights[i]);
    }
    ns.topic_off.push_back(static_cast<uint32_t>(ns.topic_ids.size()));
    for (uint32_t i = sealed_.loc_off[pos]; i < sealed_.loc_off[pos + 1]; ++i) {
      ns.locs.push_back(sealed_.locs[i]);
    }
    ns.loc_off.push_back(static_cast<uint32_t>(ns.locs.size()));
    for (uint32_t i = sealed_.slot_off[pos]; i < sealed_.slot_off[pos + 1];
         ++i) {
      ns.slots.push_back(sealed_.slots[i]);
    }
    ns.slot_off.push_back(static_cast<uint32_t>(ns.slots.size()));
  };
  auto append_delta = [&](uint32_t did, const DeltaMeta& meta) {
    ns.ids.push_back(did);
    ns.bids.push_back(meta.bid);
    for (const text::SparseEntry& e : meta.topics.entries()) {
      ns.topic_ids.push_back(e.id);
      ns.topic_weights.push_back(e.weight);
    }
    ns.topic_off.push_back(static_cast<uint32_t>(ns.topic_ids.size()));
    for (uint32_t c : meta.locations) ns.locs.push_back(c);
    ns.loc_off.push_back(static_cast<uint32_t>(ns.locs.size()));
    for (uint32_t s : meta.slots) ns.slots.push_back(s);
    ns.slot_off.push_back(static_cast<uint32_t>(ns.slots.size()));
  };

  // Two-pointer merge by ascending id; dead sealed ads are dropped here
  // (this is where tombstones are reclaimed). A dead sealed id that was
  // re-inserted lives in the delta and re-enters through that side.
  size_t si = 0, di = 0;
  const size_t S = sealed_.ids.size(), D = dkeys.size();
  for (;;) {
    while (si < S &&
           dead_sealed_.find(sealed_.ids[si]) != dead_sealed_.end()) {
      ++si;
    }
    const bool hs = si < S, hd = di < D;
    if (!hs && !hd) break;
    if (hs && (!hd || sealed_.ids[si] < dkeys[di])) {
      append_sealed(si++);
    } else {
      append_delta(dkeys[di], delta_ads_.at(dkeys[di]));
      ++di;
    }
  }

  // Rebuild the position-space posting lists and compress them.
  std::unordered_map<uint32_t, std::vector<uint32_t>> t_lists, c_lists,
      s_lists;
  std::vector<uint32_t> wild_c, wild_s;
  const size_t n = ns.ids.size();
  for (size_t pos = 0; pos < n; ++pos) {
    const uint32_t p = static_cast<uint32_t>(pos);
    if (ns.bids[pos] > ns.max_bid) ns.max_bid = ns.bids[pos];
    for (uint32_t i = ns.topic_off[pos]; i < ns.topic_off[pos + 1]; ++i) {
      if (ns.topic_weights[i] <= 0.0) continue;
      t_lists[ns.topic_ids[i]].push_back(p);
      double& maxw = ns.topic_maxw[ns.topic_ids[i]];
      if (ns.topic_weights[i] > maxw) maxw = ns.topic_weights[i];
    }
    if (ns.loc_off[pos] == ns.loc_off[pos + 1]) {
      wild_c.push_back(p);
    } else {
      for (uint32_t i = ns.loc_off[pos]; i < ns.loc_off[pos + 1]; ++i) {
        c_lists[ns.locs[i]].push_back(p);
      }
    }
    if (ns.slot_off[pos] == ns.slot_off[pos + 1]) {
      wild_s.push_back(p);
    } else {
      for (uint32_t i = ns.slot_off[pos]; i < ns.slot_off[pos + 1]; ++i) {
        s_lists[ns.slots[i]].push_back(p);
      }
    }
  }
  size_t bytes = 0, lists = 0;
  auto compress_into =
      [&](std::unordered_map<uint32_t, std::vector<uint32_t>>& raw,
          std::unordered_map<uint32_t, CompressedList>* out) {
        out->reserve(raw.size());
        for (auto& [key, vec] : raw) {
          CompressedList cl = CompressedList::Build(vec);
          bytes += cl.bytes();
          ++lists;
          out->emplace(key, std::move(cl));
        }
      };
  compress_into(t_lists, &ns.by_topic);
  compress_into(c_lists, &ns.by_cell);
  compress_into(s_lists, &ns.by_slot);
  ns.wild_cell = CompressedList::Build(wild_c);
  ns.wild_slot = CompressedList::Build(wild_s);
  if (!ns.wild_cell.empty()) {
    bytes += ns.wild_cell.bytes();
    ++lists;
  }
  if (!ns.wild_slot.empty()) {
    bytes += ns.wild_slot.bytes();
    ++lists;
  }
  // Flat per-ad arrays are part of the resident footprint.
  bytes += ns.ids.size() * sizeof(uint32_t) + ns.bids.size() * sizeof(double) +
           (ns.topic_off.size() + ns.loc_off.size() + ns.slot_off.size()) *
               sizeof(uint32_t) +
           ns.topic_ids.size() * sizeof(uint32_t) +
           ns.topic_weights.size() * sizeof(double) +
           (ns.locs.size() + ns.slots.size()) * sizeof(uint32_t);

  sealed_ = std::move(ns);
  sealed_bytes_ = bytes;
  sealed_lists_ = lists;
  dead_sealed_.clear();
  delta_ads_.clear();
  delta_by_topic_.clear();
  delta_by_cell_.clear();
  delta_by_slot_.clear();
  delta_wild_cell_.clear();
  delta_wild_slot_.clear();
  delta_topic_maxw_.clear();
  delta_max_bid_ = 0.0;
  delta_bytes_ = 0;
  ++epochs_;
  if (ctr_seals_ != nullptr) ctr_seals_->Inc();
  PublishGauges();
}

double CompressedAdIndex::ScoreSealed(size_t pos,
                                      const index::AdQuery& query) const {
  // Merge-join dot product over the full stored topic vector — the exact
  // arithmetic (term order and all) of SparseVector::Dot, so scores are
  // bit-identical to the uncompressed index's.
  const auto& q = query.topics.entries();
  double sum = 0.0;
  size_t i = 0;
  uint32_t j = sealed_.topic_off[pos];
  const uint32_t jend = sealed_.topic_off[pos + 1];
  while (i < q.size() && j < jend) {
    const uint32_t a = q[i].id;
    const uint32_t b = sealed_.topic_ids[j];
    if (a == b) {
      sum += q[i].weight * sealed_.topic_weights[j];
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum * sealed_.bids[pos];
}

bool CompressedAdIndex::SealedPassesFilters(
    size_t pos, const index::AdQuery& query) const {
  if (query.location.valid() &&
      sealed_.loc_off[pos] != sealed_.loc_off[pos + 1] &&
      !std::binary_search(sealed_.locs.begin() + sealed_.loc_off[pos],
                          sealed_.locs.begin() + sealed_.loc_off[pos + 1],
                          query.location.value)) {
    return false;
  }
  if (query.slot.valid() &&
      sealed_.slot_off[pos] != sealed_.slot_off[pos + 1] &&
      !std::binary_search(sealed_.slots.begin() + sealed_.slot_off[pos],
                          sealed_.slots.begin() + sealed_.slot_off[pos + 1],
                          query.slot.value)) {
    return false;
  }
  return true;
}

void CompressedAdIndex::ScanSealed(const index::AdQuery& query,
                                   index::TopKHeap* heap) const {
  if (sealed_.ids.empty()) return;

  // Cost model for the strategy pick: the conjunction only beats the
  // accumulator when a mandatory filter group is selective enough to
  // leapfrog most of the topic postings (its per-id probe costs several
  // NextGEQ calls; the accumulator streams postings at a few ns each).
  size_t topic_total = 0;
  for (const text::SparseEntry& e : query.topics.entries()) {
    if (e.weight <= 0.0) continue;
    auto it = sealed_.by_topic.find(e.id);
    if (it != sealed_.by_topic.end()) topic_total += it->second.size();
  }
  if (topic_total == 0) return;  // no reachable sealed ad

  size_t cheapest_filter = sealed_.ids.size() + 1;
  if (query.location.valid()) {
    size_t total = sealed_.wild_cell.size();
    auto it = sealed_.by_cell.find(query.location.value);
    if (it != sealed_.by_cell.end()) total += it->second.size();
    cheapest_filter = std::min(cheapest_filter, total);
  }
  if (query.slot.valid()) {
    size_t total = sealed_.wild_slot.size();
    auto it = sealed_.by_slot.find(query.slot.value);
    if (it != sealed_.by_slot.end()) total += it->second.size();
    cheapest_filter = std::min(cheapest_filter, total);
  }
  if (cheapest_filter * 4 < topic_total) {
    ScanSealedConjunction(query, heap);
  } else {
    ScanSealedAccumulate(query, heap);
  }
}

void CompressedAdIndex::ScanSealedAccumulate(const index::AdQuery& query,
                                             index::TopKHeap* heap) const {
  const size_t n = sealed_.ids.size();
  if (acc_.size() < n) {
    acc_.resize(n);
    acc_stamp_.resize(n, 0);
  }
  if (++acc_gen_ == 0) {  // stamp wrap: invalidate everything once
    std::fill(acc_stamp_.begin(), acc_stamp_.end(), 0);
    acc_gen_ = 1;
  }
  touched_.clear();

  // Stream each topic list in ascending topic-id order (the order the
  // query stores its entries), so every position's partial sums grow in
  // exactly the sequence SparseVector::Dot adds matched terms — the
  // accumulated score is bit-identical to the merge-join one.
  for (const text::SparseEntry& e : query.topics.entries()) {
    if (e.weight <= 0.0) continue;
    auto it = sealed_.by_topic.find(e.id);
    if (it == sealed_.by_topic.end() || it->second.empty()) continue;
    for (CompressedList::Cursor c = it->second.cursor(); c.valid();
         c.Next()) {
      const uint32_t p = c.value();
      ++last_postings_scanned_;
      double w = 0.0;
      for (uint32_t j = sealed_.topic_off[p]; j < sealed_.topic_off[p + 1];
           ++j) {
        if (sealed_.topic_ids[j] == e.id) {
          w = sealed_.topic_weights[j];
          break;
        }
      }
      if (acc_stamp_[p] != acc_gen_) {
        acc_stamp_[p] = acc_gen_;
        acc_[p] = 0.0;
        touched_.push_back(p);
      }
      acc_[p] += e.weight * w;
    }
  }

  for (const uint32_t p : touched_) {
    const uint32_t id = sealed_.ids[p];
    if (dead_sealed_.find(id) != dead_sealed_.end()) continue;
    if (!SealedPassesFilters(p, query)) continue;
    ++last_candidates_;
    heap->Offer(acc_[p] * sealed_.bids[p], id);
  }
}

void CompressedAdIndex::ScanSealedConjunction(const index::AdQuery& query,
                                              index::TopKHeap* heap) const {
  std::vector<BoundedCursor<CompressedList::Cursor>> topics;
  for (const text::SparseEntry& e : query.topics.entries()) {
    if (e.weight <= 0.0) continue;
    auto it = sealed_.by_topic.find(e.id);
    if (it == sealed_.by_topic.end() || it->second.empty()) continue;
    topics.push_back({it->second.cursor(),
                      e.weight * sealed_.topic_maxw.at(e.id)});
  }
  if (topics.empty()) return;  // no reachable sealed ad

  std::vector<OrGroup<CompressedList::Cursor>> filters;
  if (query.location.valid()) {
    OrGroup<CompressedList::Cursor> g;
    auto it = sealed_.by_cell.find(query.location.value);
    if (it != sealed_.by_cell.end() && !it->second.empty()) {
      g.cursors.push_back(it->second.cursor());
    }
    if (!sealed_.wild_cell.empty()) {
      g.cursors.push_back(sealed_.wild_cell.cursor());
    }
    if (g.cursors.empty()) return;  // every sealed ad fails the filter
    filters.push_back(std::move(g));
  }
  if (query.slot.valid()) {
    OrGroup<CompressedList::Cursor> g;
    auto it = sealed_.by_slot.find(query.slot.value);
    if (it != sealed_.by_slot.end() && !it->second.empty()) {
      g.cursors.push_back(it->second.cursor());
    }
    if (!sealed_.wild_slot.empty()) {
      g.cursors.push_back(sealed_.wild_slot.cursor());
    }
    if (g.cursors.empty()) return;
    filters.push_back(std::move(g));
  }

  Conjunction(
      &topics, &filters, sealed_.max_bid,
      [heap] { return heap->Threshold(); }, &last_postings_scanned_,
      [&](uint32_t pos) {
        const uint32_t id = sealed_.ids[pos];
        if (dead_sealed_.find(id) != dead_sealed_.end()) return;
        ++last_candidates_;
        heap->Offer(ScoreSealed(pos, query), id);
      });
}

void CompressedAdIndex::ScanDelta(const index::AdQuery& query,
                                  index::TopKHeap* heap) const {
  if (delta_ads_.empty()) return;

  std::vector<BoundedCursor<VecCursor>> topics;
  for (const text::SparseEntry& e : query.topics.entries()) {
    if (e.weight <= 0.0) continue;
    auto it = delta_by_topic_.find(e.id);
    if (it == delta_by_topic_.end() || it->second.empty()) continue;
    topics.push_back(
        {VecCursor{&it->second}, e.weight * delta_topic_maxw_.at(e.id)});
  }
  if (topics.empty()) return;

  std::vector<OrGroup<VecCursor>> filters;
  if (query.location.valid()) {
    OrGroup<VecCursor> g;
    auto it = delta_by_cell_.find(query.location.value);
    if (it != delta_by_cell_.end() && !it->second.empty()) {
      g.cursors.push_back(VecCursor{&it->second});
    }
    if (!delta_wild_cell_.empty()) {
      g.cursors.push_back(VecCursor{&delta_wild_cell_});
    }
    if (g.cursors.empty()) return;
    filters.push_back(std::move(g));
  }
  if (query.slot.valid()) {
    OrGroup<VecCursor> g;
    auto it = delta_by_slot_.find(query.slot.value);
    if (it != delta_by_slot_.end() && !it->second.empty()) {
      g.cursors.push_back(VecCursor{&it->second});
    }
    if (!delta_wild_slot_.empty()) {
      g.cursors.push_back(VecCursor{&delta_wild_slot_});
    }
    if (g.cursors.empty()) return;
    filters.push_back(std::move(g));
  }

  Conjunction(
      &topics, &filters, delta_max_bid_,
      [heap] { return heap->Threshold(); }, &last_postings_scanned_,
      [&](uint32_t id) {
        ++last_candidates_;
        const DeltaMeta& meta = delta_ads_.at(id);
        heap->Offer(query.topics.Dot(meta.topics) * meta.bid, id);
      });
}

std::vector<index::ScoredAd> CompressedAdIndex::TopK(
    const index::AdQuery& query) const {
  obs::TraceSpan span("index.candidates");
  last_candidates_ = 0;
  last_postings_scanned_ = 0;
  if (query.k == 0 || query.topics.empty()) return {};

  index::TopKHeap heap(query.k);
  ScanSealed(query, &heap);
  ScanDelta(query, &heap);

  if (ctr_considered_ != nullptr) ctr_considered_->Inc(last_postings_scanned_);
  if (ctr_candidates_ != nullptr) ctr_candidates_->Inc(last_candidates_);
  if (g_pruned_ratio_ != nullptr) {
    const size_t live = size();
    g_pruned_ratio_->Set(
        live == 0 ? 0.0
                  : 1.0 - static_cast<double>(last_candidates_) /
                              static_cast<double>(live));
  }
  return heap.Drain();
}

std::vector<index::ScoredAd> CompressedAdIndex::TopKExhaustive(
    const index::AdQuery& query) const {
  last_candidates_ = 0;
  last_postings_scanned_ = size();
  index::TopKHeap heap(query.k);
  for (size_t pos = 0; pos < sealed_.ids.size(); ++pos) {
    const uint32_t id = sealed_.ids[pos];
    if (dead_sealed_.find(id) != dead_sealed_.end()) continue;
    if (!SealedPassesFilters(pos, query)) continue;
    heap.Offer(ScoreSealed(pos, query), id);
  }
  for (const auto& [id, meta] : delta_ads_) {
    if (query.location.valid() && !meta.locations.empty() &&
        !std::binary_search(meta.locations.begin(), meta.locations.end(),
                            query.location.value)) {
      continue;
    }
    if (query.slot.valid() && !meta.slots.empty() &&
        !std::binary_search(meta.slots.begin(), meta.slots.end(),
                            query.slot.value)) {
      continue;
    }
    heap.Offer(query.topics.Dot(meta.topics) * meta.bid, id);
  }
  return heap.Drain();
}

PostingsStats CompressedAdIndex::stats() const {
  PostingsStats s;
  s.sealed_ads = sealed_.ids.size() - dead_sealed_.size();
  s.sealed_dead = dead_sealed_.size();
  s.delta_ads = delta_ads_.size();
  s.epochs = epochs_;
  s.lists = sealed_lists_;
  s.sealed_bytes = sealed_bytes_;
  s.bytes = sealed_bytes_ + delta_bytes_;
  return s;
}

void CompressedAdIndex::PublishGauges() const {
  if (g_bytes_ == nullptr) return;
  const PostingsStats s = stats();
  g_bytes_->Set(static_cast<double>(s.bytes));
  g_lists_->Set(static_cast<double>(s.lists));
  g_epochs_->Set(static_cast<double>(s.epochs));
  g_delta_ads_->Set(static_cast<double>(s.delta_ads));
  g_sealed_ads_->Set(static_cast<double>(s.sealed_ads));
}

}  // namespace adrec::postings
