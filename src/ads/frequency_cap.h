#ifndef ADREC_ADS_FREQUENCY_CAP_H_
#define ADREC_ADS_FREQUENCY_CAP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/id_types.h"
#include "common/sim_clock.h"

namespace adrec::ads {

/// Frequency-cap policy: at most `max_impressions` of the same ad to the
/// same user within a sliding `window`.
struct FrequencyCapOptions {
  int max_impressions = 3;
  DurationSec window = kSecondsPerDay;
};

/// Per-(user, ad) sliding-window impression counter — the guard that
/// stops the matcher from hammering one user with one ad. O(1) amortised
/// per call. Reads (Allowed/CountInWindow/ForEach) never mutate state:
/// expired impressions are pruned when the same pair Records again, or
/// in bulk via Expire(). Side-effect-free reads are load-bearing for the
/// topk result cache — a cache hit skips the engine's read path, so
/// cached and uncached servers stay byte-identical only if reads cannot
/// change subsequent answers (DESIGN.md §14).
class FrequencyCapper {
 public:
  explicit FrequencyCapper(FrequencyCapOptions options = {});

  /// True iff showing `ad` to `user` at `now` stays under the cap.
  bool Allowed(UserId user, AdId ad, Timestamp now) const;

  /// Records a served impression.
  void Record(UserId user, AdId ad, Timestamp now);

  /// Convenience: Allowed() followed by Record() when allowed.
  bool TryServe(UserId user, AdId ad, Timestamp now);

  /// Impressions of (user, ad) still inside the window.
  int CountInWindow(UserId user, AdId ad, Timestamp now) const;

  /// Drops all state older than the window (bulk housekeeping).
  void Expire(Timestamp now);

  /// Visits every tracked (user, ad) pair with its retained impression
  /// timestamps, oldest first (snapshot serialization; unspecified pair
  /// order — serializers sort). May include impressions that have aged
  /// out of the window but not yet been pruned by a Record/Expire.
  void ForEach(const std::function<void(UserId, AdId,
                                        const std::deque<Timestamp>&)>& fn)
      const;

  /// Replaces the impression history of one (user, ad) pair wholesale
  /// (snapshot restore). `times` must be oldest-first; an empty vector
  /// clears the pair.
  void RestoreHistory(UserId user, AdId ad, std::vector<Timestamp> times);

  size_t tracked_pairs() const { return impressions_.size(); }

 private:
  uint64_t KeyOf(UserId user, AdId ad) const {
    return (static_cast<uint64_t>(user.value) << 32) | ad.value;
  }

  FrequencyCapOptions options_;
  // (user, ad) -> timestamps of impressions, oldest first.
  std::unordered_map<uint64_t, std::deque<Timestamp>> impressions_;
};

}  // namespace adrec::ads

#endif  // ADREC_ADS_FREQUENCY_CAP_H_
