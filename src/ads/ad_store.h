#ifndef ADREC_ADS_AD_STORE_H_
#define ADREC_ADS_AD_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/id_types.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "feed/types.h"
#include "text/sparse_vector.h"

namespace adrec::ads {

/// One stored ad: the advertiser's record plus the engine's semantic
/// representation of its copy (topic-id weights from annotation) and
/// delivery counters.
struct StoredAd {
  feed::Ad ad;
  text::SparseVector topics;  ///< <URI, score> pairs as a topic vector
  int64_t impressions_served = 0;
  uint64_t version = 0;  ///< bumped on every update
};

/// The mutable ad inventory. Supports the churn the "high-speed" setting
/// implies: campaigns start, stop and rebalance while the feed is live.
/// Single-writer; reads are const.
class AdStore {
 public:
  AdStore() = default;

  /// Inserts a new ad; AlreadyExists if the id is live.
  Status Insert(const feed::Ad& ad, text::SparseVector topics);

  /// Removes an ad; NotFound if absent.
  Status Remove(AdId id);

  /// Replaces an existing ad's record and topics; NotFound if absent.
  Status Update(const feed::Ad& ad, text::SparseVector topics);

  /// Lookup (nullptr when absent).
  const StoredAd* Find(AdId id) const;

  /// True iff the ad exists and still has budget.
  bool HasBudget(AdId id) const;

  /// Records one served impression; FailedPrecondition when the budget is
  /// exhausted, NotFound when the ad is absent.
  Status RecordImpression(AdId id);

  /// Overwrites the served-impression counter (snapshot restore).
  Status RestoreImpressions(AdId id, int64_t impressions_served);

  /// Iterates all live ads (unspecified order).
  void ForEach(const std::function<void(const StoredAd&)>& fn) const;

  size_t size() const { return ads_.size(); }

  /// Monotone counter incremented by every mutation; index maintenance
  /// uses it to cheaply detect staleness.
  uint64_t mutation_count() const { return mutations_; }

 private:
  std::unordered_map<uint32_t, StoredAd> ads_;
  uint64_t mutations_ = 0;
};

/// Budget pacing: spreads a campaign's impressions uniformly over its
/// flight window instead of spending the budget in the first minutes
/// (the standard production guard against budget bursts).
class BudgetPacer {
 public:
  /// Flight from `start` to `end` with a total impression budget.
  BudgetPacer(Timestamp start, Timestamp end, int64_t budget_impressions);

  /// True iff serving one more impression now keeps delivery on or behind
  /// the uniform schedule. Unlimited budgets always pass.
  bool ShouldServe(Timestamp now, int64_t impressions_served) const;

  /// The impression count the uniform schedule allows by `now`.
  int64_t AllowedBy(Timestamp now) const;

 private:
  Timestamp start_;
  Timestamp end_;
  int64_t budget_;
};

}  // namespace adrec::ads

#endif  // ADREC_ADS_AD_STORE_H_
