#include "ads/ad_store.h"

#include "common/string_util.h"

namespace adrec::ads {

Status AdStore::Insert(const feed::Ad& ad, text::SparseVector topics) {
  if (ads_.find(ad.id.value) != ads_.end()) {
    return Status::AlreadyExists(
        StringFormat("ad %u already in store", ad.id.value));
  }
  StoredAd stored;
  stored.ad = ad;
  stored.topics = std::move(topics);
  stored.version = ++mutations_;
  ads_.emplace(ad.id.value, std::move(stored));
  return Status::OK();
}

Status AdStore::Remove(AdId id) {
  auto it = ads_.find(id.value);
  if (it == ads_.end()) {
    return Status::NotFound(StringFormat("ad %u not in store", id.value));
  }
  ads_.erase(it);
  ++mutations_;
  return Status::OK();
}

Status AdStore::Update(const feed::Ad& ad, text::SparseVector topics) {
  auto it = ads_.find(ad.id.value);
  if (it == ads_.end()) {
    return Status::NotFound(StringFormat("ad %u not in store", ad.id.value));
  }
  it->second.ad = ad;
  it->second.topics = std::move(topics);
  it->second.version = ++mutations_;
  return Status::OK();
}

const StoredAd* AdStore::Find(AdId id) const {
  auto it = ads_.find(id.value);
  return it == ads_.end() ? nullptr : &it->second;
}

bool AdStore::HasBudget(AdId id) const {
  const StoredAd* stored = Find(id);
  if (stored == nullptr) return false;
  return stored->ad.budget_impressions == 0 ||
         stored->impressions_served < stored->ad.budget_impressions;
}

Status AdStore::RecordImpression(AdId id) {
  auto it = ads_.find(id.value);
  if (it == ads_.end()) {
    return Status::NotFound(StringFormat("ad %u not in store", id.value));
  }
  StoredAd& stored = it->second;
  if (stored.ad.budget_impressions != 0 &&
      stored.impressions_served >= stored.ad.budget_impressions) {
    return Status::FailedPrecondition(
        StringFormat("ad %u budget exhausted", id.value));
  }
  ++stored.impressions_served;
  return Status::OK();
}

Status AdStore::RestoreImpressions(AdId id, int64_t impressions_served) {
  auto it = ads_.find(id.value);
  if (it == ads_.end()) {
    return Status::NotFound(StringFormat("ad %u not in store", id.value));
  }
  it->second.impressions_served = impressions_served;
  return Status::OK();
}

void AdStore::ForEach(const std::function<void(const StoredAd&)>& fn) const {
  for (const auto& [id, stored] : ads_) fn(stored);
}

BudgetPacer::BudgetPacer(Timestamp start, Timestamp end,
                         int64_t budget_impressions)
    : start_(start), end_(end > start ? end : start + 1),
      budget_(budget_impressions) {}

int64_t BudgetPacer::AllowedBy(Timestamp now) const {
  if (budget_ <= 0) return INT64_MAX;  // unlimited
  if (now >= end_) return budget_;
  const double frac =
      now <= start_ ? 0.0
                    : static_cast<double>(now - start_) /
                          static_cast<double>(end_ - start_);
  // The +1 lets the very first impression through at flight start.
  return std::min(
      budget_, static_cast<int64_t>(frac * static_cast<double>(budget_)) + 1);
}

bool BudgetPacer::ShouldServe(Timestamp now, int64_t impressions_served) const {
  if (budget_ <= 0) return true;
  if (impressions_served >= budget_) return false;
  return impressions_served < AllowedBy(now);
}

}  // namespace adrec::ads
