#include "ads/frequency_cap.h"

namespace adrec::ads {

FrequencyCapper::FrequencyCapper(FrequencyCapOptions options)
    : options_(options) {}

int FrequencyCapper::CountInWindow(UserId user, AdId ad,
                                   Timestamp now) const {
  auto it = impressions_.find(KeyOf(user, ad));
  if (it == impressions_.end()) return 0;
  const std::deque<Timestamp>& times = it->second;
  const Timestamp horizon = now - options_.window;
  // Pure count, no pruning: Record order is not guaranteed monotone in
  // `now` (explicit-time probes, replays), so the deque may not be
  // sorted — scan it rather than trusting front()/back().
  int count = 0;
  for (const Timestamp t : times) {
    if (t > horizon) ++count;
  }
  return count;
}

bool FrequencyCapper::Allowed(UserId user, AdId ad, Timestamp now) const {
  return CountInWindow(user, ad, now) < options_.max_impressions;
}

void FrequencyCapper::Record(UserId user, AdId ad, Timestamp now) {
  std::deque<Timestamp>& times = impressions_[KeyOf(user, ad)];
  // Writes carry the pruning burden so reads can stay pure. Only a
  // leading run of expired entries is dropped: the deque is oldest-first
  // under monotone serving, and under out-of-order replays keeping a
  // few extra expired entries is harmless (reads count, not trust size).
  const Timestamp horizon = now - options_.window;
  while (!times.empty() && times.front() <= horizon) times.pop_front();
  times.push_back(now);
}

bool FrequencyCapper::TryServe(UserId user, AdId ad, Timestamp now) {
  if (!Allowed(user, ad, now)) return false;
  Record(user, ad, now);
  return true;
}

void FrequencyCapper::ForEach(
    const std::function<void(UserId, AdId, const std::deque<Timestamp>&)>&
        fn) const {
  for (const auto& [key, times] : impressions_) {
    fn(UserId(static_cast<uint32_t>(key >> 32)),
       AdId(static_cast<uint32_t>(key & 0xFFFFFFFF)), times);
  }
}

void FrequencyCapper::RestoreHistory(UserId user, AdId ad,
                                     std::vector<Timestamp> times) {
  const uint64_t key = KeyOf(user, ad);
  if (times.empty()) {
    impressions_.erase(key);
    return;
  }
  std::deque<Timestamp>& deque = impressions_[key];
  deque.assign(times.begin(), times.end());
}

void FrequencyCapper::Expire(Timestamp now) {
  const Timestamp horizon = now - options_.window;
  for (auto it = impressions_.begin(); it != impressions_.end();) {
    auto& times = it->second;
    while (!times.empty() && times.front() <= horizon) times.pop_front();
    if (times.empty()) {
      it = impressions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace adrec::ads
