#include "ads/frequency_cap.h"

namespace adrec::ads {

FrequencyCapper::FrequencyCapper(FrequencyCapOptions options)
    : options_(options) {}

int FrequencyCapper::CountInWindow(UserId user, AdId ad,
                                   Timestamp now) const {
  auto it = impressions_.find(KeyOf(user, ad));
  if (it == impressions_.end()) return 0;
  auto& times = it->second;
  const Timestamp horizon = now - options_.window;
  while (!times.empty() && times.front() <= horizon) times.pop_front();
  if (times.empty()) {
    impressions_.erase(it);
    return 0;
  }
  return static_cast<int>(times.size());
}

bool FrequencyCapper::Allowed(UserId user, AdId ad, Timestamp now) const {
  return CountInWindow(user, ad, now) < options_.max_impressions;
}

void FrequencyCapper::Record(UserId user, AdId ad, Timestamp now) {
  impressions_[KeyOf(user, ad)].push_back(now);
}

bool FrequencyCapper::TryServe(UserId user, AdId ad, Timestamp now) {
  if (!Allowed(user, ad, now)) return false;
  Record(user, ad, now);
  return true;
}

void FrequencyCapper::ForEach(
    const std::function<void(UserId, AdId, const std::deque<Timestamp>&)>&
        fn) const {
  for (const auto& [key, times] : impressions_) {
    fn(UserId(static_cast<uint32_t>(key >> 32)),
       AdId(static_cast<uint32_t>(key & 0xFFFFFFFF)), times);
  }
}

void FrequencyCapper::RestoreHistory(UserId user, AdId ad,
                                     std::vector<Timestamp> times) {
  const uint64_t key = KeyOf(user, ad);
  if (times.empty()) {
    impressions_.erase(key);
    return;
  }
  std::deque<Timestamp>& deque = impressions_[key];
  deque.assign(times.begin(), times.end());
}

void FrequencyCapper::Expire(Timestamp now) {
  const Timestamp horizon = now - options_.window;
  for (auto it = impressions_.begin(); it != impressions_.end();) {
    auto& times = it->second;
    while (!times.empty() && times.front() <= horizon) times.pop_front();
    if (times.empty()) {
      it = impressions_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace adrec::ads
