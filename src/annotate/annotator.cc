#include "annotate/annotator.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "text/tfidf.h"

namespace adrec::annotate {

SpotlightAnnotator::SpotlightAnnotator(const KnowledgeBase* kb,
                                       AnnotatorOptions options)
    : kb_(kb), options_(options) {
  ADREC_CHECK(kb != nullptr);
}

std::vector<Annotation> SpotlightAnnotator::Annotate(
    std::string_view text) const {
  return AnnotateTerms(kb_->analyzer()->Analyze(text));
}

std::vector<Annotation> SpotlightAnnotator::AnnotateTerms(
    const std::vector<text::TermId>& terms) const {
  // Document vector for context similarity (raw term frequencies are
  // sufficient here; both sides are L2-normalised by Cosine()).
  const text::SparseVector doc = text::TfIdfModel::TermFrequency(terms);

  // Scores one candidate sense of a mention span; `discount` scales the
  // final confidence (1.0 for exact matches, trigram similarity for
  // fuzzy ones).
  auto score_candidate = [&](TopicId cand, size_t begin, size_t len,
                             double discount) {
    const Entity& e = kb_->entity(cand);
    // Context cosine; entities without context fall back to prior only.
    double ctx = e.context.empty() ? 0.0 : e.context.Cosine(doc);
    if (ctx < 0.0) ctx = 0.0;
    const double w = e.context.empty() ? 0.0 : options_.context_weight;
    const double score = ((1.0 - w) * e.prior + w * ctx) * discount;
    Annotation a;
    a.topic = cand;
    a.uri = e.uri;
    a.score = std::min(1.0, std::max(0.0, score));
    a.token_begin = begin;
    a.token_length = len;
    return a;
  };

  std::vector<Annotation> spans;
  // Emits the best (or all) senses from scored candidate annotations.
  auto emit = [&](std::vector<Annotation> candidates) {
    if (candidates.empty()) return;
    if (options_.best_sense_only) {
      const Annotation* best = &candidates[0];
      for (const Annotation& a : candidates) {
        if (a.score > best->score) best = &a;
      }
      if (best->score >= options_.min_score) spans.push_back(*best);
    } else {
      for (Annotation& a : candidates) {
        if (a.score >= options_.min_score) spans.push_back(std::move(a));
      }
    }
  };

  size_t i = 0;
  while (i < terms.size()) {
    // Leftmost-longest match in the surface trie starting at i.
    KnowledgeBase::NodeId node = 0;
    size_t best_len = 0;
    KnowledgeBase::NodeId best_node = KnowledgeBase::kNoNode;
    for (size_t j = i; j < terms.size(); ++j) {
      node = kb_->Step(node, terms[j]);
      if (node == KnowledgeBase::kNoNode) break;
      if (!kb_->CandidatesAt(node).empty()) {
        best_len = j - i + 1;
        best_node = node;
      }
    }
    if (best_node == KnowledgeBase::kNoNode) {
      // Typo fallback: fuzzy single-token match.
      if (options_.fuzzy_min_similarity > 0.0) {
        const auto term = kb_->analyzer()->vocabulary().TryTermOf(terms[i]);
        if (term.ok()) {
          std::vector<Annotation> fuzzy;
          for (const KnowledgeBase::FuzzyMatch& m : kb_->FuzzyCandidates(
                   term.value(), options_.fuzzy_min_similarity)) {
            fuzzy.push_back(score_candidate(m.topic, i, 1, m.similarity));
          }
          emit(std::move(fuzzy));
        }
      }
      ++i;
      continue;
    }
    // Disambiguate the candidates of the matched span.
    std::vector<Annotation> scored;
    for (TopicId cand : kb_->CandidatesAt(best_node)) {
      scored.push_back(score_candidate(cand, i, best_len, 1.0));
    }
    emit(std::move(scored));
    i += best_len;
  }

  // Aggregate per entity: max score across mentions.
  std::unordered_map<uint32_t, size_t> first_index;
  std::vector<Annotation> out;
  for (Annotation& a : spans) {
    auto it = first_index.find(a.topic.value);
    if (it == first_index.end()) {
      first_index.emplace(a.topic.value, out.size());
      out.push_back(std::move(a));
    } else if (a.score > out[it->second].score) {
      out[it->second].score = a.score;
    }
  }
  // Deterministic order: by topic id.
  std::sort(out.begin(), out.end(), [](const Annotation& a, const Annotation& b) {
    return a.topic.value < b.topic.value;
  });
  return out;
}

}  // namespace adrec::annotate
