#include "annotate/knowledge_base.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::annotate {

namespace {

/// Character trigrams of a padded term ("^ab", "abc", .., "yz$").
std::vector<std::string> TrigramsOf(std::string_view term) {
  std::string padded = "^";
  padded += term;
  padded += '$';
  std::vector<std::string> out;
  if (padded.size() < 3) return out;
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    out.push_back(padded.substr(i, 3));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace

KnowledgeBase::KnowledgeBase(text::Analyzer* analyzer) : analyzer_(analyzer) {
  ADREC_CHECK(analyzer != nullptr);
  trie_.emplace_back();  // root
}

Result<TopicId> KnowledgeBase::AddEntity(Entity entity) {
  auto it = by_uri_.find(entity.uri);
  if (it != by_uri_.end()) {
    return Status::AlreadyExists(
        StringFormat("entity uri already present: %s", entity.uri.c_str()));
  }
  const TopicId id(static_cast<uint32_t>(entities_.size()));
  by_uri_.emplace(entity.uri, id);
  entities_.push_back(std::move(entity));
  return id;
}

Status KnowledgeBase::AddSurfaceForm(TopicId topic, std::string_view phrase) {
  if (topic.value >= entities_.size()) {
    return Status::InvalidArgument("surface form for unknown topic id");
  }
  const std::vector<text::TermId> terms = analyzer_->Analyze(phrase);
  if (terms.empty()) {
    return Status::InvalidArgument(
        StringFormat("surface form analyses to nothing: '%.*s'",
                     static_cast<int>(phrase.size()), phrase.data()));
  }
  NodeId node = 0;
  for (text::TermId term : terms) {
    auto it = trie_[node].children.find(term);
    if (it == trie_[node].children.end()) {
      const NodeId next = static_cast<NodeId>(trie_.size());
      trie_[node].children.emplace(term, next);
      trie_.emplace_back();
      node = next;
    } else {
      node = it->second;
    }
  }
  std::vector<TopicId>& cands = trie_[node].candidates;
  bool already = false;
  for (TopicId existing : cands) {
    if (existing == topic) already = true;
  }
  if (!already) cands.push_back(topic);
  entities_[topic.value].surface_phrases.emplace_back(phrase);
  // Single-token surface stems join the fuzzy index.
  if (terms.size() == 1) {
    const std::string stem = analyzer_->vocabulary().TermOf(terms[0]);
    std::vector<TopicId>& fuzzy_cands = single_token_[stem];
    if (std::find(fuzzy_cands.begin(), fuzzy_cands.end(), topic) ==
        fuzzy_cands.end()) {
      fuzzy_cands.push_back(topic);
      if (fuzzy_cands.size() == 1) {  // first registration of this stem
        for (const std::string& tri : TrigramsOf(stem)) {
          trigrams_[tri].push_back(stem);
        }
      }
    }
  }
  return Status::OK();
}

std::vector<KnowledgeBase::FuzzyMatch> KnowledgeBase::FuzzyCandidates(
    std::string_view term, double min_similarity) const {
  const std::vector<std::string> query_tris = TrigramsOf(term);
  if (query_tris.empty()) return {};
  // Gather candidate stems sharing at least one trigram, with overlap
  // counts.
  std::unordered_map<std::string, size_t> overlap;
  for (const std::string& tri : query_tris) {
    auto it = trigrams_.find(tri);
    if (it == trigrams_.end()) continue;
    for (const std::string& stem : it->second) ++overlap[stem];
  }
  std::vector<FuzzyMatch> out;
  std::set<uint32_t> seen_topics;
  for (const auto& [stem, shared] : overlap) {
    const size_t stem_tris = TrigramsOf(stem).size();
    const size_t unions = query_tris.size() + stem_tris - shared;
    const double jaccard =
        unions == 0 ? 0.0
                    : static_cast<double>(shared) / static_cast<double>(unions);
    if (jaccard < min_similarity) continue;
    auto cand_it = single_token_.find(stem);
    if (cand_it == single_token_.end()) continue;
    for (TopicId topic : cand_it->second) {
      if (seen_topics.insert(topic.value).second) {
        out.push_back(FuzzyMatch{topic, jaccard});
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FuzzyMatch& a, const FuzzyMatch& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.topic.value < b.topic.value;
            });
  return out;
}

Status KnowledgeBase::AddContextText(TopicId topic, std::string_view text,
                                     double weight) {
  if (topic.value >= entities_.size()) {
    return Status::InvalidArgument("context text for unknown topic id");
  }
  for (text::TermId term : analyzer_->Analyze(text)) {
    entities_[topic.value].context.Add(term, weight);
  }
  entities_[topic.value].context_texts.emplace_back(text);
  return Status::OK();
}

const Entity& KnowledgeBase::entity(TopicId id) const {
  ADREC_CHECK(id.value < entities_.size());
  return entities_[id.value];
}

Result<TopicId> KnowledgeBase::FindByUri(std::string_view uri) const {
  auto it = by_uri_.find(std::string(uri));
  if (it == by_uri_.end()) {
    return Status::NotFound(StringFormat(
        "no entity with uri '%.*s'", static_cast<int>(uri.size()), uri.data()));
  }
  return it->second;
}

KnowledgeBase::NodeId KnowledgeBase::Step(NodeId node,
                                          text::TermId term) const {
  if (node >= trie_.size()) return kNoNode;
  auto it = trie_[node].children.find(term);
  return it == trie_[node].children.end() ? kNoNode : it->second;
}

const std::vector<TopicId>& KnowledgeBase::CandidatesAt(NodeId node) const {
  if (node >= trie_.size()) return empty_candidates_;
  return trie_[node].candidates;
}

namespace {

/// Registers one entity with its surface forms and context sentences,
/// aborting on programmer error (the demo KB is static data).
TopicId MustAdd(KnowledgeBase& kb, const char* uri, const char* label,
                double prior, std::initializer_list<const char*> surfaces,
                std::initializer_list<const char*> contexts) {
  Entity entity;
  entity.uri = uri;
  entity.label = label;
  entity.prior = prior;
  Result<TopicId> id = kb.AddEntity(std::move(entity));
  ADREC_CHECK(id.ok());
  for (const char* s : surfaces) {
    ADREC_CHECK(kb.AddSurfaceForm(id.value(), s).ok());
  }
  for (const char* c : contexts) {
    ADREC_CHECK(kb.AddContextText(id.value(), c).ok());
  }
  return id.value();
}

}  // namespace

std::unique_ptr<KnowledgeBase> BuildDemoKnowledgeBase(
    text::Analyzer* analyzer) {
  auto kb = std::make_unique<KnowledgeBase>(analyzer);
  const char* kDbp = "http://dbpedia.org/resource/";

  MustAdd(*kb, "http://dbpedia.org/resource/Volleyball", "Volleyball", 0.95,
          {"volleyball", "beach volleyball"},
          {"volleyball net spike serve block court set match women teams "
           "indoor beach olympic tournament"});
  MustAdd(*kb, "http://dbpedia.org/resource/Nation", "Nation", 0.60,
          {"nation", "national"},
          {"nation country state people government national identity"});
  MustAdd(*kb, "http://dbpedia.org/resource/The_CW", "The CW", 0.70,
          {"the cw", "cw"},
          {"television network channel show series broadcast cw primetime"});
  MustAdd(*kb, "http://dbpedia.org/resource/Team", "Team", 0.55,
          {"team", "teams"},
          {"team players squad roster coach league season win lose"});
  MustAdd(*kb, (std::string(kDbp) + "Adidas").c_str(), "Adidas", 0.90,
          {"adidas"},
          {"adidas shoes sneakers brand sportswear apparel stripes running "
           "football boots"});
  MustAdd(*kb, (std::string(kDbp) + "Nike,_Inc.").c_str(), "Nike, Inc.", 0.85,
          {"nike"},
          {"nike shoes sneakers swoosh brand sportswear running jordan"});
  MustAdd(*kb, (std::string(kDbp) + "Coffee").c_str(), "Coffee", 0.90,
          {"coffee", "espresso", "latte"},
          {"coffee espresso latte barista cafe brew beans morning cup"});
  MustAdd(*kb, (std::string(kDbp) + "Pizza").c_str(), "Pizza", 0.92,
          {"pizza", "margherita"},
          {"pizza slice cheese pepperoni oven italian restaurant dough"});
  MustAdd(*kb, (std::string(kDbp) + "Concert").c_str(), "Concert", 0.80,
          {"concert", "gig", "live music"},
          {"concert stage band music tour tickets crowd festival live"});
  MustAdd(*kb, (std::string(kDbp) + "Marathon").c_str(), "Marathon", 0.85,
          {"marathon", "half marathon"},
          {"marathon race running miles finish line kilometers pace runners"});

  // Deliberately ambiguous surface forms exercise the disambiguator.
  MustAdd(*kb, (std::string(kDbp) + "Apple_Inc.").c_str(), "Apple Inc.", 0.65,
          {"apple"},
          {"apple iphone ipad mac ios store launch tim cook tech company"});
  MustAdd(*kb, (std::string(kDbp) + "Apple").c_str(), "Apple (fruit)", 0.35,
          {"apple", "apples"},
          {"apple fruit orchard pie juice eat sweet tree harvest cider"});
  MustAdd(*kb, (std::string(kDbp) + "Pitch_(music)").c_str(), "Pitch (music)",
          0.40, {"pitch"},
          {"pitch note tone music frequency sound melody"});
  MustAdd(*kb, (std::string(kDbp) + "Pitch_(sports_field)").c_str(),
          "Pitch (sports field)", 0.60, {"pitch"},
          {"pitch field grass football soccer stadium players match game"});
  MustAdd(*kb, (std::string(kDbp) + "Basketball").c_str(), "Basketball", 0.93,
          {"basketball", "hoops"},
          {"basketball court hoop dunk nba finals playoffs points guard"});
  MustAdd(*kb, (std::string(kDbp) + "Yoga").c_str(), "Yoga", 0.90,
          {"yoga", "vinyasa"},
          {"yoga mat pose studio meditation breathing stretch class namaste"});
  MustAdd(*kb, (std::string(kDbp) + "Cinema").c_str(), "Cinema", 0.82,
          {"cinema", "movie", "movies", "film"},
          {"cinema movie film screen premiere tickets director actor watch"});
  MustAdd(*kb, (std::string(kDbp) + "Sushi").c_str(), "Sushi", 0.90,
          {"sushi", "sashimi"},
          {"sushi rice fish salmon tuna roll japanese restaurant chopsticks"});

  return kb;
}

}  // namespace adrec::annotate
