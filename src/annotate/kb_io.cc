#include "annotate/kb_io.h"

#include <fstream>

#include "common/string_util.h"

namespace adrec::annotate {

Status WriteKnowledgeBase(const std::string& path, const KnowledgeBase& kb) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  for (uint32_t i = 0; i < kb.size(); ++i) {
    const Entity& e = kb.entity(TopicId(i));
    out << "E\t" << e.uri << '\t' << StringFormat("%.6f", e.prior) << '\t'
        << e.label << '\n';
    for (const std::string& s : e.surface_phrases) {
      out << "S\t" << e.uri << '\t' << s << '\n';
    }
    for (const std::string& c : e.context_texts) {
      out << "X\t" << e.uri << '\t' << c << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  return Status::OK();
}

Result<std::unique_ptr<KnowledgeBase>> ReadKnowledgeBase(
    const std::string& path, text::Analyzer* analyzer) {
  if (analyzer == nullptr) {
    return Status::InvalidArgument("analyzer must not be null");
  }
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  auto kb = std::make_unique<KnowledgeBase>(analyzer);
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto bad = [&](const std::string& why) {
      return Status::InvalidArgument(
          StringFormat("%s:%zu: %s", path.c_str(), line_no, why.c_str()));
    };
    const auto fields = SplitString(line, '\t', /*keep_empty=*/true);
    if (fields.size() < 3) return bad("record needs at least 3 fields");
    const std::string uri(fields[1]);
    // The payload is everything after the second tab.
    size_t pos = line.find('\t');
    pos = line.find('\t', pos + 1);
    if (fields[0] == "E") {
      if (fields.size() < 4) return bad("entity needs 4 fields");
      char* end = nullptr;
      const std::string prior_str(fields[2]);
      const double prior = std::strtod(prior_str.c_str(), &end);
      if (end == prior_str.c_str() || *end != '\0') {
        return bad("bad prior '" + prior_str + "'");
      }
      pos = line.find('\t', pos + 1);  // label starts after the third tab
      Entity e;
      e.uri = uri;
      e.prior = prior;
      e.label = line.substr(pos + 1);
      Result<TopicId> added = kb->AddEntity(std::move(e));
      if (!added.ok()) return bad(added.status().ToString());
    } else if (fields[0] == "S" || fields[0] == "X") {
      Result<TopicId> id = kb->FindByUri(uri);
      if (!id.ok()) return bad("reference to undeclared entity " + uri);
      const std::string payload = line.substr(pos + 1);
      const Status s = fields[0] == "S"
                           ? kb->AddSurfaceForm(id.value(), payload)
                           : kb->AddContextText(id.value(), payload);
      if (!s.ok()) return bad(s.ToString());
    } else {
      return bad("unknown record tag '" + std::string(fields[0]) + "'");
    }
  }
  return kb;
}

}  // namespace adrec::annotate
