#ifndef ADREC_ANNOTATE_KB_IO_H_
#define ADREC_ANNOTATE_KB_IO_H_

#include <memory>
#include <string>

#include "annotate/knowledge_base.h"
#include "common/status.h"

namespace adrec::annotate {

/// Knowledge-base persistence: a single tab-separated file with one
/// record per line, mirroring the in-memory registration calls:
///   E <uri> <prior> <label...>      (entity; label is the line tail)
///   S <uri> <surface phrase...>     (surface form of the last-declared
///                                    or any earlier entity)
///   X <uri> <context sentence...>   (context text)
/// Record order: an entity's E line must precede its S/X lines.

/// Writes `kb` to `path` in the format above.
Status WriteKnowledgeBase(const std::string& path, const KnowledgeBase& kb);

/// Loads a knowledge base from `path`, registering everything through
/// `analyzer` (which must outlive the returned KB).
Result<std::unique_ptr<KnowledgeBase>> ReadKnowledgeBase(
    const std::string& path, text::Analyzer* analyzer);

}  // namespace adrec::annotate

#endif  // ADREC_ANNOTATE_KB_IO_H_
