#ifndef ADREC_ANNOTATE_ANNOTATOR_H_
#define ADREC_ANNOTATE_ANNOTATOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "annotate/knowledge_base.h"
#include "common/id_types.h"
#include "text/sparse_vector.h"

namespace adrec::annotate {

/// One resolved annotation: the <URI, score> pair the paper's semantic
/// representation step attaches to every tweet.
struct Annotation {
  TopicId topic;
  std::string uri;
  /// Disambiguation confidence in [0,1]: a blend of the entity's
  /// commonness prior and the cosine similarity between the entity's
  /// context profile and the document.
  double score = 0.0;
  /// Token span of the mention in the analyzed document.
  size_t token_begin = 0;
  size_t token_length = 0;
};

/// Annotator configuration.
struct AnnotatorOptions {
  /// Weight of context similarity vs. prior in the final score:
  /// score = (1 - w) * prior + w * context_cosine.
  double context_weight = 0.6;
  /// Annotations scoring below this are dropped.
  double min_score = 0.05;
  /// When one surface span has multiple candidate senses, keep only the
  /// best-scoring sense (Spotlight behaviour). When false, all senses are
  /// emitted (useful for diagnostics).
  bool best_sense_only = true;
  /// Typo tolerance: tokens that match no surface form exactly are fuzzy-
  /// matched against single-token surface stems by character-trigram
  /// Jaccard similarity; matches at or above this threshold are treated
  /// as mentions with their scores discounted by the similarity.
  /// 0 disables fuzzy matching (the default: exact-match Spotlight
  /// behaviour). 0.5 is a reasonable tolerance for tweet typos.
  double fuzzy_min_similarity = 0.0;
};

/// The hand-built DBpedia-Spotlight stand-in. Pipeline per document:
///  1. lexical analysis (tokenize/stop/stem) via the KB's analyzer;
///  2. mention detection: leftmost-longest dictionary match against the
///     KB's surface-form trie;
///  3. disambiguation: score every candidate sense by prior and context
///     cosine; keep the best sense per mention;
///  4. aggregation: one Annotation per distinct entity (max score).
class SpotlightAnnotator {
 public:
  /// The annotator borrows `kb` (and through it the analyzer); both must
  /// outlive the annotator.
  explicit SpotlightAnnotator(const KnowledgeBase* kb,
                              AnnotatorOptions options = {});

  /// Annotates free text. Mutates the analyzer's vocabulary (interns new
  /// document terms), which is the intended single-writer streaming usage.
  std::vector<Annotation> Annotate(std::string_view text) const;

  /// Annotates a pre-analyzed term sequence.
  std::vector<Annotation> AnnotateTerms(
      const std::vector<text::TermId>& terms) const;

  const AnnotatorOptions& options() const { return options_; }

 private:
  const KnowledgeBase* kb_;  // not owned
  AnnotatorOptions options_;
};

}  // namespace adrec::annotate

#endif  // ADREC_ANNOTATE_ANNOTATOR_H_
