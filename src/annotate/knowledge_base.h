#ifndef ADREC_ANNOTATE_KNOWLEDGE_BASE_H_
#define ADREC_ANNOTATE_KNOWLEDGE_BASE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/id_types.h"
#include "common/status.h"
#include "text/analyzer.h"
#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace adrec::annotate {

/// One knowledge-base entity: the offline stand-in for a DBpedia resource.
/// Annotation maps tweet text onto entities; an entity's id (TopicId) is
/// what flows through the rest of the system as a "topic URI".
struct Entity {
  std::string uri;    ///< e.g. "http://dbpedia.org/resource/Volleyball"
  std::string label;  ///< human-readable label, e.g. "Volleyball"
  /// Commonness prior in [0,1]: how often this entity is the intended sense
  /// of its surface forms (DBpedia Spotlight's "support"-derived prior).
  double prior = 1.0;
  /// Context profile: term-id weights describing words that co-occur with
  /// this sense. Drives disambiguation of ambiguous surface forms.
  text::SparseVector context;
  /// Raw surface phrases registered for this entity (kept for workload
  /// generation: synthetic tweets must *mention* entities in plain text).
  std::vector<std::string> surface_phrases;
  /// Raw context sentences registered for this entity (same purpose).
  std::vector<std::string> context_texts;
};

/// The offline knowledge base: entities, a URI index, and a surface-form
/// trie over analyzed token sequences. Surface forms are registered through
/// the same Analyzer used on tweets, so "coaches" and "coach" meet at one
/// trie path.
class KnowledgeBase {
 public:
  /// The KB analyses surface forms with `analyzer`, which it does not own;
  /// the analyzer must outlive the KB and be the same instance used to
  /// analyse documents at annotation time.
  explicit KnowledgeBase(text::Analyzer* analyzer);

  KnowledgeBase(const KnowledgeBase&) = delete;
  KnowledgeBase& operator=(const KnowledgeBase&) = delete;

  /// Adds an entity; fails with AlreadyExists on duplicate URI.
  Result<TopicId> AddEntity(Entity entity);

  /// Registers `phrase` (free text; will be analyzed) as a surface form of
  /// `topic`. Multiple entities may share a surface form (ambiguity).
  Status AddSurfaceForm(TopicId topic, std::string_view phrase);

  /// Adds `text`'s analyzed terms to the entity's context profile with the
  /// given weight (builds disambiguation context from example sentences).
  Status AddContextText(TopicId topic, std::string_view text,
                        double weight = 1.0);

  /// Entity accessors.
  const Entity& entity(TopicId id) const;
  Result<TopicId> FindByUri(std::string_view uri) const;
  size_t size() const { return entities_.size(); }

  /// Trie node handle; 0 is the root. kNoNode means "no such child".
  using NodeId = uint32_t;
  static constexpr NodeId kNoNode = UINT32_MAX;

  /// Walks one trie edge labelled with `term`; kNoNode if absent.
  NodeId Step(NodeId node, text::TermId term) const;

  /// Entities whose surface form ends exactly at `node` (empty for none).
  const std::vector<TopicId>& CandidatesAt(NodeId node) const;

  /// Fuzzy lookup for misspelled single-token mentions: entities whose
  /// single-token surface stems have character-trigram Jaccard similarity
  /// >= `min_similarity` with `term`. Returns (topic, similarity) pairs,
  /// best first. Tweet text is noisy; "volleybal" should still hit
  /// Volleyball.
  struct FuzzyMatch {
    TopicId topic;
    double similarity;
  };
  std::vector<FuzzyMatch> FuzzyCandidates(std::string_view term,
                                          double min_similarity) const;

  text::Analyzer* analyzer() const { return analyzer_; }

 private:
  struct TrieNode {
    std::unordered_map<text::TermId, NodeId> children;
    std::vector<TopicId> candidates;
  };

  text::Analyzer* analyzer_;  // not owned
  std::vector<Entity> entities_;
  std::unordered_map<std::string, TopicId> by_uri_;
  std::vector<TrieNode> trie_;  // trie_[0] is the root
  std::vector<TopicId> empty_candidates_;
  // Fuzzy-match support: single-token surface stems and their candidate
  // entities, plus a character-trigram posting index over those stems.
  std::unordered_map<std::string, std::vector<TopicId>> single_token_;
  std::unordered_map<std::string, std::vector<std::string>> trigrams_;
};

/// Builds the demo knowledge base used by tests, examples and the pinned
/// case-study experiment: sports/brand/food/tech entities including
/// deliberately ambiguous surface forms ("pitch", "apple").
/// Returned KB references `analyzer`.
std::unique_ptr<KnowledgeBase> BuildDemoKnowledgeBase(text::Analyzer* analyzer);

}  // namespace adrec::annotate

#endif  // ADREC_ANNOTATE_KNOWLEDGE_BASE_H_
