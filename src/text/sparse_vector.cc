#include "text/sparse_vector.h"

#include <algorithm>
#include <cmath>

namespace adrec::text {

SparseVector SparseVector::FromUnsorted(std::vector<SparseEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.id < b.id;
            });
  SparseVector v;
  for (const SparseEntry& e : entries) {
    if (!v.entries_.empty() && v.entries_.back().id == e.id) {
      v.entries_.back().weight += e.weight;
    } else {
      v.entries_.push_back(e);
    }
  }
  return v;
}

void SparseVector::Add(uint32_t id, double weight) {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), id,
                             [](const SparseEntry& e, uint32_t target) {
                               return e.id < target;
                             });
  if (it != entries_.end() && it->id == id) {
    it->weight += weight;
  } else {
    entries_.insert(it, SparseEntry{id, weight});
  }
}

double SparseVector::Get(uint32_t id) const {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), id,
                             [](const SparseEntry& e, uint32_t target) {
                               return e.id < target;
                             });
  return (it != entries_.end() && it->id == id) ? it->weight : 0.0;
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0, j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    const uint32_t a = entries_[i].id;
    const uint32_t b = other.entries_[j].id;
    if (a == b) {
      sum += entries_[i].weight * other.entries_[j].weight;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  return sum;
}

double SparseVector::Norm() const {
  double sumsq = 0.0;
  for (const SparseEntry& e : entries_) sumsq += e.weight * e.weight;
  return std::sqrt(sumsq);
}

double SparseVector::Cosine(const SparseVector& other) const {
  const double na = Norm();
  const double nb = other.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

double SparseVector::JaccardSupport(const SparseVector& other) const {
  size_t i = 0, j = 0, both = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    const uint32_t a = entries_[i].id;
    const uint32_t b = other.entries_[j].id;
    if (a == b) {
      ++both;
      ++i;
      ++j;
    } else if (a < b) {
      ++i;
    } else {
      ++j;
    }
  }
  const size_t either = entries_.size() + other.entries_.size() - both;
  return either == 0 ? 0.0 : static_cast<double>(both) / either;
}

void SparseVector::Scale(double factor) {
  for (SparseEntry& e : entries_) e.weight *= factor;
}

void SparseVector::AddScaled(const SparseVector& other, double factor) {
  std::vector<SparseEntry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].id < other.entries_[j].id)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               other.entries_[j].id < entries_[i].id) {
      merged.push_back(
          SparseEntry{other.entries_[j].id, other.entries_[j].weight * factor});
      ++j;
    } else {
      merged.push_back(SparseEntry{
          entries_[i].id,
          entries_[i].weight + other.entries_[j].weight * factor});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

void SparseVector::NormalizeL2() {
  const double n = Norm();
  if (n > 0.0) Scale(1.0 / n);
}

void SparseVector::Prune(double epsilon) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [epsilon](const SparseEntry& e) {
                                  return std::abs(e.weight) < epsilon;
                                }),
                 entries_.end());
}

void SparseVector::TruncateTopK(size_t k) {
  if (entries_.size() <= k) return;
  std::vector<SparseEntry> sorted = entries_;
  std::sort(sorted.begin(), sorted.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.weight > b.weight;
            });
  sorted.resize(k);
  std::sort(sorted.begin(), sorted.end(),
            [](const SparseEntry& a, const SparseEntry& b) {
              return a.id < b.id;
            });
  entries_ = std::move(sorted);
}

}  // namespace adrec::text
