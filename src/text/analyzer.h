#ifndef ADREC_TEXT_ANALYZER_H_
#define ADREC_TEXT_ANALYZER_H_

#include <string_view>
#include <vector>

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace adrec::text {

/// Analyzer configuration.
struct AnalyzerOptions {
  TokenizerOptions tokenizer;
  bool remove_stopwords = true;
  bool stem = true;
};

/// The full lexical pipeline: tokenize -> stopword filter -> Porter stem ->
/// intern. Owns the vocabulary so repeated analyses share term ids.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {});

  /// Analyzes `input` into interned term ids (with duplicates, in order).
  std::vector<TermId> Analyze(std::string_view input);

  /// Like Analyze but read-only: unseen terms map to kInvalidTerm and are
  /// dropped. Use for query-time analysis against a frozen vocabulary.
  std::vector<TermId> AnalyzeReadOnly(std::string_view input) const;

  /// Analyzes and returns the processed surface strings (for debugging and
  /// the annotator, which matches on stems).
  std::vector<std::string> AnalyzeToStrings(std::string_view input) const;

  Vocabulary& vocabulary() { return vocab_; }
  const Vocabulary& vocabulary() const { return vocab_; }

 private:
  AnalyzerOptions options_;
  Tokenizer tokenizer_;
  StopwordSet stopwords_;
  Vocabulary vocab_;
};

}  // namespace adrec::text

#endif  // ADREC_TEXT_ANALYZER_H_
