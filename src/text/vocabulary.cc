#include "text/vocabulary.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::text {

TermId Vocabulary::Intern(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTerm : it->second;
}

const std::string& Vocabulary::TermOf(TermId id) const {
  ADREC_CHECK(id < terms_.size());
  return terms_[id];
}

Result<std::string> Vocabulary::TryTermOf(TermId id) const {
  if (id >= terms_.size()) {
    return Status::OutOfRange(
        StringFormat("term id %u >= vocabulary size %zu", id, terms_.size()));
  }
  return terms_[id];
}

}  // namespace adrec::text
