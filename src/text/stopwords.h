#ifndef ADREC_TEXT_STOPWORDS_H_
#define ADREC_TEXT_STOPWORDS_H_

#include <string>
#include <string_view>
#include <unordered_set>

namespace adrec::text {

/// A set of words to exclude from semantic processing. Starts from a
/// built-in English list (articles, pronouns, auxiliaries, common
/// tweet-noise like "rt", "amp") and can be extended per corpus.
class StopwordSet {
 public:
  /// Constructs the built-in English stopword set.
  static StopwordSet English();

  /// Constructs an empty set.
  StopwordSet() = default;

  /// Adds a word (expected lowercase).
  void Add(std::string_view word);

  /// True iff `word` (lowercase) is a stopword.
  bool Contains(std::string_view word) const;

  size_t size() const { return words_.size(); }

 private:
  std::unordered_set<std::string> words_;
};

}  // namespace adrec::text

#endif  // ADREC_TEXT_STOPWORDS_H_
