#include "text/tokenizer.h"

#include <cctype>

#include "common/string_util.h"

namespace adrec::text {

namespace {

bool IsWordChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c >= 0x80;  // pass UTF-8 bytes through
}

bool IsDigitsOnly(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

}  // namespace

Tokenizer::Tokenizer(TokenizerOptions options) : options_(options) {}

std::vector<Token> Tokenizer::Tokenize(std::string_view input) const {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    // URLs: consume to the next whitespace.
    if ((c == 'h' || c == 'H') &&
        (StartsWith(input.substr(i), "http://") ||
         StartsWith(input.substr(i), "https://") ||
         StartsWith(input.substr(i), "HTTP://") ||
         StartsWith(input.substr(i), "HTTPS://"))) {
      size_t end = i;
      while (end < n && !std::isspace(static_cast<unsigned char>(input[end]))) {
        ++end;
      }
      if (options_.keep_urls) {
        out.push_back({std::string(input.substr(i, end - i)), i,
                       TokenKind::kUrl});
      }
      i = end;
      continue;
    }
    TokenKind kind = TokenKind::kWord;
    size_t start = i;
    if (c == '#' || c == '@') {
      kind = (c == '#') ? TokenKind::kHashtag : TokenKind::kMention;
      ++i;
      start = i;
    }
    if (i < n && IsWordChar(static_cast<unsigned char>(input[i]))) {
      size_t end = i;
      while (end < n) {
        const unsigned char wc = static_cast<unsigned char>(input[end]);
        if (IsWordChar(wc)) {
          ++end;
        } else if (wc == '\'' && end + 1 < n &&
                   IsWordChar(static_cast<unsigned char>(input[end + 1])) &&
                   kind == TokenKind::kWord) {
          ++end;  // keep internal apostrophe: "nation's"
        } else {
          break;
        }
      }
      std::string_view raw = input.substr(i, end - i);
      if (kind == TokenKind::kWord && IsDigitsOnly(raw)) {
        kind = TokenKind::kNumber;
      }
      const bool keep =
          (kind == TokenKind::kWord) ||
          (kind == TokenKind::kHashtag && options_.keep_hashtags) ||
          (kind == TokenKind::kMention && options_.keep_mentions) ||
          (kind == TokenKind::kNumber && options_.keep_numbers);
      if (keep && raw.size() >= options_.min_token_length) {
        Token tok;
        tok.text = options_.lowercase ? ToLowerAscii(raw) : std::string(raw);
        tok.offset = start;
        tok.kind = kind;
        out.push_back(std::move(tok));
      }
      i = end;
    } else {
      ++i;
    }
  }
  return out;
}

}  // namespace adrec::text
