#include "text/tfidf.h"

#include <algorithm>
#include <cmath>

namespace adrec::text {

void TfIdfModel::AddDocument(const std::vector<TermId>& terms) {
  std::vector<TermId> distinct = terms;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  for (TermId t : distinct) {
    if (t >= df_.size()) df_.resize(t + 1, 0);
    ++df_[t];
  }
  ++num_documents_;
}

uint32_t TfIdfModel::DocumentFrequency(TermId term) const {
  return term < df_.size() ? df_[term] : 0;
}

double TfIdfModel::Idf(TermId term) const {
  const double n = static_cast<double>(num_documents_);
  const double df = static_cast<double>(DocumentFrequency(term));
  return std::log((1.0 + n) / (1.0 + df)) + 1.0;
}

SparseVector TfIdfModel::TermFrequency(const std::vector<TermId>& terms) {
  SparseVector v;
  for (TermId t : terms) v.Add(t, 1.0);
  return v;
}

SparseVector TfIdfModel::Vectorize(const std::vector<TermId>& terms) const {
  SparseVector v = TermFrequency(terms);
  std::vector<SparseEntry> weighted;
  weighted.reserve(v.size());
  for (const SparseEntry& e : v.entries()) {
    weighted.push_back(SparseEntry{e.id, e.weight * Idf(e.id)});
  }
  SparseVector out = SparseVector::FromUnsorted(std::move(weighted));
  out.NormalizeL2();
  return out;
}

}  // namespace adrec::text
