#include "text/analyzer.h"

namespace adrec::text {

Analyzer::Analyzer(AnalyzerOptions options)
    : options_(options),
      tokenizer_(options.tokenizer),
      stopwords_(options.remove_stopwords ? StopwordSet::English()
                                          : StopwordSet()) {}

std::vector<std::string> Analyzer::AnalyzeToStrings(
    std::string_view input) const {
  std::vector<std::string> out;
  for (const Token& tok : tokenizer_.Tokenize(input)) {
    if (options_.remove_stopwords && stopwords_.Contains(tok.text)) continue;
    std::string term = tok.text;
    // Strip possessive suffixes before stemming ("nation's" -> "nation").
    if (term.size() > 2 && term.ends_with("'s")) {
      term.resize(term.size() - 2);
    } else if (term.size() > 1 && term.back() == '\'') {
      term.pop_back();
    }
    out.push_back(options_.stem ? PorterStem(term) : term);
  }
  return out;
}

std::vector<TermId> Analyzer::Analyze(std::string_view input) {
  std::vector<TermId> out;
  for (const std::string& term : AnalyzeToStrings(input)) {
    out.push_back(vocab_.Intern(term));
  }
  return out;
}

std::vector<TermId> Analyzer::AnalyzeReadOnly(std::string_view input) const {
  std::vector<TermId> out;
  for (const std::string& term : AnalyzeToStrings(input)) {
    const TermId id = vocab_.Lookup(term);
    if (id != kInvalidTerm) out.push_back(id);
  }
  return out;
}

}  // namespace adrec::text
