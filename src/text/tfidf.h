#ifndef ADREC_TEXT_TFIDF_H_
#define ADREC_TEXT_TFIDF_H_

#include <cstdint>
#include <vector>

#include "text/sparse_vector.h"
#include "text/vocabulary.h"

namespace adrec::text {

/// TF-IDF weighting model over term-id documents. Document frequencies are
/// maintained incrementally (AddDocument) so the model works on streams;
/// idf(t) = ln((1 + N) / (1 + df(t))) + 1 (smoothed, always positive).
class TfIdfModel {
 public:
  TfIdfModel() = default;

  /// Folds one document's distinct terms into the document-frequency table.
  void AddDocument(const std::vector<TermId>& terms);

  /// Number of documents folded in so far.
  size_t num_documents() const { return num_documents_; }

  /// Document frequency of a term (0 for unseen).
  uint32_t DocumentFrequency(TermId term) const;

  /// Smoothed inverse document frequency of a term.
  double Idf(TermId term) const;

  /// Raw term-frequency vector of a document.
  static SparseVector TermFrequency(const std::vector<TermId>& terms);

  /// TF-IDF vector of a document, L2-normalised.
  SparseVector Vectorize(const std::vector<TermId>& terms) const;

 private:
  std::vector<uint32_t> df_;  // indexed by TermId
  size_t num_documents_ = 0;
};

}  // namespace adrec::text

#endif  // ADREC_TEXT_TFIDF_H_
