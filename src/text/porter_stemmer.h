#ifndef ADREC_TEXT_PORTER_STEMMER_H_
#define ADREC_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace adrec::text {

/// The classic Porter (1980) suffix-stripping stemmer, steps 1a-5b.
/// Input must be lowercase ASCII; words shorter than 3 characters are
/// returned unchanged (per the original algorithm's guard).
///
/// Examples: "caresses"->"caress", "ponies"->"poni",
/// "relational"->"relat", "adjustable"->"adjust".
std::string PorterStem(std::string_view word);

}  // namespace adrec::text

#endif  // ADREC_TEXT_PORTER_STEMMER_H_
