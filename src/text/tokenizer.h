#ifndef ADREC_TEXT_TOKENIZER_H_
#define ADREC_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace adrec::text {

/// What kind of surface form a token was.
enum class TokenKind {
  kWord,     // plain word
  kHashtag,  // "#volleyball" (emitted without '#')
  kMention,  // "@coach" (emitted without '@')
  kNumber,   // digits only
  kUrl,      // http(s)://... (emitted verbatim)
};

/// One token plus provenance into the original text.
struct Token {
  std::string text;   // normalised form (lowercased unless configured off)
  size_t offset = 0;  // byte offset of the first character in the input
  TokenKind kind = TokenKind::kWord;
};

/// Tokenizer configuration.
struct TokenizerOptions {
  bool lowercase = true;
  bool keep_hashtags = true;   // emit hashtag bodies as tokens
  bool keep_mentions = false;  // @mentions are usually noise for topics
  bool keep_numbers = false;
  bool keep_urls = false;
  size_t min_token_length = 2;
};

/// A tweet-aware word tokenizer. Understands #hashtags, @mentions and URLs,
/// splits on everything non-alphanumeric otherwise, and keeps internal
/// apostrophes ("nation's" -> "nation's"). ASCII-oriented: multi-byte UTF-8
/// sequences are passed through inside words.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {});

  /// Tokenizes `input` into tokens per the configured options.
  std::vector<Token> Tokenize(std::string_view input) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace adrec::text

#endif  // ADREC_TEXT_TOKENIZER_H_
