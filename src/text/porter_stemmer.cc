#include "text/porter_stemmer.h"

namespace adrec::text {

namespace {

// Working buffer view over the word being stemmed; `end` is the logical
// length (suffixes are dropped by shrinking it).
struct Stem {
  std::string buf;
  size_t end;  // one past the last valid char

  explicit Stem(std::string_view w) : buf(w), end(w.size()) {}

  char at(size_t i) const { return buf[i]; }
  size_t size() const { return end; }

  bool IsConsonant(size_t i) const {
    switch (buf[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure m of the stem buf[0..k): the number of VC sequences in the
  // [C](VC)^m[V] decomposition.
  int Measure(size_t k) const {
    int m = 0;
    size_t i = 0;
    // Skip initial consonants.
    while (i < k && IsConsonant(i)) ++i;
    for (;;) {
      // Skip vowels.
      while (i < k && !IsConsonant(i)) ++i;
      if (i >= k) return m;
      ++m;
      // Skip consonants.
      while (i < k && IsConsonant(i)) ++i;
      if (i >= k) return m;
    }
  }

  // True iff buf[0..k) contains a vowel.
  bool HasVowel(size_t k) const {
    for (size_t i = 0; i < k; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // True iff the word ends (at `end`) with a double consonant.
  bool EndsDoubleConsonant() const {
    if (end < 2) return false;
    return buf[end - 1] == buf[end - 2] && IsConsonant(end - 1);
  }

  // True iff buf[0..k) ends consonant-vowel-consonant where the final
  // consonant is not w, x or y ("*o" condition).
  bool EndsCvc(size_t k) const {
    if (k < 3) return false;
    if (!IsConsonant(k - 1) || IsConsonant(k - 2) || !IsConsonant(k - 3)) {
      return false;
    }
    const char c = buf[k - 1];
    return c != 'w' && c != 'x' && c != 'y';
  }

  bool EndsWith(std::string_view suffix) const {
    if (suffix.size() > end) return false;
    return std::string_view(buf).substr(end - suffix.size(),
                                        suffix.size()) == suffix;
  }

  // Replaces the current suffix `suffix_len` chars long with `repl`.
  void SetSuffix(size_t suffix_len, std::string_view repl) {
    buf.replace(end - suffix_len, buf.size() - (end - suffix_len), repl);
    end = end - suffix_len + repl.size();
  }

  // If the word ends with `suffix` and the stem before it has measure > m_gt,
  // replace the suffix with `repl` and return true.
  bool ReplaceIfMeasure(std::string_view suffix, std::string_view repl,
                        int m_gt) {
    if (!EndsWith(suffix)) return false;
    const size_t stem_len = end - suffix.size();
    if (Measure(stem_len) > m_gt) {
      SetSuffix(suffix.size(), repl);
      return true;
    }
    return true;  // matched the suffix; stop trying alternatives
  }

  std::string Str() const { return buf.substr(0, end); }
};

void Step1a(Stem& s) {
  if (s.EndsWith("sses")) {
    s.SetSuffix(4, "ss");
  } else if (s.EndsWith("ies")) {
    s.SetSuffix(3, "i");
  } else if (s.EndsWith("ss")) {
    // no-op
  } else if (s.EndsWith("s")) {
    s.SetSuffix(1, "");
  }
}

// Shared tail of step 1b: after removing "ed"/"ing".
void Step1bTail(Stem& s) {
  if (s.EndsWith("at") || s.EndsWith("bl") || s.EndsWith("iz")) {
    s.SetSuffix(0, "e");
  } else if (s.EndsDoubleConsonant()) {
    const char c = s.at(s.size() - 1);
    if (c != 'l' && c != 's' && c != 'z') s.SetSuffix(1, "");
  } else if (s.Measure(s.size()) == 1 && s.EndsCvc(s.size())) {
    s.SetSuffix(0, "e");
  }
}

void Step1b(Stem& s) {
  if (s.EndsWith("eed")) {
    if (s.Measure(s.size() - 3) > 0) s.SetSuffix(3, "ee");
  } else if (s.EndsWith("ed")) {
    if (s.HasVowel(s.size() - 2)) {
      s.SetSuffix(2, "");
      Step1bTail(s);
    }
  } else if (s.EndsWith("ing")) {
    if (s.HasVowel(s.size() - 3)) {
      s.SetSuffix(3, "");
      Step1bTail(s);
    }
  }
}

void Step1c(Stem& s) {
  if (s.EndsWith("y") && s.HasVowel(s.size() - 1)) {
    s.SetSuffix(1, "i");
  }
}

void Step2(Stem& s) {
  static constexpr struct {
    const char* suffix;
    const char* repl;
  } kRules[] = {
      {"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
      {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
      {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
      {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
      {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
      {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
      {"iviti", "ive"},   {"biliti", "ble"},
  };
  for (const auto& rule : kRules) {
    if (s.EndsWith(rule.suffix)) {
      s.ReplaceIfMeasure(rule.suffix, rule.repl, 0);
      return;
    }
  }
}

void Step3(Stem& s) {
  static constexpr struct {
    const char* suffix;
    const char* repl;
  } kRules[] = {
      {"icate", "ic"}, {"ative", ""},  {"alize", "al"}, {"iciti", "ic"},
      {"ical", "ic"},  {"ful", ""},    {"ness", ""},
  };
  for (const auto& rule : kRules) {
    if (s.EndsWith(rule.suffix)) {
      s.ReplaceIfMeasure(rule.suffix, rule.repl, 0);
      return;
    }
  }
}

void Step4(Stem& s) {
  static constexpr const char* kSuffixes[] = {
      "al",   "ance", "ence", "er",   "ic",   "able", "ible", "ant",
      "ement", "ment", "ent",  "ou",   "ism",  "ate",  "iti",  "ous",
      "ive",  "ize",
  };
  for (const char* suffix : kSuffixes) {
    if (s.EndsWith(suffix)) {
      const size_t stem_len = s.size() - std::string_view(suffix).size();
      if (s.Measure(stem_len) > 1) s.SetSuffix(std::string_view(suffix).size(), "");
      return;
    }
  }
  // "(m>1 and (*S or *T)) ION ->": the special ion rule.
  if (s.EndsWith("ion")) {
    const size_t stem_len = s.size() - 3;
    if (stem_len > 0 &&
        (s.at(stem_len - 1) == 's' || s.at(stem_len - 1) == 't') &&
        s.Measure(stem_len) > 1) {
      s.SetSuffix(3, "");
    }
  }
}

void Step5a(Stem& s) {
  if (s.EndsWith("e")) {
    const size_t stem_len = s.size() - 1;
    const int m = s.Measure(stem_len);
    if (m > 1 || (m == 1 && !s.EndsCvc(stem_len))) {
      s.SetSuffix(1, "");
    }
  }
}

void Step5b(Stem& s) {
  if (s.size() >= 2 && s.at(s.size() - 1) == 'l' &&
      s.EndsDoubleConsonant() && s.Measure(s.size()) > 1) {
    s.SetSuffix(1, "");
  }
}

}  // namespace

std::string PorterStem(std::string_view word) {
  if (word.size() <= 2) return std::string(word);
  Stem s(word);
  Step1a(s);
  Step1b(s);
  Step1c(s);
  Step2(s);
  Step3(s);
  Step4(s);
  Step5a(s);
  Step5b(s);
  return s.Str();
}

}  // namespace adrec::text
