#ifndef ADREC_TEXT_SPARSE_VECTOR_H_
#define ADREC_TEXT_SPARSE_VECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adrec::text {

/// One (dimension, weight) entry of a sparse vector.
struct SparseEntry {
  uint32_t id;
  double weight;

  friend bool operator==(const SparseEntry& a, const SparseEntry& b) {
    return a.id == b.id && a.weight == b.weight;
  }
};

/// A sparse vector stored as id-sorted (id, weight) pairs. The canonical
/// representation of documents, ad copies and user-interest profiles.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds from unsorted entries; duplicate ids are summed.
  static SparseVector FromUnsorted(std::vector<SparseEntry> entries);

  /// Adds `weight` to dimension `id` (keeps sort order; O(n) worst case,
  /// amortised fine for our small per-document vectors).
  void Add(uint32_t id, double weight);

  /// Weight of dimension `id` (0.0 when absent).
  double Get(uint32_t id) const;

  /// Dot product with another sparse vector (merge join, O(n+m)).
  double Dot(const SparseVector& other) const;

  /// Euclidean norm.
  double Norm() const;

  /// Cosine similarity in [−1, 1]; 0.0 when either vector is empty/zero.
  double Cosine(const SparseVector& other) const;

  /// Jaccard similarity of the support sets (dimension overlap).
  double JaccardSupport(const SparseVector& other) const;

  /// Scales all weights in place.
  void Scale(double factor);

  /// this += factor * other (used by decayed profile updates).
  void AddScaled(const SparseVector& other, double factor);

  /// Normalises to unit Euclidean norm (no-op on the zero vector).
  void NormalizeL2();

  /// Drops entries with |weight| < epsilon (profile compaction).
  void Prune(double epsilon);

  /// Keeps only the `k` highest-weight entries.
  void TruncateTopK(size_t k);

  const std::vector<SparseEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<SparseEntry> entries_;  // sorted by id, unique ids
};

}  // namespace adrec::text

#endif  // ADREC_TEXT_SPARSE_VECTOR_H_
