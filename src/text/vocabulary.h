#ifndef ADREC_TEXT_VOCABULARY_H_
#define ADREC_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace adrec::text {

/// Interned term id (index into a Vocabulary).
using TermId = uint32_t;
constexpr TermId kInvalidTerm = UINT32_MAX;

/// Bidirectional string <-> dense-id interning table. Used for word terms
/// and, via a separate instance, for knowledge-base URIs, so the rest of
/// the system works with dense integers.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the id of `term`, interning it if new.
  TermId Intern(std::string_view term);

  /// Returns the id of `term` or kInvalidTerm if unseen.
  TermId Lookup(std::string_view term) const;

  /// Returns the term for an id; id must be < size().
  const std::string& TermOf(TermId id) const;

  /// Returns the term for an id, or an error if out of range.
  Result<std::string> TryTermOf(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return terms_.size(); }

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace adrec::text

#endif  // ADREC_TEXT_VOCABULARY_H_
