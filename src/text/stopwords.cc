#include "text/stopwords.h"

namespace adrec::text {

namespace {

// Compact English stopword list. Kept sorted for readability; membership is
// via hash set so order is irrelevant.
constexpr const char* kEnglishStopwords[] = {
    "a",       "about",  "above",  "after",   "again",   "against", "all",
    "am",      "an",     "and",    "any",     "are",     "aren't",  "as",
    "at",      "be",     "because", "been",   "before",  "being",   "below",
    "between", "both",   "but",    "by",      "can",     "can't",   "could",
    "couldn't", "did",   "didn't", "do",      "does",    "doesn't", "doing",
    "don't",   "down",   "during", "each",    "few",     "for",     "from",
    "further", "had",    "hadn't", "has",     "hasn't",  "have",    "haven't",
    "having",  "he",     "he'd",   "he'll",   "he's",    "her",     "here",
    "here's",  "hers",   "herself", "him",    "himself", "his",     "how",
    "how's",   "i",      "i'd",    "i'll",    "i'm",     "i've",    "if",
    "in",      "into",   "is",     "isn't",   "it",      "it's",    "its",
    "itself",  "let's",  "me",     "more",    "most",    "mustn't", "my",
    "myself",  "no",     "nor",    "not",     "of",      "off",     "on",
    "once",    "only",   "or",     "other",   "ought",   "our",     "ours",
    "ourselves", "out",  "over",   "own",     "same",    "shan't",  "she",
    "she'd",   "she'll", "she's",  "should",  "shouldn't", "so",    "some",
    "such",    "than",   "that",   "that's",  "the",     "their",   "theirs",
    "them",    "themselves", "then", "there", "there's", "these",   "they",
    "they'd",  "they'll", "they're", "they've", "this",  "those",   "through",
    "to",      "too",    "under",  "until",   "up",      "very",    "was",
    "wasn't",  "we",     "we'd",   "we'll",   "we're",   "we've",   "were",
    "weren't", "what",   "what's", "when",    "when's",  "where",   "where's",
    "which",   "while",  "who",    "who's",   "whom",    "why",     "why's",
    "with",    "won't",  "would",  "wouldn't", "you",    "you'd",   "you'll",
    "you're",  "you've", "your",   "yours",   "yourself", "yourselves",
    // Tweet noise.
    "rt", "amp", "via", "u", "ur", "im", "dont", "didnt", "isnt",
    // Common verbs/adverbs with no topical value.
    "will", "just", "get", "got", "go", "going", "gonna", "one", "two",
    "also", "like", "new", "now", "today", "tomorrow", "tonight", "day",
    "here's", "heres", "how", "our",
};

}  // namespace

StopwordSet StopwordSet::English() {
  StopwordSet set;
  for (const char* word : kEnglishStopwords) set.Add(word);
  return set;
}

void StopwordSet::Add(std::string_view word) { words_.emplace(word); }

bool StopwordSet::Contains(std::string_view word) const {
  return words_.find(std::string(word)) != words_.end();
}

}  // namespace adrec::text
