#include "wal/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/fs_util.h"
#include "common/logging.h"
#include "common/string_util.h"

namespace adrec::wal {

namespace {

constexpr std::string_view kSegmentPrefix = "wal-";
constexpr std::string_view kSegmentSuffix = ".log";
constexpr std::string_view kCompactedSuffix = ".clog";

std::string SegmentName(uint64_t first_seqno) {
  return SegmentFileName(first_seqno, /*compacted=*/false);
}

/// Parses `wal-<digits>.log` / `wal-<digits>.clog`; returns 0 for
/// non-segment names, and reports compactedness through `compacted`.
uint64_t SegmentSeqno(std::string_view name, bool* compacted = nullptr) {
  if (!StartsWith(name, kSegmentPrefix)) return 0;
  bool is_compacted = false;
  std::string_view suffix = kSegmentSuffix;
  if (EndsWith(name, kCompactedSuffix)) {
    is_compacted = true;
    suffix = kCompactedSuffix;
  } else if (!EndsWith(name, kSegmentSuffix)) {
    return 0;
  }
  const std::string_view digits = name.substr(
      kSegmentPrefix.size(),
      name.size() - kSegmentPrefix.size() - suffix.size());
  if (digits.empty()) return 0;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  if (compacted != nullptr) *compacted = is_compacted;
  return v;
}

}  // namespace

std::string SegmentFileName(uint64_t first_seqno, bool compacted) {
  return StringFormat(compacted ? "wal-%020llu.clog" : "wal-%020llu.log",
                      static_cast<unsigned long long>(first_seqno));
}

std::vector<SegmentSummary> ListSegments(const std::string& dir) {
  std::vector<SegmentSummary> out;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    bool compacted = false;
    const uint64_t seqno = SegmentSeqno(name, &compacted);
    if (seqno == 0) continue;
    SegmentSummary seg;
    seg.path = entry.path().string();
    seg.first_seqno = seqno;
    seg.compacted = compacted;
    std::error_code size_ec;
    seg.bytes = static_cast<uint64_t>(entry.file_size(size_ec));
    out.push_back(std::move(seg));
  }
  std::sort(out.begin(), out.end(),
            [](const SegmentSummary& a, const SegmentSummary& b) {
              if (a.first_seqno != b.first_seqno) {
                return a.first_seqno < b.first_seqno;
              }
              // wal-X.log + wal-X.clog pair: compacted sorts first so the
              // dedup below keeps it (the later, durable rewrite).
              return a.compacted > b.compacted;
            });
  out.erase(std::unique(out.begin(), out.end(),
                        [](const SegmentSummary& a, const SegmentSummary& b) {
                          return a.first_seqno == b.first_seqno;
                        }),
            out.end());
  return out;
}

namespace {

Status WriteFully(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(
          StringFormat("wal write: %s", std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Result<SyncPolicy> ParseSyncPolicy(std::string_view name) {
  if (name == "none") return SyncPolicy::kNone;
  if (name == "interval") return SyncPolicy::kInterval;
  if (name == "group") return SyncPolicy::kGroup;
  return Status::InvalidArgument("unknown wal sync policy '" +
                                 std::string(name) +
                                 "' (want none|interval|group)");
}

std::string_view SyncPolicyName(SyncPolicy policy) {
  switch (policy) {
    case SyncPolicy::kNone:
      return "none";
    case SyncPolicy::kInterval:
      return "interval";
    case SyncPolicy::kGroup:
      return "group";
  }
  return "?";
}

Result<LogReport> ScanLog(const std::string& dir, const ScanOptions& options,
                          const std::function<Status(const Record&)>& fn) {
  LogReport report;
  report.segments = ListSegments(dir);
  uint64_t expected = 0;  // 0 = first record seen defines the floor
  bool any_compacted = false;
  for (const SegmentSummary& seg : report.segments) {
    if (seg.compacted) {
      any_compacted = true;
      ++report.compacted_segments;
    }
  }
  bool prev_compacted = false;
  std::vector<size_t> stale_indices;

  for (size_t si = 0; si < report.segments.size(); ++si) {
    SegmentSummary& seg = report.segments[si];
    const bool last_segment = si + 1 == report.segments.size();

    std::ifstream in(seg.path, std::ios::binary);
    if (!in) return Status::IoError("cannot open " + seg.path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    seg.bytes = contents.size();

    auto corrupt = [&](size_t offset, const std::string& why) {
      return Status::IoError(StringFormat("%s: offset %zu: %s",
                                          seg.path.c_str(), offset,
                                          why.c_str()));
    };

    size_t stale_records = 0;
    size_t pos = 0;
    while (pos < contents.size()) {
      const size_t nl = contents.find('\n', pos);
      std::string torn_why;
      if (nl == std::string::npos) {
        torn_why = "unterminated frame";
      } else {
        auto record = DecodeFrame(
            std::string_view(contents).substr(pos, nl - pos));
        if (!record.ok()) {
          torn_why = record.status().message();
        } else {
          const Record& r = record.value();
          if (expected != 0 && r.seqno < expected) {
            // A duplicate of an already-scanned seqno. With compaction
            // in play this is the fingerprint of a swap that crashed
            // after renaming the coalesced output but before unlinking
            // its superseded input: skip the shadowed record. Without
            // any compacted segment present it stays hard corruption.
            if (!any_compacted) {
              return corrupt(pos, StringFormat(
                                      "seqno %llu, expected %llu",
                                      static_cast<unsigned long long>(r.seqno),
                                      static_cast<unsigned long long>(
                                          expected)));
            }
            ++stale_records;
            pos = nl + 1;
            continue;
          }
          if (expected != 0 && r.seqno > expected) {
            // Forward gap. Compaction drops superseded records, so a gap
            // is legal inside a compacted segment and at the boundary
            // right after one; anywhere else a seqno break cannot come
            // from a torn append (the CRC covers the seqno): always hard
            // corruption.
            const bool at_boundary =
                seg.records == 0 && stale_records == 0 && prev_compacted;
            if (!seg.compacted && !at_boundary) {
              return corrupt(pos, StringFormat(
                                      "seqno %llu, expected %llu",
                                      static_cast<unsigned long long>(r.seqno),
                                      static_cast<unsigned long long>(
                                          expected)));
            }
            report.gap_records += r.seqno - expected;
          }
          if (seg.records == 0 && stale_records == 0) {
            // A compacted segment keeps its original range's name, so
            // its first surviving record may exceed it — never precede.
            const bool name_ok = seg.compacted
                                     ? r.seqno >= seg.first_seqno
                                     : r.seqno == seg.first_seqno;
            if (!name_ok) {
              return corrupt(pos,
                             StringFormat("first record seqno %llu does not "
                                          "match segment name",
                                          static_cast<unsigned long long>(
                                              r.seqno)));
            }
          }
          if (options.decode_payloads) {
            auto event = DecodeEventPayload(r.payload);
            if (!event.ok()) {
              return corrupt(pos, "bad payload: " + event.status().message());
            }
          }
          if (fn) ADREC_RETURN_NOT_OK(fn(r));
          if (report.records == 0) report.first_seqno = r.seqno;
          report.last_seqno = r.seqno;
          expected = r.seqno + 1;
          ++report.records;
          ++seg.records;
          seg.last_seqno = r.seqno;
          pos = nl + 1;
          continue;
        }
      }
      // Invalid frame. In the newest segment this is the signature of a
      // crash mid-append: report (and optionally cut) the tail. Anywhere
      // else the log is damaged, not torn.
      if (!last_segment) return corrupt(pos, torn_why);
      report.torn_tail = true;
      report.torn_bytes = contents.size() - pos;
      report.torn_detail = StringFormat("%s: offset %zu: %s",
                                        seg.path.c_str(), pos,
                                        torn_why.c_str());
      if (options.truncate_torn_tail) {
        std::error_code ec;
        std::filesystem::resize_file(seg.path, pos, ec);
        if (ec) {
          return Status::IoError("truncate " + seg.path + ": " +
                                 ec.message());
        }
        ADREC_RETURN_NOT_OK(FsyncFile(seg.path));
        seg.bytes = pos;
      }
      break;
    }
    if (stale_records > 0 && seg.records == 0) {
      // Every record in this segment shadowed an already-scanned seqno:
      // a superseded compaction input whose unlink never happened.
      report.stale_segments.push_back(seg.path);
      stale_indices.push_back(si);
      continue;  // a fully-shadowed segment does not move the window
    }
    prev_compacted = seg.compacted;
  }
  if (options.remove_stale_segments && !stale_indices.empty()) {
    for (auto it = stale_indices.rbegin(); it != stale_indices.rend(); ++it) {
      std::error_code ec;
      std::filesystem::remove(report.segments[*it].path, ec);
      if (ec) {
        return Status::IoError("remove stale " + report.segments[*it].path +
                               ": " + ec.message());
      }
      report.segments.erase(report.segments.begin() +
                            static_cast<long>(*it));
    }
    ADREC_RETURN_NOT_OK(FsyncDir(dir));
  }
  return report;
}

Result<LogReport> VerifyLog(const std::string& dir) {
  ScanOptions options;
  options.decode_payloads = true;
  return ScanLog(dir, options);
}

Result<CursorBatch> ReadFrames(const std::string& dir, uint64_t from_seqno,
                               uint64_t limit_seqno, size_t max_bytes,
                               CursorHint* hint) {
  CursorBatch batch;
  batch.next_seqno = from_seqno;
  if (from_seqno == 0) {
    return Status::InvalidArgument("wal cursor seqnos start at 1");
  }
  if (from_seqno > limit_seqno) {
    batch.at_end = true;
    return batch;
  }
  const std::vector<SegmentSummary> segments = ListSegments(dir);
  if (segments.empty()) {
    batch.at_end = true;
    return batch;
  }
  if (from_seqno < segments.front().first_seqno) {
    // Retention truncated past the cursor: the follower's log is too far
    // behind to catch up from frames alone and must re-seed.
    return Status::NotFound(StringFormat(
        "cursor %llu precedes oldest retained segment (first seqno %llu)",
        static_cast<unsigned long long>(from_seqno),
        static_cast<unsigned long long>(segments.front().first_seqno)));
  }
  // The segment holding from_seqno: last one whose name is <= the cursor.
  size_t si = 0;
  while (si + 1 < segments.size() &&
         segments[si + 1].first_seqno <= from_seqno) {
    ++si;
  }

  uint64_t expected = from_seqno;
  for (; si < segments.size(); ++si) {
    const SegmentSummary& seg = segments[si];
    const bool last_segment = si + 1 == segments.size();
    if (seg.first_seqno > expected) {
      if (seg.compacted || (si > 0 && segments[si - 1].compacted)) {
        // Compaction dropped the records the cursor wants: replication
        // only ships the contiguous tail, so the follower re-seeds from
        // a checkpoint — the same path as a retention miss.
        return Status::NotFound(StringFormat(
            "cursor %llu falls in a compacted-away range (%s starts at "
            "%llu); follower must re-seed",
            static_cast<unsigned long long>(expected), seg.path.c_str(),
            static_cast<unsigned long long>(seg.first_seqno)));
      }
      return Status::IoError(StringFormat(
          "segment gap: %s starts at %llu, expected %llu", seg.path.c_str(),
          static_cast<unsigned long long>(seg.first_seqno),
          static_cast<unsigned long long>(expected)));
    }
    std::ifstream in(seg.path, std::ios::binary);
    if (!in) return Status::IoError("cannot open " + seg.path);
    size_t start_offset = 0;
    if (hint != nullptr && hint->next_seqno == expected &&
        hint->path == seg.path && hint->offset > 0) {
      start_offset = static_cast<size_t>(hint->offset);
      in.seekg(static_cast<std::streamoff>(start_offset));
    }
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();

    size_t pos = 0;
    while (pos < contents.size()) {
      const size_t nl = contents.find('\n', pos);
      if (nl == std::string::npos) {
        // Unterminated trailing bytes: a torn tail (or a frame mid-write
        // beyond limit_seqno) in the newest segment, corruption anywhere
        // else.
        if (last_segment) {
          batch.at_end = true;
          break;
        }
        return Status::IoError(seg.path + ": unterminated frame");
      }
      auto record =
          DecodeFrame(std::string_view(contents).substr(pos, nl - pos));
      if (!record.ok()) {
        if (last_segment) {  // torn tail: nothing further is readable
          batch.at_end = true;
          break;
        }
        return Status::IoError(seg.path + ": " + record.status().message());
      }
      const Record& r = record.value();
      if (r.seqno < expected) {  // catch-up skip within the segment
        pos = nl + 1;
        continue;
      }
      if (r.seqno != expected) {
        if (seg.compacted) {
          return Status::NotFound(StringFormat(
              "cursor %llu falls in a compacted-away range (%s resumes at "
              "%llu); follower must re-seed",
              static_cast<unsigned long long>(expected), seg.path.c_str(),
              static_cast<unsigned long long>(r.seqno)));
        }
        return Status::IoError(StringFormat(
            "%s: seqno %llu, expected %llu", seg.path.c_str(),
            static_cast<unsigned long long>(r.seqno),
            static_cast<unsigned long long>(expected)));
      }
      if (r.seqno > limit_seqno) {
        batch.at_end = true;
        break;
      }
      batch.frames.append(contents, pos, nl - pos + 1);
      ++batch.records;
      ++expected;
      pos = nl + 1;
      if (hint != nullptr) {
        hint->path = seg.path;
        hint->offset = start_offset + pos;
        hint->next_seqno = expected;
      }
      if (batch.frames.size() >= max_bytes) {
        batch.next_seqno = expected;
        return batch;
      }
    }
    batch.next_seqno = expected;
    if (batch.at_end) return batch;
    if (last_segment) {
      batch.at_end = true;  // consumed the whole log below the limit
      return batch;
    }
  }
  batch.at_end = true;
  return batch;
}

// --- WalWriter. ---

namespace {

/// Full decode of one candidate resume segment (reopen coalescing):
/// every frame must parse and seqnos must be contiguous, else the
/// segment is sealed as-is and appends go to a fresh file.
struct TailScan {
  uint64_t first_seqno = 0;
  uint64_t last_seqno = 0;
  size_t records = 0;
  uint64_t bytes = 0;
};

Result<TailScan> ScanResumeCandidate(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  TailScan out;
  out.bytes = contents.size();
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      return Status::IoError(path + ": unterminated frame");
    }
    auto record =
        DecodeFrame(std::string_view(contents).substr(pos, nl - pos));
    if (!record.ok()) return record.status();
    if (out.records == 0) {
      out.first_seqno = record.value().seqno;
    } else if (record.value().seqno != out.last_seqno + 1) {
      return Status::IoError(path + ": seqno gap");
    }
    out.last_seqno = record.value().seqno;
    ++out.records;
    pos = nl + 1;
  }
  if (out.records == 0) return Status::IoError(path + ": empty");
  return out;
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                   WalOptions options,
                                                   uint64_t next_seqno) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return Status::IoError("cannot create " + dir + ": " + ec.message());

  // Clear compaction-swap leftovers: staged outputs that never got
  // renamed (`*.clog.tmp`) and superseded `.log` inputs shadowed by a
  // renamed `.clog` rewrite of the same range.
  {
    bool removed = false;
    std::vector<std::filesystem::path> doomed;
    std::error_code iter_ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, iter_ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (StartsWith(name, kSegmentPrefix) && EndsWith(name, ".tmp")) {
        doomed.push_back(entry.path());
        continue;
      }
      bool compacted = false;
      const uint64_t seqno = SegmentSeqno(name, &compacted);
      if (seqno != 0 && !compacted) {
        std::error_code exists_ec;
        const std::string twin =
            dir + "/" + SegmentFileName(seqno, /*compacted=*/true);
        if (std::filesystem::exists(twin, exists_ec)) {
          doomed.push_back(entry.path());
        }
      }
    }
    for (const auto& path : doomed) {
      std::error_code rm_ec;
      std::filesystem::remove(path, rm_ec);
      removed = removed || !rm_ec;
    }
    if (removed) ADREC_RETURN_NOT_OK(FsyncDir(dir));
  }

  std::vector<SegmentSummary> sealed;
  if (next_seqno == 0) {
    // Derive the resume point (and clean a torn tail + any segments a
    // crashed compaction swap left fully shadowed) by scanning.
    ScanOptions scan;
    scan.truncate_torn_tail = true;
    scan.remove_stale_segments = true;
    auto report = ScanLog(dir, scan);
    if (!report.ok()) return report.status();
    next_seqno = report.value().last_seqno + 1;
    sealed = std::move(report.value().segments);
  } else {
    sealed = ListSegments(dir);
  }
  // Every pre-existing segment is sealed: this writer only appends to
  // segments it creates. Drop empty leftovers (a torn tail truncated to
  // nothing) so they cannot collide with the new active segment's name.
  for (auto it = sealed.begin(); it != sealed.end();) {
    std::error_code size_ec;
    const uintmax_t size = std::filesystem::file_size(it->path, size_ec);
    if (!size_ec && size == 0) {
      std::filesystem::remove(it->path, size_ec);
      it = sealed.erase(it);
    } else {
      ++it;
    }
  }
  // Reopen coalescing: resume appending into the previous run's tail
  // segment when it is uncompacted, below the rotation threshold,
  // frame-clean and ends exactly at next_seqno - 1 (recovery truncated
  // any torn tail before we got here). Without this, every restart
  // minted a fresh segment regardless of how little the old tail held.
  TailScan resume;
  bool resume_tail = false;
  if (!sealed.empty() && !sealed.back().compacted) {
    const SegmentSummary& tail = sealed.back();
    std::error_code size_ec;
    const uintmax_t size = std::filesystem::file_size(tail.path, size_ec);
    if (!size_ec && size > 0 && size < options.segment_bytes) {
      auto scanned = ScanResumeCandidate(tail.path);
      if (scanned.ok() && scanned.value().last_seqno + 1 == next_seqno &&
          scanned.value().first_seqno == tail.first_seqno) {
        resume = scanned.value();
        resume_tail = true;
      }
    }
  }
  std::unique_ptr<WalWriter> writer(
      new WalWriter(dir, options, next_seqno, std::move(sealed)));
  if (resume_tail) {
    const std::string path =
        dir + "/" + SegmentFileName(resume.first_seqno, /*compacted=*/false);
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0644);
    if (fd >= 0) {  // failure: fall back to a fresh segment
      writer->fd_ = fd;
      writer->active_first_seqno_ = resume.first_seqno;
      writer->active_bytes_ = resume.bytes;
      writer->active_records_ = resume.records;
      writer->sealed_.pop_back();
      writer->g_active_segment_bytes_->Set(
          static_cast<double>(resume.bytes));
    }
  }
  return writer;
}

WalWriter::WalWriter(std::string dir, WalOptions options, uint64_t next_seqno,
                     std::vector<SegmentSummary> sealed)
    : dir_(std::move(dir)),
      options_(options),
      next_seqno_(next_seqno),
      synced_seqno_(next_seqno - 1),  // everything on disk pre-open is settled
      sealed_(std::move(sealed)),
      last_interval_sync_(std::chrono::steady_clock::now()),
      ctr_appends_(metrics_.GetCounter("wal.appends")),
      ctr_append_bytes_(metrics_.GetCounter("wal.append_bytes")),
      ctr_fsyncs_(metrics_.GetCounter("wal.fsyncs")),
      ctr_commits_(metrics_.GetCounter("wal.commits")),
      ctr_rotations_(metrics_.GetCounter("wal.rotations")),
      ctr_sealed_deleted_(metrics_.GetCounter("wal.sealed_deleted")),
      tm_append_us_(metrics_.GetTimer("wal.append_us")),
      tm_fsync_us_(metrics_.GetTimer("wal.fsync_us")),
      g_active_segment_bytes_(metrics_.GetGauge("wal.active_segment_bytes")),
      g_synced_seqno_(metrics_.GetGauge("wal.synced_seqno")),
      g_next_seqno_(metrics_.GetGauge("wal.next_seqno")) {
  g_synced_seqno_->Set(static_cast<double>(synced_seqno_));
  g_next_seqno_->Set(static_cast<double>(next_seqno_));
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  (void)FlushPendingLocked();
  if (fd_ >= 0) {
    ::fdatasync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::FlushPendingLocked() {
  if (pending_.empty()) return Status::OK();
  ADREC_RETURN_NOT_OK(WriteFully(fd_, pending_));
  active_bytes_ += pending_.size();
  active_records_ += pending_records_;
  pending_.clear();
  pending_records_ = 0;
  return Status::OK();
}

Status WalWriter::OpenActiveLocked() {
  active_first_seqno_ = next_seqno_;
  const std::string path = dir_ + "/" + SegmentName(active_first_seqno_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND | O_CLOEXEC,
               0644);
  if (fd_ < 0) {
    return Status::IoError(
        StringFormat("open %s: %s", path.c_str(), std::strerror(errno)));
  }
  active_bytes_ = 0;
  active_records_ = 0;
  // Make the new directory entry itself durable.
  return FsyncDir(dir_);
}

Status WalWriter::RotateLocked() {
  ADREC_RETURN_NOT_OK(FlushPendingLocked());
  if (fd_ < 0 || active_records_ == 0) return Status::OK();
  // Never close an fd another appender may be fdatasync-ing.
  while (sync_in_progress_) {
    std::unique_lock<std::mutex> relock(mu_, std::adopt_lock);
    sync_cv_.wait(relock);
    relock.release();
  }
  if (::fdatasync(fd_) != 0) {
    return Status::IoError(
        StringFormat("fdatasync on rotate: %s", std::strerror(errno)));
  }
  ctr_fsyncs_->Inc();
  ::close(fd_);
  fd_ = -1;
  SegmentSummary seg;
  seg.path = dir_ + "/" + SegmentName(active_first_seqno_);
  seg.first_seqno = active_first_seqno_;
  seg.last_seqno = next_seqno_ - 1;
  seg.records = active_records_;
  seg.bytes = active_bytes_;
  sealed_.push_back(std::move(seg));
  // Everything in the sealed segment is durable now.
  if (next_seqno_ - 1 > synced_seqno_) {
    synced_seqno_ = next_seqno_ - 1;
    g_synced_seqno_->Set(static_cast<double>(synced_seqno_));
  }
  active_bytes_ = 0;
  active_records_ = 0;
  g_active_segment_bytes_->Set(0.0);
  ctr_rotations_->Inc();
  return Status::OK();
}

Result<uint64_t> WalWriter::AppendLocked(std::string_view payload) {
  obs::ScopedTimer timer(tm_append_us_);
  if (payload.find('\n') != std::string_view::npos ||
      payload.find('\r') != std::string_view::npos) {
    return Status::InvalidArgument("wal payload must be single-line");
  }
  if (fd_ >= 0 &&
      active_bytes_ + pending_.size() >= options_.segment_bytes) {
    ADREC_RETURN_NOT_OK(RotateLocked());
  }
  if (fd_ < 0) ADREC_RETURN_NOT_OK(OpenActiveLocked());
  ADREC_RETURN_NOT_OK(FlushPendingLocked());
  const uint64_t seqno = next_seqno_;
  const std::string frame = EncodeFrame(seqno, payload);
  ADREC_RETURN_NOT_OK(WriteFully(fd_, frame));
  ++next_seqno_;
  active_bytes_ += frame.size();
  ++active_records_;
  ctr_appends_->Inc();
  ctr_append_bytes_->Inc(frame.size());
  g_active_segment_bytes_->Set(static_cast<double>(active_bytes_));
  g_next_seqno_->Set(static_cast<double>(next_seqno_));
  return seqno;
}

Status WalWriter::SyncLocked(std::unique_lock<std::mutex>& lock,
                             uint64_t want_seqno) {
  while (synced_seqno_ < want_seqno) {
    if (sync_in_progress_) {
      // A leader's fdatasync is in flight; it may already cover us.
      sync_cv_.wait(lock);
      continue;
    }
    // The fdatasync can only cover what write(2) has seen.
    ADREC_RETURN_NOT_OK(FlushPendingLocked());
    // Become the leader: sync everything appended so far, releasing the
    // lock so concurrent appenders keep writing (they become the next
    // group). fd_ cannot change underneath us — rotation waits for
    // sync_in_progress_ to clear.
    sync_in_progress_ = true;
    const uint64_t target = next_seqno_ - 1;
    const int fd = fd_;
    lock.unlock();
    int rc = 0;
    {
      obs::ScopedTimer timer(tm_fsync_us_);
      rc = fd >= 0 ? ::fdatasync(fd) : 0;
    }
    const int saved = errno;
    lock.lock();
    sync_in_progress_ = false;
    if (rc == 0) {
      ctr_fsyncs_->Inc();
      if (target > synced_seqno_) {
        synced_seqno_ = target;
        g_synced_seqno_->Set(static_cast<double>(synced_seqno_));
      }
    }
    sync_cv_.notify_all();
    if (rc != 0) {
      return Status::IoError(
          StringFormat("fdatasync: %s", std::strerror(saved)));
    }
  }
  return Status::OK();
}

Result<uint64_t> WalWriter::Append(std::string_view payload) {
  std::unique_lock<std::mutex> lock(mu_);
  auto seqno = AppendLocked(payload);
  if (!seqno.ok()) return seqno;
  switch (options_.sync) {
    case SyncPolicy::kNone:
      break;
    case SyncPolicy::kInterval: {
      const auto now = std::chrono::steady_clock::now();
      const double since = std::chrono::duration<double>(
                               now - last_interval_sync_).count();
      if (since >= options_.sync_interval) {
        last_interval_sync_ = now;
        ADREC_RETURN_NOT_OK(SyncLocked(lock, seqno.value()));
      }
      break;
    }
    case SyncPolicy::kGroup:
      ADREC_RETURN_NOT_OK(SyncLocked(lock, seqno.value()));
      break;
  }
  return seqno;
}

Result<uint64_t> WalWriter::AppendDeferred(std::string_view payload) {
  std::unique_lock<std::mutex> lock(mu_);
  // wal.append_us is sampled 1-in-append_sample_every here — see the
  // WalOptions field for why every append is not timed.
  const bool timed = options_.append_sample_every != 0 &&
                     next_seqno_ % options_.append_sample_every == 0;
  const auto timer_start = timed ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
  if (payload.find('\n') != std::string_view::npos ||
      payload.find('\r') != std::string_view::npos) {
    return Status::InvalidArgument("wal payload must be single-line");
  }
  if (fd_ >= 0 &&
      active_bytes_ + pending_.size() >= options_.segment_bytes) {
    ADREC_RETURN_NOT_OK(RotateLocked());
  }
  if (fd_ < 0) ADREC_RETURN_NOT_OK(OpenActiveLocked());
  const uint64_t seqno = next_seqno_;
  const size_t before = pending_.size();
  AppendFrameTo(&pending_, seqno, payload);
  ++next_seqno_;
  ++pending_records_;
  ctr_appends_->Inc();
  ctr_append_bytes_->Inc(pending_.size() - before);
  g_next_seqno_->Set(static_cast<double>(next_seqno_));
  if (timed) {
    tm_append_us_->Record(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - timer_start)
                              .count());
  }
  return seqno;
}

Status WalWriter::Commit() {
  std::unique_lock<std::mutex> lock(mu_);
  ctr_commits_->Inc();
  // Whatever the policy, the batch leaves user space here: kNone's loss
  // bound is the OS page cache, not this process's lifetime, and the
  // buffer cannot grow without bound on a policy that never syncs.
  ADREC_RETURN_NOT_OK(FlushPendingLocked());
  g_active_segment_bytes_->Set(static_cast<double>(active_bytes_));
  switch (options_.sync) {
    case SyncPolicy::kNone:
      return Status::OK();
    case SyncPolicy::kInterval: {
      const auto now = std::chrono::steady_clock::now();
      const double since = std::chrono::duration<double>(
                               now - last_interval_sync_).count();
      if (since < options_.sync_interval) return Status::OK();
      last_interval_sync_ = now;
      return SyncLocked(lock, next_seqno_ - 1);
    }
    case SyncPolicy::kGroup:
      return SyncLocked(lock, next_seqno_ - 1);
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  return SyncLocked(lock, next_seqno_ - 1);
}

Status WalWriter::Rotate() {
  std::unique_lock<std::mutex> lock(mu_);
  return RotateLocked();
}

Result<size_t> WalWriter::TruncateSealedBefore(uint64_t seqno,
                                               Timestamp floor_time) {
  // Snapshot the sealed list under the lock; the file reads below touch
  // only immutable sealed segments.
  std::vector<SegmentSummary> sealed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sealed = sealed_;
  }
  size_t deleted = 0;
  for (const SegmentSummary& seg : sealed) {
    if (seg.last_seqno == 0 || seg.last_seqno >= seqno) break;
    if (floor_time != INT64_MAX) {
      // Retention check: keep the segment if any record is inside the
      // analysis window. Sealed segments are immutable, so reading
      // without the lock is safe.
      Timestamp max_time = INT64_MIN;
      std::ifstream in(seg.path, std::ios::binary);
      if (!in) return Status::IoError("cannot open " + seg.path);
      std::string line;
      while (std::getline(in, line)) {
        auto record = DecodeFrame(line);
        if (!record.ok()) {
          return Status::IoError(seg.path + ": " +
                                 record.status().message());
        }
        auto event = DecodeEventPayload(record.value().payload);
        if (event.ok() && event.value().time > max_time) {
          max_time = event.value().time;
        }
      }
      if (max_time >= floor_time) break;
    }
    std::error_code ec;
    std::filesystem::remove(seg.path, ec);
    if (ec) {
      return Status::IoError("remove " + seg.path + ": " + ec.message());
    }
    ++deleted;
    ctr_sealed_deleted_->Inc();
  }
  if (deleted > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    sealed_.erase(sealed_.begin(),
                  sealed_.begin() + static_cast<long>(deleted));
    ADREC_RETURN_NOT_OK(FsyncDir(dir_));
  }
  return deleted;
}

uint64_t WalWriter::next_seqno() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seqno_;
}

uint64_t WalWriter::last_seqno() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seqno_ - 1;
}

uint64_t WalWriter::synced_seqno() const {
  std::lock_guard<std::mutex> lock(mu_);
  return synced_seqno_;
}

uint64_t WalWriter::flushed_seqno() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seqno_ - pending_records_ - 1;
}

size_t WalWriter::active_segment_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_bytes_ + pending_.size();
}

std::vector<SegmentSummary> WalWriter::sealed_segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sealed_;
}

void WalWriter::ReplaceSealedPrefix(size_t count,
                                    std::vector<SegmentSummary> replacement) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count > sealed_.size()) count = sealed_.size();
  sealed_.erase(sealed_.begin(), sealed_.begin() + static_cast<long>(count));
  sealed_.insert(sealed_.begin(),
                 std::make_move_iterator(replacement.begin()),
                 std::make_move_iterator(replacement.end()));
}

}  // namespace adrec::wal
