#include "wal/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/fs_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/snapshot.h"

namespace adrec::wal {

namespace {

constexpr std::string_view kManifestName = "MANIFEST.tsv";

std::string ShardDir(const std::string& checkpoint_dir, size_t shard) {
  return StringFormat("%s/shard%zu", checkpoint_dir.c_str(), shard);
}

struct CheckpointManifest {
  uint64_t wal_seqno = 0;
  size_t num_shards = 0;
  Timestamp stream_time = 0;
};

Result<CheckpointManifest> ReadManifest(const std::string& checkpoint_dir) {
  const std::string path =
      checkpoint_dir + "/" + std::string(kManifestName);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no checkpoint manifest at " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError(path + ": empty manifest");
  }
  const auto fields = SplitString(line, '\t', /*keep_empty=*/true);
  if (fields.size() != 4 || fields[0] != "K") {
    return Status::InvalidArgument(path + ": bad manifest record");
  }
  CheckpointManifest m;
  char* end = nullptr;
  const std::string seqno_str(fields[1]);
  m.wal_seqno = std::strtoull(seqno_str.c_str(), &end, 10);
  if (end == seqno_str.c_str() || *end != '\0') {
    return Status::InvalidArgument(path + ": bad wal seqno");
  }
  const std::string shards_str(fields[2]);
  end = nullptr;
  m.num_shards = std::strtoul(shards_str.c_str(), &end, 10);
  if (end == shards_str.c_str() || *end != '\0' || m.num_shards == 0) {
    return Status::InvalidArgument(path + ": bad shard count");
  }
  const std::string time_str(fields[3]);
  end = nullptr;
  m.stream_time = std::strtoll(time_str.c_str(), &end, 10);
  if (end == time_str.c_str() || *end != '\0') {
    return Status::InvalidArgument(path + ": bad stream time");
  }
  return m;
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace

CheckpointManager::CheckpointManager(std::string wal_dir,
                                     CheckpointOptions options)
    : wal_dir_(std::move(wal_dir)), options_(options) {}

Status CheckpointManager::Checkpoint(const core::ShardedEngine& engine,
                                     WalWriter* wal, Timestamp stream_now) {
  if (wal == nullptr) {
    return Status::InvalidArgument("checkpoint needs a wal writer");
  }
  // Seal + sync first, so the mark covers every record the engine state
  // below can reflect, and truncation later never touches the active
  // segment.
  ADREC_RETURN_NOT_OK(wal->Rotate());
  ADREC_RETURN_NOT_OK(wal->Sync());
  const uint64_t mark = wal->synced_seqno();

  const std::string tmp = wal_dir_ + "/checkpoint.tmp";
  ADREC_RETURN_NOT_OK(RemoveAll(tmp));
  std::error_code ec;
  std::filesystem::create_directories(tmp, ec);
  if (ec) return Status::IoError("cannot create " + tmp + ": " + ec.message());

  for (size_t s = 0; s < engine.num_shards(); ++s) {
    ADREC_RETURN_NOT_OK(
        core::SaveEngineSnapshot(engine.shard(s), ShardDir(tmp, s)));
  }
  {
    const std::string path = tmp + "/" + std::string(kManifestName);
    std::ofstream out(path);
    if (!out) return Status::IoError("cannot open " + path);
    out << StringFormat("K\t%llu\t%zu\t%lld\n",
                        static_cast<unsigned long long>(mark),
                        engine.num_shards(),
                        static_cast<long long>(stream_now));
    out.flush();
    if (!out) return Status::IoError("manifest write failed: " + path);
    out.close();
    ADREC_RETURN_NOT_OK(FsyncFile(path));
  }
  ADREC_RETURN_NOT_OK(FsyncDir(tmp));

  // Swap. The previous checkpoint lives on as checkpoint.old until the
  // new one is durably in place — recovery falls back to it if a crash
  // lands inside this window.
  const std::string current = checkpoint_dir();
  const std::string old = current + ".old";
  ADREC_RETURN_NOT_OK(RemoveAll(old));
  if (std::filesystem::exists(current)) {
    ADREC_RETURN_NOT_OK(RenamePath(current, old));
  }
  ADREC_RETURN_NOT_OK(RenamePath(tmp, current));
  ADREC_RETURN_NOT_OK(FsyncDir(wal_dir_));
  ADREC_RETURN_NOT_OK(RemoveAll(old));

  if (options_.analysis_retention >= 0) {
    const Timestamp floor = stream_now - options_.analysis_retention;
    Result<size_t> deleted = wal->TruncateSealedBefore(mark + 1, floor);
    if (!deleted.ok()) return deleted.status();
    if (deleted.value() > 0) {
      ADREC_LOG(kInfo) << "checkpoint: truncated " << deleted.value()
                       << " sealed wal segment(s)";
    }
  }
  return Status::OK();
}

Result<RecoveryResult> CheckpointManager::Recover(
    core::ShardedEngine* engine) const {
  if (engine == nullptr) {
    return Status::InvalidArgument("recover needs an engine");
  }
  RecoveryResult result;

  // --- Pick the newest loadable checkpoint. ---
  std::string chosen;
  CheckpointManifest manifest;
  for (const std::string& candidate :
       {checkpoint_dir(), checkpoint_dir() + ".old"}) {
    auto m = ReadManifest(candidate);
    if (m.ok()) {
      chosen = candidate;
      manifest = m.value();
      break;
    }
    if (m.status().code() != StatusCode::kNotFound) {
      ADREC_LOG(kWarning) << "skipping unreadable checkpoint " << candidate
                          << ": " << m.status().ToString();
    }
  }
  if (!chosen.empty()) {
    if (manifest.num_shards != engine->num_shards()) {
      return Status::FailedPrecondition(StringFormat(
          "checkpoint %s was taken with %zu shard(s), engine has %zu",
          chosen.c_str(), manifest.num_shards, engine->num_shards()));
    }
    for (size_t s = 0; s < engine->num_shards(); ++s) {
      ADREC_RETURN_NOT_OK(
          core::LoadEngineSnapshot(ShardDir(chosen, s),
                                   engine->mutable_shard(s)));
    }
    result.from_checkpoint = true;
    result.checkpoint_seqno = manifest.wal_seqno;
    result.checkpoint_stream_time = manifest.stream_time;
    result.max_event_time = manifest.stream_time;
  }

  // --- Replay the log: window-only up to the mark, live ingest after. ---
  ScanOptions scan;
  scan.truncate_torn_tail = true;
  Status replay_error = Status::OK();
  auto report = ScanLog(wal_dir_, scan, [&](const Record& record) {
    auto event = DecodeEventPayload(record.payload);
    if (!event.ok()) {
      replay_error = Status::IoError(StringFormat(
          "wal record %llu: %s",
          static_cast<unsigned long long>(record.seqno),
          event.status().message().c_str()));
      return replay_error;
    }
    feed::FeedEvent& ev = event.value();
    if (ev.time > result.max_event_time) result.max_event_time = ev.time;
    if (record.seqno <= result.checkpoint_seqno) {
      engine->ReplayForAnalysis(ev);
      ++result.window_replayed;
      return Status::OK();
    }
    switch (ev.kind) {
      case feed::EventKind::kTweet:
      case feed::EventKind::kCheckIn:
        engine->OnEvent(ev);
        break;
      case feed::EventKind::kAdInsert: {
        // The checkpoint may already contain the ad (logged before the
        // snapshot caught up with it): re-insertion is benign.
        const Status st = engine->InsertAd(ev.ad);
        if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
        break;
      }
      case feed::EventKind::kAdDelete: {
        const Status st = engine->RemoveAd(ev.ad_id);
        if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
        break;
      }
    }
    ++result.live_replayed;
    return Status::OK();
  });
  if (!report.ok()) return report.status();
  if (!replay_error.ok()) return replay_error;

  result.torn_bytes_truncated = report.value().torn_bytes;
  result.next_seqno =
      std::max(report.value().last_seqno, result.checkpoint_seqno) + 1;
  return result;
}

}  // namespace adrec::wal
