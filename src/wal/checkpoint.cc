#include "wal/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/fs_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/snapshot.h"
#include "obs/trace.h"
#include "wal/delta/delta_checkpoint.h"

namespace adrec::wal {

Result<CheckpointMode> ParseCheckpointMode(std::string_view name) {
  if (name == "full") return CheckpointMode::kFull;
  if (name == "delta") return CheckpointMode::kDelta;
  return Status::InvalidArgument("unknown checkpoint mode '" +
                                 std::string(name) + "' (full|delta)");
}

std::string_view CheckpointModeName(CheckpointMode mode) {
  return mode == CheckpointMode::kDelta ? "delta" : "full";
}

namespace {

constexpr std::string_view kManifestName = "MANIFEST.tsv";

std::string ShardDir(const std::string& checkpoint_dir, size_t shard) {
  return StringFormat("%s/shard%zu", checkpoint_dir.c_str(), shard);
}

struct CheckpointManifest {
  uint64_t wal_seqno = 0;
  size_t num_shards = 0;
  Timestamp stream_time = 0;
  /// Per-stream high-water marks ("S <stream> <seqno>" lines); empty for
  /// a single-stream (classic) manifest.
  std::vector<uint64_t> stream_seqnos;
};

Result<CheckpointManifest> ReadManifest(const std::string& checkpoint_dir) {
  const std::string path =
      checkpoint_dir + "/" + std::string(kManifestName);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no checkpoint manifest at " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError(path + ": empty manifest");
  }
  const auto fields = SplitString(line, '\t', /*keep_empty=*/true);
  if (fields.size() != 4 || fields[0] != "K") {
    return Status::InvalidArgument(path + ": bad manifest record");
  }
  CheckpointManifest m;
  char* end = nullptr;
  const std::string seqno_str(fields[1]);
  m.wal_seqno = std::strtoull(seqno_str.c_str(), &end, 10);
  if (end == seqno_str.c_str() || *end != '\0') {
    return Status::InvalidArgument(path + ": bad wal seqno");
  }
  const std::string shards_str(fields[2]);
  end = nullptr;
  m.num_shards = std::strtoul(shards_str.c_str(), &end, 10);
  if (end == shards_str.c_str() || *end != '\0' || m.num_shards == 0) {
    return Status::InvalidArgument(path + ": bad shard count");
  }
  const std::string time_str(fields[3]);
  end = nullptr;
  m.stream_time = std::strtoll(time_str.c_str(), &end, 10);
  if (end == time_str.c_str() || *end != '\0') {
    return Status::InvalidArgument(path + ": bad stream time");
  }
  // Per-stream marks must be dense and in order: "S 0 ..", "S 1 ..", ...
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto f = SplitString(line, '\t', /*keep_empty=*/true);
    if (f.size() != 3 || f[0] != "S") {
      return Status::InvalidArgument(path + ": bad stream record");
    }
    const std::string stream_str(f[1]);
    end = nullptr;
    const size_t stream = std::strtoul(stream_str.c_str(), &end, 10);
    if (end == stream_str.c_str() || *end != '\0' ||
        stream != m.stream_seqnos.size()) {
      return Status::InvalidArgument(path + ": out-of-order stream record");
    }
    const std::string mark_str(f[2]);
    end = nullptr;
    const uint64_t mark = std::strtoull(mark_str.c_str(), &end, 10);
    if (end == mark_str.c_str() || *end != '\0') {
      return Status::InvalidArgument(path + ": bad stream seqno");
    }
    m.stream_seqnos.push_back(mark);
  }
  return m;
}

Status RemoveAll(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) return Status::IoError("remove " + path + ": " + ec.message());
  return Status::OK();
}

/// Counts files/bytes a full checkpoint is about to swap in, for the
/// checkpoint.files_written / checkpoint.bytes_written families.
void DirStats(const std::string& dir, uint64_t* files, uint64_t* bytes) {
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    std::error_code size_ec;
    const uintmax_t sz = entry.file_size(size_ec);
    *files += 1;
    if (!size_ec) *bytes += sz;
  }
}

/// The checkpoint recovery should restore from: the newer of the classic
/// directory (checkpoint / checkpoint.old) and the delta-chain head
/// (checkpoint.delta), compared by (wal_seqno, stream_time). A chosen
/// delta head is materialised — with strict size + content-hash
/// verification of every referenced file — into
/// `<wal_dir>/checkpoint.restore.tmp`, laid out exactly like a classic
/// checkpoint, so the per-shard load path is identical either way. A
/// generation that fails verification is skipped, falling back to older
/// generations and finally the classic directory. Never hard-fails:
/// worst case is `found == false` (recover from the log alone).
struct PickedCheckpoint {
  bool found = false;
  std::string dir;      ///< directory holding shard<i>/ + MANIFEST.tsv
  std::string staging;  ///< non-empty: materialised copy, delete after load
  CheckpointManifest manifest;
  bool is_delta = false;
  uint64_t delta_gen = 0;
  size_t delta_chain_len = 0;
};

PickedCheckpoint PickCheckpoint(const std::string& wal_dir,
                                const std::string& classic_dir) {
  PickedCheckpoint picked;

  bool have_classic = false;
  std::string classic_chosen;
  CheckpointManifest classic_manifest;
  for (const std::string& candidate : {classic_dir, classic_dir + ".old"}) {
    auto m = ReadManifest(candidate);
    if (m.ok()) {
      have_classic = true;
      classic_chosen = candidate;
      classic_manifest = m.value();
      break;
    }
    if (m.status().code() != StatusCode::kNotFound) {
      ADREC_LOG(kWarning) << "skipping unreadable checkpoint " << candidate
                          << ": " << m.status().ToString();
    }
  }

  const std::string staging = wal_dir + "/checkpoint.restore.tmp";
  std::error_code ec;
  std::filesystem::remove_all(staging, ec);  // leftover of a crashed restore

  // Delta candidates, best first: the resolved head, then every other
  // generation newest-first (the head resolution already prefers CURRENT
  // and verifies file presence; materialisation adds the hash check).
  std::vector<delta::DeltaManifest> candidates;
  {
    auto head = delta::ResolveHead(wal_dir);
    if (head.ok()) candidates.push_back(std::move(head).value());
    auto gens = delta::ListGenerations(wal_dir);
    if (gens.ok()) {
      std::sort(gens.value().begin(), gens.value().end(),
                [](const delta::DeltaManifest& a,
                   const delta::DeltaManifest& b) { return a.gen > b.gen; });
      for (delta::DeltaManifest& m : gens.value()) {
        if (candidates.empty() || m.gen != candidates.front().gen) {
          candidates.push_back(std::move(m));
        }
      }
    }
  }
  for (const delta::DeltaManifest& cand : candidates) {
    const bool newer_than_classic =
        !have_classic ||
        std::make_pair(cand.wal_seqno, cand.stream_time) >=
            std::make_pair(classic_manifest.wal_seqno,
                           classic_manifest.stream_time);
    if (!newer_than_classic) break;  // older candidates only get older
    const Status st = delta::MaterializeCheckpoint(wal_dir, cand, staging);
    if (!st.ok()) {
      ADREC_LOG(kWarning) << "skipping delta checkpoint generation "
                          << cand.gen << ": " << st.ToString();
      continue;
    }
    picked.found = true;
    picked.dir = staging;
    picked.staging = staging;
    picked.is_delta = true;
    picked.delta_gen = cand.gen;
    picked.delta_chain_len = cand.ChainLength();
    picked.manifest.wal_seqno = cand.wal_seqno;
    picked.manifest.num_shards = cand.num_shards;
    picked.manifest.stream_time = cand.stream_time;
    picked.manifest.stream_seqnos = cand.stream_seqnos;
    return picked;
  }

  if (have_classic) {
    picked.found = true;
    picked.dir = classic_chosen;
    picked.manifest = classic_manifest;
  }
  return picked;
}

}  // namespace

CheckpointManager::CheckpointManager(std::string wal_dir,
                                     CheckpointOptions options)
    : wal_dir_(std::move(wal_dir)), options_(options) {}

Status CheckpointManager::Checkpoint(const core::ShardedEngine& engine,
                                     WalWriter* wal, Timestamp stream_now) {
  if (wal == nullptr) {
    return Status::InvalidArgument("checkpoint needs a wal writer");
  }
  obs::TraceSpan span("checkpoint.save");
  const auto save_start = std::chrono::steady_clock::now();
  // Seal + sync first, so the mark covers every record the engine state
  // below can reflect, and truncation later never touches the active
  // segment.
  ADREC_RETURN_NOT_OK(wal->Rotate());
  ADREC_RETURN_NOT_OK(wal->Sync());
  const uint64_t mark = wal->synced_seqno();

  if (options_.mode == CheckpointMode::kDelta) {
    ADREC_RETURN_NOT_OK(DeltaSave(engine, mark, {}, stream_now));
  } else {
    ADREC_RETURN_NOT_OK(FullSave(engine, mark, {}, stream_now));
  }

  if (options_.analysis_retention >= 0) {
    const Timestamp floor = stream_now - options_.analysis_retention;
    Result<size_t> deleted = wal->TruncateSealedBefore(mark + 1, floor);
    if (!deleted.ok()) return deleted.status();
    if (deleted.value() > 0) {
      ADREC_LOG(kInfo) << "checkpoint: truncated " << deleted.value()
                       << " sealed wal segment(s)";
    }
  }
  RecordSave(save_start);
  return Status::OK();
}

void CheckpointManager::RecordSave(
    std::chrono::steady_clock::time_point save_start) {
  metrics_.GetCounter("checkpoint.saves")->Inc();
  metrics_.GetTimer("checkpoint.save_ms")
      ->Record(std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - save_start)
                   .count());
}

Status CheckpointManager::FullSave(const core::ShardedEngine& engine,
                                   uint64_t wal_seqno,
                                   const std::vector<uint64_t>& stream_seqnos,
                                   Timestamp stream_now) {
  const std::string tmp = wal_dir_ + "/checkpoint.tmp";
  ADREC_RETURN_NOT_OK(RemoveAll(tmp));
  std::error_code ec;
  std::filesystem::create_directories(tmp, ec);
  if (ec) return Status::IoError("cannot create " + tmp + ": " + ec.message());

  for (size_t s = 0; s < engine.num_shards(); ++s) {
    ADREC_RETURN_NOT_OK(
        core::SaveEngineSnapshot(engine.shard(s), ShardDir(tmp, s)));
  }
  ADREC_RETURN_NOT_OK(
      WriteFullManifest(tmp, engine.num_shards(), wal_seqno, stream_seqnos,
                        stream_now));
  return SwapFullCheckpoint(tmp);
}

Status CheckpointManager::WriteFullManifest(
    const std::string& tmp, size_t num_shards, uint64_t wal_seqno,
    const std::vector<uint64_t>& stream_seqnos, Timestamp stream_now) {
  const std::string path = tmp + "/" + std::string(kManifestName);
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path);
  out << StringFormat("K\t%llu\t%zu\t%lld\n",
                      static_cast<unsigned long long>(wal_seqno), num_shards,
                      static_cast<long long>(stream_now));
  for (size_t s = 0; s < stream_seqnos.size(); ++s) {
    out << StringFormat("S\t%zu\t%llu\n", s,
                        static_cast<unsigned long long>(stream_seqnos[s]));
  }
  out.flush();
  if (!out) return Status::IoError("manifest write failed: " + path);
  out.close();
  ADREC_RETURN_NOT_OK(FsyncFile(path));
  return FsyncDir(tmp);
}

Status CheckpointManager::SwapFullCheckpoint(const std::string& tmp) {
  // Account what the swap publishes before it moves.
  uint64_t files = 0;
  uint64_t bytes = 0;
  DirStats(tmp, &files, &bytes);
  metrics_.GetCounter("checkpoint.files_written")->Inc(files);
  metrics_.GetCounter("checkpoint.bytes_written")->Inc(bytes);
  metrics_.GetGauge("checkpoint.delta_chain_len")->Set(1.0);

  // Swap. The previous checkpoint lives on as checkpoint.old until the
  // new one is durably in place — recovery falls back to it if a crash
  // lands inside this window.
  const std::string current = checkpoint_dir();
  const std::string old = current + ".old";
  ADREC_RETURN_NOT_OK(RemoveAll(old));
  if (std::filesystem::exists(current)) {
    ADREC_RETURN_NOT_OK(RenamePath(current, old));
  }
  ADREC_RETURN_NOT_OK(RenamePath(tmp, current));
  ADREC_RETURN_NOT_OK(FsyncDir(wal_dir_));
  return RemoveAll(old);
}

Status CheckpointManager::DeltaSave(const core::ShardedEngine& engine,
                                    uint64_t wal_seqno,
                                    const std::vector<uint64_t>& stream_seqnos,
                                    Timestamp stream_now) {
  obs::TraceSpan span("checkpoint.delta_save");
  delta::DeltaSaveOptions opts;
  opts.rebase_every = options_.rebase_every;
  // Capture epochs BEFORE serialization: a mutation racing the capture
  // can only make a shard look dirty (re-serialized), never clean.
  std::vector<uint64_t> epochs(engine.num_shards(), 0);
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    epochs[s] = engine.shard(s).mutation_epoch();
  }
  if (last_epochs_.size() == engine.num_shards()) {
    opts.shard_clean.resize(engine.num_shards());
    for (size_t s = 0; s < engine.num_shards(); ++s) {
      opts.shard_clean[s] = last_epochs_[s] == epochs[s];
    }
  }
  Result<delta::DeltaSaveStats> stats = delta::SaveDeltaCheckpoint(
      wal_dir_, engine, wal_seqno, stream_seqnos, stream_now, opts);
  if (!stats.ok()) return stats.status();
  last_epochs_ = std::move(epochs);

  const delta::DeltaSaveStats& st = stats.value();
  metrics_.GetCounter("checkpoint.files_written")->Inc(st.files_written);
  metrics_.GetCounter("checkpoint.bytes_written")->Inc(st.bytes_written);
  metrics_.GetGauge("checkpoint.delta_chain_len")
      ->Set(static_cast<double>(st.chain_len));
  if (st.rebase) metrics_.GetCounter("checkpoint.rebases")->Inc();
  ADREC_LOG(kInfo) << "delta checkpoint gen " << st.gen
                   << (st.rebase ? " (rebase)" : "") << ": wrote "
                   << st.files_written << "/" << st.files_total
                   << " file(s), " << st.bytes_written << "/"
                   << st.bytes_total << " byte(s), chain length "
                   << st.chain_len;
  return Status::OK();
}

Result<RecoveryResult> CheckpointManager::Recover(
    core::ShardedEngine* engine) const {
  if (engine == nullptr) {
    return Status::InvalidArgument("recover needs an engine");
  }
  RecoveryResult result;

  // --- Pick the newest loadable checkpoint (classic or delta head). ---
  const PickedCheckpoint picked = PickCheckpoint(wal_dir_, checkpoint_dir());
  if (picked.found) {
    if (picked.manifest.num_shards != engine->num_shards()) {
      return Status::FailedPrecondition(StringFormat(
          "checkpoint %s was taken with %zu shard(s), engine has %zu",
          picked.dir.c_str(), picked.manifest.num_shards,
          engine->num_shards()));
    }
    for (size_t s = 0; s < engine->num_shards(); ++s) {
      ADREC_RETURN_NOT_OK(
          core::LoadEngineSnapshot(ShardDir(picked.dir, s),
                                   engine->mutable_shard(s)));
    }
    result.from_checkpoint = true;
    result.from_delta = picked.is_delta;
    result.delta_gen = picked.delta_gen;
    result.delta_chain_len = picked.delta_chain_len;
    result.checkpoint_seqno = picked.manifest.wal_seqno;
    result.checkpoint_stream_time = picked.manifest.stream_time;
    result.max_event_time = picked.manifest.stream_time;
  }
  if (!picked.staging.empty()) {
    // The materialised copy served its purpose; errors only cost disk.
    const Status st = RemoveAll(picked.staging);
    if (!st.ok()) ADREC_LOG(kWarning) << st.ToString();
  }

  // --- Replay the log: window-only up to the mark, live ingest after. ---
  ScanOptions scan;
  scan.truncate_torn_tail = true;
  Status replay_error = Status::OK();
  auto report = ScanLog(wal_dir_, scan, [&](const Record& record) {
    auto event = DecodeEventPayload(record.payload);
    if (!event.ok()) {
      replay_error = Status::IoError(StringFormat(
          "wal record %llu: %s",
          static_cast<unsigned long long>(record.seqno),
          event.status().message().c_str()));
      return replay_error;
    }
    feed::FeedEvent& ev = event.value();
    if (ev.time > result.max_event_time) result.max_event_time = ev.time;
    if (record.seqno <= result.checkpoint_seqno) {
      engine->ReplayForAnalysis(ev);
      ++result.window_replayed;
      return Status::OK();
    }
    switch (ev.kind) {
      case feed::EventKind::kTweet:
      case feed::EventKind::kCheckIn:
        engine->OnEvent(ev);
        break;
      case feed::EventKind::kAdInsert: {
        // The checkpoint may already contain the ad (logged before the
        // snapshot caught up with it): re-insertion is benign.
        const Status st = engine->InsertAd(ev.ad);
        if (!st.ok() && st.code() != StatusCode::kAlreadyExists) return st;
        break;
      }
      case feed::EventKind::kAdDelete: {
        const Status st = engine->RemoveAd(ev.ad_id);
        if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
        break;
      }
    }
    ++result.live_replayed;
    return Status::OK();
  });
  if (!report.ok()) return report.status();
  if (!replay_error.ok()) return replay_error;

  result.torn_bytes_truncated = report.value().torn_bytes;
  result.next_seqno =
      std::max(report.value().last_seqno, result.checkpoint_seqno) + 1;
  result.stream_checkpoint_seqnos = {result.checkpoint_seqno};
  result.stream_next_seqnos = {result.next_seqno};
  return result;
}

Status CheckpointManager::Checkpoint(const core::ShardedEngine& engine,
                                     ShardedWal* wal, Timestamp stream_now) {
  if (wal == nullptr) {
    return Status::InvalidArgument("checkpoint needs a wal writer");
  }
  if (wal->num_streams() == 1) {
    return Checkpoint(engine, wal->stream(0), stream_now);
  }
  if (wal->num_streams() != engine.num_shards()) {
    return Status::FailedPrecondition(StringFormat(
        "wal has %zu stream(s), engine has %zu shard(s)",
        wal->num_streams(), engine.num_shards()));
  }
  obs::TraceSpan span("checkpoint.save");
  const auto save_start = std::chrono::steady_clock::now();
  const size_t n = wal->num_streams();

  std::string tmp;
  if (options_.mode == CheckpointMode::kFull) {
    tmp = wal_dir_ + "/checkpoint.tmp";
    ADREC_RETURN_NOT_OK(RemoveAll(tmp));
    std::error_code ec;
    std::filesystem::create_directories(tmp, ec);
    if (ec) {
      return Status::IoError("cannot create " + tmp + ": " + ec.message());
    }
  }

  // Seal (+ snapshot, in full mode) every shard concurrently: each
  // thread touches only its own stream and engine shard. The mark is
  // taken after the sync, so it covers every record the shard snapshot
  // can reflect. Delta mode snapshots after the barrier instead — the
  // diff needs the previous generation's manifest as a whole, and quiet
  // shards skip serialization entirely.
  std::vector<uint64_t> marks(n, 0);
  std::vector<Status> results(n);
  {
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (size_t s = 0; s < n; ++s) {
      workers.emplace_back([&, s] {
        WalWriter* stream = wal->stream(s);
        results[s] = stream->Rotate();
        if (results[s].ok()) results[s] = stream->Sync();
        if (!results[s].ok()) return;
        marks[s] = stream->synced_seqno();
        if (options_.mode == CheckpointMode::kFull) {
          results[s] =
              core::SaveEngineSnapshot(engine.shard(s), ShardDir(tmp, s));
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }
  for (const Status& st : results) ADREC_RETURN_NOT_OK(st);
  const uint64_t max_mark = *std::max_element(marks.begin(), marks.end());

  if (options_.mode == CheckpointMode::kDelta) {
    ADREC_RETURN_NOT_OK(DeltaSave(engine, max_mark, marks, stream_now));
  } else {
    ADREC_RETURN_NOT_OK(
        WriteFullManifest(tmp, engine.num_shards(), max_mark, marks,
                          stream_now));
    ADREC_RETURN_NOT_OK(SwapFullCheckpoint(tmp));
  }

  if (options_.analysis_retention >= 0) {
    const Timestamp floor = stream_now - options_.analysis_retention;
    size_t deleted = 0;
    for (size_t s = 0; s < n; ++s) {
      Result<size_t> d =
          wal->stream(s)->TruncateSealedBefore(marks[s] + 1, floor);
      if (!d.ok()) return d.status();
      deleted += d.value();
    }
    if (deleted > 0) {
      ADREC_LOG(kInfo) << "checkpoint: truncated " << deleted
                       << " sealed wal segment(s) across " << n
                       << " stream(s)";
    }
  }
  RecordSave(save_start);
  return Status::OK();
}

Result<RecoveryResult> CheckpointManager::Recover(
    core::ShardedEngine* engine, size_t wal_shards) const {
  if (wal_shards <= 1) return Recover(engine);
  if (engine == nullptr) {
    return Status::InvalidArgument("recover needs an engine");
  }
  if (engine->num_shards() != wal_shards) {
    return Status::FailedPrecondition(StringFormat(
        "wal has %zu stream(s), engine has %zu shard(s)", wal_shards,
        engine->num_shards()));
  }
  RecoveryResult result;
  result.stream_checkpoint_seqnos.assign(wal_shards, 0);
  result.stream_next_seqnos.assign(wal_shards, 1);

  // --- Pick the newest loadable checkpoint (classic or delta head). ---
  const PickedCheckpoint picked = PickCheckpoint(wal_dir_, checkpoint_dir());
  if (picked.found) {
    if (picked.manifest.num_shards != engine->num_shards()) {
      return Status::FailedPrecondition(StringFormat(
          "checkpoint %s was taken with %zu shard(s), engine has %zu",
          picked.dir.c_str(), picked.manifest.num_shards,
          engine->num_shards()));
    }
    if (picked.manifest.stream_seqnos.size() != wal_shards) {
      return Status::FailedPrecondition(StringFormat(
          "checkpoint %s records %zu wal stream(s), expected %zu",
          picked.dir.c_str(), picked.manifest.stream_seqnos.size(),
          wal_shards));
    }
    result.from_checkpoint = true;
    result.from_delta = picked.is_delta;
    result.delta_gen = picked.delta_gen;
    result.delta_chain_len = picked.delta_chain_len;
    result.stream_checkpoint_seqnos = picked.manifest.stream_seqnos;
    result.checkpoint_stream_time = picked.manifest.stream_time;
    result.max_event_time = picked.manifest.stream_time;
  }

  // --- Load + replay every shard concurrently: thread s touches only
  // engine shard s and log stream s. ---
  struct PerShard {
    Status status = Status::OK();
    size_t window_replayed = 0;
    size_t live_replayed = 0;
    uint64_t torn_bytes = 0;
    uint64_t last_seqno = 0;
    Timestamp max_event_time = INT64_MIN;
  };
  std::vector<PerShard> per_shard(wal_shards);
  {
    std::vector<std::thread> workers;
    workers.reserve(wal_shards);
    for (size_t s = 0; s < wal_shards; ++s) {
      workers.emplace_back([&, s] {
        PerShard& out = per_shard[s];
        const uint64_t mark = result.stream_checkpoint_seqnos[s];
        if (result.from_checkpoint) {
          out.status = core::LoadEngineSnapshot(ShardDir(picked.dir, s),
                                                engine->mutable_shard(s));
          if (!out.status.ok()) return;
        }
        ScanOptions scan;
        scan.truncate_torn_tail = true;
        Status replay_error = Status::OK();
        auto report = ScanLog(
            StreamDir(wal_dir_, s, wal_shards), scan,
            [&](const Record& record) {
              auto event = DecodeEventPayload(record.payload);
              if (!event.ok()) {
                replay_error = Status::IoError(StringFormat(
                    "wal stream %zu record %llu: %s", s,
                    static_cast<unsigned long long>(record.seqno),
                    event.status().message().c_str()));
                return replay_error;
              }
              feed::FeedEvent& ev = event.value();
              if (ev.time > out.max_event_time) out.max_event_time = ev.time;
              if (record.seqno <= mark) {
                engine->ReplayForAnalysisShard(s, ev);
                ++out.window_replayed;
                return Status::OK();
              }
              switch (ev.kind) {
                case feed::EventKind::kTweet:
                case feed::EventKind::kCheckIn:
                  engine->ApplyToShard(s, ev);
                  break;
                case feed::EventKind::kAdInsert: {
                  const Status st = engine->InsertAdOnShard(s, ev.ad);
                  if (!st.ok() &&
                      st.code() != StatusCode::kAlreadyExists) {
                    return st;
                  }
                  break;
                }
                case feed::EventKind::kAdDelete: {
                  const Status st = engine->RemoveAdOnShard(s, ev.ad_id);
                  if (!st.ok() && st.code() != StatusCode::kNotFound) {
                    return st;
                  }
                  break;
                }
              }
              ++out.live_replayed;
              return Status::OK();
            });
        if (!report.ok()) {
          out.status = report.status();
          return;
        }
        if (!replay_error.ok()) {
          out.status = replay_error;
          return;
        }
        out.torn_bytes = report.value().torn_bytes;
        out.last_seqno = report.value().last_seqno;
      });
    }
    for (std::thread& w : workers) w.join();
  }
  if (!picked.staging.empty()) {
    const Status st = RemoveAll(picked.staging);
    if (!st.ok()) ADREC_LOG(kWarning) << st.ToString();
  }
  for (size_t s = 0; s < wal_shards; ++s) {
    const PerShard& out = per_shard[s];
    ADREC_RETURN_NOT_OK(out.status);
    result.window_replayed += out.window_replayed;
    result.live_replayed += out.live_replayed;
    result.torn_bytes_truncated += out.torn_bytes;
    if (out.max_event_time > result.max_event_time) {
      result.max_event_time = out.max_event_time;
    }
    result.stream_next_seqnos[s] =
        std::max(out.last_seqno, result.stream_checkpoint_seqnos[s]) + 1;
    result.checkpoint_seqno = std::max(result.checkpoint_seqno,
                                       result.stream_checkpoint_seqnos[s]);
    result.next_seqno =
        std::max(result.next_seqno, result.stream_next_seqnos[s]);
  }
  return result;
}

}  // namespace adrec::wal
