#ifndef ADREC_WAL_SHARDED_WAL_H_
#define ADREC_WAL_SHARDED_WAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "wal/wal.h"

namespace adrec::wal {

/// Per-shard log streams (DESIGN.md §16). A log directory split into N
/// streams holds one independent WalWriter per engine shard:
///
///   <wal_dir>/<shard>/wal-<seqno0>.log     (shards > 1)
///   <wal_dir>/wal-<seqno0>.log             (shards == 1, classic layout)
///
/// Every stream has its own seqno space starting at 1. Events that
/// mutate a single shard (tweet / checkin) are appended only to that
/// shard's stream; broadcast inventory ops (adput / addel) are appended
/// to every stream, so each stream alone totally orders everything that
/// touches its shard. That invariant is what lets recovery replay all
/// streams concurrently and replication ship N independent cursors while
/// staying byte-identical to the single-stream layout per shard.

/// Directory of stream `stream` for a log split into `shards` streams.
/// `shards == 1` returns `dir` itself (classic layout).
std::string StreamDir(const std::string& dir, size_t stream, size_t shards);

/// Probes an existing log directory for its stream layout: returns the
/// number of streams (1 when segments live directly under `dir` or the
/// directory is empty/missing, N when numbered stream subdirectories
/// 0..N-1 exist). Fails InvalidArgument on a mixed or gappy layout.
Result<size_t> DetectStreamLayout(const std::string& dir);

/// N WalWriters fronted as one log. Thread-compatible the same way the
/// underlying writers are: each WalWriter is internally thread-safe, and
/// distinct streams never share state, so distinct worker threads may
/// drive distinct streams concurrently with no coordination.
class ShardedWal {
 public:
  /// Opens (creating if needed) all `options.shards` streams under
  /// `dir`. `next_seqnos`, when non-empty, must carry one resume seqno
  /// per stream (e.g. from CheckpointManager::Recover); empty means each
  /// stream scans its own segments.
  static Result<std::unique_ptr<ShardedWal>> Open(
      const std::string& dir, WalOptions options = {},
      const std::vector<uint64_t>& next_seqnos = {});

  ShardedWal(const ShardedWal&) = delete;
  ShardedWal& operator=(const ShardedWal&) = delete;

  size_t num_streams() const { return streams_.size(); }
  WalWriter* stream(size_t i) { return streams_[i].get(); }
  const WalWriter* stream(size_t i) const { return streams_[i].get(); }
  const std::string& dir() const { return dir_; }
  const WalOptions& options() const { return options_; }

  /// Directory of stream `i` (== stream(i)->dir()).
  std::string stream_dir(size_t i) const {
    return StreamDir(dir_, i, streams_.size());
  }

  /// Commit / Sync / Rotate across every stream; first error wins but
  /// every stream is still visited (a durability barrier must not skip
  /// streams behind a failed sibling).
  Status CommitAll();
  Status SyncAll();
  Status RotateAll();

  /// All streams' wal.* metrics merged (counters and gauges sum across
  /// streams; per-stream views are stream(i)->metrics()).
  obs::MetricsSnapshot MergedMetrics() const;

 private:
  ShardedWal(std::string dir, WalOptions options,
             std::vector<std::unique_ptr<WalWriter>> streams);

  const std::string dir_;
  const WalOptions options_;
  std::vector<std::unique_ptr<WalWriter>> streams_;
};

}  // namespace adrec::wal

#endif  // ADREC_WAL_SHARDED_WAL_H_
