#include "wal/delta/compactor.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/fs_util.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "wal/record.h"

namespace adrec::wal::delta {

namespace {

constexpr size_t kOfflineTargetBytes = 4 * 1024 * 1024;

struct Frame {
  std::string line;  ///< verbatim frame, including the trailing LF
  uint64_t seqno = 0;
  std::string payload;
  bool keep = true;
};

struct InputSegment {
  SegmentSummary summary;
  std::vector<Frame> frames;  ///< non-stale frames only
  uint64_t file_bytes = 0;
  size_t stale_records = 0;
};

/// Reads and decodes one sealed segment. Sealed segments must be fully
/// valid: any torn or corrupt frame is a hard error (the active segment
/// is never an input, so torn-tail tolerance does not apply here).
Result<std::vector<Frame>> ReadSealedSegment(const std::string& path,
                                             uint64_t* file_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed on " + path);
  *file_bytes = contents.size();

  std::vector<Frame> frames;
  size_t pos = 0;
  while (pos < contents.size()) {
    const size_t nl = contents.find('\n', pos);
    if (nl == std::string::npos) {
      return Status::IoError(path +
                             ": sealed segment ends without LF (torn frame "
                             "outside the newest segment)");
    }
    Frame f;
    f.line = contents.substr(pos, nl - pos + 1);
    Result<Record> rec =
        DecodeFrame(std::string_view(f.line).substr(0, f.line.size() - 1));
    if (!rec.ok()) {
      return Status::IoError(path + ": " + rec.status().message());
    }
    f.seqno = rec.value().seqno;
    f.payload = std::move(rec.value().payload);
    frames.push_back(std::move(f));
    pos = nl + 1;
  }
  return frames;
}

/// Marks frames to drop under the superseded-inventory rule documented
/// in compactor.h: per ad id, keep only the last addel and the first
/// adput after it. Returns the number of frames dropped.
uint64_t MarkSupersededFrames(std::vector<InputSegment>* inputs) {
  struct AdKeep {
    ptrdiff_t last_del = -1;
    ptrdiff_t first_put_after = -1;
  };
  // Global frame index -> (segment, frame) mapping via flat pointer list.
  std::vector<Frame*> flat;
  for (InputSegment& seg : *inputs) {
    for (Frame& f : seg.frames) flat.push_back(&f);
  }
  std::unordered_map<AdId, AdKeep> ads;
  std::vector<ptrdiff_t> ad_event_of(flat.size(), -1);  // index into flat
  for (size_t i = 0; i < flat.size(); ++i) {
    Result<feed::FeedEvent> ev = DecodeEventPayload(flat[i]->payload);
    if (!ev.ok()) continue;  // undecodable: force-kept, never dropped
    if (ev.value().kind == feed::EventKind::kAdInsert) {
      AdKeep& k = ads[ev.value().ad.id];
      if (k.first_put_after < 0) {
        k.first_put_after = static_cast<ptrdiff_t>(i);
      }
      ad_event_of[i] = 1;
    } else if (ev.value().kind == feed::EventKind::kAdDelete) {
      AdKeep& k = ads[ev.value().ad_id];
      k.last_del = static_cast<ptrdiff_t>(i);
      k.first_put_after = -1;  // a put must follow the final delete to count
      ad_event_of[i] = 1;
    }
  }
  std::set<ptrdiff_t> keep_indices;
  for (const auto& [id, k] : ads) {
    if (k.last_del >= 0) keep_indices.insert(k.last_del);
    if (k.first_put_after >= 0) keep_indices.insert(k.first_put_after);
  }
  uint64_t dropped = 0;
  for (size_t i = 0; i < flat.size(); ++i) {
    if (ad_event_of[i] < 0) continue;  // tweet/checkin/undecodable: keep
    if (keep_indices.count(static_cast<ptrdiff_t>(i))) continue;
    flat[i]->keep = false;
    ++dropped;
  }
  return dropped;
}

struct OutputGroup {
  uint64_t name_seqno = 0;
  std::string contents;
  size_t records = 0;
  uint64_t first_kept = 0;
  uint64_t last_kept = 0;
};

Result<CompactionReport> CompactCore(const std::string& dir,
                                     const std::vector<SegmentSummary>& sealed,
                                     const CompactionOptions& options,
                                     size_t target_bytes,
                                     obs::MetricRegistry* metrics,
                                     size_t* consumed_out,
                                     std::vector<SegmentSummary>* outputs_out) {
  CompactionReport report;
  *consumed_out = 0;
  outputs_out->clear();

  // --- Read the eligible prefix: every record strictly below the
  // preserve floor, deduplicating seqnos already covered by an earlier
  // (compacted) input — leftovers of a crashed swap. ---
  std::vector<InputSegment> inputs;
  uint64_t last_seen = 0;
  size_t stale_inputs = 0;
  for (const SegmentSummary& seg : sealed) {
    uint64_t file_bytes = 0;
    Result<std::vector<Frame>> frames =
        ReadSealedSegment(seg.path, &file_bytes);
    if (!frames.ok()) return frames.status();
    bool eligible = true;
    for (const Frame& f : frames.value()) {
      if (f.seqno >= options.preserve_floor) {
        eligible = false;
        break;
      }
    }
    if (!eligible) break;
    InputSegment input;
    input.summary = seg;
    input.file_bytes = file_bytes;
    for (Frame& f : frames.value()) {
      if (f.seqno <= last_seen) {
        ++input.stale_records;
        continue;
      }
      last_seen = f.seqno;
      input.frames.push_back(std::move(f));
    }
    if (input.frames.empty() && input.stale_records > 0) ++stale_inputs;
    inputs.push_back(std::move(input));
  }
  if (inputs.size() < std::max<size_t>(options.min_input_segments, 1)) {
    return report;  // ran = false
  }

  report.segments_in = inputs.size();
  for (const InputSegment& seg : inputs) {
    report.records_in += seg.frames.size();
    report.bytes_in += seg.file_bytes;
  }

  report.records_dropped = MarkSupersededFrames(&inputs);

  // Never emit an empty run: a compacted range must keep at least one
  // frame so the name/record chain stays anchored.
  size_t total_kept = static_cast<size_t>(report.records_in) -
                      static_cast<size_t>(report.records_dropped);
  if (total_kept == 0 && report.records_in > 0) {
    for (auto it = inputs.rbegin(); it != inputs.rend(); ++it) {
      if (!it->frames.empty()) {
        it->frames.back().keep = true;
        --report.records_dropped;
        total_kept = 1;
        break;
      }
    }
  }

  // --- Group consecutive inputs into outputs, cutting only at input
  // boundaries. A group that kept nothing folds forward; the name is
  // always the FIRST grouped input's, so it never exceeds the first
  // kept record's seqno. ---
  std::vector<OutputGroup> groups;
  OutputGroup cur;
  bool cur_open = false;
  for (const InputSegment& seg : inputs) {
    size_t kept_bytes = 0;
    for (const Frame& f : seg.frames) {
      if (f.keep) kept_bytes += f.line.size();
    }
    if (cur_open && cur.records > 0 &&
        cur.contents.size() + kept_bytes > target_bytes) {
      groups.push_back(std::move(cur));
      cur = OutputGroup{};
      cur_open = false;
    }
    if (!cur_open) {
      cur.name_seqno = seg.summary.first_seqno;
      cur_open = true;
    }
    for (const Frame& f : seg.frames) {
      if (!f.keep) continue;
      cur.contents += f.line;
      if (cur.records == 0) cur.first_kept = f.seqno;
      cur.last_kept = f.seqno;
      ++cur.records;
    }
  }
  // A trailing group that kept nothing is simply not emitted: its range
  // becomes a boundary gap after a compacted segment, which scans
  // tolerate and followers resolve by re-seeding.
  if (cur_open && cur.records > 0) groups.push_back(std::move(cur));

  report.segments_out = groups.size();
  for (const OutputGroup& g : groups) report.bytes_out += g.contents.size();

  // Nothing dropped, nothing coalesced, no stale inputs shed: no-op.
  if (report.records_dropped == 0 && groups.size() == inputs.size() &&
      stale_inputs == 0) {
    return report;  // ran = false
  }
  report.ran = true;

  // --- Crash-safe swap (see compactor.h). ---
  std::set<std::string> output_paths;
  std::vector<std::pair<std::string, std::string>> renames;  // tmp -> final
  for (const OutputGroup& g : groups) {
    const std::string path =
        dir + "/" + SegmentFileName(g.name_seqno, /*compacted=*/true);
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) return Status::IoError("cannot open " + tmp);
      out << g.contents;
      out.flush();
      if (!out) return Status::IoError("write failed on " + tmp);
    }
    ADREC_RETURN_NOT_OK(FsyncFile(tmp));
    output_paths.insert(path);
    renames.emplace_back(tmp, path);
  }
  for (const auto& [tmp, path] : renames) {
    ADREC_RETURN_NOT_OK(RenamePath(tmp, path));
  }
  ADREC_RETURN_NOT_OK(FsyncDir(dir));
  bool unlinked = false;
  for (const InputSegment& seg : inputs) {
    if (output_paths.count(seg.summary.path)) continue;  // rewritten in place
    std::error_code ec;
    std::filesystem::remove(seg.summary.path, ec);
    if (ec) {
      // A survivor input is fully shadowed by the outputs; scans skip it
      // as stale, so a failed unlink costs disk, not correctness.
      ADREC_LOG(kWarning) << "compaction: cannot remove " << seg.summary.path
                          << ": " << ec.message();
    } else {
      unlinked = true;
    }
  }
  if (unlinked) ADREC_RETURN_NOT_OK(FsyncDir(dir));

  *consumed_out = inputs.size();
  for (const OutputGroup& g : groups) {
    SegmentSummary s;
    s.path = dir + "/" + SegmentFileName(g.name_seqno, /*compacted=*/true);
    s.first_seqno = g.name_seqno;
    s.last_seqno = g.last_kept;
    s.records = g.records;
    s.bytes = g.contents.size();
    s.compacted = true;
    outputs_out->push_back(std::move(s));
  }

  if (metrics != nullptr) {
    metrics->GetCounter("compact.runs")->Inc();
    metrics->GetCounter("compact.segments_in")->Inc(report.segments_in);
    metrics->GetCounter("compact.segments_out")->Inc(report.segments_out);
    metrics->GetCounter("compact.records_dropped")
        ->Inc(report.records_dropped);
    if (report.bytes_in > report.bytes_out) {
      metrics->GetCounter("compact.bytes_reclaimed")
          ->Inc(report.bytes_in - report.bytes_out);
    }
  }
  return report;
}

}  // namespace

Result<CompactionReport> CompactSealed(WalWriter* writer,
                                       const CompactionOptions& options) {
  obs::MetricRegistry* metrics = writer->mutable_metrics();
  obs::ScopedTimer run_timer(metrics->GetTimer("compact.run_us"));
  const size_t target = options.target_segment_bytes != 0
                            ? options.target_segment_bytes
                            : writer->options().segment_bytes;
  size_t consumed = 0;
  std::vector<SegmentSummary> outputs;
  Result<CompactionReport> report =
      CompactCore(writer->dir(), writer->sealed_segments(), options, target,
                  metrics, &consumed, &outputs);
  if (report.ok() && report.value().ran) {
    writer->ReplaceSealedPrefix(consumed, std::move(outputs));
  }
  return report;
}

Result<CompactionReport> CompactLogDir(const std::string& dir,
                                       const CompactionOptions& options,
                                       obs::MetricRegistry* metrics) {
  std::vector<SegmentSummary> segments = ListSegments(dir);
  if (!segments.empty()) {
    segments.pop_back();  // the newest segment owns torn-tail semantics
  }
  const size_t target = options.target_segment_bytes != 0
                            ? options.target_segment_bytes
                            : kOfflineTargetBytes;
  size_t consumed = 0;
  std::vector<SegmentSummary> outputs;
  return CompactCore(dir, segments, options, target, metrics, &consumed,
                     &outputs);
}

}  // namespace adrec::wal::delta
