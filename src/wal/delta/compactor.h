#ifndef ADREC_WAL_DELTA_COMPACTOR_H_
#define ADREC_WAL_DELTA_COMPACTOR_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "wal/wal.h"

namespace adrec::wal::delta {

/// WAL segment compaction — DESIGN.md §17.
///
/// Rewrites a prefix of *sealed* segments into `wal-<N>.clog` files,
/// dropping records whose effects are superseded, and coalescing small
/// inputs into fewer outputs. The active segment is never touched, so
/// torn-tail recovery semantics are unchanged.
///
/// What may be dropped. The engine's ad inventory is first-write-wins
/// (InsertAd of an existing id fails kAlreadyExists and changes
/// nothing), the daemon logs before applying, recovery tolerates
/// kAlreadyExists/kNotFound on inventory replay, and window replay
/// (ReplayForAnalysis) ignores ad events entirely. Hence, per ad id
/// within the compacted range, replaying only
///
///   { the last addel L, the first adput after L }
///
/// (just the first adput overall when the id has no addel) reproduces
/// the exact post-range inventory state from ANY recovery mark:
/// - a suffix starting before L ends, in both logs, with L's delete
///   followed by that first adput — identical final fields;
/// - a suffix starting at/after that adput finds the ad already present
///   in the checkpoint (the full prefix contained the adput), so every
///   later adput was a no-op and dropping it changes nothing.
/// Tweets and check-ins are always kept (they feed the analysis window),
/// as is any payload that fails to decode — the compactor never guesses.
///
/// Outputs preserve original frames verbatim (bytes, CRCs, seqnos), so a
/// compacted segment may carry seqno gaps and start after its name's
/// seqno; wal::ScanLog tolerates exactly that (wal/wal.h). Output groups
/// cut only at input-segment boundaries and take the FIRST grouped
/// input's name, keeping name-ordering and truncation keys intact. An
/// output is never empty: a group whose records were all dropped folds
/// into the next group, and if everything in the run would be dropped
/// the last frame is force-kept.
///
/// Swap protocol (crash-safe at every point): write each output as
/// `.clog.tmp` (fsynced) -> rename all to `.clog`, ascending -> one
/// directory fsync -> unlink every input whose name differs from every
/// output -> directory fsync. Any durable subset of the renames is
/// recoverable: ListSegments prefers `.clog` on a name collision, and
/// ScanLog skips inputs whose records all duplicate already-seen seqnos
/// (LogReport::stale_segments).
struct CompactionOptions {
  /// Records at/above this seqno must survive verbatim: segments
  /// containing one are not eligible inputs. The server passes the
  /// minimum over live replication cursors so a connected follower's
  /// contiguous tail is never rewritten under it (a follower whose
  /// cursor falls below the floor re-seeds via the ReadFrames NotFound
  /// path).
  uint64_t preserve_floor = UINT64_MAX;
  /// Coalescing target for output files. 0 = the writer's
  /// WalOptions::segment_bytes (live), or 4 MiB (offline).
  size_t target_segment_bytes = 0;
  /// Skip the run when fewer eligible input segments than this.
  size_t min_input_segments = 1;
};

struct CompactionReport {
  /// False when the run was skipped (too few inputs, or nothing to drop
  /// and nothing to coalesce); the directory is untouched.
  bool ran = false;
  size_t segments_in = 0;
  size_t segments_out = 0;
  uint64_t records_in = 0;
  uint64_t records_dropped = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
};

/// Compacts the eligible sealed prefix of a live writer's log, updating
/// the writer's bookkeeping (ReplaceSealedPrefix) and its `compact.*`
/// metrics. Concurrent appends are safe: only sealed files are read and
/// the active segment is never an input. The caller serialises
/// compaction against checkpoint truncation (the daemon runs both from
/// its event loop).
Result<CompactionReport> CompactSealed(WalWriter* writer,
                                       const CompactionOptions& options);

/// Offline compaction of a log directory no writer has open
/// (`adrec_tool wal compact`). The newest segment is excluded — it is
/// the potential torn-tail owner. `metrics` may be null.
Result<CompactionReport> CompactLogDir(const std::string& dir,
                                       const CompactionOptions& options,
                                       obs::MetricRegistry* metrics = nullptr);

}  // namespace adrec::wal::delta

#endif  // ADREC_WAL_DELTA_COMPACTOR_H_
