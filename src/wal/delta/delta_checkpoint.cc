#include "wal/delta/delta_checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <unordered_map>

#include "common/fs_util.h"
#include "common/hashing.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "core/snapshot.h"

namespace adrec::wal::delta {

namespace {

constexpr std::string_view kManifestName = "MANIFEST.tsv";
constexpr std::string_view kCurrentName = "CURRENT";
constexpr std::string_view kGenPrefix = "gen-";

bool ParseUll(const std::string& s, uint64_t* out, int base = 10) {
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, base);
  return end != s.c_str() && *end == '\0';
}

/// Parses `gen-<digits>` (no suffix); 0 for non-generation names.
uint64_t GenOfName(std::string_view name) {
  if (!StartsWith(name, kGenPrefix)) return 0;
  const std::string_view digits = name.substr(kGenPrefix.size());
  if (digits.empty()) return 0;
  uint64_t v = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return 0;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

Status ReadFileFully(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  out->assign((std::istreambuf_iterator<char>(in)),
              std::istreambuf_iterator<char>());
  if (in.bad()) return Status::IoError("read failed on " + path);
  return Status::OK();
}

Status WriteFileDurably(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path);
  out << contents;
  out.flush();
  if (!out) return Status::IoError("write failed on " + path);
  out.close();
  return FsyncFile(path);
}

/// Referenced files all present with recorded sizes? (Hashes are checked
/// at materialization, where the bytes are read anyway.)
bool GenerationLoadable(const std::string& delta_dir,
                        const DeltaManifest& m) {
  for (const FileRef& f : m.files) {
    const std::string path =
        delta_dir + "/" + GenDirName(f.src_gen) + "/" + f.rel;
    std::error_code ec;
    const uintmax_t have = std::filesystem::file_size(path, ec);
    if (ec || have != f.bytes) return false;
  }
  return true;
}

/// All generation numbers present under the delta dir, ascending.
std::vector<uint64_t> ListGenDirs(const std::string& delta_dir) {
  std::vector<uint64_t> gens;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(delta_dir, ec)) {
    if (!entry.is_directory()) continue;
    const uint64_t gen = GenOfName(entry.path().filename().string());
    if (gen != 0) gens.push_back(gen);
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

}  // namespace

size_t DeltaManifest::ChainLength() const {
  std::set<uint64_t> gens;
  for (const FileRef& f : files) gens.insert(f.src_gen);
  return gens.empty() ? 1 : gens.size();
}

std::string GenDirName(uint64_t gen) {
  return StringFormat("gen-%020llu", static_cast<unsigned long long>(gen));
}

std::string DeltaDir(const std::string& wal_dir) {
  return wal_dir + "/checkpoint.delta";
}

Result<DeltaManifest> ReadDeltaManifest(const std::string& gen_dir) {
  const std::string path = gen_dir + "/" + std::string(kManifestName);
  std::ifstream in(path);
  if (!in) return Status::NotFound("no delta manifest at " + path);

  DeltaManifest m;
  m.gen = GenOfName(
      std::filesystem::path(gen_dir).filename().string());
  std::string line;
  size_t line_no = 0;
  bool saw_k = false;
  bool saw_b = false;
  auto bad = [&](const std::string& why) {
    return Status::InvalidArgument(
        StringFormat("%s:%zu: %s", path.c_str(), line_no, why.c_str()));
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto f = SplitString(line, '\t', /*keep_empty=*/true);
    if (f[0] == "K") {
      if (saw_k || f.size() != 4) return bad("bad K record");
      uint64_t shards = 0;
      uint64_t time_raw = 0;
      if (!ParseUll(std::string(f[1]), &m.wal_seqno) ||
          !ParseUll(std::string(f[2]), &shards) || shards == 0) {
        return bad("bad K fields");
      }
      char* end = nullptr;
      const std::string time_str(f[3]);
      m.stream_time = std::strtoll(time_str.c_str(), &end, 10);
      if (end == time_str.c_str() || *end != '\0') return bad("bad K time");
      m.num_shards = static_cast<size_t>(shards);
      (void)time_raw;
      saw_k = true;
    } else if (f[0] == "S") {
      uint64_t stream = 0;
      uint64_t mark = 0;
      if (f.size() != 3 || !ParseUll(std::string(f[1]), &stream) ||
          !ParseUll(std::string(f[2]), &mark) ||
          stream != m.stream_seqnos.size()) {
        return bad("bad or out-of-order S record");
      }
      m.stream_seqnos.push_back(mark);
    } else if (f[0] == "B") {
      if (saw_b || f.size() != 3 ||
          !ParseUll(std::string(f[1]), &m.base_gen) ||
          !ParseUll(std::string(f[2]), &m.depth)) {
        return bad("bad B record");
      }
      saw_b = true;
    } else if (f[0] == "F") {
      FileRef ref;
      if (f.size() != 5) return bad("bad F record");
      ref.rel = std::string(f[1]);
      if (ref.rel.empty() || ref.rel[0] == '/' ||
          ref.rel.find("..") != std::string::npos) {
        return bad("unsafe F path");
      }
      if (!ParseUll(std::string(f[2]), &ref.bytes) ||
          !ParseUll(std::string(f[3]), &ref.hash, 16) ||
          !ParseUll(std::string(f[4]), &ref.src_gen) || ref.src_gen == 0) {
        return bad("bad F fields");
      }
      m.files.push_back(std::move(ref));
    } else {
      return bad("unknown record tag");
    }
  }
  if (!saw_k || !saw_b) {
    return Status::InvalidArgument(path + ": manifest missing K or B record");
  }
  if (m.files.empty()) {
    return Status::InvalidArgument(path + ": manifest lists no files");
  }
  return m;
}

Result<DeltaSaveStats> SaveDeltaCheckpoint(
    const std::string& wal_dir, const core::ShardedEngine& engine,
    uint64_t wal_seqno, const std::vector<uint64_t>& stream_seqnos,
    Timestamp stream_time, const DeltaSaveOptions& options) {
  const std::string delta_dir = DeltaDir(wal_dir);
  std::error_code ec;
  std::filesystem::create_directories(delta_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + delta_dir + ": " +
                           ec.message());
  }

  // Clear staging leftovers of a save that never completed its rename.
  for (const auto& entry :
       std::filesystem::directory_iterator(delta_dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (StartsWith(name, kGenPrefix) && EndsWith(name, ".tmp")) {
      std::error_code rm_ec;
      std::filesystem::remove_all(entry.path(), rm_ec);
    }
  }

  // Previous head: any failure to resolve one (first save, corrupted
  // chain) simply forces a full rebase — the safe default.
  DeltaManifest prev;
  bool have_prev = false;
  {
    Result<DeltaManifest> head = ResolveHead(wal_dir);
    if (head.ok()) {
      prev = std::move(head).value();
      have_prev = true;
    }
  }
  const uint64_t gen = have_prev ? prev.gen + 1 : 1;
  const bool rebase = !have_prev || options.rebase_every <= 1 ||
                      prev.depth + 1 >= options.rebase_every;

  // Previous refs by rel path, for the diff.
  std::unordered_map<std::string, const FileRef*> prev_refs;
  if (have_prev && !rebase) {
    for (const FileRef& f : prev.files) prev_refs[f.rel] = &f;
  }

  DeltaSaveStats stats;
  stats.gen = gen;
  stats.rebase = rebase;

  struct Pending {
    FileRef ref;
    std::string contents;  ///< only for files this generation writes
    bool write = false;
  };
  std::vector<Pending> pending;
  const bool use_clean_hints =
      !rebase && have_prev &&
      options.shard_clean.size() == engine.num_shards();
  for (size_t s = 0; s < engine.num_shards(); ++s) {
    const std::string shard_prefix = StringFormat("shard%zu/", s);
    if (use_clean_hints && options.shard_clean[s]) {
      // Shard state is known unchanged: carry every previous ref over
      // verbatim, no serialization. (A shard missing from the previous
      // manifest falls through to the serialize path below.)
      std::vector<const FileRef*> carried;
      for (const FileRef& f : prev.files) {
        if (StartsWith(f.rel, shard_prefix)) carried.push_back(&f);
      }
      if (!carried.empty()) {
        for (const FileRef* f : carried) {
          Pending p;
          p.ref = *f;
          pending.push_back(std::move(p));
        }
        continue;
      }
    }
    Result<std::vector<core::SnapshotFile>> serialized =
        core::SerializeEngineSnapshot(engine.shard(s));
    if (!serialized.ok()) return serialized.status();
    for (core::SnapshotFile& file : serialized.value()) {
      Pending p;
      p.ref.rel = shard_prefix + file.name;
      p.ref.bytes = file.contents.size();
      p.ref.hash = HashBytes(file.contents.data(), file.contents.size());
      auto it = prev_refs.find(p.ref.rel);
      if (it != prev_refs.end() && it->second->hash == p.ref.hash &&
          it->second->bytes == p.ref.bytes) {
        p.ref.src_gen = it->second->src_gen;  // unchanged: one-hop pointer
      } else {
        p.ref.src_gen = gen;
        p.contents = std::move(file.contents);
        p.write = true;
      }
      pending.push_back(std::move(p));
    }
  }

  // --- Stage the generation directory. ---
  const std::string final_dir = delta_dir + "/" + GenDirName(gen);
  const std::string tmp_dir = final_dir + ".tmp";
  std::filesystem::remove_all(tmp_dir, ec);
  std::filesystem::create_directories(tmp_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + tmp_dir + ": " + ec.message());
  }
  for (Pending& p : pending) {
    stats.files_total += 1;
    stats.bytes_total += p.ref.bytes;
    if (!p.write) continue;
    const std::string path = tmp_dir + "/" + p.ref.rel;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    if (ec) return Status::IoError("cannot create dirs for " + path);
    ADREC_RETURN_NOT_OK(WriteFileDurably(path, p.contents));
    stats.files_written += 1;
    stats.bytes_written += p.ref.bytes;
  }
  {
    std::string manifest = StringFormat(
        "K\t%llu\t%zu\t%lld\n", static_cast<unsigned long long>(wal_seqno),
        engine.num_shards(), static_cast<long long>(stream_time));
    for (size_t s = 0; s < stream_seqnos.size(); ++s) {
      manifest += StringFormat(
          "S\t%zu\t%llu\n", s,
          static_cast<unsigned long long>(stream_seqnos[s]));
    }
    manifest += StringFormat(
        "B\t%llu\t%llu\n",
        static_cast<unsigned long long>(rebase ? 0 : prev.gen),
        static_cast<unsigned long long>(rebase ? 0 : prev.depth + 1));
    for (const Pending& p : pending) {
      manifest += StringFormat(
          "F\t%s\t%llu\t%016llx\t%llu\n", p.ref.rel.c_str(),
          static_cast<unsigned long long>(p.ref.bytes),
          static_cast<unsigned long long>(p.ref.hash),
          static_cast<unsigned long long>(p.ref.src_gen));
    }
    ADREC_RETURN_NOT_OK(WriteFileDurably(
        tmp_dir + "/" + std::string(kManifestName), manifest));
  }
  ADREC_RETURN_NOT_OK(FsyncDir(tmp_dir));
  ADREC_RETURN_NOT_OK(RenamePath(tmp_dir, final_dir));
  ADREC_RETURN_NOT_OK(FsyncDir(delta_dir));

  // --- Publish: CURRENT names the new head. ---
  {
    const std::string current = delta_dir + "/" + std::string(kCurrentName);
    ADREC_RETURN_NOT_OK(
        WriteFileDurably(current + ".tmp", GenDirName(gen) + "\n"));
    ADREC_RETURN_NOT_OK(RenamePath(current + ".tmp", current));
    ADREC_RETURN_NOT_OK(FsyncDir(delta_dir));
  }

  // --- GC generations the new head no longer references. Failures are
  // logged, not fatal: a leaked generation only costs disk. ---
  {
    std::set<uint64_t> referenced;
    referenced.insert(gen);
    for (const Pending& p : pending) referenced.insert(p.ref.src_gen);
    stats.chain_len = referenced.size();
    bool removed = false;
    for (uint64_t old_gen : ListGenDirs(delta_dir)) {
      if (referenced.count(old_gen)) continue;
      std::error_code rm_ec;
      std::filesystem::remove_all(delta_dir + "/" + GenDirName(old_gen),
                                  rm_ec);
      if (rm_ec) {
        ADREC_LOG(kWarning) << "delta checkpoint gc: cannot remove gen "
                            << old_gen << ": " << rm_ec.message();
      } else {
        removed = true;
      }
    }
    if (removed) {
      const Status st = FsyncDir(delta_dir);
      if (!st.ok()) {
        ADREC_LOG(kWarning) << "delta checkpoint gc: " << st.ToString();
      }
    }
  }
  return stats;
}

Result<DeltaManifest> ResolveHead(const std::string& wal_dir) {
  const std::string delta_dir = DeltaDir(wal_dir);
  std::error_code ec;
  if (!std::filesystem::is_directory(delta_dir, ec)) {
    return Status::NotFound("no delta checkpoint dir at " + delta_dir);
  }

  // CURRENT is a hint, not an authority: a crash can leave it pointing
  // at a GC'd generation or not yet at the newest one.
  uint64_t current_gen = 0;
  {
    std::string contents;
    if (ReadFileFully(delta_dir + "/" + std::string(kCurrentName),
                      &contents)
            .ok()) {
      while (!contents.empty() &&
             (contents.back() == '\n' || contents.back() == '\r')) {
        contents.pop_back();
      }
      current_gen = GenOfName(contents);
    }
  }

  std::vector<uint64_t> candidates;
  if (current_gen != 0) candidates.push_back(current_gen);
  std::vector<uint64_t> gens = ListGenDirs(delta_dir);
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    if (*it != current_gen) candidates.push_back(*it);
  }
  // Prefer the newest loadable generation overall; CURRENT only breaks
  // the tie in its own favour by being probed first.
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](uint64_t a, uint64_t b) { return a > b; });

  for (uint64_t gen : candidates) {
    auto m = ReadDeltaManifest(delta_dir + "/" + GenDirName(gen));
    if (!m.ok()) {
      if (m.status().code() != StatusCode::kNotFound) {
        ADREC_LOG(kWarning) << "skipping delta generation " << gen << ": "
                            << m.status().ToString();
      }
      continue;
    }
    if (!GenerationLoadable(delta_dir, m.value())) {
      ADREC_LOG(kWarning) << "skipping delta generation " << gen
                          << ": referenced files missing or resized";
      continue;
    }
    return m;
  }
  return Status::NotFound("no loadable delta generation under " + delta_dir);
}

Status MaterializeCheckpoint(const std::string& wal_dir,
                             const DeltaManifest& head,
                             const std::string& staging_dir) {
  const std::string delta_dir = DeltaDir(wal_dir);
  std::error_code ec;
  std::filesystem::remove_all(staging_dir, ec);
  std::filesystem::create_directories(staging_dir, ec);
  if (ec) {
    return Status::IoError("cannot create " + staging_dir + ": " +
                           ec.message());
  }
  for (const FileRef& f : head.files) {
    const std::string src =
        delta_dir + "/" + GenDirName(f.src_gen) + "/" + f.rel;
    std::string contents;
    ADREC_RETURN_NOT_OK(ReadFileFully(src, &contents));
    if (contents.size() != f.bytes) {
      return Status::IoError(StringFormat(
          "%s: %zu bytes, delta manifest records %llu", src.c_str(),
          contents.size(), static_cast<unsigned long long>(f.bytes)));
    }
    const uint64_t hash = HashBytes(contents.data(), contents.size());
    if (hash != f.hash) {
      return Status::IoError(StringFormat(
          "%s: content hash %016llx does not match delta manifest %016llx",
          src.c_str(), static_cast<unsigned long long>(hash),
          static_cast<unsigned long long>(f.hash)));
    }
    const std::string dst = staging_dir + "/" + f.rel;
    std::filesystem::create_directories(
        std::filesystem::path(dst).parent_path(), ec);
    if (ec) return Status::IoError("cannot create dirs for " + dst);
    std::ofstream out(dst, std::ios::binary);
    if (!out) return Status::IoError("cannot open " + dst);
    out << contents;
    out.flush();
    if (!out) return Status::IoError("write failed on " + dst);
  }
  return Status::OK();
}

Result<std::vector<DeltaManifest>> ListGenerations(
    const std::string& wal_dir) {
  const std::string delta_dir = DeltaDir(wal_dir);
  std::vector<DeltaManifest> out;
  for (uint64_t gen : ListGenDirs(delta_dir)) {
    auto m = ReadDeltaManifest(delta_dir + "/" + GenDirName(gen));
    if (m.ok()) out.push_back(std::move(m).value());
  }
  return out;
}

}  // namespace adrec::wal::delta
