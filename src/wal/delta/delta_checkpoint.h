#ifndef ADREC_WAL_DELTA_DELTA_CHECKPOINT_H_
#define ADREC_WAL_DELTA_DELTA_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_clock.h"
#include "common/status.h"
#include "core/sharded_engine.h"

namespace adrec::wal::delta {

/// Incremental (delta-chain) checkpoints — DESIGN.md §17.
///
/// A full checkpoint rewrites O(engine-state) bytes every time, so the
/// save pause grows with history. A *delta* checkpoint serializes the
/// engine in memory, content-hashes every snapshot file
/// (common/hashing.h), diffs the hashes against the previous
/// generation's manifest, and persists only the files that changed —
/// unchanged files are referenced by hash from the generation that
/// physically holds them. Every `rebase_every`-th generation is a full
/// rebase (all files persisted, no references), which bounds the chain
/// a recovery must resolve.
///
/// Layout inside the log directory:
///
///   <wal_dir>/checkpoint.delta/CURRENT          "gen-<20 digits>\n"
///   <wal_dir>/checkpoint.delta/gen-<N>/MANIFEST.tsv
///   <wal_dir>/checkpoint.delta/gen-<N>/shard<i>/<file>   changed files
///
/// MANIFEST.tsv grammar (tab-separated):
///
///   K <wal_seqno> <shards> <stream_time>     (same as the classic manifest)
///   S <stream> <stream_seqno>                per WAL stream, sharded logs
///   B <base_gen> <depth>                     diff base; 0 0 = full rebase
///   F <rel> <bytes> <hash16hex> <src_gen>    one per snapshot file, with a
///                                            DIRECT pointer to the gen that
///                                            physically holds it (one-hop
///                                            resolution: pointers propagate
///                                            from the base, they never chain)
///
/// Save protocol: stage everything as `gen-<N>.tmp` (files + manifest,
/// each fsynced), rename to `gen-<N>`, fsync the delta dir, then update
/// CURRENT via tmp + rename + fsync, then garbage-collect generations
/// the new head no longer references. A crash at any point leaves either
/// the previous head fully intact (stage/rename/CURRENT windows) or the
/// new head fully durable (GC window); recovery verifies sizes up front
/// and hashes on materialization, falling back generation by generation.
struct FileRef {
  std::string rel;       ///< e.g. "shard0/snapshot_ads.tsv"
  uint64_t bytes = 0;
  uint64_t hash = 0;     ///< adrec::HashBytes of the contents
  uint64_t src_gen = 0;  ///< generation dir physically holding the bytes
};

struct DeltaManifest {
  uint64_t gen = 0;       ///< from the directory name
  uint64_t base_gen = 0;  ///< generation diffed against; 0 = full rebase
  /// Deltas since the last rebase (0 for a rebase) — save uses this to
  /// decide when the next generation must rebase.
  uint64_t depth = 0;
  uint64_t wal_seqno = 0;
  size_t num_shards = 0;
  Timestamp stream_time = 0;
  /// Per-stream high-water marks; empty for a single-stream log
  /// (mirroring the classic manifest's S lines).
  std::vector<uint64_t> stream_seqnos;
  std::vector<FileRef> files;

  /// Distinct generations the file set spans (>= 1); the delta_chain_len
  /// metric and `adrec_tool checkpoint inspect` headline number.
  size_t ChainLength() const;
};

/// "gen-<20-digit zero-padded N>".
std::string GenDirName(uint64_t gen);

/// "<wal_dir>/checkpoint.delta".
std::string DeltaDir(const std::string& wal_dir);

/// Parses `<gen_dir>/MANIFEST.tsv`. NotFound when absent.
Result<DeltaManifest> ReadDeltaManifest(const std::string& gen_dir);

struct DeltaSaveOptions {
  /// Force a full rebase every N generations (1 = every save is full).
  size_t rebase_every = 8;
  /// Optional per-shard hint: true = the shard's snapshot state is known
  /// unchanged since the previous generation (its engine mutation_epoch
  /// did not move), so serialization is skipped and the previous
  /// generation's file refs are carried over verbatim. Ignored on a
  /// rebase or when no previous generation exists. Size must be 0 (no
  /// hints) or num_shards.
  std::vector<bool> shard_clean;
};

struct DeltaSaveStats {
  uint64_t gen = 0;
  bool rebase = false;
  size_t files_total = 0;
  size_t files_written = 0;
  uint64_t bytes_total = 0;
  uint64_t bytes_written = 0;
  size_t chain_len = 1;
};

/// Persists one generation for `engine` at WAL position `wal_seqno`
/// (+ optional per-stream marks for a sharded log). The caller must
/// already have sealed + synced the WAL so the mark covers everything
/// the engine state reflects (wal/checkpoint.cc does this).
Result<DeltaSaveStats> SaveDeltaCheckpoint(
    const std::string& wal_dir, const core::ShardedEngine& engine,
    uint64_t wal_seqno, const std::vector<uint64_t>& stream_seqnos,
    Timestamp stream_time, const DeltaSaveOptions& options);

/// The newest generation whose manifest parses and whose referenced
/// files all exist with the recorded sizes. Tries CURRENT first, then
/// every generation newest-first. NotFound when the delta dir is absent
/// or holds no loadable generation. Hashes are NOT checked here — that
/// happens (strictly) in MaterializeCheckpoint.
Result<DeltaManifest> ResolveHead(const std::string& wal_dir);

/// Copies every file `head` references into `staging_dir` (created
/// fresh), laid out exactly like a classic checkpoint directory
/// (`shard<i>/<file>`), verifying byte count AND content hash of every
/// file on the way — a silently corrupted delta link fails recovery
/// here rather than restoring a wrong engine.
Status MaterializeCheckpoint(const std::string& wal_dir,
                             const DeltaManifest& head,
                             const std::string& staging_dir);

/// All generations with a readable manifest, oldest first (for
/// `adrec_tool checkpoint inspect`).
Result<std::vector<DeltaManifest>> ListGenerations(const std::string& wal_dir);

}  // namespace adrec::wal::delta

#endif  // ADREC_WAL_DELTA_DELTA_CHECKPOINT_H_
